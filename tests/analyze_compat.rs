//! Properties of the schema-evolution analysis (`tfd_core::analyze`).
//!
//! The diff walker mirrors the preference relation `⊑` clause by
//! clause, so its verdicts must *agree* with the relation exactly —
//! checked here over randomly generated pairs of mutually recursive
//! shape environments (a base environment and a mutated copy):
//!
//! * **agreement** — `diff(a, b, Backward)` finds no breaking entry iff
//!   `a ⊑ b` under the two environments (and Forward iff `b ⊑ a`);
//! * **emptiness** — the diff is empty iff the two global shapes are
//!   structurally equivalent (equal roots, equal reachable
//!   definitions);
//! * **soundness** — when the diff declares backward compatibility,
//!   every generated value conforming to the old shape conforms to the
//!   new one (`conforms_in`), instantiating what "no breaking change"
//!   promises.

mod common;

use common::conforming_global;
use proptest::prelude::*;
use tfd_core::analyze::{diff_global, CompatMode};
use tfd_core::{conforms_in, is_preferred_global, GlobalShape, RecordShape, Shape, ShapeEnv};
use tfd_value::corpus::Rng;
use tfd_value::Name;

const DEF_NAMES: &[&str] = &["alpha", "beta", "gamma"];
const FIELD_NAMES: &[&str] = &["id", "name", "next", "items", "mark"];

/// A primitive field shape, possibly nullable.
fn gen_primitive(rng: &mut Rng) -> Shape {
    let base = match rng.below(6) {
        0 => Shape::Int,
        1 => Shape::Float,
        2 => Shape::String,
        3 => Shape::Bool,
        4 => Shape::Date,
        _ => Shape::Bit,
    };
    if rng.chance(0.4) {
        base.ceil()
    } else {
        base
    }
}

/// A random global shape over 2–3 mutually recursive definitions.
/// References only occur in nullable or collection position, matching
/// what global inference produces, so conforming-value generation
/// terminates.
fn gen_global(rng: &mut Rng) -> GlobalShape {
    let ndefs = 2 + rng.below(2) as usize;
    let names: Vec<Name> = DEF_NAMES[..ndefs].iter().map(Name::new).collect();
    let defs: Vec<(Name, RecordShape)> = names
        .iter()
        .map(|&name| {
            let nfields = 1 + rng.below(3) as usize;
            let fields: Vec<(Name, Shape)> = FIELD_NAMES[..nfields + 2]
                .iter()
                .take(nfields)
                .map(|f| {
                    let target = names[rng.below(names.len() as u64) as usize];
                    let shape = match rng.below(4) {
                        0 => Shape::Ref(target).ceil(),
                        1 => Shape::list(Shape::Ref(target)),
                        _ => gen_primitive(rng),
                    };
                    (Name::new(f), shape)
                })
                .collect();
            (name, RecordShape::new(name, fields))
        })
        .collect();
    let env = ShapeEnv::from_defs(defs);
    let root = match rng.below(3) {
        0 => Shape::Ref(names[0]),
        1 => Shape::list(Shape::Ref(names[0])),
        _ => Shape::record(
            "root",
            vec![
                ("head", Shape::Ref(names[0]).ceil()),
                ("mark", gen_primitive(rng)),
            ],
        ),
    };
    GlobalShape { root, env }
}

/// One random edit: widen/narrow/nullify/strip/add/remove a field of a
/// random definition (or of the root record).
fn apply_mutation(g: &mut GlobalShape, rng: &mut Rng) {
    let names: Vec<Name> = g.env.names().collect();
    let pick = rng.below(names.len() as u64 + 1) as usize;
    let mut def = if pick < names.len() {
        g.env.get(names[pick]).cloned()
    } else if let Shape::Record(r) = &g.root {
        Some(r.clone())
    } else if !names.is_empty() {
        g.env.get(names[0]).cloned()
    } else {
        None
    };
    let Some(record) = def.as_mut() else { return };
    match rng.below(6) {
        // Widen / narrow along the primitive chains.
        0 => {
            for f in &mut record.fields {
                f.shape = match std::mem::replace(&mut f.shape, Shape::Null) {
                    Shape::Int => Shape::Float,
                    Shape::Bit => Shape::Int,
                    Shape::Date => Shape::String,
                    other => other,
                };
            }
        }
        1 => {
            for f in &mut record.fields {
                f.shape = match std::mem::replace(&mut f.shape, Shape::Null) {
                    Shape::Float => Shape::Int,
                    Shape::String => Shape::Date,
                    other => other,
                };
            }
        }
        // Introduce / remove nullability on the first field.
        2 => {
            if let Some(f) = record.fields.first_mut() {
                let s = std::mem::replace(&mut f.shape, Shape::Null);
                f.shape = if s.is_non_nullable() { s.ceil() } else { s };
            }
        }
        3 => {
            if let Some(f) = record.fields.first_mut() {
                let s = std::mem::replace(&mut f.shape, Shape::Null);
                f.shape = match s {
                    Shape::Nullable(inner) => *inner,
                    other => other,
                };
            }
        }
        // Add a field (sometimes optional, sometimes required).
        4 => {
            let shape = if rng.chance(0.5) {
                Shape::Int.ceil()
            } else {
                Shape::Int
            };
            let fresh = format!("extra{}", rng.below(3));
            if record.field(&fresh).is_none() {
                *record = RecordShape::new(
                    record.name,
                    record
                        .fields
                        .iter()
                        .map(|f| (f.name, f.shape.clone()))
                        .chain([(Name::new(fresh), shape)]),
                );
            }
        }
        // Remove the last field (keep at least one).
        _ => {
            if record.fields.len() > 1 {
                record.fields.pop();
            }
        }
    }
    if pick < names.len() {
        g.env.define(names[pick], def.expect("checked above"));
    } else if matches!(g.root, Shape::Record(_)) {
        g.root = Shape::Record(def.expect("checked above"));
    } else if !names.is_empty() {
        g.env.define(names[0], def.expect("checked above"));
    }
}

fn mutate(g: &GlobalShape, rng: &mut Rng) -> GlobalShape {
    let mut out = g.clone();
    for _ in 0..1 + rng.below(3) {
        apply_mutation(&mut out, rng);
    }
    out
}

/// Structural equivalence: equal roots and equal reachable definitions
/// (field and table order insensitive) — the condition `diff` reports
/// as the empty report.
fn equivalent(a: &GlobalShape, b: &GlobalShape) -> bool {
    if a.root != b.root {
        return false;
    }
    let (ea, eb) = (a.reachable_env(), b.reachable_env());
    let mut na: Vec<Name> = ea.names().collect();
    let mut nb: Vec<Name> = eb.names().collect();
    na.sort();
    nb.sort();
    na == nb && na.iter().all(|&n| ea.get(n) == eb.get(n))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn diff_agrees_with_the_preference_relation(seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        let old = gen_global(&mut rng);
        let new = mutate(&old, &mut rng);
        for (a, b) in [(&old, &new), (&new, &old), (&old, &old)] {
            let back = diff_global(a, b, CompatMode::Backward);
            prop_assert_eq!(
                back.is_compatible(),
                is_preferred_global(a, b),
                "backward diff disagrees with ⊑ on {} vs {}:\n{}", a, b, back
            );
            let fwd = diff_global(a, b, CompatMode::Forward);
            prop_assert_eq!(
                fwd.is_compatible(),
                is_preferred_global(b, a),
                "forward diff disagrees with ⊒ on {} vs {}:\n{}", a, b, fwd
            );
            // Full mode breaks iff either direction does.
            let full = diff_global(a, b, CompatMode::Full);
            prop_assert_eq!(
                full.is_compatible(),
                back.is_compatible() && fwd.is_compatible()
            );
        }
    }

    #[test]
    fn empty_diff_iff_structurally_equivalent(seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        let old = gen_global(&mut rng);
        let new = mutate(&old, &mut rng);
        let report = diff_global(&old, &new, CompatMode::Full);
        prop_assert_eq!(
            report.is_empty(),
            equivalent(&old, &new),
            "emptiness misjudged on {} vs {}:\n{}", &old, &new, report
        );
        // Reflexivity: every shape is equivalent to itself, and equal
        // fingerprints come with the empty report.
        let same = diff_global(&old, &old, CompatMode::Full);
        prop_assert!(same.is_empty(), "{}", same);
        prop_assert_eq!(same.old_fingerprint, same.new_fingerprint);
    }

    #[test]
    fn backward_compatibility_is_sound_for_conforming_values(seed in any::<u64>()) {
        let mut rng = Rng::new(seed);
        let old = gen_global(&mut rng);
        let new = mutate(&old, &mut rng);
        let compatible = diff_global(&old, &new, CompatMode::Backward).is_compatible();
        for _ in 0..8 {
            let v = conforming_global(&old, &mut rng);
            prop_assert!(
                conforms_in(&old.root, &v, Some(&old.env)),
                "generator unsound: {} does not conform to {}", v, &old
            );
            if compatible {
                prop_assert!(
                    conforms_in(&new.root, &v, Some(&new.env)),
                    "breaking change missed: {} conforms to {} but not to {}",
                    v, &old, &new
                );
            }
        }
    }
}
