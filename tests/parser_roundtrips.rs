//! Parser round-trips and failure injection for the three front-ends.

mod common;

use common::value_strategy;
use proptest::prelude::*;
use tfd_json::Json;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// JSON: `parse ∘ print = id` on arbitrary documents.
    #[test]
    fn json_print_parse_roundtrip(v in value_strategy()) {
        let doc = Json::from_value(&v);
        let compact = tfd_json::to_json_string(&doc);
        prop_assert_eq!(tfd_json::parse(&compact).unwrap(), doc.clone());
        let pretty = tfd_json::to_json_string_pretty(&doc);
        prop_assert_eq!(tfd_json::parse(&pretty).unwrap(), doc);
    }

    /// JSON: the value round-trip also preserves the universal value
    /// (record names are all `•` for JSON, so nothing is lost).
    #[test]
    fn json_value_roundtrip(v in value_strategy()) {
        // Only JSON-expressible values: rename all records to `•` and
        // drop non-finite floats.
        let j = Json::from_value(&v);
        let v2 = j.to_value();
        let j2 = Json::from_value(&v2);
        prop_assert_eq!(j, j2);
    }

    /// The CSV parser splits what the writer joins (cells containing
    /// delimiters, quotes and newlines).
    #[test]
    fn csv_quoting_roundtrip(cells in prop::collection::vec("[a-z,\"\n ]{0,8}", 1..5)) {
        // Write one data row with full quoting.
        let header: Vec<String> = (0..cells.len()).map(|i| format!("c{i}")).collect();
        let quoted: Vec<String> = cells
            .iter()
            .map(|c| format!("\"{}\"", c.replace('"', "\"\"")))
            .collect();
        let text = format!("{}\n{}\n", header.join(","), quoted.join(","));
        let parsed = tfd_csv::parse(&text).unwrap();
        prop_assert_eq!(parsed.rows().len(), 1);
        prop_assert_eq!(&parsed.rows()[0], &cells);
    }
}

// --- Failure injection: every malformed input is rejected with an error,
// never a panic or a wrong document. ---

#[test]
fn json_malformed_corpus() {
    let bad = [
        "", "{", "}", "[", "]", "{]", "[}", "nul", "tru", "+1", "01", "1.",
        ".5", "1e", "--1", "\"", "\"\\q\"", "\"\\u12\"", "{\"a\"}", "{\"a\":}",
        "{a:1}", "[1,]", "{\"a\":1,}", "[1 2]", "{\"a\":1 \"b\":2}", "1 1",
        "\u{0}",
    ];
    for input in bad {
        assert!(
            tfd_json::parse(input).is_err(),
            "JSON parser accepted malformed input {input:?}"
        );
    }
}

#[test]
fn xml_malformed_corpus() {
    let bad = [
        "", "<", "<>", "<a", "<a>", "</a>", "<a></b>", "<a x></a>",
        "<a x=1/>", "<a x=\"1/>", "<a>&nope;</a>", "<a>&#xD800;</a>",
        "<a/><b/>", "text", "<a><!-- </a>", "<a><![CDATA[x</a>",
    ];
    for input in bad {
        assert!(
            tfd_xml::parse(input).is_err(),
            "XML parser accepted malformed input {input:?}"
        );
    }
}

#[test]
fn csv_malformed_corpus() {
    let bad = ["", "a\n\"unterminated", "a\n\"x\"y"];
    for input in bad {
        assert!(
            tfd_csv::parse(input).is_err(),
            "CSV parser accepted malformed input {input:?}"
        );
    }
}

#[test]
fn json_deep_nesting_is_rejected_not_overflowed() {
    let deep = "[".repeat(100_000) + &"]".repeat(100_000);
    assert!(tfd_json::parse(&deep).is_err());
    let deep_obj = "{\"a\":".repeat(50_000) + "1" + &"}".repeat(50_000);
    assert!(tfd_json::parse(&deep_obj).is_err());
}

#[test]
fn xml_deep_nesting_is_rejected_not_overflowed() {
    let deep = "<a>".repeat(100_000) + &"</a>".repeat(100_000);
    assert!(tfd_xml::parse(&deep).is_err());
}

#[test]
fn unicode_survives_all_three_parsers() {
    let json = tfd_json::parse("{\"č\": \"žluťoučký 😀\"}").unwrap();
    assert_eq!(
        json.get("č"),
        Some(&Json::String("žluťoučký 😀".into()))
    );
    let xml = tfd_xml::parse("<č>žluťoučký &#x1F600;</č>").unwrap();
    assert_eq!(xml.text(), "žluťoučký 😀");
    let csv = tfd_csv::parse("sloupec\nžluťoučký\n").unwrap();
    assert_eq!(csv.rows()[0][0], "žluťoučký");
}

#[test]
fn large_flat_document_parses() {
    // A 10k-element array exercises the non-recursive paths.
    let text = format!(
        "[{}]",
        (0..10_000).map(|i| i.to_string()).collect::<Vec<_>>().join(",")
    );
    let doc = tfd_json::parse(&text).unwrap();
    assert_eq!(doc.items().unwrap().len(), 10_000);
    let value = doc.to_value();
    assert_eq!(value.elements().unwrap().len(), 10_000);
    // And infers in one pass:
    let shape = tfd_core::infer(&value);
    assert_eq!(shape, tfd_core::Shape::list(tfd_core::Shape::Int));
}
