//! Parser round-trips and failure injection for the three front-ends.

mod common;

use common::value_strategy;
use proptest::prelude::*;
use tfd_json::Json;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// JSON: `parse ∘ print = id` on arbitrary documents.
    #[test]
    fn json_print_parse_roundtrip(v in value_strategy()) {
        let doc = Json::from_value(&v);
        let compact = tfd_json::to_json_string(&doc);
        prop_assert_eq!(tfd_json::parse(&compact).unwrap(), doc.clone());
        let pretty = tfd_json::to_json_string_pretty(&doc);
        prop_assert_eq!(tfd_json::parse(&pretty).unwrap(), doc);
    }

    /// JSON: the value round-trip also preserves the universal value
    /// (record names are all `•` for JSON, so nothing is lost).
    #[test]
    fn json_value_roundtrip(v in value_strategy()) {
        // Only JSON-expressible values: rename all records to `•` and
        // drop non-finite floats.
        let j = Json::from_value(&v);
        let v2 = j.to_value();
        let j2 = Json::from_value(&v2);
        prop_assert_eq!(j, j2);
    }

    /// The CSV parser splits what the writer joins (cells containing
    /// delimiters, quotes and newlines).
    #[test]
    fn csv_quoting_roundtrip(cells in prop::collection::vec("[a-z,\"\n ]{0,8}", 1..5)) {
        // Write one data row with full quoting.
        let header: Vec<String> = (0..cells.len()).map(|i| format!("c{i}")).collect();
        let quoted: Vec<String> = cells
            .iter()
            .map(|c| format!("\"{}\"", c.replace('"', "\"\"")))
            .collect();
        let text = format!("{}\n{}\n", header.join(","), quoted.join(","));
        let parsed = tfd_csv::parse(&text).unwrap();
        prop_assert_eq!(parsed.rows().len(), 1);
        prop_assert_eq!(&parsed.rows()[0], &cells);
    }
}

// --- Byte-level vs retained char-level (`reference`) front-ends: the new
// single-pass parsers must agree with the old ones on valid inputs, and
// the direct-to-Value paths must agree with parse-then-encode. ---

const XML_NAMES: &[&str] = &["a", "item", "ns:tag", "čaj", "x-1", "_u"];

fn xml_name() -> impl Strategy<Value = String> {
    prop::sample::select(XML_NAMES).prop_map(str::to_owned)
}

fn xml_attrs() -> impl Strategy<Value = Vec<tfd_xml::Attribute>> {
    // Attribute names are made distinct (`Value`'s record equality is a
    // by-name lookup, so duplicate field names never compare equal —
    // even to themselves).
    prop::collection::vec("[a-z<>&\"' é0-9]{0,6}", 0..3).prop_map(|values| {
        values
            .into_iter()
            .enumerate()
            .map(|(i, value)| tfd_xml::Attribute {
                name: tfd_value::Name::new(format!("at{i}")),
                value,
            })
            .collect()
    })
}

fn xml_text() -> impl Strategy<Value = String> {
    "[a-z <>&;é0-9\\n\\r]{0,8}"
}

/// Arbitrary element trees (attributes, mixed content, namespacey and
/// non-ASCII names) used to drive the serializer below.
fn xml_element_strategy() -> impl Strategy<Value = tfd_xml::Element> {
    let leaf = (xml_name(), xml_attrs(), xml_text()).prop_map(|(name, attributes, text)| {
        let mut e = tfd_xml::Element::new(name);
        e.attributes = attributes;
        if !text.is_empty() {
            e.children.push(tfd_xml::XmlNode::Text(text));
        }
        e
    });
    leaf.prop_recursive(3, 16, 3, |inner| {
        (
            (xml_name(), xml_attrs()),
            (xml_text(), prop::collection::vec(inner, 0..3)),
        )
            .prop_map(|((name, attributes), (text, children))| {
                let mut e = tfd_xml::Element::new(name);
                e.attributes = attributes;
                if !text.is_empty() {
                    e.children.push(tfd_xml::XmlNode::Text(text));
                }
                e.children
                    .extend(children.into_iter().map(tfd_xml::XmlNode::Element));
                e
            })
    })
}

/// Serializes a tree with minimal escaping (`& < "` in attributes,
/// `& <` in text).
fn write_xml(e: &tfd_xml::Element, out: &mut String) {
    out.push('<');
    out.push_str(e.name.as_str());
    for a in &e.attributes {
        out.push(' ');
        out.push_str(a.name.as_str());
        out.push_str("=\"");
        for c in a.value.chars() {
            match c {
                '&' => out.push_str("&amp;"),
                '<' => out.push_str("&lt;"),
                '"' => out.push_str("&quot;"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    if e.children.is_empty() {
        out.push_str("/>");
        return;
    }
    out.push('>');
    for node in &e.children {
        match node {
            tfd_xml::XmlNode::Element(c) => write_xml(c, out),
            tfd_xml::XmlNode::Text(t) => {
                for c in t.chars() {
                    match c {
                        '&' => out.push_str("&amp;"),
                        '<' => out.push_str("&lt;"),
                        c => out.push(c),
                    }
                }
            }
        }
    }
    out.push_str("</");
    out.push_str(e.name.as_str());
    out.push('>');
}

fn quote_csv_cell(cell: &str) -> String {
    format!("\"{}\"", cell.replace('"', "\"\""))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Byte-level and reference CSV parsers agree on fully-quoted valid
    /// input — cells containing delimiters, quotes, LF and bare CR.
    #[test]
    fn csv_byte_and_reference_agree_on_quoted(
        rows in prop::collection::vec(
            prop::collection::vec("[a-z,\"\\n\\r é0-9]{0,8}", 1..4),
            1..5,
        )
    ) {
        let text = rows
            .iter()
            .map(|r| r.iter().map(|c| quote_csv_cell(c)).collect::<Vec<_>>().join(","))
            .collect::<Vec<_>>()
            .join("\r\n");
        prop_assert_eq!(tfd_csv::parse(&text), tfd_csv::reference::parse(&text));
    }

    /// Same, for unquoted cells under mixed LF / CRLF / CR line endings.
    #[test]
    fn csv_byte_and_reference_agree_on_line_ending_mixes(
        rows in prop::collection::vec(
            prop::collection::vec("[a-z é0-9]{0,6}", 1..4),
            1..6,
        ),
        seps in prop::collection::vec(0usize..3, 1..6),
    ) {
        let endings = ["\n", "\r\n", "\r"];
        let mut text = String::new();
        for (i, row) in rows.iter().enumerate() {
            text.push_str(&row.join(","));
            text.push_str(endings[seps[i % seps.len()]]);
        }
        prop_assert_eq!(tfd_csv::parse(&text), tfd_csv::reference::parse(&text));
    }

    /// The direct-to-Value CSV path agrees with parse-then-encode.
    /// Headers are distinct `c0..cn` (record equality is a by-name
    /// lookup, so duplicate columns never compare equal, even to
    /// themselves); data cells are arbitrary quoted text.
    #[test]
    fn csv_parse_value_agrees_with_parse_to_value(
        rows in prop::collection::vec(
            prop::collection::vec("[a-z,\"\\n é0-9.#/-]{0,8}", 1..4),
            1..5,
        )
    ) {
        let width = rows.iter().map(Vec::len).max().unwrap_or(1);
        let header = (0..width).map(|i| format!("c{i}")).collect::<Vec<_>>().join(",");
        let mut text = header;
        for r in &rows {
            text.push('\n');
            text.push_str(&r.iter().map(|c| quote_csv_cell(c)).collect::<Vec<_>>().join(","));
        }
        prop_assert_eq!(
            tfd_csv::parse_value(&text).unwrap(),
            tfd_csv::parse(&text).unwrap().to_value()
        );
    }

    /// Ragged headerless rows: byte, reference and direct-value paths
    /// all agree (columns named `Column1..ColumnN` from the widest row).
    #[test]
    fn csv_headerless_ragged_rows_agree(
        rows in prop::collection::vec(
            prop::collection::vec("[a-z 0-9]{0,6}", 0..4),
            0..5,
        )
    ) {
        let text = rows.iter().map(|r| r.join(",")).collect::<Vec<_>>().join("\n");
        let opts = tfd_csv::CsvOptions { has_header: false, ..tfd_csv::CsvOptions::default() };
        let lits = tfd_csv::LiteralOptions::default();
        let byte = tfd_csv::parse_with(&text, &opts).unwrap();
        prop_assert_eq!(&byte, &tfd_csv::reference::parse_with(&text, &opts).unwrap());
        prop_assert_eq!(
            tfd_csv::parse_value_with(&text, &opts, &lits).unwrap(),
            byte.to_value_with(&lits)
        );
    }

    /// Byte-level and reference XML parsers agree on arbitrary serialized
    /// trees, and the direct-to-Value path agrees with parse-then-encode.
    #[test]
    fn xml_byte_and_reference_agree(root in xml_element_strategy()) {
        let mut text = String::new();
        write_xml(&root, &mut text);
        let byte = tfd_xml::parse(&text).unwrap();
        let reference = tfd_xml::reference::parse(&text).unwrap();
        prop_assert_eq!(&byte, &reference);
        prop_assert_eq!(tfd_xml::parse_value(&text).unwrap(), byte.to_value());
    }
}

#[test]
fn csv_quoted_field_at_eof_agrees() {
    for text in [
        "a\n\"x\"",
        "a,b\n1,\"x\"",
        "a\n\"\"",
        "a\n\"x\ny\"",
        "a\n1,",
    ] {
        assert_eq!(
            tfd_csv::parse(text),
            tfd_csv::reference::parse(text),
            "disagreement on {text:?}"
        );
    }
}

#[test]
fn csv_utf8_headers_and_cells_agree() {
    let text = "sloupec,météo\nžluťoučký,🌧\n\"žluťoučký\",\"🌧,🌧\"\n";
    let byte = tfd_csv::parse(text).unwrap();
    assert_eq!(byte, tfd_csv::reference::parse(text).unwrap());
    assert_eq!(byte.headers(), &["sloupec", "météo"]);
    assert_eq!(tfd_csv::parse_value(text).unwrap(), byte.to_value());
}

#[test]
fn xml_utf8_names_and_attribute_values_agree() {
    let text = "<čaj típ=\"zelený &amp; černý\"><položka>42</položka></čaj>";
    let byte = tfd_xml::parse(text).unwrap();
    assert_eq!(byte, tfd_xml::reference::parse(text).unwrap());
    assert_eq!(byte.name, "čaj");
    assert_eq!(byte.attribute("típ"), Some("zelený & černý"));
    assert_eq!(tfd_xml::parse_value(text).unwrap(), byte.to_value());
}

// --- Failure injection: every malformed input is rejected with an error,
// never a panic or a wrong document. ---

#[test]
fn json_malformed_corpus() {
    let bad = [
        "",
        "{",
        "}",
        "[",
        "]",
        "{]",
        "[}",
        "nul",
        "tru",
        "+1",
        "01",
        "1.",
        ".5",
        "1e",
        "--1",
        "\"",
        "\"\\q\"",
        "\"\\u12\"",
        "{\"a\"}",
        "{\"a\":}",
        "{a:1}",
        "[1,]",
        "{\"a\":1,}",
        "[1 2]",
        "{\"a\":1 \"b\":2}",
        "1 1",
        "\u{0}",
    ];
    for input in bad {
        assert!(
            tfd_json::parse(input).is_err(),
            "JSON parser accepted malformed input {input:?}"
        );
    }
}

#[test]
fn xml_malformed_corpus() {
    let bad = [
        "",
        "<",
        "<>",
        "<a",
        "<a>",
        "</a>",
        "<a></b>",
        "<a x></a>",
        "<a x=1/>",
        "<a x=\"1/>",
        "<a>&nope;</a>",
        "<a>&#xD800;</a>",
        "<a/><b/>",
        "text",
        "<a><!-- </a>",
        "<a><![CDATA[x</a>",
    ];
    for input in bad {
        assert!(
            tfd_xml::parse(input).is_err(),
            "XML parser accepted malformed input {input:?}"
        );
    }
}

#[test]
fn csv_malformed_corpus() {
    let bad = ["", "a\n\"unterminated", "a\n\"x\"y"];
    for input in bad {
        assert!(
            tfd_csv::parse(input).is_err(),
            "CSV parser accepted malformed input {input:?}"
        );
    }
}

#[test]
fn json_deep_nesting_is_rejected_not_overflowed() {
    let deep = "[".repeat(100_000) + &"]".repeat(100_000);
    assert!(tfd_json::parse(&deep).is_err());
    let deep_obj = "{\"a\":".repeat(50_000) + "1" + &"}".repeat(50_000);
    assert!(tfd_json::parse(&deep_obj).is_err());
}

#[test]
fn xml_deep_nesting_is_rejected_not_overflowed() {
    let deep = "<a>".repeat(100_000) + &"</a>".repeat(100_000);
    assert!(tfd_xml::parse(&deep).is_err());
}

#[test]
fn unicode_survives_all_three_parsers() {
    let json = tfd_json::parse("{\"č\": \"žluťoučký 😀\"}").unwrap();
    assert_eq!(json.get("č"), Some(&Json::String("žluťoučký 😀".into())));
    let xml = tfd_xml::parse("<č>žluťoučký &#x1F600;</č>").unwrap();
    assert_eq!(xml.text(), "žluťoučký 😀");
    let csv = tfd_csv::parse("sloupec\nžluťoučký\n").unwrap();
    assert_eq!(csv.rows()[0][0], "žluťoučký");
}

#[test]
fn large_flat_document_parses() {
    // A 10k-element array exercises the non-recursive paths.
    let text = format!(
        "[{}]",
        (0..10_000)
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join(",")
    );
    let doc = tfd_json::parse(&text).unwrap();
    assert_eq!(doc.items().unwrap().len(), 10_000);
    let value = doc.to_value();
    assert_eq!(value.elements().unwrap().len(), 10_000);
    // And infers in one pass:
    let shape = tfd_core::infer(&value);
    assert_eq!(shape, tfd_core::Shape::list(tfd_core::Shape::Int));
}
