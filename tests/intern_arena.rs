//! Adversarial-vocabulary regression suite for the scoped name arenas.
//!
//! The PR-8 interner redesign promises that a corpus's name vocabulary
//! lives in a per-corpus arena and is *reclaimed* when that arena
//! drops, instead of accumulating in a process-global table for the
//! life of the process. This suite drives a corpus with 100 000
//! distinct object keys through every engine driver — one-shot,
//! streaming, sharded `--jobs`, and the parallel reader — and asserts:
//!
//! - peak retained interner bytes stay bounded by one corpus's
//!   vocabulary (a fixed budget, not proportional to run count);
//! - dropping the corpus arena returns the process-wide figures to
//!   their pre-corpus baseline;
//! - k sequential corpora cost one corpus's arena, not k of them;
//! - the inferred shape, its rendering and its `analyze` fingerprint
//!   are byte-identical whether names intern into a scoped arena or
//!   the process-default one.

use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use tfd_core::analyze::fingerprint;
use tfd_core::engine::{infer_reader_parallel_in, infer_slice_in, JsonFormat};
use tfd_core::{infer_many, GlobalShape, InferOptions, Shape};
use tfd_value::{intern, Interner};

/// Distinct object keys in the adversarial corpus.
const KEYS: usize = 100_000;
/// Keys per record: 100 records of 1000 fresh keys each keeps the
/// record-shape joins linear-ish while still crossing [`KEYS`].
const KEYS_PER_RECORD: usize = 1_000;
/// Retained-bytes budget for one corpus's arena: vocabulary spellings
/// plus table/ownership overhead, with headroom for allocator rounding.
/// What matters is that it is a *constant*: k runs must not need k of
/// these.
const ARENA_BUDGET: usize = 24 << 20;

/// Process-wide interner figures are shared state; the assertions in
/// this suite only hold while no sibling test is interning.
fn stats_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// Triggers the process-global interning a driver run performs as a
/// side effect (lazy presets, `body_name`, the format witnesses' fixed
/// labels) with a tiny corpus, so the baselines below only move if a
/// *corpus* name leaks out of its scoped arena.
fn warmup_globals() {
    let warmup = Interner::new();
    let one = br#"{"warm": 1}"#;
    let _ = infer_slice_in::<JsonFormat>(one, &InferOptions::json(), 2, &warmup);
    let _ = infer_reader_parallel_in::<JsonFormat, _>(
        &one[..],
        &InferOptions::json(),
        4096,
        2,
        &warmup,
    );
    let _ = tfd_json::parse_many_values_in(
        "{\"warm\": 1}",
        &tfd_json::ParserOptions::default(),
        &warmup,
    );
}

/// 100 JSONL records × 1000 distinct keys: 100 000+ distinct names, no
/// key ever repeated across records. Each record nests its fresh keys
/// under a per-record group key, so the interner takes the full
/// adversarial vocabulary while the shape fold's record joins stay
/// cheap (disjoint top-level fields never merge nested records).
fn corpus() -> &'static str {
    static CORPUS: OnceLock<String> = OnceLock::new();
    CORPUS.get_or_init(|| {
        let mut out = String::new();
        for r in 0..(KEYS / KEYS_PER_RECORD) {
            out.push_str(&format!("{{\"g{r}\": {{"));
            for c in 0..KEYS_PER_RECORD {
                if c > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"k{r}_{c}\": {c}"));
            }
            out.push_str("}}\n");
        }
        out
    })
}

/// The raw vocabulary: the summed spelling lengths of every distinct
/// key. The honest per-arena estimate can never be below this.
fn vocabulary_bytes() -> usize {
    (0..(KEYS / KEYS_PER_RECORD))
        .flat_map(|r| {
            std::iter::once(format!("g{r}").len())
                .chain((0..KEYS_PER_RECORD).map(move |c| format!("k{r}_{c}").len()))
        })
        .sum()
}

/// Runs `drive` against a fresh corpus arena and asserts the peak /
/// reclaim contract around it. Returns the shape rendering so callers
/// can compare drivers against each other.
fn assert_bounded<Drive>(label: &str, drive: Drive) -> String
where
    Drive: Fn(&Interner) -> (Shape, usize),
{
    let _guard = stats_lock();
    warmup_globals();
    let baseline = intern::stats();

    let arena = Interner::new();
    let (shape, records) = drive(&arena);
    assert_eq!(records, KEYS / KEYS_PER_RECORD, "{label}: record count");
    let peak = arena.stats();
    assert!(
        peak.symbols >= KEYS,
        "{label}: expected >= {KEYS} distinct names in the corpus arena, got {}",
        peak.symbols
    );
    assert!(
        peak.retained_bytes >= vocabulary_bytes(),
        "{label}: honest estimate {} can't be below the raw vocabulary {}",
        peak.retained_bytes,
        vocabulary_bytes()
    );
    assert!(
        peak.retained_bytes <= ARENA_BUDGET,
        "{label}: corpus arena retains {} bytes, over the {} budget",
        peak.retained_bytes,
        ARENA_BUDGET
    );
    let rendered = format!("{shape}");
    drop(shape);
    drop(arena);

    let after = intern::stats();
    assert_eq!(
        after.symbols, baseline.symbols,
        "{label}: corpus names outlived their arena"
    );
    assert_eq!(
        after.retained_bytes, baseline.retained_bytes,
        "{label}: retained bytes did not return to baseline after the arena dropped"
    );
    assert_eq!(after.arenas, baseline.arenas, "{label}: arena leaked");
    rendered
}

#[test]
fn one_shot_driver_bounds_peak_interner_bytes() {
    assert_bounded("one-shot", |interner| {
        let values =
            tfd_json::parse_many_values_in(corpus(), &tfd_json::ParserOptions::default(), interner)
                .expect("adversarial corpus parses");
        let shape = infer_many(&values, &InferOptions::json());
        let records = values.len();
        (shape, records)
    });
}

#[test]
fn streaming_driver_bounds_peak_interner_bytes() {
    assert_bounded("streaming", |interner| {
        let summary = infer_reader_parallel_in::<JsonFormat, _>(
            corpus().as_bytes(),
            &InferOptions::json(),
            4096,
            1,
            interner,
        )
        .expect("adversarial corpus streams");
        (summary.shape, summary.records)
    });
}

#[test]
fn sharded_driver_bounds_peak_interner_bytes() {
    assert_bounded("sharded", |interner| {
        let summary =
            infer_slice_in::<JsonFormat>(corpus().as_bytes(), &InferOptions::json(), 4, interner)
                .expect("adversarial corpus shards");
        (summary.shape, summary.records)
    });
}

#[test]
fn reader_driver_bounds_peak_interner_bytes() {
    assert_bounded("reader", |interner| {
        let summary = infer_reader_parallel_in::<JsonFormat, _>(
            corpus().as_bytes(),
            &InferOptions::json(),
            4096,
            4,
            interner,
        )
        .expect("adversarial corpus reads");
        (summary.shape, summary.records)
    });
}

#[test]
fn sequential_corpora_cost_one_arena_not_k() {
    let _guard = stats_lock();
    let options = InferOptions::json();
    warmup_globals();
    let baseline = intern::stats();
    let mut peaks = Vec::new();
    for _ in 0..3 {
        let arena = Interner::new();
        let summary = infer_slice_in::<JsonFormat>(corpus().as_bytes(), &options, 2, &arena)
            .expect("adversarial corpus shards");
        peaks.push(arena.stats().retained_bytes);
        drop(summary);
        drop(arena);
        let between = intern::stats();
        // After *every* corpus the process is back to baseline: total
        // footprint over k corpora is one arena at a time, never k.
        assert_eq!(between.retained_bytes, baseline.retained_bytes);
        assert_eq!(between.arenas, baseline.arenas);
    }
    assert!(
        peaks.iter().all(|&p| p == peaks[0]),
        "peaks vary: {peaks:?}"
    );
}

#[test]
fn drivers_agree_and_match_the_global_arena_byte_for_byte() {
    let options = InferOptions::json();
    let arena = Interner::new();
    let scoped =
        infer_slice_in::<JsonFormat>(corpus().as_bytes(), &options, 4, &arena).expect("scoped run");
    let global = tfd_core::engine::infer_slice::<JsonFormat>(corpus().as_bytes(), &options, 4)
        .expect("global run");
    assert_eq!(scoped.records, global.records);
    // Cross-arena Name equality is content equality, so the shapes
    // compare equal and render identically.
    assert_eq!(scoped.shape, global.shape);
    assert_eq!(format!("{}", scoped.shape), format!("{}", global.shape));
}

#[test]
fn fingerprint_is_arena_stable() {
    let corpus = br#"{"user": {"name": "jan", "tags": ["a"]}, "id": 7}
{"user": {"name": "eva", "tags": []}, "id": 9}
"#;
    let options = InferOptions::json();
    let arena_a = Interner::new();
    let arena_b = Interner::new();
    let a = infer_slice_in::<JsonFormat>(corpus, &options, 1, &arena_a).expect("arena A");
    let b = infer_slice_in::<JsonFormat>(corpus, &options, 3, &arena_b).expect("arena B");
    let g = tfd_core::engine::infer_slice::<JsonFormat>(corpus, &options, 1).expect("global");
    let fp = |s: Shape| fingerprint(&GlobalShape::plain(s));
    let (fa, fb, fg) = (fp(a.shape), fp(b.shape), fp(g.shape));
    assert_eq!(fa, fb, "fingerprint differs between two scoped arenas");
    assert_eq!(
        fa, fg,
        "fingerprint differs between scoped and global arenas"
    );
}
