//! Order-theoretic laws of the shape algebra (Definition 1, Lemma 1).
//!
//! Property-tested on shapes inferred from randomly generated documents
//! (the shapes that actually arise in the system — ground shapes in the
//! paper's sense):
//!
//! * `⊑` is a partial order: reflexive, transitive, antisymmetric;
//! * `csh` is an upper bound of its arguments (Lemma 1's first half);
//! * `csh` is a *least* upper bound: below every competing upper bound
//!   drawn from the generated population (Lemma 1's second half,
//!   approximated over the sample);
//! * `csh` is commutative, idempotent and associative;
//! * inference is monotone: `S(dᵢ) ⊑ S(d1, …, dn)`;
//! * `⊑` and `hasShape` cohere: `S(d) ⊑ σ` implies `conforms(σ, d)`.

mod common;

use common::value_strategy;
use proptest::prelude::*;
use tfd_core::{conforms, csh_ref, infer_many, infer_with, is_preferred, InferOptions, Shape};

fn shape_of(d: &tfd_value::Value) -> Shape {
    infer_with(d, &InferOptions::formal())
}

/// Replaces every labelled top with the plain `any` (footnote 6).
fn erase_labels(shape: &Shape) -> Shape {
    match shape {
        Shape::Top(_) => Shape::any(),
        Shape::Record(r) => Shape::record(
            r.name,
            r.fields.iter().map(|f| (f.name, erase_labels(&f.shape))),
        ),
        Shape::Nullable(inner) => erase_labels(inner).ceil(),
        Shape::List(e) => Shape::list(erase_labels(e)),
        Shape::HeteroList(cases) => {
            Shape::HeteroList(cases.iter().map(|(s, m)| (erase_labels(s), *m)).collect())
        }
        other => other.clone(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn preference_is_reflexive(d in value_strategy()) {
        let s = shape_of(&d);
        prop_assert!(is_preferred(&s, &s), "{s} not ⊑ itself");
    }

    #[test]
    fn preference_is_transitive(
        a in value_strategy(),
        b in value_strategy(),
        c in value_strategy(),
    ) {
        // Construct a guaranteed chain via csh: a ⊑ a⊔b ⊑ (a⊔b)⊔c.
        let sa = shape_of(&a);
        let sab = csh_ref(&sa, &shape_of(&b));
        let sabc = csh_ref(&sab, &shape_of(&c));
        prop_assert!(is_preferred(&sa, &sab));
        prop_assert!(is_preferred(&sab, &sabc));
        prop_assert!(is_preferred(&sa, &sabc), "transitivity failed: {sa} ⋢ {sabc}");
    }

    /// Antisymmetry holds *semantically*: with the row-variable reading
    /// of the record rules (a missing field reads as null) and footnote
    /// 6's label-blind tops, `⊑` is a preorder whose equivalence classes
    /// are "shapes admitting the same data values". Mutually preferred
    /// shapes must therefore accept exactly the same conforming values.
    #[test]
    fn mutual_preference_implies_same_conforming_values(
        a in value_strategy(),
        b in value_strategy(),
        seed in any::<u64>(),
    ) {
        let sa = shape_of(&a);
        let sb = shape_of(&b);
        if is_preferred(&sa, &sb) && is_preferred(&sb, &sa) {
            let mut rng = tfd_value::corpus::Rng::new(seed);
            for _ in 0..8 {
                let va = common::conforming(&sa, &mut rng);
                prop_assert!(
                    conforms(&sb, &va),
                    "{sa} ≡ {sb} but {va} conforms only to the first"
                );
                let vb = common::conforming(&sb, &mut rng);
                prop_assert!(
                    conforms(&sa, &vb),
                    "{sa} ≡ {sb} but {vb} conforms only to the second"
                );
            }
        }
    }

    #[test]
    fn csh_is_upper_bound(a in value_strategy(), b in value_strategy()) {
        let sa = shape_of(&a);
        let sb = shape_of(&b);
        let j = csh_ref(&sa, &sb);
        prop_assert!(is_preferred(&sa, &j), "{sa} ⋢ csh = {j}");
        prop_assert!(is_preferred(&sb, &j), "{sb} ⋢ csh = {j}");
    }

    #[test]
    fn csh_is_least_among_generated_upper_bounds(
        a in value_strategy(),
        b in value_strategy(),
        candidates in prop::collection::vec(value_strategy(), 1..4),
    ) {
        // Lemma 1: csh(a, b) is below every upper bound. We check against
        // upper bounds constructible from the generated population by
        // joining in more shapes.
        let sa = shape_of(&a);
        let sb = shape_of(&b);
        let j = csh_ref(&sa, &sb);
        for c in &candidates {
            let upper = csh_ref(&j, &shape_of(c));
            // `upper` is an upper bound of both a and b...
            prop_assert!(is_preferred(&sa, &upper));
            prop_assert!(is_preferred(&sb, &upper));
            // ...and the lub is below it.
            prop_assert!(
                is_preferred(&j, &upper),
                "csh({sa}, {sb}) = {j} ⋢ upper bound {upper}"
            );
        }
    }

    #[test]
    fn csh_is_commutative(a in value_strategy(), b in value_strategy()) {
        let sa = shape_of(&a);
        let sb = shape_of(&b);
        prop_assert_eq!(csh_ref(&sa, &sb), csh_ref(&sb, &sa));
    }

    #[test]
    fn csh_is_idempotent(a in value_strategy()) {
        let sa = shape_of(&a);
        prop_assert_eq!(csh_ref(&sa, &sa), sa.clone());
        // And absorbing with its own join:
        let j = csh_ref(&sa, &sa);
        prop_assert_eq!(csh_ref(&j, &sa), j);
    }

    #[test]
    fn csh_is_associative(
        a in value_strategy(),
        b in value_strategy(),
        c in value_strategy(),
    ) {
        let (sa, sb, sc) = (shape_of(&a), shape_of(&b), shape_of(&c));
        let left = csh_ref(&csh_ref(&sa, &sb), &sc);
        let right = csh_ref(&sa, &csh_ref(&sb, &sc));
        prop_assert_eq!(left, right);
    }

    #[test]
    fn inference_is_monotone_in_samples(
        samples in prop::collection::vec(value_strategy(), 1..5),
    ) {
        let joined = infer_many(&samples, &InferOptions::formal());
        for d in &samples {
            prop_assert!(
                is_preferred(&shape_of(d), &joined),
                "S({d}) ⋢ S(samples) = {joined}"
            );
        }
        // Adding a sample only generalizes (the stability precondition):
        let mut extended = samples.clone();
        extended.push(samples[0].clone());
        let joined2 = infer_many(&extended, &InferOptions::formal());
        prop_assert!(is_preferred(&joined, &joined2));
    }

    #[test]
    fn preference_implies_conformance(d in value_strategy(), sample in value_strategy()) {
        let shape = shape_of(&sample);
        if is_preferred(&shape_of(&d), &shape) {
            prop_assert!(
                conforms(&shape, &d),
                "S({d}) ⊑ {shape} but hasShape rejects the value"
            );
        }
    }

    #[test]
    fn bottom_and_top_are_extremes(d in value_strategy()) {
        let s = shape_of(&d);
        prop_assert!(is_preferred(&Shape::Bottom, &s));
        prop_assert!(is_preferred(&s, &Shape::any()));
        prop_assert_eq!(csh_ref(&s, &Shape::Bottom), s.clone());
        prop_assert!(csh_ref(&s, &Shape::any()).is_top());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Footnote 6: erasing top labels never changes the relation.
    #[test]
    fn labels_do_not_affect_preference(a in value_strategy(), b in value_strategy()) {
        let sa = shape_of(&a);
        let sb = shape_of(&b);
        prop_assert_eq!(
            is_preferred(&sa, &sb),
            is_preferred(&erase_labels(&sa), &erase_labels(&sb))
        );
    }
}

// --- μ-shapes: the algebra laws under a shape environment ---
//
// Generated μ-shapes are canonical by construction: records in the root
// use non-environment names, and environment names only ever appear as
// `Shape::Ref`s — exactly the form `globalize_env` produces.

const MU_NAMES: &[&str] = &["n0", "n1", "n2"];
const MU_FIELDS: &[&str] = &["a", "b", "c", "d"];

/// A leaf for μ-shape generation: primitives and references into the
/// three-name environment.
fn mu_leaf() -> impl Strategy<Value = Shape> {
    prop_oneof![
        Just(Shape::Int),
        Just(Shape::Float),
        Just(Shape::Bool),
        Just(Shape::String),
        prop::sample::select(MU_NAMES).prop_map(|n| Shape::Ref(n.into())),
    ]
}

/// A canonical shape over the μ-environment: leaves, nullable leaves,
/// collections and non-environment records.
fn mu_shape() -> impl Strategy<Value = Shape> {
    let wrapped = prop_oneof![
        mu_leaf(),
        mu_leaf().prop_map(Shape::ceil),
        mu_leaf().prop_map(Shape::list),
    ];
    prop_oneof![
        wrapped.clone(),
        (
            prop::sample::select(&["r", "q"][..]),
            prop::collection::vec((prop::sample::select(MU_FIELDS), wrapped), 0..3),
        )
            .prop_map(|(name, fields)| {
                let mut seen: Vec<&str> = Vec::new();
                Shape::record(
                    name,
                    fields.into_iter().filter(|(n, _)| {
                        if seen.contains(n) {
                            false
                        } else {
                            seen.push(n);
                            true
                        }
                    }),
                )
            }),
    ]
}

/// A definitions table for [`MU_NAMES`]: every name defined, bodies
/// drawn from the canonical μ-shape strategy (so definitions reference
/// each other and themselves — mutual recursion included).
fn mu_env() -> impl Strategy<Value = tfd_core::ShapeEnv> {
    let body = prop::collection::vec((prop::sample::select(MU_FIELDS), mu_shape()), 0..3);
    prop::collection::vec(body, MU_NAMES.len()..MU_NAMES.len() + 1).prop_map(|bodies| {
        tfd_core::ShapeEnv::from_defs(MU_NAMES.iter().zip(bodies).map(|(name, fields)| {
            let mut seen: Vec<&str> = Vec::new();
            (
                (*name).into(),
                tfd_core::RecordShape::new(
                    *name,
                    fields.into_iter().filter(|(n, _)| {
                        if seen.contains(n) {
                            false
                        } else {
                            seen.push(n);
                            true
                        }
                    }),
                ),
            )
        }))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `csh(σ, σ) == σ` over generated μ-shapes, env-aware: the
    /// idempotence law survives the μ-extension, and a self-join never
    /// widens the definitions table.
    #[test]
    fn mu_csh_is_idempotent(env in mu_env(), s in mu_shape()) {
        let mut e = env.clone();
        let joined = tfd_core::csh_in(s.clone(), s.clone(), &mut e);
        prop_assert_eq!(&joined, &s, "csh(σ, σ) must equal σ");
        prop_assert_eq!(&e, &env, "a self-join must not widen the env");
    }

    /// `⊑` stays reflexive on μ-shapes (coinductive unfolding included).
    #[test]
    fn mu_preference_is_reflexive(env in mu_env(), s in mu_shape()) {
        prop_assert!(
            tfd_core::is_preferred_in(&s, &s, Some(&env)),
            "{} not ⊑ itself under its env", s
        );
    }

    /// Lemma 1's upper-bound half over μ-shapes: both arguments are
    /// preferred over their env-aware join.
    #[test]
    fn mu_csh_is_an_upper_bound(env in mu_env(), a in mu_shape(), b in mu_shape()) {
        let mut e = env.clone();
        let joined = tfd_core::csh_in(a.clone(), b.clone(), &mut e);
        prop_assert!(
            tfd_core::is_preferred_in(&a, &joined, Some(&e)),
            "{} ⋢ csh = {}", a, joined
        );
        prop_assert!(
            tfd_core::is_preferred_in(&b, &joined, Some(&e)),
            "{} ⋢ csh = {}", b, joined
        );
    }

    /// The env-aware join commutes on the nose, like the plain one.
    #[test]
    fn mu_csh_commutes(env in mu_env(), a in mu_shape(), b in mu_shape()) {
        let mut e1 = env.clone();
        let mut e2 = env.clone();
        prop_assert_eq!(
            tfd_core::csh_in(a.clone(), b.clone(), &mut e1),
            tfd_core::csh_in(b, a, &mut e2),
            "csh_in not commutative"
        );
        prop_assert_eq!(&e1, &e2, "env widening must be argument-order independent");
    }
}

#[test]
fn figure1_hasse_diagram_edges() {
    // The explicit edges of Fig. 1, bottom part (non-nullable shapes) and
    // top part (nullable shapes), checked one by one.
    use Shape::*;
    let record = Shape::record("P", [("x", Int)]);
    let edges: Vec<(Shape, Shape)> = vec![
        (Bottom, Int),
        (Bottom, Bool),
        (Bottom, String),
        (Bottom, record.clone()),
        (Int, Float),
        (Bottom, Null),
        (Null, Int.ceil()),
        (Null, Float.ceil()),
        (Null, Bool.ceil()),
        (Null, String.ceil()),
        (Null, record.clone().ceil()),
        (Null, Shape::list(Int)),
        (Int, Int.ceil()),
        (Float, Float.ceil()),
        (Bool, Bool.ceil()),
        (String, String.ceil()),
        (record.clone(), record.clone().ceil()),
        (Int.ceil(), Float.ceil()),
        (Int.ceil(), Shape::any()),
        (Shape::list(Int), Shape::any()),
        (String.ceil(), Shape::any()),
    ];
    for (lo, hi) in &edges {
        assert!(is_preferred(lo, hi), "Fig. 1 edge {lo} ⊑ {hi} missing");
    }
    // And some non-edges that the diagram implies:
    let non_edges: Vec<(Shape, Shape)> = vec![
        (Float, Int),
        (String, Int),
        (Bool, Int),
        (Int.ceil(), Int),
        (Shape::any(), Int.ceil()),
        (Shape::list(Int), Int.ceil()),
        (record.clone(), String),
        (Null, Int),
        (Null, record),
    ];
    for (a, b) in &non_edges {
        assert!(!is_preferred(a, b), "unexpected edge {a} ⊑ {b}");
    }
}
