//! Streaming-vs-batch differential suite.
//!
//! The chunk-fed front-ends (`tfd_json::stream`, `tfd_xml::stream`,
//! `tfd_csv::stream`) promise to be *observationally identical* to the
//! one-shot byte parsers, no matter where chunk boundaries fall: the
//! same `Value` sequence, the same final `Shape` through the
//! `InferAccumulator` fold, and — for malformed input — the same error
//! kind at the same line/char-correct column. This suite drives that
//! promise with generated corpora under adversarial chunkings (1-byte
//! feeds, splits inside multi-byte UTF-8 sequences, escapes, CRLF pairs
//! and quoted CSV fields), plus mutation-based error agreement and the
//! named regressions the differential work shook out.

mod common;

use common::value_strategy;
use proptest::prelude::*;
use std::fmt::Write as _;
use tfd_core::stream::{infer_reader, InferAccumulator, StreamFormat};
use tfd_core::{globalize, infer_many, infer_with, InferOptions, Shape};
use tfd_value::Value;

// --- Chunked drivers: feed `text` split into pieces whose sizes cycle
// --- through `sizes` (so a generated size vector exercises many split
// --- positions), then finish.

fn stream_json(text: &str, sizes: &[usize]) -> Result<Vec<Value>, tfd_json::ParseError> {
    let bytes = text.as_bytes();
    let mut s = tfd_json::stream::Streamer::new();
    let mut out = Vec::new();
    let (mut pos, mut k) = (0usize, 0usize);
    while pos < bytes.len() {
        let step = sizes.get(k % sizes.len()).copied().unwrap_or(1).max(1);
        k += 1;
        let end = (pos + step).min(bytes.len());
        s.feed(&bytes[pos..end], &mut |v| out.push(v))?;
        pos = end;
    }
    s.finish(&mut |v| out.push(v))?;
    Ok(out)
}

fn stream_xml(text: &str, sizes: &[usize]) -> Result<Vec<Value>, tfd_xml::XmlError> {
    let bytes = text.as_bytes();
    let mut s = tfd_xml::stream::Streamer::new();
    let mut out = Vec::new();
    let (mut pos, mut k) = (0usize, 0usize);
    while pos < bytes.len() {
        let step = sizes.get(k % sizes.len()).copied().unwrap_or(1).max(1);
        k += 1;
        let end = (pos + step).min(bytes.len());
        s.feed(&bytes[pos..end], &mut |v| out.push(v))?;
        pos = end;
    }
    s.finish(&mut |v| out.push(v))?;
    Ok(out)
}

fn stream_csv(text: &str, sizes: &[usize]) -> Result<Vec<Value>, tfd_csv::CsvError> {
    let bytes = text.as_bytes();
    let mut s = tfd_csv::stream::Streamer::new();
    let mut out = Vec::new();
    let (mut pos, mut k) = (0usize, 0usize);
    while pos < bytes.len() {
        let step = sizes.get(k % sizes.len()).copied().unwrap_or(1).max(1);
        k += 1;
        let end = (pos + step).min(bytes.len());
        s.feed(&bytes[pos..end], &mut |v| out.push(v))?;
        pos = end;
    }
    s.finish(&mut |v| out.push(v))?;
    Ok(out)
}

/// Folds records through the incremental `σi = csh(σi−1, S(di))`.
fn fold_shape(records: &[Value], options: &InferOptions) -> Shape {
    let mut acc = InferAccumulator::new(options.clone());
    for r in records {
        acc.push(r);
    }
    acc.finish()
}

/// Replaces the char at (position % len) with `c`, staying valid UTF-8.
fn mutate(text: &str, position: usize, c: char) -> String {
    if text.is_empty() {
        return c.to_string();
    }
    let chars: Vec<char> = text.chars().collect();
    let at = position % chars.len();
    chars
        .iter()
        .enumerate()
        .map(|(i, &orig)| if i == at { c } else { orig })
        .collect()
}

/// Truncates to the first (length % (chars+1)) characters.
fn truncate(text: &str, length: usize) -> String {
    let chars: Vec<char> = text.chars().collect();
    chars[..length % (chars.len() + 1)].iter().collect()
}

// --- JSON ---

/// A document whose serialization exercises escapes, raw multi-byte
/// UTF-8 and control-character escapes — appended to every generated
/// JSON corpus so chunk splits land inside `\"`-escapes and mid-char.
fn nasty_json_doc() -> Value {
    Value::record(
        tfd_value::BODY_NAME,
        [
            ("esc", Value::str("a\"b\\c\nd\te\u{7}")),
            ("utf", Value::str("čaj 😀 日本語")),
            ("num", Value::Float(-2.5e-3)),
        ],
    )
}

fn json_corpus_text(docs: &[Value], seps: &[&str]) -> String {
    let mut text = String::new();
    for (i, d) in docs.iter().enumerate() {
        text.push_str(&tfd_json::to_json_string(&tfd_json::Json::from_value(d)));
        text.push_str(seps.get(i % seps.len().max(1)).copied().unwrap_or(" "));
    }
    text
}

// Separators for valid corpora are non-empty: two adjacent keyword or
// number documents would otherwise fuse into one (or invalid) token. The
// mutation property additionally uses "" — self-delimiting documents may
// legally abut, and for the rest only *agreement* matters there.
const JSON_SEPS: &[&str] = &[" ", "\n", "\t\r\n "];
const JSON_SEPS_ALL: &[&str] = &[" ", "\n", "\t\r\n ", ""];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Values and shapes agree with `parse_many_values` under arbitrary
    /// chunk splits, 1-byte feeds included.
    #[test]
    fn json_streaming_agrees_on_valid_corpora(
        docs in prop::collection::vec(value_strategy(), 0..5),
        seps in prop::collection::vec(prop::sample::select(JSON_SEPS), 1..4),
        sizes in prop::collection::vec(1usize..9, 1..5),
    ) {
        let mut docs = docs;
        docs.push(nasty_json_doc());
        let text = json_corpus_text(&docs, &seps);
        let oneshot = tfd_json::parse_many_values(&text).expect("generated corpus is valid");
        let streamed = stream_json(&text, &sizes).expect("streaming must accept valid corpora");
        prop_assert_eq!(&streamed, &oneshot);
        // And with straight 1-byte feeds:
        prop_assert_eq!(&stream_json(&text, &[1]).unwrap(), &oneshot);
        // The incremental fold equals the batch fold.
        let opts = InferOptions::json();
        prop_assert_eq!(fold_shape(&streamed, &opts), infer_many(&oneshot, &opts));
    }

    /// Mutated (usually invalid) corpora: the streaming outcome —
    /// values, or error kind *and* position — is identical to the
    /// one-shot outcome wherever the chunks fall.
    #[test]
    fn json_error_agreement_under_mutation(
        docs in prop::collection::vec(value_strategy(), 1..4),
        seps in prop::collection::vec(prop::sample::select(JSON_SEPS_ALL), 1..3),
        sizes in prop::collection::vec(1usize..7, 1..5),
        position in 0usize..500,
        c in prop::sample::select(&['@', '"', '{', '}', ']', ',', 'x', '0', '\\', 'é'][..]),
        cut in 0usize..500,
        do_truncate in proptest::strategy::any::<bool>(),
    ) {
        let mut docs = docs;
        docs.push(nasty_json_doc());
        let base = json_corpus_text(&docs, &seps);
        let text = if do_truncate { truncate(&base, cut) } else { mutate(&base, position, c) };
        let oneshot = tfd_json::parse_many_values(&text);
        let streamed = stream_json(&text, &sizes);
        match (&oneshot, &streamed) {
            // Mutation may create duplicate object keys, whose records
            // compare unequal even to themselves; compare the rendering.
            (Ok(a), Ok(b)) => prop_assert_eq!(format!("{a:?}"), format!("{b:?}")),
            _ => prop_assert_eq!(&streamed, &oneshot),
        }
    }
}

// --- XML ---

const XML_NAMES: &[&str] = &["a", "item", "ns:tag", "čaj", "x-1"];
const XML_SEPS: &[&str] = &[" ", "\n", "", "<!-- gap -->", "<?pi data?>", "\r\n"];

fn xml_attrs() -> SFn<String> {
    prop::collection::vec("[a-z 0-9é]{0,4}", 0..3)
        .prop_map(|vals| {
            vals.into_iter()
                .enumerate()
                .map(|(i, v)| format!(" at{i}=\"{v}\""))
                .collect::<String>()
        })
        .boxed()
}

fn xml_content_piece() -> SFn<String> {
    prop_oneof![
        "[a-z 0-9éž]{0,6}",
        Just("&amp;".to_owned()),
        Just("&#x41;".to_owned()),
        Just("&quot;".to_owned()),
        Just("<![CDATA[ <raw> & ]]>".to_owned()),
        Just("<!-- note -->".to_owned()),
    ]
}

fn xml_doc_strategy() -> SFn<String> {
    let attrs = xml_attrs();
    let leaf_attrs = attrs.clone();
    let leaf = (
        prop::sample::select(XML_NAMES),
        leaf_attrs,
        xml_content_piece(),
    )
        .prop_map(|(n, a, t)| {
            if t.is_empty() {
                format!("<{n}{a}/>")
            } else {
                format!("<{n}{a}>{t}</{n}>")
            }
        });
    leaf.prop_recursive(3, 12, 3, move |inner| {
        let kids = prop::collection::vec(prop_oneof![xml_content_piece(), inner], 0..3);
        (prop::sample::select(XML_NAMES), attrs.clone(), kids)
            .prop_map(|(n, a, kids)| format!("<{n}{a}>{}</{n}>", kids.concat()))
    })
}

fn xml_corpus_text(prolog: bool, docs: &[String], seps: &[&str]) -> String {
    let mut text = String::new();
    if prolog {
        text.push_str(
            "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<!DOCTYPE a [<!ELEMENT a ANY>]>\n",
        );
    }
    for (i, d) in docs.iter().enumerate() {
        text.push_str(d);
        text.push_str(seps.get(i % seps.len().max(1)).copied().unwrap_or(" "));
    }
    text
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Values and shapes agree with `parse_many_values` under arbitrary
    /// chunk splits — including splits inside entities, CDATA/comment
    /// terminators and multi-byte tag names.
    #[test]
    fn xml_streaming_agrees_on_valid_corpora(
        prolog in proptest::strategy::any::<bool>(),
        docs in prop::collection::vec(xml_doc_strategy(), 0..4),
        seps in prop::collection::vec(prop::sample::select(XML_SEPS), 1..4),
        sizes in prop::collection::vec(1usize..9, 1..5),
    ) {
        let text = xml_corpus_text(prolog, &docs, &seps);
        let oneshot = tfd_xml::parse_many_values(&text).expect("generated corpus is valid");
        let streamed = stream_xml(&text, &sizes).expect("streaming must accept valid corpora");
        prop_assert_eq!(&streamed, &oneshot);
        prop_assert_eq!(&stream_xml(&text, &[1]).unwrap(), &oneshot);
        let opts = InferOptions::xml();
        prop_assert_eq!(fold_shape(&streamed, &opts), infer_many(&oneshot, &opts));
    }

    /// Mutated/truncated XML: identical outcomes — error kind, line and
    /// char-correct column — under arbitrary chunking.
    #[test]
    fn xml_error_agreement_under_mutation(
        docs in prop::collection::vec(xml_doc_strategy(), 1..3),
        seps in prop::collection::vec(prop::sample::select(XML_SEPS), 1..3),
        sizes in prop::collection::vec(1usize..7, 1..5),
        position in 0usize..500,
        c in prop::sample::select(&['<', '>', '&', ';', '@', '/', '"', 'é'][..]),
        cut in 0usize..500,
        do_truncate in proptest::strategy::any::<bool>(),
    ) {
        let base = xml_corpus_text(false, &docs, &seps);
        let text = if do_truncate { truncate(&base, cut) } else { mutate(&base, position, c) };
        let oneshot = tfd_xml::parse_many_values(&text);
        let streamed = stream_xml(&text, &sizes);
        match (&oneshot, &streamed) {
            (Ok(a), Ok(b)) => prop_assert_eq!(format!("{a:?}"), format!("{b:?}")),
            _ => prop_assert_eq!(&streamed, &oneshot),
        }
    }
}

// --- CSV ---

fn csv_cell() -> SFn<String> {
    prop_oneof![
        "[a-z0-9]{0,4}",
        Just("#N/A".to_owned()),
        Just("42".to_owned()),
        Just("2.5".to_owned()),
        Just("2012-05-01".to_owned()),
        Just("1".to_owned()),
        // Quoted cells with embedded delimiters, quotes, line endings
        // and multi-byte characters.
        "[a-z,\"\n\réž ]{0,6}".prop_map(|c| format!("\"{}\"", c.replace('"', "\"\""))),
    ]
}

fn csv_corpus_text(rows: &[Vec<String>], endings: &[&str], final_ending: bool) -> String {
    let mut text = String::from("h1,h2,h3");
    text.push_str(endings.first().copied().unwrap_or("\n"));
    for (i, row) in rows.iter().enumerate() {
        text.push_str(&row.join(","));
        if i + 1 < rows.len() || final_ending {
            text.push_str(
                endings
                    .get(i % endings.len().max(1))
                    .copied()
                    .unwrap_or("\n"),
            );
        }
    }
    text
}

const CSV_ENDINGS: &[&str] = &["\n", "\r\n", "\r"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Rows and shapes agree with the one-shot `parse_value` under
    /// arbitrary chunk splits — including splits inside `""` escapes,
    /// CRLF pairs, quoted fields and multi-byte cell characters.
    #[test]
    fn csv_streaming_agrees_on_valid_corpora(
        rows in prop::collection::vec(prop::collection::vec(csv_cell(), 0..5), 0..5),
        endings in prop::collection::vec(prop::sample::select(CSV_ENDINGS), 1..4),
        final_ending in proptest::strategy::any::<bool>(),
        sizes in prop::collection::vec(1usize..9, 1..5),
    ) {
        let text = csv_corpus_text(&rows, &endings, final_ending);
        let oneshot = match tfd_csv::parse_value(&text).expect("generated corpus is valid") {
            Value::List(rows) => rows,
            other => panic!("expected row list, got {other}"),
        };
        let streamed = stream_csv(&text, &sizes).expect("streaming must accept valid corpora");
        prop_assert_eq!(&streamed, &oneshot);
        prop_assert_eq!(&stream_csv(&text, &[1]).unwrap(), &oneshot);
        // list(incremental fold) == one-shot collection inference.
        let opts = InferOptions::csv();
        prop_assert_eq!(
            Shape::list(fold_shape(&streamed, &opts)),
            infer_with(&Value::List(oneshot), &opts)
        );
    }

    /// Headerless ragged corpora: the streamer names columns from one
    /// per-corpus interned table (not per row), so the incremental fold
    /// reaches exactly the one-shot shape even though the one-shot path
    /// pads short rows to the corpus-global width and the streamer does
    /// not — a missing field and an explicit null both make the field
    /// nullable. (Satellite regression for the divergence PR 3
    /// documented.)
    #[test]
    fn csv_headerless_streaming_shape_agrees(
        rows in prop::collection::vec(prop::collection::vec(csv_cell(), 1..5), 1..6),
        sizes in prop::collection::vec(1usize..9, 1..5),
    ) {
        let opts = tfd_csv::CsvOptions { has_header: false, ..Default::default() };
        let lits = tfd_csv::literal::LiteralOptions::default();
        let text: String = rows.iter().map(|r| format!("{}\n", r.join(","))).collect();
        let oneshot = tfd_csv::parse_value_with(&text, &opts, &lits).expect("valid corpus");

        let bytes = text.as_bytes();
        let mut s = tfd_csv::stream::Streamer::with_options(&opts, &lits);
        let mut streamed = Vec::new();
        let (mut pos, mut k) = (0usize, 0usize);
        while pos < bytes.len() {
            let step = sizes.get(k % sizes.len()).copied().unwrap_or(1).max(1);
            k += 1;
            let end = (pos + step).min(bytes.len());
            s.feed(&bytes[pos..end], &mut |v| streamed.push(v)).expect("valid corpus");
            pos = end;
        }
        s.finish(&mut |v| streamed.push(v)).expect("valid corpus");

        let inferred = InferOptions::csv();
        prop_assert_eq!(
            Shape::list(fold_shape(&streamed, &inferred)),
            infer_with(&oneshot, &inferred),
            "headerless streamed fold must match the one-shot shape for {:?}", text
        );
    }

    /// Raw random CSV-ish text (stray quotes, ragged rows, bare CRs):
    /// identical outcomes — rows, or error kind and line — under
    /// arbitrary chunking.
    #[test]
    fn csv_error_agreement_over_random_text(
        text in "[a-c,\"\n\r ]{0,60}",
        sizes in prop::collection::vec(1usize..7, 1..5),
    ) {
        let oneshot = tfd_csv::parse_value(&text).map(|v| match v {
            Value::List(rows) => rows,
            other => panic!("expected row list, got {other}"),
        });
        let streamed = stream_csv(&text, &sizes);
        match (&oneshot, &streamed) {
            // Random headers may repeat ("a,a"), and records with
            // duplicate field names compare unequal even to themselves;
            // compare the rendering.
            (Ok(a), Ok(b)) => prop_assert_eq!(format!("{a:?}"), format!("{b:?}")),
            _ => prop_assert_eq!(&streamed, &oneshot),
        }
    }
}

// --- InferAccumulator: the incremental fold vs `infer_many` (satellite
// --- suite; the core crate's unit tests cover the reader driver).

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `σi = csh(σi−1, S(di))` pushed one record at a time equals
    /// `infer_many` on the same sequence, for all four presets.
    #[test]
    fn accumulator_fold_matches_infer_many(
        corpus in prop::collection::vec(value_strategy(), 0..8),
    ) {
        for opts in [
            InferOptions::formal(),
            InferOptions::json(),
            InferOptions::csv(),
            InferOptions::xml(),
        ] {
            prop_assert_eq!(
                fold_shape(&corpus, &opts),
                infer_many(&corpus, &opts),
                "preset {:?}", opts
            );
        }
    }

    /// Idempotence after globalization, at the fold level — now a true
    /// fixed point under the env-aware μ-shape API (the old finite-tree
    /// pass could not have this property on recursive corpora; see
    /// `tfd_core::global`): the `GlobalShape` generalizes the fold,
    /// self-joins are no-ops, and absorbing the corpus again — record by
    /// record, as `--stream --global` would — changes nothing.
    #[test]
    fn fold_is_stable_after_globalize(
        corpus in prop::collection::vec(value_strategy(), 0..6),
    ) {
        let opts = InferOptions::xml();
        let folded = fold_shape(&corpus, &opts);
        let g = tfd_core::globalize_env(folded.clone());
        prop_assert!(
            tfd_core::is_preferred_in(&folded, &g.root, Some(&g.env)),
            "globalize must generalize the fold: {} vs {}", folded, g
        );
        // Self-join of the root under the env is a no-op (csh(σ,σ) = σ):
        let mut env = g.env.clone();
        let rejoined = tfd_core::csh_in(g.root.clone(), g.root.clone(), &mut env);
        prop_assert_eq!(&rejoined, &g.root, "self-join must be a no-op");
        prop_assert_eq!(&env, &g.env, "self-join must not widen the env");
        // Absorbing the fold back is a no-op:
        let mut readded = g.clone();
        readded.absorb(folded.clone());
        prop_assert_eq!(&readded, &g, "re-absorbing the fold must be a no-op");
        // Re-streaming the corpus record by record after globalization
        // cannot change the answer (`σi = csh(σi−1, S(di))`, env-aware):
        let mut restreamed = g.clone();
        for d in &corpus {
            restreamed.absorb(infer_with(d, &opts));
        }
        prop_assert_eq!(&restreamed, &g, "re-streaming the corpus must be a no-op");
        // And the finite-tree rendering is idempotent too — the PR 3
        // saturation hole is closed:
        let once = globalize(folded);
        let twice = globalize(once.clone());
        prop_assert_eq!(&twice, &once, "globalize must be idempotent");
    }
}

// --- Named regressions from driving the differential suite at 1-byte
// --- feeds (satellite: entity-length limit and CSV quote handling).

/// The XML entity-length limit counts *bytes* but must only fire at
/// character boundaries; under 1-byte feeds the scanner replicates that
/// exactly (the record is cut at the overflow point so the parse
/// reproduces the one-shot `UnknownEntity` — never a slice panic, never
/// a different error).
#[test]
fn regression_xml_entity_limit_under_single_byte_feeds() {
    for doc in [
        "<a>&ééééééé;</a>",
        "<a>&aaaaaaaaaaaaaaaaaaaa;</a>",
        "<a x=\"&ééééééé;\"/>",
        "<a>&日本語キーです;</a>",
        "<a>&#x1F600;&#x1F600;</a>", // long but legal char refs
    ] {
        let oneshot = tfd_xml::parse_many_values(doc);
        assert_eq!(stream_xml(doc, &[1]), oneshot, "{doc}");
        assert_eq!(stream_xml(doc, &[2]), oneshot, "{doc}");
    }
}

/// CSV `""` escapes, closing quotes and CRLF pairs split across 1-byte
/// feeds must not change field contents, row boundaries or error lines.
#[test]
fn regression_csv_quote_handling_under_single_byte_feeds() {
    for doc in [
        "a\n\"he said \"\"hi\"\"\"\n", // escape split between the two quotes
        "a\n\"x\"\r\n2\n",             // closing quote then split CRLF
        "h1,h2\nab\"c,d\"e\n",         // mid-field quotes stay literal
        "a\n\"x\ry\"\n",               // bare CR inside quotes
        "a\n\"x\"y\n",                 // stray char after closing quote
        "a\n\"oops",                   // unterminated at EOF
    ] {
        let oneshot = tfd_csv::parse_value(doc).map(|v| match v {
            Value::List(rows) => rows,
            other => panic!("expected row list, got {other}"),
        });
        assert_eq!(stream_csv(doc, &[1]), oneshot, "{doc:?}");
    }
}

/// A JSON `\u` escape and a multi-byte character split across 1-byte
/// feeds; error columns stay char-correct when multi-byte characters
/// precede the error on the same line.
#[test]
fn regression_json_escape_and_utf8_splits() {
    let ok = r#"{"k": "😀 čaj"}"#;
    assert_eq!(stream_json(ok, &[1]), tfd_json::parse_many_values(ok));
    let bad = "{ \"čaj\": @ }";
    let err = stream_json(bad, &[1]).unwrap_err();
    let oneshot = tfd_json::parse_many_values(bad).unwrap_err();
    assert_eq!(err, oneshot);
    assert_eq!(err.pos.column, 10, "column counts characters, not bytes");
}

/// Error positions in the Nth record of a stream translate exactly:
/// line numbers continue across records, columns restart per line.
#[test]
fn error_positions_translate_across_records_all_formats() {
    let json = "{\"a\":1}\n{\"b\":2} {\"c\": @}";
    let je = stream_json(json, &[3]).unwrap_err();
    assert_eq!(je, tfd_json::parse_many_values(json).unwrap_err());
    assert_eq!((je.pos.line, je.pos.column), (2, 15));

    let xml = "<ok/>\n<ok/>\n<bad @></bad>";
    let xe = stream_xml(xml, &[2]).unwrap_err();
    assert_eq!(xe, tfd_xml::parse_many_values(xml).unwrap_err());
    assert_eq!((xe.line, xe.column), (3, 6));

    let csv = "h\nok\n\"a\rb\"x";
    let ce = stream_csv(csv, &[1]).unwrap_err();
    assert_eq!(Err(ce.clone()), tfd_csv::parse_value(csv).map(|_| ()));
    assert_eq!(ce, tfd_csv::CsvError::CharAfterQuote(4, 'x'));
}

// --- Large-corpus smoke (release-only: ~50 MB of CSV through the
// --- reader driver with a small chunk size — the O(1 record) pipeline).

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "large-corpus smoke runs in release mode (CI)"
)]
fn large_corpus_csv_streams_with_small_chunks() {
    let mut text = String::with_capacity(51 << 20);
    text.push_str("id,name,score,date,flag\n");
    let mut rows = 0u64;
    while text.len() < 50 << 20 {
        let _ = writeln!(
            text,
            "{rows},item-{rows},{}.5,2012-05-01,{}",
            rows % 977,
            rows % 2
        );
        rows += 1;
    }
    let summary = infer_reader(
        text.as_bytes(),
        StreamFormat::Csv,
        &InferOptions::csv(),
        4096,
    )
    .unwrap();
    assert_eq!(summary.records as u64, rows);
    assert_eq!(summary.bytes as usize, text.len());
    let expected = Shape::record(
        tfd_value::BODY_NAME,
        [
            ("id", Shape::Int),
            ("name", Shape::String),
            ("score", Shape::Float),
            ("date", Shape::Date),
            ("flag", Shape::Bit),
        ],
    );
    assert_eq!(summary.shape, expected);
}
