//! Parallel-vs-sequential differential suite.
//!
//! The sharded parallel driver (`tfd_core::engine`) promises to be
//! *observationally identical* to the sequential pipeline for every
//! format and every shard count: the same record `Value` sequence, the
//! same folded `Shape` (the Fig. 3 fold is a semilattice, so any
//! re-association of `csh` joins yields the same least upper bound), the
//! same record counts — and, for malformed input, the same error kind at
//! the same stream-global position (the first error in document order).
//!
//! This suite drives that promise with generated corpora under
//! adversarial shard counts — 1, 2, 7, 64, and more shards than records
//! — plus mutation/truncation error agreement, for JSON, XML and CSV,
//! through both the in-memory driver (`infer_slice`/`parse_slice`) and
//! the bounded-memory reader driver (`infer_reader_parallel`) at small
//! chunk sizes.

mod common;

use common::value_strategy;
use proptest::prelude::*;
use tfd_core::engine::{
    infer_reader_parallel, infer_slice, parse_slice, CsvFormat, DataFormat, JsonFormat, XmlFormat,
};
use tfd_core::{InferOptions, StreamFormat};
use tfd_value::Value;

/// The shard counts every corpus is driven through: sequential, small,
/// odd, large, and (for the generated corpora, which stay under ~60
/// records) deliberately larger than the record count.
const JOBS: &[usize] = &[1, 2, 7, 64];

/// Asserts the in-memory sharded driver agrees with the sequential
/// pipeline at every shard count: shapes, record counts, values and
/// errors.
fn assert_slice_agrees<F: DataFormat>(corpus: &[u8])
where
    F::Error: PartialEq + std::fmt::Debug,
{
    let options = F::infer_options();
    let seq = infer_slice::<F>(corpus, &options, 1);
    let seq_values = parse_slice::<F>(corpus, 1);
    for &jobs in JOBS {
        let par = infer_slice::<F>(corpus, &options, jobs);
        match (&seq, &par) {
            // Mutated corpora can carry duplicate record fields, whose
            // shapes/values compare unequal even to themselves; compare
            // the rendering, which is what the CLI prints.
            (Ok(a), Ok(b)) => assert_eq!(
                (format!("{:?}", a.shape), a.records, a.bytes),
                (format!("{:?}", b.shape), b.records, b.bytes),
                "{} shape at jobs {jobs}",
                F::NAME
            ),
            _ => assert_eq!(&par, &seq, "{} outcome at jobs {jobs}", F::NAME),
        }
        let par_values = parse_slice::<F>(corpus, jobs);
        match (&seq_values, &par_values) {
            (Ok(a), Ok(b)) => assert_eq!(
                format!("{a:?}"),
                format!("{b:?}"),
                "{} values at jobs {jobs}",
                F::NAME
            ),
            _ => assert_eq!(
                &par_values,
                &seq_values,
                "{} values at jobs {jobs}",
                F::NAME
            ),
        }
    }
}

/// Asserts the bounded-memory reader driver agrees with the sequential
/// reader pipeline for several (chunk size, jobs) pairs.
fn assert_reader_agrees<F: DataFormat>(corpus: &[u8])
where
    F::Error: PartialEq + std::fmt::Debug,
{
    let options = F::infer_options();
    let seq = infer_reader_parallel::<F, _>(corpus, &options, 4096, 1);
    for (chunk, jobs) in [(1usize, 2usize), (7, 4), (64, 7), (4096, 3)] {
        let par = infer_reader_parallel::<F, _>(corpus, &options, chunk, jobs);
        match (&seq, &par) {
            (Ok(a), Ok(b)) => assert_eq!(
                (format!("{:?}", a.shape), a.records, a.bytes),
                (format!("{:?}", b.shape), b.records, b.bytes),
                "{} reader at chunk {chunk} jobs {jobs}",
                F::NAME
            ),
            (Err(a), Err(b)) => assert_eq!(
                format!("{a}"),
                format!("{b}"),
                "{} reader error at chunk {chunk} jobs {jobs}",
                F::NAME
            ),
            _ => panic!(
                "{} reader outcome diverged at chunk {chunk} jobs {jobs}: {seq:?} vs {par:?}",
                F::NAME
            ),
        }
    }
}

/// Replaces the char at (position % len) with `c`, staying valid UTF-8.
fn mutate(text: &str, position: usize, c: char) -> String {
    if text.is_empty() {
        return c.to_string();
    }
    let chars: Vec<char> = text.chars().collect();
    let at = position % chars.len();
    chars
        .iter()
        .enumerate()
        .map(|(i, &orig)| if i == at { c } else { orig })
        .collect()
}

/// Truncates to the first (length % (chars+1)) characters.
fn truncate(text: &str, length: usize) -> String {
    let chars: Vec<char> = text.chars().collect();
    chars[..length % (chars.len() + 1)].iter().collect()
}

// --- JSON ---

fn json_corpus_text(docs: &[Value], seps: &[&str]) -> String {
    let mut text = String::new();
    for (i, d) in docs.iter().enumerate() {
        text.push_str(&tfd_json::to_json_string(&tfd_json::Json::from_value(d)));
        text.push_str(seps.get(i % seps.len().max(1)).copied().unwrap_or(" "));
    }
    text
}

const JSON_SEPS: &[&str] = &[" ", "\n", "\t\r\n "];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sharded parallel inference over generated JSON corpora agrees
    /// with the sequential fold — shapes, records, values — for every
    /// shard count, including shards > records.
    #[test]
    fn json_parallel_agrees_on_valid_corpora(
        docs in prop::collection::vec(value_strategy(), 0..6),
        seps in prop::collection::vec(prop::sample::select(JSON_SEPS), 1..4),
    ) {
        let text = json_corpus_text(&docs, &seps);
        assert_slice_agrees::<JsonFormat>(text.as_bytes());
        assert_reader_agrees::<JsonFormat>(text.as_bytes());
    }

    /// Mutated/truncated JSON: identical outcomes — error kind, offset,
    /// line and char-correct column — at every shard count.
    #[test]
    fn json_parallel_error_agreement_under_mutation(
        docs in prop::collection::vec(value_strategy(), 1..4),
        position in 0usize..400,
        c in prop::sample::select(&['@', '"', '{', '}', ']', ',', 'x', '0', '\\', 'é'][..]),
        cut in 0usize..400,
        do_truncate in proptest::strategy::any::<bool>(),
    ) {
        let base = json_corpus_text(&docs, &[" ", "\n"]);
        let text = if do_truncate { truncate(&base, cut) } else { mutate(&base, position, c) };
        assert_slice_agrees::<JsonFormat>(text.as_bytes());
        assert_reader_agrees::<JsonFormat>(text.as_bytes());
    }
}

// --- XML ---

const XML_NAMES: &[&str] = &["a", "item", "ns:tag", "čaj"];
const XML_SEPS: &[&str] = &[" ", "\n", "", "<!-- gap -->", "\r\n"];

fn xml_doc_strategy() -> impl Strategy<Value = String> {
    let attrs = prop::collection::vec("[a-z 0-9é]{0,4}", 0..3).prop_map(|vals| {
        vals.into_iter()
            .enumerate()
            .map(|(i, v)| format!(" at{i}=\"{v}\""))
            .collect::<String>()
    });
    let content = prop_oneof![
        "[a-z 0-9éž]{0,6}",
        Just("&amp;".to_owned()),
        Just("<![CDATA[ <raw> & ]]>".to_owned()),
        Just("<!-- note -->".to_owned()),
    ];
    (prop::sample::select(XML_NAMES), attrs, content).prop_map(|(n, a, t)| {
        if t.is_empty() {
            format!("<{n}{a}/>")
        } else {
            format!("<{n}{a}>{t}</{n}>")
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sharded parallel inference over generated XML document streams
    /// agrees with the sequential fold at every shard count (comments
    /// between documents glue to the following shard's document, exactly
    /// as the sequential scanner glues them).
    #[test]
    fn xml_parallel_agrees_on_valid_corpora(
        docs in prop::collection::vec(xml_doc_strategy(), 0..6),
        seps in prop::collection::vec(prop::sample::select(XML_SEPS), 1..4),
    ) {
        let mut text = String::new();
        for (i, d) in docs.iter().enumerate() {
            text.push_str(d);
            text.push_str(seps.get(i % seps.len().max(1)).copied().unwrap_or(" "));
        }
        assert_slice_agrees::<XmlFormat>(text.as_bytes());
        assert_reader_agrees::<XmlFormat>(text.as_bytes());
    }

    /// Mutated/truncated XML: identical error positions at every shard
    /// count.
    #[test]
    fn xml_parallel_error_agreement_under_mutation(
        docs in prop::collection::vec(xml_doc_strategy(), 1..4),
        position in 0usize..300,
        c in prop::sample::select(&['<', '>', '&', ';', '@', '/', '"', 'é'][..]),
        cut in 0usize..300,
        do_truncate in proptest::strategy::any::<bool>(),
    ) {
        let base: String = docs.join("\n");
        let text = if do_truncate { truncate(&base, cut) } else { mutate(&base, position, c) };
        assert_slice_agrees::<XmlFormat>(text.as_bytes());
        assert_reader_agrees::<XmlFormat>(text.as_bytes());
    }
}

// --- CSV ---

fn csv_cell() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-z0-9]{0,4}",
        Just("#N/A".to_owned()),
        Just("42".to_owned()),
        Just("2.5".to_owned()),
        Just("2012-05-01".to_owned()),
        // Quoted cells with embedded delimiters, quotes, line endings
        // and multi-byte characters — the shard cutter must never split
        // inside these.
        "[a-z,\"\n\réž ]{0,6}".prop_map(|c| format!("\"{}\"", c.replace('"', "\"\""))),
    ]
}

const CSV_ENDINGS: &[&str] = &["\n", "\r\n", "\r"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sharded parallel CSV inference agrees with the sequential fold at
    /// every shard count: the header is parsed once in the prologue and
    /// seeded into every shard, quoted line endings never become cut
    /// points, and CRLF pairs are never split between shards.
    #[test]
    fn csv_parallel_agrees_on_valid_corpora(
        rows in prop::collection::vec(prop::collection::vec(csv_cell(), 0..5), 0..6),
        endings in prop::collection::vec(prop::sample::select(CSV_ENDINGS), 1..4),
        final_ending in proptest::strategy::any::<bool>(),
    ) {
        let mut text = String::from("h1,h2,h3");
        text.push_str(endings.first().copied().unwrap_or("\n"));
        for (i, row) in rows.iter().enumerate() {
            text.push_str(&row.join(","));
            if i + 1 < rows.len() || final_ending {
                text.push_str(endings.get(i % endings.len().max(1)).copied().unwrap_or("\n"));
            }
        }
        assert_slice_agrees::<CsvFormat>(text.as_bytes());
        assert_reader_agrees::<CsvFormat>(text.as_bytes());
    }

    /// Raw random CSV-ish text (stray quotes, ragged rows, bare CRs):
    /// identical outcomes — rows, or error kind and line — at every
    /// shard count.
    #[test]
    fn csv_parallel_error_agreement_over_random_text(
        text in "[a-c,\"\n\r ]{0,60}",
    ) {
        assert_slice_agrees::<CsvFormat>(text.as_bytes());
        assert_reader_agrees::<CsvFormat>(text.as_bytes());
    }
}

// --- Named edges and regressions ---

/// Shard counts exceeding the record count must degrade gracefully: a
/// shard never splits a record, so the driver simply uses fewer shards.
#[test]
fn more_shards_than_records() {
    let cases: [(&str, StreamFormat); 3] = [
        ("{\"a\": 1} {\"b\": 2}", StreamFormat::Json),
        ("<a/><b/>", StreamFormat::Xml),
        ("h\n1\n2\n", StreamFormat::Csv),
    ];
    for (text, format) in cases {
        let options = tfd_core::engine::infer_options_dyn(format);
        let seq = tfd_core::engine::infer_slice_dyn(format, text.as_bytes(), &options, 1).unwrap();
        for jobs in [3, 64, 1000] {
            let par =
                tfd_core::engine::infer_slice_dyn(format, text.as_bytes(), &options, jobs).unwrap();
            assert_eq!(par, seq, "{format:?} at jobs {jobs}");
        }
    }
}

/// Single-record and empty corpora at high shard counts.
#[test]
fn single_record_and_empty_corpora() {
    assert_slice_agrees::<JsonFormat>(b"{\"only\": 1}");
    assert_slice_agrees::<JsonFormat>(b"");
    assert_slice_agrees::<XmlFormat>(b"<only x=\"1\"/>");
    assert_slice_agrees::<XmlFormat>(b"");
    assert_slice_agrees::<XmlFormat>(b"<!-- misc only -->");
    assert_slice_agrees::<CsvFormat>(b"h1,h2\n1,2\n");
    assert_slice_agrees::<CsvFormat>(b"h1,h2");
    assert_slice_agrees::<CsvFormat>(b"");
}

/// The error in a late shard must surface at its sequential stream
/// position (line numbers continue across shard boundaries).
#[test]
fn error_positions_cross_shard_boundaries() {
    let json = "{\"a\":1}\n{\"b\":2}\n{\"c\":3}\n{\"d\": @}\n";
    let seq = infer_slice::<JsonFormat>(json.as_bytes(), &InferOptions::json(), 1).unwrap_err();
    for jobs in [2, 3, 4, 64] {
        let par =
            infer_slice::<JsonFormat>(json.as_bytes(), &InferOptions::json(), jobs).unwrap_err();
        assert_eq!(par, seq, "jobs {jobs}");
    }
    assert_eq!(seq.pos.line, 4);
    assert_eq!(seq.pos.offset, json.find('@').unwrap());

    // CSV: an unterminated quote on the last line, with quoted newlines
    // earlier to stress the line accounting.
    let csv = "h\n\"a\nb\"\nok\n\"oops";
    let seq = infer_slice::<CsvFormat>(csv.as_bytes(), &InferOptions::csv(), 1).unwrap_err();
    for jobs in [2, 7] {
        let par = infer_slice::<CsvFormat>(csv.as_bytes(), &InferOptions::csv(), jobs).unwrap_err();
        assert_eq!(par, seq, "jobs {jobs}");
    }
    assert_eq!(seq, tfd_csv::CsvError::UnterminatedQuote(5));
}

/// CSV quoting torture: quoted CRLFs, `""` escapes and mid-field quotes
/// right at likely cut points.
#[test]
fn csv_quoting_never_splits_at_shard_cuts() {
    let mut text = String::from("name,note\n");
    for i in 0..60 {
        text.push_str(&format!("r{i},\"line1\r\nline2,with \"\"quotes\"\"\"\r\n"));
    }
    assert_slice_agrees::<CsvFormat>(text.as_bytes());
    assert_reader_agrees::<CsvFormat>(text.as_bytes());
}

/// Skewed record sizes — a few huge records among swarms of tiny ones,
/// in every arrangement (front-loaded, back-loaded, interleaved). Under
/// the byte-size-aware work queue this is exactly the load round-robin
/// dealing used to serialize: one worker drew every giant while the
/// rest idled. Agreement must hold regardless of who drew what.
#[test]
fn skewed_record_sizes_agree_with_sequential() {
    let giant = |i: usize| {
        let mut s = format!("{{\"id\": {i}, \"blob\": \"");
        for k in 0..4000 {
            s.push((b'a' + ((i + k) % 26) as u8) as char);
        }
        s.push_str("\"}\n");
        s
    };
    let tiny = |i: usize| format!("{{\"id\": {i}}}\n");

    let mut front = String::new();
    let mut back = String::new();
    let mut woven = String::new();
    for i in 0..4 {
        front.push_str(&giant(i));
        back.push_str(&tiny(i));
        woven.push_str(&giant(i));
    }
    for i in 0..200 {
        front.push_str(&tiny(i));
        back.push_str(&tiny(i));
        if i % 50 == 0 {
            woven.push_str(&giant(i));
        }
        woven.push_str(&tiny(i));
    }
    for i in 0..4 {
        back.push_str(&giant(i));
    }
    for text in [&front, &back, &woven] {
        assert_slice_agrees::<JsonFormat>(text.as_bytes());
        assert_reader_agrees::<JsonFormat>(text.as_bytes());
    }
}

/// The corpus layer: `infer_sources_parallel` over many in-memory files
/// must produce, slot by slot, what the sequential (`jobs = 1`) pass
/// produces — and the file-ordered `csh` fold over those slots must be
/// a fixed shape regardless of worker count.
#[test]
fn multi_file_corpus_parallelism_agrees_with_sequential_fold() {
    use tfd_core::engine::{infer_sources_parallel, CorpusSource};
    use tfd_core::{csh, RecoveryPolicy, Shape};

    let files: Vec<String> = (0..9)
        .map(|i| {
            let mut s = String::new();
            for j in 0..(10 + i * 7) {
                match (i + j) % 3 {
                    0 => s.push_str(&format!("{{\"id\": {j}, \"k{i}\": true}}\n")),
                    1 => s.push_str(&format!("{{\"id\": {j}.5, \"note\": \"n\"}}\n")),
                    _ => s.push_str(&format!("{{\"id\": {j}, \"note\": null}}\n")),
                }
            }
            s
        })
        .collect();
    let sources: Vec<CorpusSource<'_>> = files
        .iter()
        .map(|f| CorpusSource::Bytes(f.as_bytes()))
        .collect();
    let options = InferOptions::json();
    let policy = RecoveryPolicy::default();

    let fold = |jobs: usize| -> (Vec<String>, String, Vec<usize>) {
        let results = infer_sources_parallel(StreamFormat::Json, &sources, &options, &policy, jobs);
        assert_eq!(results.len(), sources.len());
        let mut shapes = Vec::new();
        let mut records = Vec::new();
        let mut combined = Shape::Bottom;
        for r in results {
            let mut out = r.expect("clean corpora");
            // Render inside the file's own arena, then fold globally.
            shapes.push(out.recovered.summary.shape.to_string());
            records.push(out.recovered.summary.records);
            out.recovered
                .summary
                .shape
                .reintern(tfd_value::intern::Interner::global());
            combined = csh(combined, out.recovered.summary.shape);
        }
        (shapes, combined.to_string(), records)
    };

    let seq = fold(1);
    for jobs in [2, 3, 8, 64] {
        assert_eq!(fold(jobs), seq, "jobs {jobs}");
    }
}

/// The global (§6.2, env-carrying) mode on top of the parallel fold:
/// globalizing the parallel shape equals globalizing the sequential one
/// — `--global --jobs N` prints what `--global` prints.
#[test]
fn globalize_on_parallel_fold_matches_sequential() {
    let mut text = String::new();
    for i in 0..30 {
        text.push_str(&format!(
            "<div id=\"{i}\"><div child=\"true\"><div x=\"{i}\"/></div></div>\n"
        ));
    }
    let options = InferOptions::xml();
    let seq = infer_slice::<XmlFormat>(text.as_bytes(), &options, 1).unwrap();
    let par = infer_slice::<XmlFormat>(text.as_bytes(), &options, 8).unwrap();
    assert_eq!(par.shape, seq.shape);
    let g_seq = tfd_core::globalize_env(seq.shape);
    let g_par = tfd_core::globalize_env(par.shape);
    assert_eq!(g_par, g_seq);
    assert!(!g_par.env.is_empty(), "the corpus is genuinely recursive");
}
