//! Scanner-backend parity suite.
//!
//! `tfd_value::scan` dispatches to whichever SIMD kernel the host
//! supports (AVX2/SSE2 on x86-64, NEON on aarch64) with the portable
//! SWAR kernel as the floor. Every compiled kernel must be
//! *byte-identical* to the one-byte-at-a-time reference on every input
//! — same `Some`/`None`, same index — or boundary scanning would place
//! record cuts differently depending on the machine the corpus happened
//! to be parsed on.
//!
//! This is deliberately ONE `#[test]` in its own integration binary:
//! `force_backend` flips a process-global dispatch table, so the parity
//! sweep must not race other tests in the same process.

use proptest::test_runner::TestRng;
use tfd_value::scan;

/// One-byte-at-a-time references, the semantics every kernel must match.
fn naive_any2(h: &[u8], a: u8, b: u8) -> Option<usize> {
    h.iter().position(|&x| x == a || x == b)
}
fn naive_any3(h: &[u8], a: u8, b: u8, c: u8) -> Option<usize> {
    h.iter().position(|&x| x == a || x == b || x == c)
}
fn naive_any5(h: &[u8], a: u8, b: u8, c: u8, d: u8, e: u8) -> Option<usize> {
    h.iter()
        .position(|&x| x == a || x == b || x == c || x == d || x == e)
}
fn naive_byte(h: &[u8], n: u8) -> Option<usize> {
    h.iter().position(|&x| x == n)
}

/// Checks all four arities on one haystack with one needle set.
fn check_all(backend: &str, h: &[u8], n: [u8; 5]) {
    let [a, b, c, d, e] = n;
    assert_eq!(
        scan::find_byte(h, a),
        naive_byte(h, a),
        "[{backend}] find_byte({a:#04x}) on {} bytes",
        h.len()
    );
    assert_eq!(
        scan::find_any2(h, a, b),
        naive_any2(h, a, b),
        "[{backend}] find_any2 on {} bytes",
        h.len()
    );
    assert_eq!(
        scan::find_any3(h, a, b, c),
        naive_any3(h, a, b, c),
        "[{backend}] find_any3 on {} bytes",
        h.len()
    );
    assert_eq!(
        scan::find_any5(h, a, b, c, d, e),
        naive_any5(h, a, b, c, d, e),
        "[{backend}] find_any5 on {} bytes",
        h.len()
    );
}

/// The crafted battery: every length across the probe/vector-width
/// boundaries, the needle planted at every position, plus the inputs
/// that historically trip SIMD scanners (high-bit bytes, all-match,
/// duplicate needles, match in the overlapped tail load).
fn crafted_battery(backend: &str) {
    // The boundary-scan needle sets the drivers actually use.
    let json = [b'"', b'\\', b'{', b'}', b'\n'];
    let csv = [b',', b'\n', b'\r', b'"', b'"'];
    let xml = [b'<', b'>', b'&', b'"', b'\''];

    for len in 0..130usize {
        // No match at all, at any length.
        check_all(backend, &vec![b'x'; len], json);
        // The needle at every single position.
        for pos in 0..len {
            let mut h = vec![b'x'; len];
            h[pos] = b'"';
            check_all(backend, &h, json);
            check_all(backend, &h, csv.map(|n| if n == b',' { b'"' } else { n }));
        }
    }

    // All-match: index 0 always wins.
    check_all(backend, &[b','; 100], csv);
    // High-bit bytes must not alias low needles under SWAR arithmetic
    // or signed SIMD compares.
    let high: Vec<u8> = (0..256)
        .map(|i| (i % 256) as u8)
        .cycle()
        .take(512)
        .collect();
    check_all(backend, &high, json);
    check_all(backend, &high, [0x80, 0xFF, 0x7F, 0x00, 0x01]);
    // Duplicate needles collapse to fewer distinct bytes.
    check_all(backend, b"aaabbbccc", [b'b', b'b', b'b', b'b', b'b']);
    check_all(
        backend,
        &xml.iter().cycle().copied().take(97).collect::<Vec<_>>(),
        xml,
    );
}

/// Randomised corpora from the shim's deterministic RNG: dense and
/// sparse alphabets at sizes spanning the probe, one vector, many
/// vectors, and the ragged tails between them.
fn random_battery(backend: &str, rng: &mut TestRng) {
    let sizes = [
        0usize, 1, 7, 8, 15, 16, 17, 31, 32, 33, 63, 64, 65, 127, 128, 129, 1000, 4096, 4099,
    ];
    for &size in &sizes {
        for case in 0..8 {
            // Alternate a tight alphabet (hits are everywhere) with a
            // wide one (hits are rare or absent).
            let span: u64 = if case % 2 == 0 { 6 } else { 251 };
            let h: Vec<u8> = (0..size)
                .map(|_| ((rng.next_u64() % span) as u8).wrapping_add(b'0'))
                .collect();
            let mut n = [0u8; 5];
            for slot in &mut n {
                *slot = ((rng.next_u64() % span) as u8).wrapping_add(b'0');
            }
            check_all(backend, &h, n);
        }
    }

    // Realistic record streams: the JSON/CSV boundary bytes embedded in
    // running text, like the corpora `streaming_agreement` generates.
    for _ in 0..64 {
        let recs = rng.next_u64() % 40 + 1;
        let mut text = String::new();
        for i in 0..recs {
            match rng.next_u64() % 3 {
                0 => text.push_str(&format!("{{\"id\": {i}, \"note\": \"n{i}\"}}\n")),
                1 => text.push_str(&format!("r{i},\"say \"\"hi\"\"\",{i}\r\n")),
                _ => text.push_str(&format!("<r id=\"{i}\">&amp;{i}</r>\n")),
            }
        }
        let h = text.as_bytes();
        check_all(backend, h, [b'"', b'\\', b'{', b'}', b'\n']);
        check_all(backend, h, [b',', b'\n', b'\r', b'"', b'"']);
        check_all(backend, h, [b'<', b'>', b'&', b'"', b'\'']);
    }
}

#[test]
fn every_backend_is_byte_identical_to_the_scalar_reference() {
    let backends = scan::available_backends();
    assert!(
        backends.contains(&"swar"),
        "the portable kernel must always be compiled in: {backends:?}"
    );
    let detected = scan::backend_name();
    assert!(
        backends.contains(&detected),
        "auto-detected backend {detected:?} not in {backends:?}"
    );

    let mut rng = TestRng::deterministic("scan_backend_parity");
    for backend in &backends {
        assert!(
            scan::force_backend(backend),
            "force_backend({backend:?}) refused a backend it advertised"
        );
        assert_eq!(scan::backend_name(), *backend);
        crafted_battery(backend);
        random_battery(backend, &mut rng);
    }

    // Back to auto-detection; the winner must be the original choice.
    assert!(scan::force_backend("auto"));
    assert_eq!(scan::backend_name(), detected);
    // And an unknown name is refused without disturbing the selection.
    assert!(!scan::force_backend("avx-512-imaginary"));
    assert_eq!(scan::backend_name(), detected);
}
