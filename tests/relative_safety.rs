//! Theorem 3 (relative type safety), mechanically.
//!
//! > "For all inputs d′ such that S(d′) ⊑ σ and all expressions e′ …
//! > it is the case that L, e[y ← e′ d′] ↝* v."
//!
//! We instantiate the theorem with the most demanding expression family:
//! the program that accesses **every member of every reachable provided
//! object** ([`tfd_provider::deep_eval`]). The property tests below check
//! both directions on randomly generated documents:
//!
//! * *safety*: whenever `S(d′) ⊑ S(d1, …, dn)`, deep evaluation succeeds;
//! * *contrapositive*: whenever deep evaluation fails, the input's shape
//!   was not preferred over the samples' shape.

mod common;

use common::{conforming, value_strategy};
use proptest::prelude::*;
use tfd_core::{infer_many, infer_with, is_preferred, InferOptions};
use tfd_provider::{deep_eval, provide, provide_idiomatic};
use tfd_value::corpus::Rng;
use tfd_value::Value;

/// The extension options exercised by the second theorem variant:
/// heterogeneous collections, bit and date shapes — everything except the
/// stringly-primitive leniency (which by design lives in the Rust
/// runtime, not in the strict Foo model).
fn extended_options() -> InferOptions {
    InferOptions {
        infer_bits: true,
        detect_dates: true,
        hetero_collections: true,
        singleton_collections: false,
        stringly_primitives: false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Theorem 3, formal fragment: conforming inputs never get stuck.
    #[test]
    fn theorem3_formal(sample in value_strategy(), seed in any::<u64>()) {
        let options = InferOptions::formal();
        let shape = infer_with(&sample, &options);
        let provided = provide(&shape);
        let input = conforming(&shape, &mut Rng::new(seed));
        // The generator is sound: the input's shape is preferred.
        prop_assert!(
            is_preferred(&infer_with(&input, &options), &shape),
            "generator produced non-conforming {input} for {shape}"
        );
        if let Err(failure) = deep_eval(&provided, &input) {
            return Err(TestCaseError::fail(format!(
                "stuck on conforming input {input} for shape {shape}: {failure}"
            )));
        }
    }

    /// Theorem 3 with multiple samples: the fold S(d1, …, dn) still
    /// admits every individual sample and every conforming input.
    #[test]
    fn theorem3_multi_sample(
        samples in prop::collection::vec(value_strategy(), 1..4),
        seed in any::<u64>(),
    ) {
        let options = InferOptions::formal();
        let shape = infer_many(&samples, &options);
        let provided = provide(&shape);
        // Every sample is itself a valid input (S(dᵢ) ⊑ S(d1,…,dn)):
        for d in &samples {
            prop_assert!(is_preferred(&infer_with(d, &options), &shape));
            if let Err(failure) = deep_eval(&provided, d) {
                return Err(TestCaseError::fail(format!(
                    "stuck on its own sample {d}: {failure}"
                )));
            }
        }
        // And so is a fresh conforming input:
        let input = conforming(&shape, &mut Rng::new(seed));
        if let Err(failure) = deep_eval(&provided, &input) {
            return Err(TestCaseError::fail(format!(
                "stuck on conforming input {input} for {shape}: {failure}"
            )));
        }
    }

    /// Theorem 3 with the §6.2/§6.4 extensions (bit, date, heterogeneous
    /// collections) and the §6.3 idiomatic naming pipeline.
    ///
    /// The paper scopes the formal theorem to the core fragment and
    /// explicitly defers the preference-relation refinements for labels
    /// and multiplicities ("We leave the details to future work", §3.5);
    /// the executable property for the extensions is therefore stated
    /// with the runtime conformance test `hasShape` (which does count
    /// multiplicities) instead of the shape-level relation.
    #[test]
    fn theorem3_extended(sample in value_strategy(), seed in any::<u64>()) {
        let options = extended_options();
        let shape = infer_with(&sample, &options);
        let provided = provide_idiomatic(&shape, "Root");
        let input = conforming(&shape, &mut Rng::new(seed));
        prop_assert!(
            tfd_core::conforms(&shape, &input),
            "generator produced non-conforming {input} for {shape}"
        );
        if let Err(failure) = deep_eval(&provided, &input) {
            return Err(TestCaseError::fail(format!(
                "stuck on conforming input {input} for shape {shape}: {failure}"
            )));
        }
    }

    /// Contrapositive: a deep-evaluation failure implies the input was
    /// outside the preference relation. (Arbitrary input pairs — most are
    /// unrelated; the theorem says related ones cannot fail.)
    #[test]
    fn theorem3_contrapositive(sample in value_strategy(), input in value_strategy()) {
        let options = InferOptions::formal();
        let shape = infer_with(&sample, &options);
        let provided = provide(&shape);
        if deep_eval(&provided, &input).is_err() {
            prop_assert!(
                !is_preferred(&infer_with(&input, &options), &shape),
                "deep_eval failed although S({input}) ⊑ {shape}"
            );
        }
    }
}

#[test]
fn paper_counterexample_shape_change_fails() {
    // §6.1 schema change: a provider built for {temp: int} applied to a
    // document where temp became a record must fail (and does so with a
    // stuck convPrim, not undefined behaviour).
    let sample = tfd_json::parse(r#"{ "temp": 5 }"#).unwrap().to_value();
    let shape = infer_with(&sample, &InferOptions::formal());
    let provided = provide(&shape);
    let changed = tfd_json::parse(r#"{ "temp": { "celsius": 5 } }"#)
        .unwrap()
        .to_value();
    assert!(deep_eval(&provided, &changed).is_err());
}

#[test]
fn representative_sample_suffices_for_intended_access() {
    // §6.1: "They merely need to provide a sample that is representative
    // with respect to data they intend to access." A provider built from
    // a *partial* sample works on richer inputs.
    let sample = tfd_json::parse(r#"{ "main": { "temp": 5 } }"#)
        .unwrap()
        .to_value();
    let shape = infer_with(&sample, &InferOptions::formal());
    let provided = provide(&shape);
    let richer =
        tfd_json::parse(r#"{ "main": { "temp": 3, "pressure": 1000 }, "wind": { "speed": 5 } }"#)
            .unwrap()
            .to_value();
    deep_eval(&provided, &richer).expect("extra fields must be ignored");
}

#[test]
fn numeric_narrowing_is_safe() {
    // §5: "Input can contain smaller numerical values (e.g., if a sample
    // contains float, the input can contain an integer)."
    let sample = Value::Float(3.5);
    let provided = provide(&infer_with(&sample, &InferOptions::formal()));
    deep_eval(&provided, &Value::Int(7)).expect("int where float was sampled");
}
