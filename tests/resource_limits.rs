//! Resource-cap regression suite (resilient ingest).
//!
//! Hostile inputs must surface bounded, deterministic errors — never
//! stack overflows or unbounded buffering — through *every* driver:
//! one-shot parse, streaming, in-memory sharded, and the bounded-memory
//! parallel reader (including each format's speculative
//! parse-off-the-chunk fast path, which a whole record arriving in one
//! feed exercises).

use tfd_core::engine::{
    self, infer_reader_parallel, infer_slice, DataFormat, JsonFormat, XmlFormat,
};
use tfd_core::recover::{infer_reader_policy, infer_slice_policy};
use tfd_core::{RecoveryPolicy, StreamFormat};

/// A JSON record nested `depth` arrays deep.
fn deep_json(depth: usize) -> String {
    format!("{}1{}", "[".repeat(depth), "]".repeat(depth))
}

/// An XML record nested `depth` elements deep.
fn deep_xml(depth: usize) -> String {
    format!("{}x{}", "<a>".repeat(depth), "</a>".repeat(depth))
}

/// Asserts every driver rejects the single-record corpus with an error
/// whose message contains `needle` — same kind everywhere.
fn assert_all_drivers_reject<F: DataFormat>(corpus: &str, needle: &str)
where
    F::Error: std::fmt::Debug + std::fmt::Display,
{
    let options = F::infer_options();
    let bytes = corpus.as_bytes();
    // In-memory sharded driver (jobs 1 = the sequential fold; the whole
    // corpus arrives in one feed, so the speculative fast path runs).
    for jobs in [1usize, 4] {
        let err = infer_slice::<F>(bytes, &options, jobs)
            .expect_err(&format!("{} slice jobs {jobs} must reject", F::NAME));
        let msg = format!("{err}");
        assert!(msg.contains(needle), "{} slice jobs {jobs}: {msg}", F::NAME);
    }
    // Bounded-memory reader: small chunks straddle the record (the
    // resumable scanner path); a huge chunk hands it over whole (the
    // speculative path again).
    for (chunk, jobs) in [(64usize, 1usize), (64, 4), (1 << 20, 2)] {
        let err = infer_reader_parallel::<F, _>(bytes, &options, chunk, jobs).expect_err(&format!(
            "{} reader chunk {chunk} jobs {jobs} must reject",
            F::NAME
        ));
        let msg = format!("{err}");
        assert!(
            msg.contains(needle),
            "{} reader chunk {chunk} jobs {jobs}: {msg}",
            F::NAME
        );
    }
}

#[test]
fn ten_thousand_deep_json_is_too_deep_everywhere() {
    let corpus = deep_json(10_000);
    // One-shot front-end first: the recursion guard, not the stack,
    // must stop it.
    let err =
        engine::parse_value_dyn(StreamFormat::Json, &corpus).expect_err("one-shot must reject");
    assert!(
        format!("{err}").contains("nesting exceeds limit of 128"),
        "{err}"
    );
    assert_all_drivers_reject::<JsonFormat>(&corpus, "nesting exceeds limit of 128");
}

#[test]
fn ten_thousand_deep_xml_is_too_deep_everywhere() {
    let corpus = deep_xml(10_000);
    let err =
        engine::parse_value_dyn(StreamFormat::Xml, &corpus).expect_err("one-shot must reject");
    assert!(
        format!("{err}").contains("nesting exceeds limit of 256"),
        "{err}"
    );
    assert_all_drivers_reject::<XmlFormat>(&corpus, "nesting exceeds limit of 256");
}

#[test]
fn policy_max_depth_tightens_the_default() {
    let corpus = "{\"a\": 1}\n[[[[1]]]]\n{\"a\": 2}\n";
    let options = JsonFormat::infer_options();
    let mut policy = RecoveryPolicy {
        max_depth: Some(3),
        ..RecoveryPolicy::default()
    };
    // Fail-fast: the deep record aborts the run.
    for jobs in [1usize, 4] {
        let err = infer_slice_policy::<JsonFormat>(corpus.as_bytes(), &options, &policy, jobs)
            .expect_err("fail-fast must reject");
        assert!(
            format!("{err}").contains("nesting exceeds limit of 3"),
            "{err}"
        );
    }
    // Skip: the deep record is dropped, the rest folds.
    policy.mode = tfd_core::RecoveryMode::Skip;
    for jobs in [1usize, 4] {
        let got = infer_slice_policy::<JsonFormat>(corpus.as_bytes(), &options, &policy, jobs)
            .expect("skip mode folds the shallow records");
        assert_eq!(got.summary.records, 2, "jobs {jobs}");
        assert_eq!(got.report.total(), 1, "jobs {jobs}");
        assert!(
            got.report.first().unwrap().to_string().contains("line 2"),
            "jobs {jobs}: {:?}",
            got.report.first()
        );
    }
}

#[test]
fn oversized_records_are_rejected_by_every_driver() {
    let big = format!("{{\"a\": \"{}\"}}\n", "x".repeat(1000));
    let corpus = format!("{{\"a\": \"s\"}}\n{big}{{\"a\": \"t\"}}\n");
    let options = JsonFormat::infer_options();
    let mut policy = RecoveryPolicy {
        max_record_bytes: 64,
        ..RecoveryPolicy::default()
    };
    // Fail-fast: slice and reader drivers abort with RecordTooLarge.
    for jobs in [1usize, 4] {
        let err = infer_slice_policy::<JsonFormat>(corpus.as_bytes(), &options, &policy, jobs)
            .expect_err("fail-fast slice must reject");
        assert!(
            format!("{err}").contains("exceeds size limit of 64"),
            "jobs {jobs}: {err}"
        );
    }
    for (chunk, jobs) in [(8usize, 1usize), (8, 4), (1 << 20, 2)] {
        let err =
            infer_reader_policy::<JsonFormat, _>(corpus.as_bytes(), &options, &policy, chunk, jobs)
                .expect_err("fail-fast reader must reject");
        assert!(
            format!("{err}").contains("exceeds size limit of 64"),
            "chunk {chunk} jobs {jobs}: {err}"
        );
    }
    // Skip: the oversized record is dropped in bounded memory, the rest
    // folds — through both drivers.
    policy.mode = tfd_core::RecoveryMode::Skip;
    for jobs in [1usize, 4] {
        let got = infer_slice_policy::<JsonFormat>(corpus.as_bytes(), &options, &policy, jobs)
            .expect("skip slice folds the small records");
        assert_eq!(got.summary.records, 2, "jobs {jobs}");
        assert_eq!(got.report.total(), 1, "jobs {jobs}");
    }
    for (chunk, jobs) in [(8usize, 1usize), (8, 4), (1 << 20, 2)] {
        let got =
            infer_reader_policy::<JsonFormat, _>(corpus.as_bytes(), &options, &policy, chunk, jobs)
                .expect("skip reader folds the small records");
        assert_eq!(got.summary.records, 2, "chunk {chunk} jobs {jobs}");
        assert_eq!(got.report.total(), 1, "chunk {chunk} jobs {jobs}");
        assert!(
            got.report
                .first()
                .unwrap()
                .to_string()
                .contains("exceeds size limit of 64"),
            "chunk {chunk} jobs {jobs}: {:?}",
            got.report.first()
        );
    }
}
