//! Shared generators for the integration test suite.
//!
//! * [`value_strategy`] — a proptest strategy for arbitrary data values
//!   `d` (bounded depth/width, realistic field names);
//! * [`conforming`] — given a shape σ, deterministically generates a
//!   value `d′` with `S(d′) ⊑ σ` (used to instantiate Theorem 3);
//! * [`random_program`] — generates a random access program (client
//!   code) navigating a shape (used to instantiate Remark 1).
//!
//! Each integration-test binary links this module separately, so some
//! helpers are unused in some binaries.
#![allow(dead_code)]

use proptest::prelude::*;
use tfd_core::{Multiplicity, Shape};
use tfd_provider::{naming::tag_member_name, AccessProgram, AccessStep};
use tfd_value::corpus::Rng;
use tfd_value::{Field, Value, BODY_NAME};

const FIELD_NAMES: &[&str] = &["a", "b", "name", "value", "x"];
const RECORD_NAMES: &[&str] = &[BODY_NAME, "item", "point"];

/// A proptest strategy for structural data values.
pub fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(|i| Value::Int(i % 1000)),
        (-1000i64..1000).prop_map(|i| Value::Float(i as f64 / 4.0)),
        any::<bool>().prop_map(Value::Bool),
        prop_oneof![Just("s"), Just("text"), Just("Jan")].prop_map(|s| Value::Str(s.to_owned())),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Value::List),
            (
                prop::sample::select(RECORD_NAMES),
                prop::collection::vec((prop::sample::select(FIELD_NAMES), inner), 0..4)
            )
                .prop_map(|(name, fields)| {
                    // Deduplicate field names (records are maps).
                    let mut seen: Vec<&str> = Vec::new();
                    let fields = fields
                        .into_iter()
                        .filter(|(n, _)| {
                            if seen.contains(n) {
                                false
                            } else {
                                seen.push(n);
                                true
                            }
                        })
                        .map(|(n, v)| Field::new(n, v))
                        .collect();
                    Value::Record {
                        name: name.into(),
                        fields,
                    }
                }),
        ]
    })
}

/// Deterministically generates a value whose inferred shape is preferred
/// over σ (i.e. a valid Theorem 3 input for a provider built from σ).
pub fn conforming(shape: &Shape, rng: &mut Rng) -> Value {
    match shape {
        // ⊥ has no inhabitants; it only occurs as an empty-collection
        // element, which the List case below handles.
        Shape::Bottom => Value::Null,
        Shape::Null => Value::Null,
        Shape::Bool => Value::Bool(rng.below(2) == 0),
        Shape::Int => Value::Int(rng.below(100) as i64),
        Shape::Bit => Value::Int(rng.below(2) as i64),
        // int ⊑ float: produce either encoding.
        Shape::Float => {
            if rng.chance(0.5) {
                Value::Float(rng.below(100) as f64 / 4.0)
            } else {
                Value::Int(rng.below(100) as i64)
            }
        }
        Shape::String => Value::Str(format!("s{}", rng.below(10))),
        Shape::Date => Value::Str(format!("2012-05-{:02}", 1 + rng.below(28))),
        Shape::Nullable(inner) => {
            if rng.chance(0.3) {
                Value::Null
            } else {
                conforming(inner, rng)
            }
        }
        Shape::List(element) => {
            if **element == Shape::Bottom {
                return Value::List(Vec::new());
            }
            if rng.chance(0.1) {
                return Value::Null; // null ⊑ [σ]
            }
            let n = rng.below(4) as usize;
            Value::List((0..n).map(|_| conforming(element, rng)).collect())
        }
        Shape::Record(r) => {
            let mut fields = Vec::new();
            for f in &r.fields {
                // A nullable field may be omitted entirely (row-variable
                // convention).
                if matches!(f.shape, Shape::Nullable(_) | Shape::Null) && rng.chance(0.3) {
                    continue;
                }
                fields.push(Field::new(f.name, conforming(&f.shape, rng)));
            }
            // Extra fields are allowed (rule 9).
            if rng.chance(0.2) {
                fields.push(Field::new("extra_field", Value::Int(rng.below(10) as i64)));
            }
            Value::Record {
                name: r.name,
                fields,
            }
        }
        Shape::Top(labels) => {
            if labels.is_empty() || rng.chance(0.2) {
                // The open world: any value at all.
                Value::Str("anything".to_owned())
            } else {
                let pick = rng.below(labels.len() as u64) as usize;
                conforming(&labels[pick], rng)
            }
        }
        Shape::HeteroList(cases) => {
            let mut items = Vec::new();
            for (case_shape, multiplicity) in cases {
                let count = match multiplicity {
                    Multiplicity::One => 1,
                    Multiplicity::ZeroOrOne => rng.below(2) as usize,
                    Multiplicity::Many => rng.below(3) as usize,
                };
                for _ in 0..count {
                    let mut v = conforming(case_shape, rng);
                    if v.is_null() {
                        // A null element would not count toward the
                        // case's tag; only collection cases can produce
                        // null here, and the empty collection is the
                        // null-equivalent that does carry the tag.
                        v = Value::List(Vec::new());
                    }
                    items.push(v);
                }
            }
            Value::List(items)
        }
        // A μ-reference without its definitions table: the best
        // conforming value derivable locally is an empty record of the
        // referenced name (these generators run on env-free shapes; the
        // env-aware paths have their own tests).
        Shape::Ref(n) => Value::Record {
            name: *n,
            fields: Vec::new(),
        },
    }
}

/// Env-aware [`conforming`]: generates a value of a [`GlobalShape`],
/// resolving μ-references through the definitions table. The `budget`
/// bounds recursion depth: once exhausted, nullable content collapses
/// to null and collections to empty — both conforming — so generation
/// terminates on any environment whose references sit in nullable or
/// collection position (which is all that global inference produces).
pub fn conforming_global(global: &tfd_core::GlobalShape, rng: &mut Rng) -> Value {
    conforming_in_env(&global.root, &global.env, 6, rng)
}

fn conforming_in_env(
    shape: &Shape,
    env: &tfd_core::ShapeEnv,
    budget: usize,
    rng: &mut Rng,
) -> Value {
    match shape {
        Shape::Ref(n) => match env.get(*n) {
            Some(def) => conforming_in_env(
                &Shape::Record(def.clone()),
                env,
                budget.saturating_sub(1),
                rng,
            ),
            // A dangling reference has no inhabitants; the generators
            // in this suite never produce one.
            None => Value::Null,
        },
        Shape::Nullable(inner) => {
            if budget == 0 || rng.chance(0.3) {
                Value::Null
            } else {
                conforming_in_env(inner, env, budget, rng)
            }
        }
        Shape::List(element) => {
            if budget == 0 || **element == Shape::Bottom {
                return Value::List(Vec::new());
            }
            let n = rng.below(3) as usize;
            Value::List(
                (0..n)
                    .map(|_| conforming_in_env(element, env, budget.saturating_sub(1), rng))
                    .collect(),
            )
        }
        Shape::Record(r) => {
            let mut fields = Vec::new();
            for f in &r.fields {
                if matches!(f.shape, Shape::Nullable(_) | Shape::Null) && rng.chance(0.3) {
                    continue; // row-variable convention: omit optional fields
                }
                fields.push(Field::new(
                    f.name,
                    conforming_in_env(&f.shape, env, budget, rng),
                ));
            }
            Value::Record {
                name: r.name,
                fields,
            }
        }
        // The remaining constructors contain no references: the env-free
        // generator is already correct for them.
        other => conforming(other, rng),
    }
}

/// Generates a random access program navigating `shape` (raw-mode member
/// names), returning the program and the shape of its result.
pub fn random_program(shape: &Shape, rng: &mut Rng, max_steps: usize) -> (AccessProgram, Shape) {
    let mut steps = Vec::new();
    let mut cur = shape.clone();
    for _ in 0..max_steps {
        match &cur {
            Shape::Record(r) if !r.fields.is_empty() => {
                let pick = rng.below(r.fields.len() as u64) as usize;
                steps.push(AccessStep::Member(r.fields[pick].name.as_str().to_owned()));
                cur = r.fields[pick].shape.clone();
            }
            Shape::Nullable(inner) => {
                steps.push(AccessStep::Unwrap);
                cur = (**inner).clone();
            }
            Shape::List(element) if **element != Shape::Bottom => {
                steps.push(AccessStep::Nth(rng.below(2) as usize));
                cur = (**element).clone();
            }
            Shape::Top(labels) if !labels.is_empty() => {
                let pick = rng.below(labels.len() as u64) as usize;
                steps.push(AccessStep::Case(tag_member_name(&labels[pick])));
                cur = labels[pick].clone();
            }
            _ => break,
        }
    }
    (AccessProgram::new(steps), cur)
}
