//! Skip-mode differential suite (resilient ingest).
//!
//! The recovery layer (`tfd_core::recover`) promises that dropping a
//! malformed record is *observationally identical* to deleting it from
//! the corpus before the fold: the Fig. 3 fold `σi = csh(σ(i−1), S(di))`
//! is a semilattice join, so the clean records' shape is independent of
//! what sat between them. This suite generates corpora, corrupts `k`
//! records with structure-preserving corruptions (the boundary scanner
//! still delimits them: braces, quotes and tag depth stay balanced),
//! and asserts for JSON, XML and CSV, across shard counts 1/2/7 and
//! chunked readers, that
//!
//! 1. the Skip-mode shape equals the clean-subset shape byte-for-byte,
//! 2. the `ErrorReport` names exactly the `k` corrupted records, at
//!    their stream-global positions, in document order.

mod common;

use common::value_strategy;
use proptest::prelude::*;
use tfd_core::engine::{infer_slice, CsvFormat, DataFormat, JsonFormat, XmlFormat};
use tfd_core::recover::{infer_reader_policy, infer_slice_policy, Recovered};
use tfd_core::stream::StreamError;
use tfd_core::RecoveryPolicy;

const JOBS: &[usize] = &[1, 2, 7];
const READERS: &[(usize, usize)] = &[(7, 2), (64, 7), (4096, 1)];

/// One generated corpus: every record on its own line, `k` of them
/// corrupted, plus the expected clean subset and corrupted line numbers.
struct Mutated {
    dirty: String,
    clean: String,
    bad_lines: Vec<usize>,
}

/// Assembles a one-record-per-line corpus. `header` is prepended
/// verbatim to both texts (the CSV header row; empty otherwise); every
/// record whose flag is set is replaced by a corruption drawn
/// round-robin from `corruptions`. The first record is always kept
/// clean, so the clean subset is never empty (an empty corpus is a hard
/// error in both modes, by design).
fn mutate(header: &str, records: &[(String, bool)], corruptions: &[&str]) -> Mutated {
    let mut dirty = header.to_owned();
    let mut clean = header.to_owned();
    let mut bad_lines = Vec::new();
    let first_line = 1 + header.lines().count();
    let mut bad = 0usize;
    for (i, (rec, corrupt)) in records.iter().enumerate() {
        if *corrupt && i > 0 {
            dirty.push_str(corruptions[bad % corruptions.len()]);
            bad += 1;
            bad_lines.push(first_line + i);
        } else {
            dirty.push_str(rec);
            clean.push_str(rec);
            clean.push('\n');
        }
        dirty.push('\n');
    }
    Mutated {
        dirty,
        clean,
        bad_lines,
    }
}

/// A corruption flag, true ~35% of the time.
fn flag() -> SFn<bool> {
    (0usize..100).prop_map(|x| x < 35).boxed()
}

/// Asserts one Skip-mode run: shape and record count equal the
/// clean-subset run, and the report names each corrupted line once, in
/// document order.
fn assert_recovered<F: DataFormat>(got: &Recovered, m: &Mutated, label: &str) {
    let options = F::infer_options();
    let want = infer_slice::<F>(m.clean.as_bytes(), &options, 1)
        .unwrap_or_else(|e| panic!("{label}: clean subset must parse: {e:?}"));
    assert_eq!(
        format!("{:?}", got.summary.shape),
        format!("{:?}", want.shape),
        "{} {label}: skip shape != clean-subset shape\ndirty:\n{}",
        F::NAME,
        m.dirty
    );
    assert_eq!(
        got.summary.records,
        want.records,
        "{} {label}: record count",
        F::NAME
    );
    assert_eq!(
        got.report.total(),
        m.bad_lines.len(),
        "{} {label}: skipped-record count\ndirty:\n{}",
        F::NAME,
        m.dirty
    );
    // Every corrupted record is named at its stream-global line, in
    // document order (the kept prefix holds all of them here).
    assert_eq!(got.report.errors().len(), m.bad_lines.len());
    for (err, line) in got.report.errors().iter().zip(&m.bad_lines) {
        let msg = err.to_string();
        assert!(
            msg.contains(&format!("line {line}")),
            "{} {label}: error {msg:?} should be on line {line}",
            F::NAME
        );
    }
}

/// Drives one mutated corpus through every Skip-mode driver: the
/// in-memory sharded driver at shards 1/2/7 and the bounded-memory
/// reader at several (chunk, jobs) pairs.
fn assert_skip_equals_clean_subset<F: DataFormat>(m: &Mutated)
where
    F::Error: std::fmt::Debug,
{
    let options = F::infer_options();
    let policy = RecoveryPolicy::skip();
    for &jobs in JOBS {
        let got = infer_slice_policy::<F>(m.dirty.as_bytes(), &options, &policy, jobs)
            .unwrap_or_else(|e| panic!("{} slice jobs {jobs}: {e}", F::NAME));
        assert_recovered::<F>(&got, m, &format!("slice jobs {jobs}"));
    }
    for &(chunk, jobs) in READERS {
        let got = infer_reader_policy::<F, _>(m.dirty.as_bytes(), &options, &policy, chunk, jobs)
            .unwrap_or_else(|e| panic!("{} reader chunk {chunk} jobs {jobs}: {e}", F::NAME));
        assert_recovered::<F>(&got, m, &format!("reader chunk {chunk} jobs {jobs}"));
    }
}

// Structure-preserving corruptions: content-level garbage whose braces,
// quotes and tag depth still balance, so the boundary scanner delimits
// them exactly like the record they replace.
const JSON_BAD: &[&str] = &["{\"bad\": @}", "[1,]", "{\"a\" 1}"];
const XML_BAD: &[&str] = &["<bad x=1></bad>", "<r>&undef;</r>", "<a><b></a></b>"];
const CSV_BAD: &[&str] = &["\"x\"y,9", "\"p\"!,q"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn json_skip_mode_equals_clean_subset(
        recs in prop::collection::vec((value_strategy(), flag()), 1..10),
    ) {
        let records: Vec<(String, bool)> = recs
            .iter()
            .map(|(d, c)| {
                (tfd_json::to_json_string(&tfd_json::Json::from_value(d)), *c)
            })
            .collect();
        let m = mutate("", &records, JSON_BAD);
        assert_skip_equals_clean_subset::<JsonFormat>(&m);
    }

    #[test]
    fn xml_skip_mode_equals_clean_subset(
        recs in prop::collection::vec(
            (
                ("[a-z]", "[a-z0-9]{0,3}", "[a-z 0-9]{0,6}").prop_map(|(h, n, t)| {
                    let name = format!("{h}{n}");
                    if t.is_empty() {
                        format!("<{name}/>")
                    } else {
                        format!("<{name}>{t}</{name}>")
                    }
                }),
                flag(),
            ),
            1..10,
        ),
    ) {
        let m = mutate("", &recs, XML_BAD);
        assert_skip_equals_clean_subset::<XmlFormat>(&m);
    }

    #[test]
    fn csv_skip_mode_equals_clean_subset(
        recs in prop::collection::vec(
            (
                (0i64..1000, "[a-z]{0,5}").prop_map(|(a, b)| format!("{a},{b}")),
                flag(),
            ),
            1..10,
        ),
    ) {
        let m = mutate("a,b\n", &recs, CSV_BAD);
        assert_skip_equals_clean_subset::<CsvFormat>(&m);
    }

    /// The error budget is exact: a budget of exactly `k` lets the run
    /// through, `k − 1` aborts with the document-order first error —
    /// regardless of sharding.
    #[test]
    fn budget_boundary_is_exact(
        recs in prop::collection::vec((value_strategy(), flag()), 2..8),
    ) {
        let records: Vec<(String, bool)> = recs
            .iter()
            .map(|(d, c)| {
                (tfd_json::to_json_string(&tfd_json::Json::from_value(d)), *c)
            })
            .collect();
        let m = mutate("", &records, JSON_BAD);
        let k = m.bad_lines.len();
        prop_assume!(k > 0);
        let options = JsonFormat::infer_options();
        let mut policy = RecoveryPolicy::skip();
        for &jobs in JOBS {
            policy.max_errors = k;
            let ok = infer_slice_policy::<JsonFormat>(
                m.dirty.as_bytes(), &options, &policy, jobs,
            );
            prop_assert!(ok.is_ok(), "budget k at jobs {jobs}: {ok:?}");

            policy.max_errors = k - 1;
            let err = infer_slice_policy::<JsonFormat>(
                m.dirty.as_bytes(), &options, &policy, jobs,
            );
            match err {
                Err(StreamError::TooManyErrors { limit, first }) => {
                    prop_assert_eq!(limit, k - 1);
                    prop_assert!(
                        first.to_string().contains(&format!("line {}", m.bad_lines[0])),
                        "first {} should be line {}", first, m.bad_lines[0]
                    );
                }
                other => {
                    return Err(TestCaseError::Fail(format!(
                        "expected TooManyErrors at jobs {jobs}, got {other:?}"
                    )));
                }
            }
        }
    }
}
