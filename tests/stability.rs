//! Stability of inference (Remark 1, §6.5), mechanically.
//!
//! The Remark: given samples `d1, …, dn`, user code `e` against
//! `⟦S(d1, …, dn)⟧`, and a new sample `dn+1`, there exists `e′` (obtained
//! by the three local transformations) such that whenever
//! `e[x ← e1 d] ↝ v`, also `e′[x ← e2 d] ↝ v`.
//!
//! User code is modelled as an access program (member chains with
//! unwraps, indexing and case selections); `migrate` inserts exactly the
//! Remark's transformations. The property test runs the original program
//! against the old provider and the migrated program against the new
//! provider on the *same* input and compares results.

mod common;

use common::{random_program, value_strategy};
use proptest::prelude::*;
use tfd_core::{infer_many, is_preferred, InferOptions};
use tfd_foo::{run, Outcome};
use tfd_provider::{apply, migrate, provide, AccessProgram, AccessStep};
use tfd_value::corpus::Rng;
use tfd_value::Value;

/// Runs an access program against a provider on an input document.
fn execute(program: &AccessProgram, shape: &tfd_core::Shape, d: &Value) -> Outcome {
    let provided = provide(shape);
    let expr = apply(program, provided.convert(d));
    run(&provided.classes, &expr)
}

/// Normalizes a result value for comparison across two providers: the
/// generated class *names* differ between ⟦σ_old⟧ and ⟦σ_new⟧, but the
/// observable content (the wrapped data values) must agree.
fn normalize(e: &tfd_foo::Expr) -> tfd_foo::Expr {
    use tfd_foo::Expr;
    match e {
        Expr::New(_, args) => Expr::New("_".into(), args.iter().map(normalize).collect()),
        Expr::SomeLit(inner) => Expr::some(normalize(inner)),
        Expr::Cons(h, t) => Expr::Cons(Box::new(normalize(h)), Box::new(normalize(t))),
        other => other.clone(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Remark 1, end to end: migrated programs preserve the results of
    /// the original program on all inputs where the original succeeded.
    #[test]
    fn remark1_migration_preserves_results(
        samples in prop::collection::vec(value_strategy(), 1..3),
        new_sample in value_strategy(),
        seed in any::<u64>(),
    ) {
        let options = InferOptions::formal();
        let old_shape = infer_many(&samples, &options);
        let mut extended = samples.clone();
        extended.push(new_sample);
        let new_shape = infer_many(&extended, &options);
        prop_assert!(is_preferred(&old_shape, &new_shape));

        // A random program over the old provided type.
        let (program, final_shape) = random_program(&old_shape, &mut Rng::new(seed), 4);
        // A program ending at the uninhabited-by-observation shapes
        // (null/⊥ map to memberless classes, Fig. 8 last rule) yields an
        // opaque wrapper on the old side and possibly a widened value on
        // the new side; the Remark's value preservation is about
        // observable results, so such programs are skipped.
        prop_assume!(!matches!(final_shape, tfd_core::Shape::Null | tfd_core::Shape::Bottom));

        let migrated = match migrate(&program, &old_shape, &new_shape) {
            Ok(m) => m,
            Err(e) => {
                return Err(TestCaseError::fail(format!(
                    "migration failed for {program:?} from {old_shape} to {new_shape}: {e}"
                )));
            }
        };

        // Evaluate on each original sample (inputs where the old program
        // may succeed).
        for d in &samples {
            let old_out = execute(&program, &old_shape, d);
            if let Outcome::Value(v) = old_out {
                let new_out = execute(&migrated, &new_shape, d);
                let Outcome::Value(v2) = &new_out else {
                    return Err(TestCaseError::fail(format!(
                        "migrated program failed on {d} (old {program:?} gave {v}, \
                         new {migrated:?} gave {new_out:?}; shapes {old_shape} → {new_shape})"
                    )));
                };
                prop_assert_eq!(
                    normalize(v2),
                    normalize(&v),
                    "migrated program changed the result on {} (old {:?}, new {:?}, shapes {} → {})",
                    d, &program, &migrated, &old_shape, &new_shape
                );
            }
        }
    }

    /// Migration is the identity when the new sample does not change the
    /// inferred shape (predictability, §6.5).
    #[test]
    fn remark1_identity_when_shape_stable(
        sample in value_strategy(),
        seed in any::<u64>(),
    ) {
        let options = InferOptions::formal();
        let shape = infer_many([&sample], &options);
        // Re-adding the same sample never changes the shape...
        let shape2 = infer_many([&sample, &sample], &options);
        prop_assert_eq!(&shape, &shape2);
        // ...so programs migrate to themselves.
        let (program, _) = random_program(&shape, &mut Rng::new(seed), 4);
        let migrated = migrate(&program, &shape, &shape2).unwrap();
        prop_assert_eq!(program, migrated);
    }
}

// --- The three §6.5 scenarios, concretely ---

fn json(text: &str) -> Value {
    tfd_json::parse(text).unwrap().to_value()
}

#[test]
fn scenario_field_becomes_optional() {
    // Samples all had "age"; the new sample lacks it → transformation 1.
    let s1 = json(r#"{ "name": "Jan", "age": 25 }"#);
    let old_shape = infer_many([&s1], &InferOptions::formal());
    let s2 = json(r#"{ "name": "Tomas" }"#);
    let new_shape = infer_many([&s1, &s2], &InferOptions::formal());

    let program = AccessProgram::members(["age"]);
    let migrated = migrate(&program, &old_shape, &new_shape).unwrap();
    assert_eq!(
        migrated,
        AccessProgram::new([AccessStep::Member("age".into()), AccessStep::Unwrap])
    );
    // Old program on the old data: 25. Migrated on the same data: 25.
    assert_eq!(
        execute(&migrated, &new_shape, &s1),
        Outcome::Value(tfd_foo::Expr::data(25i64))
    );
    // Migrated on the new (age-less) data raises the §6.5 exception —
    // the paper: "a variation of (i) that uses an appropriate default
    // value rather than throwing an exception" is the user's choice.
    assert_eq!(execute(&migrated, &new_shape, &s2), Outcome::Exception);
}

#[test]
fn scenario_int_becomes_float() {
    // Transformation 3: int(e).
    let s1 = json(r#"{ "count": 5 }"#);
    let old_shape = infer_many([&s1], &InferOptions::formal());
    let s2 = json(r#"{ "count": 5.5 }"#);
    let new_shape = infer_many([&s1, &s2], &InferOptions::formal());

    let program = AccessProgram::members(["count"]);
    let migrated = migrate(&program, &old_shape, &new_shape).unwrap();
    assert_eq!(
        migrated,
        AccessProgram::new([AccessStep::Member("count".into()), AccessStep::AsInt])
    );
    assert_eq!(
        execute(&migrated, &new_shape, &s1),
        Outcome::Value(tfd_foo::Expr::data(5i64))
    );
}

#[test]
fn scenario_shape_becomes_top() {
    // Transformation 2: a field that was a record in all old samples
    // becomes any⟨record, string⟩ when a string sample arrives.
    let s1 = json(r#"{ "payload": { "x": 1 } }"#);
    let old_shape = infer_many([&s1], &InferOptions::formal());
    let s2 = json(r#"{ "payload": "raw" }"#);
    let new_shape = infer_many([&s1, &s2], &InferOptions::formal());

    let program = AccessProgram::new([
        AccessStep::Member("payload".into()),
        AccessStep::Member("x".into()),
    ]);
    let migrated = migrate(&program, &old_shape, &new_shape).unwrap();
    // A case selection was inserted between the two member accesses.
    assert_eq!(migrated.steps.len(), 3);
    assert!(matches!(&migrated.steps[1], AccessStep::Case(_)));
    assert_eq!(
        execute(&migrated, &new_shape, &s1),
        Outcome::Value(tfd_foo::Expr::data(1i64))
    );
    // On the string payload the case selection raises the exception:
    assert_eq!(execute(&migrated, &new_shape, &s2), Outcome::Exception);
}

#[test]
fn error_handling_workflow_add_failing_input_as_sample() {
    // §6.5: "When a program fails on some input, the input can be added
    // as another sample. This makes some fields optional and the code can
    // be updated accordingly."
    let sample = json(r#"{ "value": 1 }"#);
    let options = InferOptions::formal();
    let shape = infer_many([&sample], &options);
    let provided = provide(&shape);

    // A new input fails (value is null here):
    let failing = json(r#"{ "value": null }"#);
    assert!(tfd_provider::deep_eval(&provided, &failing).is_err());

    // Adding it as a sample fixes the failure:
    let new_shape = infer_many([&sample, &failing], &options);
    let new_provided = provide(&new_shape);
    assert!(tfd_provider::deep_eval(&new_provided, &failing).is_ok());
    assert!(tfd_provider::deep_eval(&new_provided, &sample).is_ok());
}

#[test]
fn scenario_recursive_provider_migrates_through_the_env() {
    // Satellite regression (μ-aware stability): a program navigating
    // *through a recursion point* of a recursive provider migrates with
    // the Remark 1 transformations when the comparison runs through the
    // shape environment — and provably cannot when it runs on the
    // finite-tree rendering, which cuts the recursive class to a ↺div
    // reference.
    use tfd_core::{globalize_env, is_preferred_global};
    use tfd_provider::migrate_global;
    use tfd_value::rec;

    let opts = InferOptions::xml();
    let d1 = rec(
        "div",
        [
            ("child", rec("div", [("x", Value::Int(1))])),
            ("x", Value::Int(7)),
        ],
    );
    let d2 = rec(
        "div",
        [
            ("child", rec("div", [("x", Value::Float(2.5))])),
            ("x", Value::Int(9)),
        ],
    );
    let old = globalize_env(infer_many([&d1], &opts));
    let new = globalize_env(infer_many([&d1, &d2], &opts));
    assert!(!old.env.is_empty(), "the corpus is genuinely recursive");
    assert!(is_preferred_global(&old, &new));

    // root.child (unwrap) .x — the second member access crosses the
    // μ-reference back into the div class.
    let program = AccessProgram::new([
        AccessStep::Member("child".into()),
        AccessStep::Unwrap,
        AccessStep::Member("x".into()),
    ]);
    let migrated = migrate_global(&program, &old, &new).unwrap();
    // x widened int → float inside the class: transformation 3 lands.
    assert_eq!(
        migrated.steps.last(),
        Some(&AccessStep::AsInt),
        "{migrated:?}"
    );
    // The migrated program still compiles to a Foo expression (the
    // runtime side is structural, so the μ-cut does not block it).
    let expr = apply(&migrated, tfd_foo::Expr::var("root"));
    assert!(expr.to_string().contains("int("), "{expr}");

    // The finite-tree migrate stops at the recursion cut:
    let err = migrate(&program, &old.inline(), &new.inline()).unwrap_err();
    assert!(
        err.0.contains("member access on non-record"),
        "unexpected error: {err}"
    );
}
