//! The proc-macro type providers, exercised end to end.
//!
//! Each invocation here runs the full pipeline at *compile time*:
//! sample text → front-end parser → shape inference → Rust code
//! generation → compilation into this test binary.

// A provider with two samples: the paper's multi-sample workflow (§3.4:
// "This operation is used when calling a type provider with multiple
// samples").
types_from_data::json_provider! {
    mod multi;
    root Reading;
    sample r#"{ "sensor": "t1", "value": 21 }"#;
    sample r#"{ "sensor": "t2" }"#;
}

// Inline JSON sample with nested records and arrays.
types_from_data::json_provider! {
    mod nested;
    root Outer;
    sample r#"{ "items": [ { "id": 1, "tags": ["a", "b"] } ], "total": 1 }"#;
}

// XML with attributes, nested elements and a numeric body.
types_from_data::xml_provider! {
    mod config;
    root Config;
    sample r#"<config version="2"><timeout>30</timeout><verbose>true</verbose></config>"#;
}

// CSV with the §6.2 inference (bit column, missing values, dates).
types_from_data::csv_provider! {
    mod readings;
    root Reading;
    sample "when,level,ok\n2021-01-01,3.5,1\n2021-01-02,,0\n";
}

// Keyword-colliding and unicode field names.
types_from_data::json_provider! {
    mod awkward;
    root Awkward;
    sample r#"{ "type": "x", "fn": 1, "Víc slov": true }"#;
}

#[test]
fn multi_sample_merges_field_presence() {
    // `value` is missing in the second sample → Option<i64>.
    let rows = multi::parse(r#"{ "sensor": "t9", "value": 7 }"#).unwrap();
    assert_eq!(rows.sensor().unwrap(), "t9");
    assert_eq!(rows.value().unwrap(), Some(7));
    let rows = multi::parse(r#"{ "sensor": "t0" }"#).unwrap();
    assert_eq!(rows.value().unwrap(), None);
}

#[test]
fn nested_records_and_arrays() {
    let outer = nested::sample();
    assert_eq!(outer.total().unwrap(), 1);
    let items = outer.items().unwrap();
    assert_eq!(items.len(), 1);
    assert_eq!(items[0].id().unwrap(), 1);
    assert_eq!(
        items[0].tags().unwrap(),
        vec!["a".to_owned(), "b".to_owned()]
    );
}

#[test]
fn xml_attributes_and_text_elements() {
    let c = config::sample();
    // version="2" literal-infers to an int; <timeout>30</timeout> is a
    // text-only element collapsed to its content (§6.3).
    assert_eq!(c.version().unwrap(), 2);
    assert_eq!(c.timeout().unwrap(), 30);
    assert!(c.verbose().unwrap());
}

#[test]
fn csv_columns_with_bit_and_missing() {
    let rows = readings::sample();
    assert_eq!(rows.len(), 2);
    // `when` is a consistent date column → Date.
    assert_eq!(rows[0].when().unwrap().to_string(), "2021-01-01");
    // `level` has a missing cell → Option<f64>.
    assert_eq!(rows[0].level().unwrap(), Some(3.5));
    assert_eq!(rows[1].level().unwrap(), None);
    // `ok` is 0/1 → bool via the bit shape.
    assert!(rows[0].ok().unwrap());
    assert!(!rows[1].ok().unwrap());
}

#[test]
fn awkward_names_are_escaped() {
    let a = awkward::sample();
    // Rust keywords get a trailing underscore; the data lookup still uses
    // the original JSON keys. Non-ASCII identifier characters are legal
    // Rust and survive the snake_case transformation.
    assert_eq!(a.type_().unwrap(), "x");
    assert_eq!(a.fn_().unwrap(), 1);
    assert!(a.víc_slov().unwrap());
}

#[test]
fn sample_constant_is_embedded() {
    assert!(multi::SAMPLE.contains("t1"));
    assert!(config::SAMPLE.contains("<config"));
}

#[test]
fn load_reads_files() {
    let people = std::path::Path::new("examples/data/people.json");
    assert!(people.exists());
    // Reuse the nested provider's load on a type mismatch: parse errors
    // surface as Err, not panics.
    assert!(nested::load("examples/data/doc.xml").is_err());
}

#[test]
fn parse_rejects_malformed_input() {
    assert!(multi::parse("{").is_err());
    assert!(config::parse("<a>").is_err());
    assert!(readings::parse("").is_err());
}

#[test]
fn schema_change_detection_at_access_time() {
    // §6.1: if the data shape drifts from the sample, access fails with a
    // precise error (the runtime analogue of re-compilation failing).
    let drifted = multi::parse(r#"{ "sensor": { "id": "t1" } }"#).unwrap();
    let err = drifted.sensor().unwrap_err();
    assert_eq!(err.path.to_string(), "$.sensor");
}

// The footnote-10 HTML provider: a table from a web page.
types_from_data::html_provider! {
    mod cities;
    root City;
    sample r#"<html><body><h1>ignored</h1>
        <table id="t">
          <tr><th>City</th><th>Temp</th><th>Rain</th></tr>
          <tr><td>Prague</td><td>5</td><td>0.5</td></tr>
          <tr><td>London<td>12<td>2.5</tr>
        </table></body></html>"#;
}

#[test]
fn html_provider_types_table_columns() {
    let rows = cities::sample();
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0].city().unwrap(), "Prague");
    // Temp column is all ints, Rain all floats (CSV-style inference):
    assert_eq!(rows[1].temp().unwrap(), 12);
    assert_eq!(rows[1].rain().unwrap(), 2.5);
}

#[test]
fn html_provider_parse_types_other_pages() {
    let page = r#"<table><tr><th>City</th><th>Temp</th><th>Rain</th></tr>
                  <tr><td>Oslo</td><td>-3</td><td>1.0</td></tr></table>"#;
    let rows = cities::parse(page).unwrap();
    assert_eq!(rows[0].city().unwrap(), "Oslo");
    assert_eq!(rows[0].temp().unwrap(), -3);
    // And a page without tables errors cleanly:
    assert!(cities::parse("<p>no tables</p>").is_err());
}

#[test]
fn parse_in_scopes_document_vocabulary_to_the_callers_arena() {
    // A batch of documents parsed through the generated `parse_in` interns
    // into the caller's arena, not the process-wide table — so the whole
    // batch's vocabulary is reclaimed when the arena drops.
    let arena = types_from_data::value::Interner::new();
    let doc = r#"{ "sensor": "t1", "value": 3, "zz_scoped_only_key": true }"#;
    let rows = multi::parse_in(doc, &arena).unwrap();
    assert_eq!(rows.sensor().unwrap(), "t1");
    assert_eq!(rows.value().unwrap(), Some(3));

    let cfg = config::parse_in(
        r#"<config version="9"><timeout>1</timeout><verbose>false</verbose></config>"#,
        &arena,
    )
    .unwrap();
    assert_eq!(cfg.version().unwrap(), 9);

    let r = readings::parse_in("when,level,ok\n2022-02-02,1.5,1\n", &arena).unwrap();
    assert_eq!(r.len(), 1);

    // The field only this document mentions lives in the scoped arena and
    // never reached the global one.
    assert!(arena.lookup("zz_scoped_only_key").is_some());
    assert!(types_from_data::value::Interner::global()
        .lookup("zz_scoped_only_key")
        .is_none());
}
