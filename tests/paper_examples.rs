//! The paper's worked examples, end to end (experiments E1–E5).
//!
//! Each test parses the exact sample document printed in the paper, runs
//! inference and the provider, and checks the result against the types
//! and values the paper reports.

use tfd_core::{globalize, infer_with, InferOptions, Multiplicity, Shape};
use tfd_provider::{provide_idiomatic, signature};
use tfd_runtime::Node;
use tfd_value::{Value, BODY_NAME};

fn load(name: &str) -> String {
    std::fs::read_to_string(format!("examples/data/{name}")).unwrap()
}

// --- E1: §1 + Appendix A, the weather service ---

#[test]
fn e1_weather_main_temp_is_5() {
    let doc = tfd_json::parse(&load("weather.json")).unwrap().to_value();
    let node = Node::new(doc.clone());
    // The §1 access path: root.Main.Temp == 5 (as a float in the paper's
    // printf "%f").
    let temp = node
        .field("main")
        .unwrap()
        .field("temp")
        .unwrap()
        .as_f64()
        .unwrap();
    assert_eq!(temp, 5.0);

    // The inferred type makes Main a nested record with Temp : int (the
    // sample value is the literal 5).
    let shape = infer_with(&doc, &InferOptions::json());
    let provided = provide_idiomatic(&shape, "Weather");
    let sig = signature(&provided);
    assert!(sig.contains("type Weather ="), "{sig}");
    assert!(sig.contains("member Main : Main"), "{sig}");
    assert!(sig.contains("member Temp : int"), "{sig}");
    assert!(sig.contains("member Humidity : int"), "{sig}");
    // Floats in the sample stay floats:
    assert!(sig.contains("member Lon : float"), "{sig}");
    // And snake_cased JSON keys become PascalCase members (§6.3):
    assert!(sig.contains("member TempMin : int"), "{sig}");
}

// --- E2: §2.1, people.json ---

#[test]
fn e2_people_entity_type_matches_paper() {
    let doc = tfd_json::parse(&load("people.json")).unwrap().to_value();
    let shape = infer_with(&doc, &InferOptions::json());
    // The paper's shape: a collection of records with name : string and
    // age : nullable float.
    let Shape::List(element) = &shape else {
        panic!("expected a collection, got {shape}");
    };
    assert_eq!(
        **element,
        Shape::record(
            BODY_NAME,
            [("name", Shape::String), ("age", Shape::Float.ceil())]
        )
    );
    // The provided type printed in §2.1:
    let provided = provide_idiomatic(element, "Entity");
    assert_eq!(
        signature(&provided),
        "type Entity =\n  member Name : string\n  member Age : option<float>\n"
    );
}

#[test]
fn e2_people_runtime_access() {
    let doc = tfd_json::parse(&load("people.json")).unwrap().to_value();
    let node = Node::new(doc);
    let items = node.elements().unwrap();
    let names: Vec<String> = items
        .iter()
        .map(|i| i.field("name").unwrap().as_str().unwrap().to_owned())
        .collect();
    assert_eq!(names, vec!["Jan", "Tomas", "Alexander"]);
    let ages: Vec<Option<f64>> = items
        .iter()
        .map(|i| i.field("age").unwrap().opt().map(|n| n.as_f64().unwrap()))
        .collect();
    assert_eq!(ages, vec![Some(25.0), None, Some(3.5)]);
}

// --- E3: §2.2, the XML document format ---

#[test]
fn e3_xml_doc_element_type_matches_paper() {
    let root = tfd_xml::parse(&load("doc.xml")).unwrap();
    let value = root.to_value();
    // §2.2 presentation: without §6.4 hetero collections the children
    // infer as a collection of a labelled top with the three statically
    // known cases.
    let options = InferOptions {
        hetero_collections: false,
        singleton_collections: false,
        detect_dates: true,
        infer_bits: false,
        stringly_primitives: false,
    };
    let shape = infer_with(&value, &options);
    let Shape::Record(doc_record) = &shape else {
        panic!("expected doc record, got {shape}")
    };
    let body = doc_record.field(BODY_NAME).unwrap();
    let Shape::List(element) = body else {
        panic!("expected element collection, got {body}")
    };
    let Shape::Top(labels) = element.as_ref() else {
        panic!("expected labelled top, got {element}")
    };
    let label_names: Vec<String> = labels
        .iter()
        .map(|l| l.as_record().unwrap().name.to_string())
        .collect();
    assert_eq!(label_names, vec!["heading", "image", "p"]);

    // The provided Element type of §2.2: three option-typed members.
    let provided = provide_idiomatic(element, "Element");
    let sig = signature(&provided);
    assert!(sig.contains("member Heading : option<string>"), "{sig}");
    assert!(sig.contains("member P : option<string>"), "{sig}");
    assert!(sig.contains("member Image : option<Image>"), "{sig}");
}

#[test]
fn e3_open_world_table_answers_none() {
    // "For a table element, all three properties would return None."
    let element_shape = Shape::Top(vec![
        Shape::record("heading", [(BODY_NAME, Shape::String)]),
        Shape::record("image", [("source", Shape::String)]),
        Shape::record("p", [(BODY_NAME, Shape::String)]),
    ]);
    let table = tfd_xml::parse("<table><tr/></table>").unwrap().to_value();
    let node = Node::new(table);
    let Shape::Top(labels) = &element_shape else {
        unreachable!()
    };
    for label in labels {
        assert!(node.case(label).is_none(), "table matched {label}");
    }
}

// --- E4: §2.3, the World Bank response ---

#[test]
fn e4_worldbank_type_matches_paper() {
    let doc = tfd_json::parse(&load("worldbank.json")).unwrap().to_value();
    let shape = infer_with(&doc, &InferOptions::json());
    // A heterogeneous collection with one record and one collection case,
    // both with multiplicity 1 (§2.3: "As there is exactly one record and
    // one array, the provided type WorldBank exposes them as properties
    // Record and Array").
    let Shape::HeteroList(cases) = &shape else {
        panic!("expected heterogeneous collection, got {shape}")
    };
    assert_eq!(cases.len(), 2);
    assert_eq!(cases[0].1, Multiplicity::One);
    assert_eq!(cases[1].1, Multiplicity::One);

    let provided = provide_idiomatic(&shape, "WorldBank");
    let sig = signature(&provided);
    // The paper's printed type:
    //   Record : { Pages : int }
    //   Item   : { Date : int, Indicator : string, Value : option float }
    assert!(sig.contains("member Record : Record"), "{sig}");
    assert!(sig.contains("member Array : list<"), "{sig}");
    assert!(sig.contains("member Pages : int"), "{sig}");
    assert!(sig.contains("member Date : int"), "{sig}");
    assert!(sig.contains("member Indicator : string"), "{sig}");
    assert!(sig.contains("member Value : option<float>"), "{sig}");
}

#[test]
fn e4_worldbank_runtime_values() {
    let doc = tfd_json::parse(&load("worldbank.json")).unwrap().to_value();
    let node = Node::new(doc);
    let record_tag = tfd_core::Tag::Name(tfd_value::body_name());
    let meta = node.tagged_one("Record", &record_tag).unwrap();
    assert_eq!(meta.field("pages").unwrap().as_i64().unwrap(), 5);

    let array = node
        .tagged_one("Array", &tfd_core::Tag::Collection)
        .unwrap();
    let rows = array.elements().unwrap();
    assert_eq!(rows.len(), 2);
    // "2012" reads as the int 2012 (content-based inference, §2.3):
    assert_eq!(rows[0].field("date").unwrap().as_i64().unwrap(), 2012);
    // null value → None; "35.14229" → Some float:
    assert!(rows[0].field("value").unwrap().opt().is_none());
    let v = rows[1].field("value").unwrap().as_f64().unwrap();
    assert!((v - 35.14229).abs() < 1e-9);
}

// --- E5: §6.2, the CSV air-quality file ---

#[test]
fn e5_airquality_columns_match_paper() {
    let file = tfd_csv::parse(&load("airquality.csv")).unwrap();
    let value = file.to_value();
    let shape = infer_with(&value, &InferOptions::csv());
    let Shape::List(row) = &shape else {
        panic!("expected rows, got {shape}")
    };
    let row = row.as_record().expect("row record");
    // Ozone: int(41) ⊔ float(36.3) → float.
    assert_eq!(row.field("Ozone"), Some(&Shape::Float));
    // Temp: ints with a #N/A → nullable int.
    assert_eq!(row.field("Temp"), Some(&Shape::Int.ceil()));
    // Date: mixed formats → string (would be date if consistent).
    assert_eq!(row.field("Date"), Some(&Shape::String));
    // Autofilled: only 0/1 → bit ("we also infer Autofilled as Boolean").
    assert_eq!(row.field("Autofilled"), Some(&Shape::Bit));
}

#[test]
fn e5_consistent_date_column_infers_date() {
    let csv = "When\n2012-05-01\nMay 3, 2012\n2012/06/07\n";
    let value = tfd_csv::parse(csv).unwrap().to_value();
    let shape = infer_with(&value, &InferOptions::csv());
    let Shape::List(row) = &shape else { panic!() };
    assert_eq!(row.as_record().unwrap().field("When"), Some(&Shape::Date));
}

// --- §6.2: the XML root/item encoding and global inference ---

#[test]
fn xml_root_item_encoding_matches_paper() {
    let root = tfd_xml::parse(r#"<root id="1"><item>Hello!</item></root>"#).unwrap();
    let v = root.to_value();
    // root {id ↦ 1, • ↦ [item {• ↦ "Hello!"}]}
    assert_eq!(v.record_name(), Some("root"));
    assert_eq!(v.field("id"), Some(&Value::Int(1)));
    let body = v.field(BODY_NAME).unwrap().elements().unwrap().to_vec();
    assert_eq!(body[0].record_name(), Some("item"));
    assert_eq!(body[0].field(BODY_NAME), Some(&Value::str("Hello!")));

    // The §6.3 provided type: Root with Id : int and Item : string.
    let shape = infer_with(&v, &InferOptions::xml());
    let provided = provide_idiomatic(&shape, "Root");
    let sig = signature(&provided);
    assert!(sig.contains("member Id : int"), "{sig}");
    assert!(sig.contains("member Item : string"), "{sig}");
}

#[test]
fn xml_global_inference_unifies_same_name_elements() {
    // §6.2: "in XHTML all <table> elements will be treated as values of
    // the same type".
    let doc = tfd_xml::parse(
        "<page>\
           <section><t a=\"1\"/></section>\
           <aside><t b=\"2\"/></aside>\
         </page>",
    )
    .unwrap()
    .to_value();
    let options = InferOptions {
        hetero_collections: false,
        singleton_collections: false,
        ..InferOptions::xml()
    };
    let local = infer_with(&doc, &options);
    let global = globalize(local);
    // After globalization both <t> occurrences have both optional fields
    // (field order depends on join order and is not significant).
    let text = global.to_string();
    assert_eq!(text.matches("t {").count(), 2, "{text}");
    assert_eq!(text.matches("a : nullable int").count(), 2, "{text}");
    assert_eq!(text.matches("b : nullable int").count(), 2, "{text}");
}
