//! End-to-end pipeline tests: the same logical data entering through
//! different front-ends, full sample→shape→provider→evaluation chains,
//! and codegen output sanity on the paper's documents.

use tfd_core::{infer_with, InferOptions, Shape};
use tfd_provider::{deep_eval, provide_idiomatic, signature};
use tfd_runtime::Node;

// A recursive XML provider: <ul> contains <li> contains <ul> — the §6.2
// global mode unifies the name classes into a mutually recursive
// definitions table, and codegen emits genuinely recursive Rust structs
// (`Ul` ↔ `Li`), compiled into this test binary right here.
types_from_data::xml_provider! {
    mod ul_tree;
    root UlTree;
    global;
    sample r#"<ul id="1"><li>leaf</li><li><ul id="2"><li>deep</li></ul></li></ul>"#;
}

/// The same table of people as JSON, XML and CSV. The front-ends encode
/// differently (JSON records are `•`, XML rows are named elements), but
/// the *fields* and their inferred primitive shapes must agree.
#[test]
fn same_data_through_three_front_ends() {
    let json =
        tfd_json::parse(r#"[ { "name": "Jan", "age": 25 }, { "name": "Tomas", "age": 30 } ]"#)
            .unwrap()
            .to_value();
    let xml = tfd_xml::parse(
        r#"<people><person name="Jan" age="25"/><person name="Tomas" age="30"/></people>"#,
    )
    .unwrap()
    .to_value();
    let csv = tfd_csv::parse("name,age\nJan,25\nTomas,30\n")
        .unwrap()
        .to_value();

    let formal = InferOptions::formal();

    // JSON: [• {name : string, age : int}]
    let json_shape = infer_with(&json, &formal);
    let Shape::List(json_row) = &json_shape else {
        panic!("{json_shape}")
    };
    let json_row = json_row.as_record().unwrap();

    // XML: people {• : [person {name : string, age : int}]}
    let xml_shape = infer_with(&xml, &formal);
    let xml_row = xml_shape
        .as_record()
        .unwrap()
        .field(tfd_value::BODY_NAME)
        .unwrap();
    let Shape::List(xml_row) = xml_row else {
        panic!("{xml_row}")
    };
    let xml_row = xml_row.as_record().unwrap();

    // CSV: [• {name : string, age : int}] (bit does not fire: ages aren't 0/1)
    let csv_shape = infer_with(&csv, &InferOptions::csv());
    let Shape::List(csv_row) = &csv_shape else {
        panic!("{csv_shape}")
    };
    let csv_row = csv_row.as_record().unwrap();

    for row in [json_row, xml_row, csv_row] {
        assert_eq!(row.field("name"), Some(&Shape::String), "in {row:?}");
        assert_eq!(row.field("age"), Some(&Shape::Int), "in {row:?}");
    }
}

/// Cross-format safety: a provider inferred from the JSON encoding
/// accepts rows from the CSV encoding of the same data (both are
/// `•`-named records with identical fields).
#[test]
fn provider_from_json_accepts_csv_rows() {
    let json = tfd_json::parse(r#"[ { "name": "Jan", "age": 25 } ]"#)
        .unwrap()
        .to_value();
    let shape = infer_with(&json, &InferOptions::formal());
    let provided = tfd_provider::provide(&shape);

    let csv = tfd_csv::parse("name,age\nGrace,85\nAlan,41\n")
        .unwrap()
        .to_value();
    deep_eval(&provided, &csv).expect("CSV rows conform to the JSON-inferred shape");
}

/// The full generated-code pipeline on every paper document: the emitted
/// Rust must at least be structurally complete (module, structs,
/// from_value, parse) for each sample. (Compilation of generated code is
/// covered by the macro tests, which compile five providers into the test
/// binary.)
#[test]
fn codegen_emits_complete_modules_for_all_paper_samples() {
    use tfd_codegen::{generate, CodegenOptions, SourceFormat};
    let cases: Vec<(&str, SourceFormat, Shape)> = vec![
        (
            "weather",
            SourceFormat::Json,
            infer_with(
                &tfd_json::parse(&std::fs::read_to_string("examples/data/weather.json").unwrap())
                    .unwrap()
                    .to_value(),
                &InferOptions::json(),
            ),
        ),
        (
            "worldbank",
            SourceFormat::Json,
            infer_with(
                &tfd_json::parse(&std::fs::read_to_string("examples/data/worldbank.json").unwrap())
                    .unwrap()
                    .to_value(),
                &InferOptions::json(),
            ),
        ),
        (
            "doc",
            SourceFormat::Xml,
            infer_with(
                &tfd_xml::parse(&std::fs::read_to_string("examples/data/doc.xml").unwrap())
                    .unwrap()
                    .to_value(),
                &InferOptions::xml(),
            ),
        ),
        (
            "airquality",
            SourceFormat::Csv,
            infer_with(
                &tfd_csv::parse(&std::fs::read_to_string("examples/data/airquality.csv").unwrap())
                    .unwrap()
                    .to_value(),
                &InferOptions::csv(),
            ),
        ),
    ];
    for (name, format, shape) in cases {
        let options = CodegenOptions {
            format: Some(format),
            ..CodegenOptions::default()
        };
        let code = generate(&shape, name, "Root", &options);
        assert!(
            code.contains(&format!("pub mod {name}")),
            "{name}: no module"
        );
        assert!(code.contains("pub fn from_value"), "{name}: no from_value");
        assert!(code.contains("pub fn parse"), "{name}: no parse");
        assert!(code.contains("pub fn load"), "{name}: no load");
        // Deterministic:
        assert_eq!(
            code,
            generate(&shape, name, "Root", &options),
            "{name}: nondeterministic"
        );
    }
}

/// The runtime and the Foo interpreter agree on accept/reject for the
/// paper's documents: if deep_eval succeeds, the Node-based access of the
/// same fields succeeds too.
#[test]
fn runtime_and_interpreter_agree_on_weather() {
    let value = tfd_json::parse(&std::fs::read_to_string("examples/data/weather.json").unwrap())
        .unwrap()
        .to_value();
    let shape = infer_with(&value, &InferOptions::formal());
    let provided = tfd_provider::provide(&shape);
    deep_eval(&provided, &value).expect("interpreter accepts the sample");

    // Mirror a few accesses through the runtime:
    let node = Node::new(value);
    assert_eq!(node.field("name").unwrap().as_str().unwrap(), "Prague");
    assert_eq!(
        node.field("sys")
            .unwrap()
            .field("country")
            .unwrap()
            .as_str()
            .unwrap(),
        "CZ"
    );
    assert_eq!(
        node.field("weather")
            .unwrap()
            .index(0)
            .unwrap()
            .field("main")
            .unwrap()
            .as_str()
            .unwrap(),
        "Clouds"
    );
}

/// Inferring from *multiple files* (the multi-sample workflow of §3.4)
/// through the public API, mirroring `tfd infer a.json b.json`.
#[test]
fn multi_file_inference_generalizes() {
    let s1 = tfd_json::parse(r#"{ "v": 1 }"#).unwrap().to_value();
    let s2 = tfd_json::parse(r#"{ "v": 2.5, "w": "x" }"#)
        .unwrap()
        .to_value();
    let shape = tfd_core::infer_many([&s1, &s2], &InferOptions::formal());
    assert_eq!(
        shape,
        Shape::record(
            tfd_value::BODY_NAME,
            [("v", Shape::Float), ("w", Shape::String.ceil())]
        )
    );
    // Both samples satisfy the merged provider:
    let provided = tfd_provider::provide(&shape);
    deep_eval(&provided, &s1).unwrap();
    deep_eval(&provided, &s2).unwrap();
}

/// §6.3's extra member: every provided object keeps an escape hatch to
/// the underlying representation.
#[test]
fn raw_escape_hatch_is_always_available() {
    let value = tfd_json::parse(r#"{ "a": { "mixed": [1, "two"] } }"#)
        .unwrap()
        .to_value();
    let node = Node::new(value.clone());
    assert_eq!(node.raw(), &value);
    let inner = node.field("a").unwrap();
    assert_eq!(inner.raw(), value.field("a").unwrap());
}

/// Recursive provided types, end to end: the generated `Ul`/`Li` structs
/// reference each other, and — because the recursion is a real μ-type,
/// not a truncated expansion — they navigate documents *deeper than the
/// sample* without losing typing.
#[test]
fn recursive_xml_provider_compiles_and_round_trips() {
    // Round-trip the compile-time sample.
    let root = ul_tree::sample();
    assert_eq!(root.id().unwrap(), 1);
    let items = root.li().unwrap();
    assert_eq!(items.len(), 2);
    assert_eq!(items[0].string().unwrap().as_deref(), Some("leaf"));
    // The second <li> holds a nested <ul>: the accessor returns the same
    // provided type as the root — recursion through the generated types.
    let nested: ul_tree::Ul = items[1].array().unwrap().expect("nested ul").ul().unwrap();
    assert_eq!(nested.id().unwrap(), 2);
    assert_eq!(
        nested.li().unwrap()[0].string().unwrap().as_deref(),
        Some("deep")
    );

    // A document two levels deeper than the sample: the μ-type keeps
    // typing all the way down (the old finite-tree cut could not).
    let deep = ul_tree::parse(
        r#"<ul id="10"><li><ul id="20"><li><ul id="30"><li>bottom</li></ul></li></ul></li></ul>"#,
    )
    .unwrap();
    let mut level = deep;
    let mut ids = Vec::new();
    loop {
        ids.push(level.id().unwrap());
        let items = level.li().unwrap();
        match items[0].array().unwrap() {
            Some(arr) => level = arr.ul().unwrap(),
            None => {
                assert_eq!(items[0].string().unwrap().as_deref(), Some("bottom"));
                break;
            }
        }
    }
    assert_eq!(ids, vec![10, 20, 30]);
}

/// F#-style signatures are stable across runs (predictability, §6.5).
#[test]
fn signatures_are_deterministic() {
    let value = tfd_json::parse(&std::fs::read_to_string("examples/data/weather.json").unwrap())
        .unwrap()
        .to_value();
    let shape = infer_with(&value, &InferOptions::json());
    let a = signature(&provide_idiomatic(&shape, "Weather"));
    let b = signature(&provide_idiomatic(&shape, "Weather"));
    assert_eq!(a, b);
}
