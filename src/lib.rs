//! # types-from-data — facade crate
//!
//! A comprehensive Rust reproduction of *Types from data: Making structured
//! data first-class citizens in F#* (Petricek, Guerra, Syme; PLDI 2016).
//!
//! This crate re-exports the workspace members under stable module names so
//! that examples and downstream users need a single dependency:
//!
//! * [`value`] — the universal data value `d` (§3.4)
//! * [`json`] / [`xml`] / [`csv`] — structured-data front-ends (§6.2)
//! * [`shape`] — shape algebra, preferred-shape relation and inference (§3)
//! * [`foo`] — the Foo calculus interpreter and type checker (§4.1)
//! * [`provider`] — the type-provider mapping `⟦σ⟧ = (τ, e, L)` (§4.2)
//! * [`runtime`] — Rust-side typed access over weakly typed data
//! * [`codegen`] — Rust struct generation from inferred shapes
//!
//! The proc-macro providers live in [`tfd_macros`] and are re-exported at
//! the crate root.
//!
//! # Quickstart
//!
//! Infer a type from a sample (the paper's §1 example) and print the
//! provided type:
//!
//! ```
//! use types_from_data as tfd;
//!
//! let sample = r#"{ "main": { "temp": 5 } }"#;
//! let doc = tfd::json::parse(sample)?;
//! let shape = tfd::shape::infer(&doc.to_value());
//! let provided = tfd::provider::provide_idiomatic(&shape, "Weather");
//! let sig = tfd::provider::signature(&provided);
//! assert!(sig.contains("member Temp : int"));
//! # Ok::<(), tfd::json::ParseError>(())
//! ```

#![forbid(unsafe_code)]

pub use tfd_codegen as codegen;
pub use tfd_core as shape;
pub use tfd_csv as csv;
pub use tfd_foo as foo;
pub use tfd_html as html;
pub use tfd_json as json;
pub use tfd_macros::{csv_provider, html_provider, json_provider, xml_provider};
pub use tfd_provider as provider;
pub use tfd_runtime as runtime;
pub use tfd_value as value;
pub use tfd_xml as xml;
