//! Shape explorer — the library API behind the macros.
//!
//! Walks through the paper's machinery directly:
//!
//! 1. shape inference `S(d1, …, dn)` (Fig. 3) and the preferred-shape
//!    relation (Fig. 1);
//! 2. the common-preferred-shape lattice `csh` (Fig. 2);
//! 3. the Fig. 8 type provider generating Foo classes, printed as
//!    F#-style signatures like the paper's listings;
//! 4. the relative-safety harness (Theorem 3): evaluating *every*
//!    provided member on compatible and incompatible inputs.
//!
//! Run with: `cargo run --example shape_explorer`

use types_from_data as tfd;

use tfd::provider::{deep_eval, provide_idiomatic, signature};
use tfd::shape::{csh, infer_many, infer_with, is_preferred, InferOptions, Shape};

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    // 1. Inference: the paper's §3.1 row-variable example.
    let p1 = tfd::json::parse(r#"{ "x": 3 }"#)?.to_value();
    let p2 = tfd::json::parse(r#"{ "x": 3, "y": 4 }"#)?.to_value();
    let joined = infer_many([&p1, &p2], &InferOptions::formal());
    println!("S(Point{{x}}, Point{{x,y}}) = {joined}");
    assert!(is_preferred(
        &infer_with(&p1, &InferOptions::formal()),
        &joined
    ));
    assert!(is_preferred(
        &infer_with(&p2, &InferOptions::formal()),
        &joined
    ));

    // 2. The csh lattice: joins prefer records and use the top shape
    //    only as the last resort (§3.3).
    println!(
        "csh(int, float)         = {}",
        csh(Shape::Int, Shape::Float)
    );
    println!("csh(null, int)          = {}", csh(Shape::Null, Shape::Int));
    println!("csh(int, bool)          = {}", csh(Shape::Int, Shape::Bool));
    let with_float = csh(csh(Shape::Int, Shape::Bool), Shape::Float);
    println!("csh(any(int,bool), float) = {with_float}");

    // 3. The type provider (Fig. 8 + §6.3 naming) on the people sample.
    let people = tfd::json::parse(
        r#"[ { "name":"Jan", "age":25 },
             { "name":"Tomas" },
             { "name":"Alexander", "age":3.5 } ]"#,
    )?
    .to_value();
    let shape = infer_with(&people, &InferOptions::json());
    println!("\npeople.json shape: {shape}");
    let element_shape = match &shape {
        Shape::List(e) => (**e).clone(),
        other => other.clone(),
    };
    let provided = provide_idiomatic(&element_shape, "Entity");
    println!("\nprovided type (compare §2.1):\n{}", signature(&provided));

    // 4. Relative safety (Theorem 3): every member of every provided
    //    object evaluates on inputs whose shape is preferred over the
    //    sample's shape...
    let compatible = tfd::json::parse(r#"{ "name": "Ada", "age": 36 }"#)?.to_value();
    let report = deep_eval(&provided, &compatible).expect("Theorem 3 guarantees this");
    println!(
        "deep_eval on a compatible input: {} members evaluated, {} objects visited",
        report.members_evaluated, report.objects_visited
    );

    // ... and fails with a precise location on incompatible inputs.
    let incompatible = tfd::json::parse(r#"{ "name": [1, 2] }"#)?.to_value();
    let failure = deep_eval(&provided, &incompatible).unwrap_err();
    println!("deep_eval on an incompatible input: {failure}");
    Ok(())
}
