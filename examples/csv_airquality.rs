//! CSV air quality — the paper's §6.2 example.
//!
//! ```text
//! Ozone, Temp, Date, Autofilled
//! 41, 67, 2012-05-01, 0
//! 36.3, 72, 2012-05-02, 1
//! 12.1, 74, 3 kveten, 0
//! 17.5, #N/A, 2012-05-04, 0
//! ```
//!
//! CSV literals carry no types, so the provider infers the shape of
//! every cell (§6.2):
//!
//! * `Ozone` mixes `41` and `36.3` → `float`;
//! * `Temp` has a `#N/A` (missing value) → `Option<i64>`;
//! * `Date` mixes ISO dates with the Czech "3 kveten" → `String`
//!   (a consistent column would have been a date);
//! * `Autofilled` contains only 0/1 → the *bit* shape, provided as
//!   `bool`.
//!
//! Run with: `cargo run --example csv_airquality`

types_from_data::csv_provider! {
    mod airquality;
    root Row;
    sample_file "examples/data/airquality.csv";
}

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    for row in airquality::sample() {
        let ozone: f64 = row.ozone()?;
        let temp: Option<i64> = row.temp()?;
        let date: String = row.date()?;
        let autofilled: bool = row.autofilled()?;

        let temp_text = match temp {
            Some(t) => t.to_string(),
            None => "?".to_owned(),
        };
        let mark = if autofilled { " (autofilled)" } else { "" };
        println!("{date}: ozone {ozone:>4}, temp {temp_text:>2}{mark}");
    }

    // Runtime rows of the same shape — including missing values:
    let more = "Ozone, Temp, Date, Autofilled\n20.1, , 2013-01-05, 1\n";
    for row in airquality::parse(more)? {
        assert_eq!(row.temp()?, None);
        println!("{}: ozone {}", row.date()?, row.ozone()?);
    }
    Ok(())
}
