//! HTML tables — the footnote-10 extension.
//!
//! > "The same mechanism has later been used by the HTML type provider
//! > …, which provides similarly easy access to data in HTML tables and
//! > lists."
//!
//! The provider scans a (messy, real-world) HTML page for its tables,
//! types the selected table like a CSV file (§6.2 literal inference),
//! and generates row accessors.
//!
//! Run with: `cargo run --example html_table`

types_from_data::html_provider! {
    mod forecast;
    root Day;
    sample r#"<html>
      <head><title>Forecast</title><style>td { padding: 2px }</style></head>
      <body>
        <h1>Five-day forecast</h1>
        <table id="forecast">
          <tr><th>Day</th><th>High</th><th>Low</th><th>Rain</th></tr>
          <tr><td>Mon<td>12<td>5<td>0.5</tr>
          <tr><td>Tue<td>14<td>6<td>0</tr>
          <tr><td>Wed<td>11<td>4<td>2.5</tr>
        </table>
      </body>
    </html>"#;
}

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    // The compile-time sample (note the unclosed <td>/<tr> tags above —
    // real-world HTML, handled by the permissive scanner).
    for day in forecast::sample() {
        println!(
            "{}: {}..{} °C, rain {}",
            day.day()?,
            day.low()?,
            day.high()?,
            day.rain()?
        );
    }

    // The same types work for other pages with the same table shape:
    let other = forecast::parse(
        "<table><tr><th>Day</th><th>High</th><th>Low</th><th>Rain</th></tr>\
         <tr><td>Sat</td><td>20</td><td>11</td><td>0</td></tr></table>",
    )?;
    println!("weekend: {} up to {} °C", other[0].day()?, other[0].high()?);

    // Lists are extracted too (the library API):
    let lists = types_from_data::html::parse_lists(
        "<ul><li>JSON</li><li>XML</li><li>CSV</li><li>HTML</li></ul>",
    );
    println!("formats: {}", lists[0].join(", "));
    Ok(())
}
