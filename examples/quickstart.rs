//! Quickstart — the paper's §1 example, in Rust.
//!
//! The F# original:
//!
//! ```fsharp
//! type W = JsonProvider<"http://api.owm.org/?q=NYC">
//! printfn "Lovely %f!" (W.GetSample().Main.Temp)
//! ```
//!
//! Here the sample is the Appendix A OpenWeatherMap response stored in
//! `examples/data/weather.json` (the paper suggests exactly this: "The
//! returned JSON is shown in Appendix A and can be used to run the code
//! against a local file"). The `json_provider!` macro infers the types at
//! **compile time**; `weather::sample()` is the analogue of
//! `GetSample()`.
//!
//! Run with: `cargo run --example quickstart`

use std::error::Error;

type AnyError = Box<dyn Error + Send + Sync>;

types_from_data::json_provider! {
    mod weather;
    root Weather;
    sample_file "examples/data/weather.json";
}

/// The §1 "after" picture: two lines of typed access.
fn provided_access() -> Result<f64, AnyError> {
    let w = weather::sample();
    Ok(w.main()?.temp()? as f64)
}

/// The §1 "before" picture: hand-written weakly typed matching, with an
/// error case at every level. Kept verbatim-ish for the B1 comparison in
/// EXPERIMENTS.md.
fn hand_written_access() -> Result<f64, AnyError> {
    let doc = tfd_json::parse(weather::SAMPLE)?;
    match &doc {
        tfd_json::Json::Object(root) => match root.iter().find(|(k, _)| k == "main") {
            Some((_, tfd_json::Json::Object(main))) => {
                match main.iter().find(|(k, _)| k == "temp") {
                    Some((_, tfd_json::Json::Int(n))) => Ok(*n as f64),
                    Some((_, tfd_json::Json::Float(n))) => Ok(*n),
                    _ => Err("incorrect format".into()),
                }
            }
            _ => Err("incorrect format".into()),
        },
        _ => Err("incorrect format".into()),
    }
}

fn main() -> Result<(), AnyError> {
    // The provided way (the paper's two-liner):
    let temp = provided_access()?;
    println!("Lovely {temp}!");

    // The weakly typed way produces the same number with ~6x the code:
    assert_eq!(temp, hand_written_access()?);

    // The provided types go deeper than one field — every part of the
    // Appendix A response is typed:
    let w = weather::sample();
    println!("City:     {}", w.name()?);
    println!("Country:  {}", w.sys()?.country()?);
    println!("Pressure: {}", w.main()?.pressure()?);
    println!("Wind:     {} m/s", w.wind()?.speed()?);
    for condition in w.weather()? {
        println!("Sky:      {}", condition.description()?);
    }

    // `parse` (the provider's `Parse` method) types *other* documents of
    // the same shape — runtime data, compile-time types:
    let other = weather::parse(
        r#"{ "coord": {"lon": -0.13, "lat": 51.51},
             "weather": [{"id": 500, "main": "Rain",
                          "description": "light rain", "icon": "10d"}],
             "base": "stations",
             "main": {"temp": 12, "pressure": 1012, "humidity": 81,
                      "temp_min": 11, "temp_max": 13},
             "wind": {"speed": 4.1, "deg": 80},
             "clouds": {"all": 90},
             "dt": 1485789600,
             "sys": {"type": 1, "id": 5091, "message": 0.01,
                     "country": "GB", "sunrise": 1485762037,
                     "sunset": 1485794875},
             "id": 2643743, "name": "London", "cod": 200 }"#,
    )?;
    println!("{}: {}", other.name()?, other.main()?.temp()?);
    Ok(())
}
