//! XML documents — the paper's §2.2 open-world example.
//!
//! The F# original:
//!
//! ```fsharp
//! type Document = XmlProvider<"sample.xml">
//! let root = Document.Load("pldi/another.xml")
//! for elem in root.Doc do
//!   Option.iter (printf " - %s") elem.Heading
//! ```
//!
//! The sample shows `<heading>`, `<p>` and `<image>` elements, but XML is
//! extensible — the runtime document may contain a `<table>` the sample
//! never mentioned. The inference therefore produces a *labelled top
//! shape* (§3.5): each element offers `heading()` / `p()` / `image()`
//! members returning `Option`s, and unknown elements simply answer `None`
//! to all of them (§2.2: "For a table element, all three properties would
//! return None").
//!
//! Run with: `cargo run --example xml_doc`

types_from_data::xml_provider! {
    mod document;
    root Document;
    no_hetero; // the §2.2 presentation: a collection of labelled-top elements
    sample_file "examples/data/doc.xml";
}

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    // The <doc> element has no attributes, so the provider collapses it
    // to its body (§6.3): `sample()` IS the element collection — the
    // paper's `root.Doc`.
    println!("sample headings:");
    for elem in document::sample() {
        if let Some(heading) = elem.heading()? {
            println!(" - {heading}");
        }
    }

    // Load a *different* document (the paper's Document.Load): it
    // contains a <table> element unknown to the sample — open world.
    let other = document::load("examples/data/another.xml")?;
    println!("another.xml:");
    let mut unknown = 0usize;
    for elem in other {
        if let Some(heading) = elem.heading()? {
            println!(" - heading: {heading}");
        } else if let Some(p) = elem.p()? {
            println!(" - paragraph: {p}");
        } else if elem.image()?.is_some() {
            println!(" - image");
        } else {
            // The <table> element: all statically known members are None.
            unknown += 1;
        }
    }
    println!(" - plus {unknown} element(s) the sample never described");
    Ok(())
}
