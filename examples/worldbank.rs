//! World Bank — the paper's §2.3 heterogeneous-collection example.
//!
//! The government-debt response mixes three real-world problems:
//!
//! * `value` is `null` for some records → `Option`;
//! * numbers are encoded as strings (`"35.14229"`) → inferred as `float`
//!   from the string content;
//! * the top-level array mixes a metadata record with a data array →
//!   a heterogeneous collection (§6.4) provided as `Record` + `Array`
//!   members rather than a weakly typed list.
//!
//! The provided F# type in the paper:
//!
//! ```fsharp
//! type WorldBank =
//!   member Record : Record   // { Pages : int }
//!   member Array  : Item[]   // { Date : int; Indicator : string;
//!                             //   Value : option<float> }
//! ```
//!
//! Run with: `cargo run --example worldbank`

types_from_data::json_provider! {
    mod worldbank;
    root WorldBank;
    sample_file "examples/data/worldbank.json";
}

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let doc = worldbank::sample();

    // The metadata record (multiplicity 1 → direct access):
    let meta = doc.record()?;
    println!("pages: {}", meta.pages()?);

    // The data array (multiplicity 1 → direct access to the collection):
    for item in doc.array()? {
        let date = item.date()?; // "2012" → int (content-based inference)
        match item.value()? {
            Some(v) => println!("{}: {} = {v}", date, item.indicator()?),
            None => println!("{}: {} = (no data)", date, item.indicator()?),
        }
    }

    // Runtime data with the record and array swapped still works: the
    // heterogeneous accessors select elements by shape, not by position.
    let swapped = r#"[ [ { "indicator": "NY.GDP.MKTP.CD",
                           "date": "2020", "value": "95.5" } ],
                       { "pages": 1 } ]"#;
    let doc2 = worldbank::parse(swapped)?;
    println!("swapped pages: {}", doc2.record()?.pages()?);
    println!("swapped rows:  {}", doc2.array()?.len());
    Ok(())
}
