//! People — the paper's §2.1 example.
//!
//! The F# original:
//!
//! ```fsharp
//! type People = JsonProvider<"people.json">
//! for item in People.Parse(data) do
//!   printf "%s " item.Name
//!   Option.iter (printf "(%f)") item.Age
//! ```
//!
//! The sample contains a person without an age and ages of both integer
//! (25) and float (3.5) kinds, so the provider infers
//! `Age : option<float>` — missing data becomes an `Option`, and the
//! common numeric shape is `float` (§2.1).
//!
//! Run with: `cargo run --example people`

types_from_data::json_provider! {
    mod people;
    root Person;
    sample_file "examples/data/people.json";
}

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    // GetSample(): the compile-time sample itself.
    for item in people::sample() {
        print!("{} ", item.name()?);
        // The paper: Option.iter (printf "(%f)") item.Age
        if let Some(age) = item.age()? {
            print!("({age})");
        }
        println!();
    }

    // Parse(data): runtime data of the same shape — including a person
    // with an extra field the sample never showed (open world: extra
    // fields are fine, §5) and a missing age.
    let data = r#"[ { "name": "Grace", "age": 37, "title": "RADM" },
                    { "name": "Alan" } ]"#;
    for item in people::parse(data)? {
        match item.age()? {
            Some(age) => println!("{} is {}", item.name()?, age),
            None => println!("{} (age unknown)", item.name()?),
        }
    }

    // The relative-safety boundary (§5): data whose shape is NOT
    // preferred over the sample's shape fails with a precise error
    // instead of silently producing garbage.
    let bad = r#"[ { "name": 42 } ]"#;
    let items = people::parse(bad)?;
    let err = items[0].name().unwrap_err();
    println!("bad document rejected: {err}");
    Ok(())
}
