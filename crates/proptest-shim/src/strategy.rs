//! Value-generation strategies (the shim analogue of
//! `proptest::strategy`).

use crate::test_runner::TestRng;
use std::ops::Range;
use std::rc::Rc;

/// Something that can generate values of an associated type from a
/// deterministic RNG.
pub trait Strategy: Clone {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> SFn<U>
    where
        Self: Sized + 'static,
        U: 'static,
        F: Fn(Self::Value) -> U + 'static,
    {
        SFn::new(move |rng| f(self.generate(rng)))
    }

    /// Discards generated values failing the predicate (regenerating up
    /// to a bound; the last value is returned unconditionally after it).
    fn prop_filter<F>(self, _why: &'static str, f: F) -> SFn<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(&Self::Value) -> bool + 'static,
    {
        SFn::new(move |rng| {
            for _ in 0..64 {
                let v = self.generate(rng);
                if f(&v) {
                    return v;
                }
            }
            self.generate(rng)
        })
    }

    /// Builds a recursive strategy: `self` is the leaf; `grow` wraps a
    /// strategy for the previous depth level into the next one. Each
    /// level chooses between a leaf and a grown value, recursing at most
    /// `depth` times.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired: u32,
        _branch: u32,
        grow: F,
    ) -> SFn<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(SFn<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            level = union(vec![leaf.clone(), grow(level).boxed()]);
        }
        level
    }

    /// Type-erases the strategy.
    fn boxed(self) -> SFn<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        SFn::new(move |rng| self.generate(rng))
    }
}

/// A type-erased, cheaply clonable strategy (the shim's `BoxedStrategy`).
pub struct SFn<V>(Rc<dyn Fn(&mut TestRng) -> V>);

/// Alias matching proptest's name for a type-erased strategy.
pub type BoxedStrategy<V> = SFn<V>;

impl<V> Clone for SFn<V> {
    fn clone(&self) -> Self {
        SFn(Rc::clone(&self.0))
    }
}

impl<V> SFn<V> {
    /// Wraps a generation function.
    pub fn new(f: impl Fn(&mut TestRng) -> V + 'static) -> SFn<V> {
        SFn(Rc::new(f))
    }
}

impl<V> Strategy for SFn<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Chooses uniformly among the given strategies.
pub fn union<V: 'static>(arms: Vec<SFn<V>>) -> SFn<V> {
    assert!(!arms.is_empty(), "union requires at least one arm");
    SFn::new(move |rng| {
        let i = (rng.next_u64() % arms.len() as u64) as usize;
        arms[i].generate(rng)
    })
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        })*
    };
}

int_arbitrary!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, human-scale floats: property tests here never need the
        // full bit-pattern space.
        (rng.next_u64() % 2_000_000) as f64 / 1000.0 - 1000.0
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        char::from_u32(0x20 + (rng.next_u64() % 0x5e) as u32).unwrap_or('?')
    }
}

/// The `any::<T>()` strategy.
pub fn any<T: Arbitrary + 'static>() -> SFn<T> {
    SFn::new(T::arbitrary)
}

impl Strategy for Range<i64> {
    type Value = i64;

    fn generate(&self, rng: &mut TestRng) -> i64 {
        let span = (self.end - self.start).max(1) as u64;
        self.start + (rng.next_u64() % span) as i64
    }
}

impl Strategy for Range<i32> {
    type Value = i32;

    fn generate(&self, rng: &mut TestRng) -> i32 {
        let span = (self.end - self.start).max(1) as u64;
        self.start + (rng.next_u64() % span) as i32
    }
}

impl Strategy for Range<usize> {
    type Value = usize;

    fn generate(&self, rng: &mut TestRng) -> usize {
        let span = (self.end - self.start).max(1) as u64;
        self.start + (rng.next_u64() % span) as usize
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// String-literal strategies are interpreted as a small regex subset:
/// one character class with an optional `{m,n}` repetition, e.g.
/// `"[a-z0-9 ]{0,8}"`. Anything else generates the literal itself.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        match parse_class_pattern(self) {
            Some((chars, lo, hi)) if !chars.is_empty() => {
                let span = (hi - lo + 1).max(1) as u64;
                let n = lo + (rng.next_u64() % span) as usize;
                (0..n)
                    .map(|_| chars[(rng.next_u64() % chars.len() as u64) as usize])
                    .collect()
            }
            _ => (*self).to_owned(),
        }
    }
}

/// Parses `[class]{m,n}` (or `[class]`) into (alphabet, min, max).
fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = find_unescaped_close(rest)?;
    let class: Vec<char> = rest[..close].chars().collect();
    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < class.len() {
        let c = class[i];
        if c == '\\' && i + 1 < class.len() {
            alphabet.push(match class[i + 1] {
                'n' => '\n',
                't' => '\t',
                'r' => '\r',
                other => other,
            });
            i += 2;
        } else if i + 2 < class.len() && class[i + 1] == '-' {
            let (a, b) = (c, class[i + 2]);
            for u in a as u32..=b as u32 {
                if let Some(ch) = char::from_u32(u) {
                    alphabet.push(ch);
                }
            }
            i += 3;
        } else {
            alphabet.push(c);
            i += 1;
        }
    }
    let tail = &rest[close + 1..];
    if tail.is_empty() {
        return Some((alphabet, 1, 1));
    }
    let counts = tail.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match counts.split_once(',') {
        Some((l, h)) => (l.trim().parse().ok()?, h.trim().parse().ok()?),
        None => {
            let n = counts.trim().parse().ok()?;
            (n, n)
        }
    };
    Some((alphabet, lo, hi))
}

fn find_unescaped_close(s: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b']' => return Some(i),
            _ => i += 1,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn class_pattern_parses() {
        let (chars, lo, hi) = parse_class_pattern("[a-c,\n ]{0,8}").unwrap();
        assert!(chars.contains(&'a') && chars.contains(&'c'));
        assert!(chars.contains(&',') && chars.contains(&'\n') && chars.contains(&' '));
        assert_eq!((lo, hi), (0, 8));
    }

    #[test]
    fn string_strategy_respects_bounds() {
        let mut rng = TestRng::deterministic("bounds");
        for _ in 0..200 {
            let s = "[a-z]{2,4}".generate(&mut rng);
            assert!((2..=4).contains(&s.chars().count()), "bad length: {s:?}");
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..200 {
            let v = (10i64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        let leaf = (0i64..10).boxed();
        let nested = leaf.prop_recursive(3, 24, 4, |inner| {
            crate::collection::vec(inner, 0..3).prop_map(|v| v.iter().sum::<i64>())
        });
        let mut rng = TestRng::deterministic("recursion");
        for _ in 0..100 {
            let _ = nested.generate(&mut rng);
        }
    }
}
