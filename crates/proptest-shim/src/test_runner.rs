//! Test-runner plumbing: configuration, case outcomes and the
//! deterministic RNG.

/// Per-property configuration (shim of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of accepted cases to run.
    pub cases: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

impl Config {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — the case is discarded, not a failure.
    Reject,
    /// `prop_assert!`-style failure with a message.
    Fail(String),
}

impl TestCaseError {
    /// Constructs a failure from any message (proptest-compatible).
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// Constructs a rejection (proptest-compatible).
    pub fn reject(_msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject
    }
}

/// A deterministic SplitMix64 RNG seeded from the test name, so every
/// run of a property sees the same case stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the RNG from an arbitrary string (FNV-1a).
    pub fn deterministic(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let mut c = TestRng::deterministic("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
