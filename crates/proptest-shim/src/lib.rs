//! A minimal, dependency-free stand-in for the `proptest` property
//! testing framework, API-compatible with the subset this workspace uses.
//!
//! The build container cannot reach crates.io, so the real proptest
//! cannot be vendored. This shim keeps the property-test sources
//! unchanged and runs each property over a stream of deterministically
//! generated random inputs (seeded from the test name, so failures are
//! reproducible). It does not implement shrinking: a failing case is
//! reported as-is.

pub mod strategy;
pub mod test_runner;

/// `prop::collection` — collection strategies.
pub mod collection {
    use crate::strategy::{SFn, Strategy};
    use std::ops::Range;

    /// A strategy for `Vec`s with a length drawn from `len` and elements
    /// drawn from `element`.
    pub fn vec<S>(element: S, len: Range<usize>) -> SFn<Vec<S::Value>>
    where
        S: Strategy + 'static,
        S::Value: 'static,
    {
        SFn::new(move |rng| {
            let span = (len.end - len.start).max(1) as u64;
            let n = len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| element.generate(rng)).collect()
        })
    }
}

/// `prop::sample` — sampling strategies.
pub mod sample {
    use crate::strategy::SFn;

    /// A strategy drawing one element of a slice, cloned.
    pub fn select<T: Clone + 'static>(options: &'static [T]) -> SFn<T> {
        assert!(!options.is_empty(), "select requires a non-empty slice");
        SFn::new(move |rng| {
            let i = (rng.next_u64() % options.len() as u64) as usize;
            options[i].clone()
        })
    }

    /// Owned-vector variant of [`select`].
    pub fn select_vec<T: Clone + 'static>(options: Vec<T>) -> SFn<T> {
        assert!(!options.is_empty(), "select requires a non-empty vec");
        SFn::new(move |rng| {
            let i = (rng.next_u64() % options.len() as u64) as usize;
            options[i].clone()
        })
    }
}

/// The usual proptest prelude: strategies, `any`, macros and the `prop`
/// module alias.
pub mod prelude {
    pub use crate::strategy::{any, Just, SFn, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Module alias matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Runs properties over deterministic random inputs.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     fn addition_commutes(a in 0i64..100, b in 0i64..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// addition_commutes();
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$attr:meta])* fn $name:ident ( $($pname:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __cfg: $crate::test_runner::Config = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                let mut __rejected: u64 = 0;
                let mut __ran: u64 = 0;
                while __ran < u64::from(__cfg.cases) {
                    $(
                        let $pname =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )*
                    let __outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    match __outcome {
                        Ok(()) => { __ran += 1; }
                        Err($crate::test_runner::TestCaseError::Reject) => {
                            __rejected += 1;
                            assert!(
                                __rejected < 20 * u64::from(__cfg.cases).max(100),
                                "property {}: too many rejected cases", stringify!($name)
                            );
                        }
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("property {} failed: {}", stringify!($name), msg);
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("{:?} != {:?}", __l, __r),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$a, &$b);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Fails the current case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "{:?} == {:?}",
                __l, __r
            )));
        }
    }};
}

/// Discards the current case unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// A strategy choosing uniformly between the given strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::union(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}
