//! Chunk-fed, incremental XML parsing — the streaming front-end.
//!
//! [`Streamer`] accepts arbitrary `feed(&[u8])` slices — the stream may
//! be split at **any** byte boundary, including mid-UTF-8-sequence,
//! mid-entity, mid-CDATA-terminator or between the `-` bytes of a
//! comment close — and emits one §6.2-encoded [`Value`] per completed
//! top-level document. A stream is a sequence of documents laid end to
//! end (each with its own optional prolog), exactly the documents the
//! one-shot [`parse_many_values`](crate::parse_many_values) returns; a
//! single-document file is simply a one-record stream. Peak memory is
//! one record plus the fixed scanner state.
//!
//! The design mirrors `tfd_json::stream`:
//!
//! 1. a **resumable boundary scanner** — an explicit state machine
//!    (`XMode`, one small enum step per byte, no recursion) tracking
//!    element depth, tag/attribute-quote state, comments, CDATA
//!    sections, DOCTYPE bracket nesting, processing instructions and
//!    entity length — finds where each top-level document ends (the `>`
//!    closing its root element), wherever the chunks fall;
//! 2. the byte-level [`crate::parse_value_with`] is run on each completed
//!    record (borrowed straight from the chunk when it does not cross a
//!    boundary), so streaming values and errors are **byte-identical**
//!    to the one-shot path by construction. The scanner is deliberately
//!    lenient on malformed markup: it only needs to keep the record open
//!    (or cut it somewhere at or past the offending bytes) — the record
//!    parse then reports exactly the one-shot error, and the first error
//!    poisons the stream.
//!
//! Error positions are translated from record-local to stream-global
//! line/char-correct-column coordinates. The differential suite
//! (`tests/streaming_agreement.rs`) asserts agreement under adversarial
//! splits, 1-byte feeds included.

use crate::encode::EncodeOptions;
use crate::parser::{
    parse_many_values_with, parse_one_document, parse_value_record, ValueSink, XmlError,
    XmlErrorKind, XmlOptions,
};
use tfd_value::{body_name, Interner, Value};

/// Scanner state between two consumed bytes. Every variant is
/// resumable: a chunk may end (and the next begin) in any of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum XMode {
    /// Whitespace between documents.
    Between,
    /// Inside a record, outside markup: character data, or the gaps of
    /// the prolog before the root element opens.
    Text,
    /// Inside an entity (`&...;`), in text (`ret == 0`) or inside an
    /// attribute value quoted by `ret`. `len` counts the body's bytes —
    /// past 12 the one-shot parser fails, so the record is cut to
    /// reproduce that error — and `pending` counts the remaining
    /// continuation bytes of the character in flight (the limit is
    /// checked at character granularity, exactly like the parser).
    Ent { ret: u8, len: u8, pending: u8 },
    /// Seen `<`.
    Lt,
    /// Seen `<!`.
    LtBang,
    /// Seen `<!-`.
    LtBangDash,
    /// Inside `<!--`, tracking trailing dashes (`-->` may straddle
    /// chunks).
    Comment { dashes: u8 },
    /// Inside `<!DOCTYPE`, tracking `[...]` internal-subset nesting.
    Doctype { brackets: u8 },
    /// Inside `<![CDATA[`, tracking trailing `]` bytes (`]]>` may
    /// straddle chunks).
    Cdata { brackets: u8 },
    /// Inside `<?...?>`.
    Pi { q: bool },
    /// Inside a start tag: `quote` is the active attribute-value quote
    /// (0 when none), `slash` whether the previous byte was the `/` of a
    /// potential self-close.
    OpenTag { quote: u8, slash: bool },
    /// Inside an end tag (`</...>`).
    CloseTag,
}

/// What the scanner decided for the current byte.
enum Step {
    /// Consume the byte; the record (if any) continues.
    Consume(XMode),
    /// Consume the byte and complete the record *including* it.
    ConsumeEnd,
    /// Switch state and re-examine the same byte there.
    Reprocess(XMode),
}

/// The resumable boundary state machine itself — factored out so the
/// chunk-fed [`Streamer`] and the scan-only [`BoundaryScanner`] share
/// one implementation (any drift between them would silently break the
/// parallel driver's shard cuts).
#[derive(Debug, Clone)]
struct Scan {
    mode: XMode,
    /// Element nesting depth of the current record's root.
    depth: usize,
}

impl Default for Scan {
    fn default() -> Self {
        Scan::new()
    }
}

impl Scan {
    fn new() -> Scan {
        Scan {
            mode: XMode::Between,
            depth: 0,
        }
    }

    /// True while inside a record.
    fn in_record(&self) -> bool {
        !matches!(self.mode, XMode::Between)
    }

    /// Opens a record at the current byte (which is *not* consumed — the
    /// text state re-examines it; misbytes too: their parse reproduces
    /// the one-shot error).
    fn open(&mut self) {
        self.depth = 0;
        self.mode = XMode::Text;
    }

    /// Advances through `chunk[i..]` while inside a record. Returns
    /// `Some(end)` when the record completes — `chunk[..end]` holds its
    /// final byte (the `>` closing its root), the state is back between
    /// records, and scanning resumes at `end` — or `None` when the chunk
    /// is exhausted with the record still open.
    ///
    /// The hot modes (character data, tags, quoted attribute values) hop
    /// special-to-special with the shared SWAR scanners
    /// ([`tfd_value::scan`]) instead of stepping byte by byte.
    fn run(&mut self, chunk: &[u8], mut i: usize) -> Option<usize> {
        let n = chunk.len();
        while i < n {
            match self.mode {
                XMode::Between => unreachable!("run is only called inside a record"),
                // Hot loop: in character data only markup and entity
                // starts matter.
                XMode::Text => match tfd_value::scan::find_any2(&chunk[i..], b'<', b'&') {
                    None => return None,
                    Some(off) => {
                        i += off + 1;
                        self.mode = if chunk[i - 1] == b'<' {
                            XMode::Lt
                        } else {
                            XMode::Ent {
                                ret: 0,
                                len: 0,
                                pending: 0,
                            }
                        };
                    }
                },
                // Hot loop: inside a start tag, outside quotes. Only `>`
                // and the quote openers end the hop; the `/` of a
                // potential self-close is recovered by looking at the
                // byte *before* the `>` (falling back to the carried
                // flag when the `>` is the first byte scanned).
                XMode::OpenTag { quote: 0, slash } => {
                    match tfd_value::scan::find_any3(&chunk[i..], b'>', b'"', b'\'') {
                        None => {
                            self.mode = XMode::OpenTag {
                                quote: 0,
                                slash: chunk[n - 1] == b'/',
                            };
                            return None;
                        }
                        Some(off) => {
                            let p = i + off;
                            let b = chunk[p];
                            i = p + 1;
                            if b == b'>' {
                                let slash = if off == 0 {
                                    slash
                                } else {
                                    chunk[p - 1] == b'/'
                                };
                                if slash {
                                    // Self-closing: no depth change.
                                    if self.depth == 0 {
                                        self.mode = XMode::Between;
                                        return Some(i);
                                    }
                                    self.mode = XMode::Text;
                                } else {
                                    self.depth += 1;
                                    self.mode = XMode::Text;
                                }
                            } else {
                                self.mode = XMode::OpenTag {
                                    quote: b,
                                    slash: false,
                                };
                            }
                        }
                    }
                }
                // Hot loop: inside a quoted attribute value.
                XMode::OpenTag { quote, .. } => {
                    match tfd_value::scan::find_any2(&chunk[i..], quote, b'&') {
                        None => return None,
                        Some(off) => {
                            i += off + 1;
                            self.mode = if chunk[i - 1] == quote {
                                XMode::OpenTag {
                                    quote: 0,
                                    slash: false,
                                }
                            } else {
                                XMode::Ent {
                                    ret: quote,
                                    len: 0,
                                    pending: 0,
                                }
                            };
                        }
                    }
                }
                // Hot loop: inside an end tag.
                XMode::CloseTag => match tfd_value::scan::find_byte(&chunk[i..], b'>') {
                    None => return None,
                    Some(off) => {
                        i += off + 1;
                        if self.depth <= 1 {
                            // Root closed (or a stray close tag whose
                            // record parse reports the one-shot error).
                            self.depth = 0;
                            self.mode = XMode::Between;
                            return Some(i);
                        }
                        self.depth -= 1;
                        self.mode = XMode::Text;
                    }
                },
                // Cold modes (markup dispatch, comments, CDATA, DOCTYPE,
                // PIs, entities): one explicit transition per byte.
                _ => match self.step(chunk[i]) {
                    Step::Consume(mode) => {
                        self.mode = mode;
                        i += 1;
                    }
                    Step::ConsumeEnd => {
                        self.mode = XMode::Between;
                        return Some(i + 1);
                    }
                    Step::Reprocess(mode) => {
                        self.mode = mode;
                    }
                },
            }
        }
        None
    }

    /// One scanner transition for a byte inside a record (cold modes;
    /// the hot modes are inlined in [`Scan::run`]).
    fn step(&mut self, b: u8) -> Step {
        use XMode::*;
        match self.mode {
            Between => unreachable!("handled by the caller"),
            Text | OpenTag { .. } | CloseTag => unreachable!("inlined in run"),
            Ent { ret, len, pending } => {
                if pending > 0 {
                    // Finish the character in flight, then apply the
                    // parser's 12-byte limit at character granularity.
                    if pending == 1 && len > 12 {
                        return Step::ConsumeEnd;
                    }
                    return Step::Consume(Ent {
                        ret,
                        len,
                        pending: pending - 1,
                    });
                }
                if b == b';' {
                    return Step::Consume(self.ent_return(ret));
                }
                let clen = if b < 0x80 { 1 } else { utf8_len(b) };
                let len = len.saturating_add(clen);
                if clen == 1 && len > 12 {
                    // Entity body exceeded the parser's limit: cut the
                    // record here so its parse reproduces the
                    // `UnknownEntity` error at this exact position.
                    Step::ConsumeEnd
                } else {
                    Step::Consume(Ent {
                        ret,
                        len,
                        pending: clen - 1,
                    })
                }
            }
            Lt => match b {
                b'/' => Step::Consume(CloseTag),
                b'!' => Step::Consume(LtBang),
                b'?' => Step::Consume(Pi { q: false }),
                _ => Step::Consume(OpenTag {
                    quote: 0,
                    slash: false,
                }),
            },
            LtBang => {
                if self.depth == 0 {
                    // Prolog dispatch: `<!-` opens a comment, anything
                    // else is DOCTYPE-ish (matching `skip_prolog`).
                    if b == b'-' {
                        Step::Consume(LtBangDash)
                    } else {
                        Step::Reprocess(Doctype { brackets: 0 })
                    }
                } else {
                    // Content dispatch: `<![` opens CDATA, anything else
                    // is a comment (matching `parse_element`).
                    match b {
                        b'[' => Step::Consume(Cdata { brackets: 0 }),
                        b'-' => Step::Consume(LtBangDash),
                        _ => Step::Consume(Comment { dashes: 0 }),
                    }
                }
            }
            LtBangDash => Step::Consume(Comment { dashes: 0 }),
            Comment { dashes } => match b {
                b'-' => Step::Consume(Comment {
                    dashes: (dashes + 1).min(2),
                }),
                b'>' if dashes >= 2 => Step::Consume(Text),
                _ => Step::Consume(Comment { dashes: 0 }),
            },
            Doctype { brackets } => match b {
                b'[' => Step::Consume(Doctype {
                    brackets: brackets.saturating_add(1),
                }),
                b']' => Step::Consume(Doctype {
                    brackets: brackets.saturating_sub(1),
                }),
                b'>' if brackets == 0 => Step::Consume(Text),
                _ => Step::Consume(Doctype { brackets }),
            },
            Cdata { brackets } => match b {
                b']' => Step::Consume(Cdata {
                    brackets: (brackets + 1).min(2),
                }),
                b'>' if brackets >= 2 => Step::Consume(Text),
                _ => Step::Consume(Cdata { brackets: 0 }),
            },
            Pi { q } => match b {
                b'>' if q => Step::Consume(Text),
                _ => Step::Consume(Pi { q: b == b'?' }),
            },
        }
    }

    /// Where an entity returns to when its `;` arrives.
    fn ent_return(&self, ret: u8) -> XMode {
        if ret == 0 {
            XMode::Text
        } else {
            XMode::OpenTag {
                quote: ret,
                slash: false,
            }
        }
    }
}

/// A scan-only record-boundary finder: the [`Streamer`]'s resumable
/// state machine without the parsing — it never materializes a value,
/// only reports where top-level documents end (the `>` closing each root
/// element).
///
/// This is what the parallel driver (`tfd_core::engine`) uses to cut a
/// corpus into shards that never split a document: every reported offset
/// is a position where the sequential streamer is between records.
/// Inter-document misc (comments, PIs) is glued to the *following*
/// document, exactly as the streamer glues it.
///
/// ```
/// let mut s = tfd_xml::stream::BoundaryScanner::new();
/// let mut cuts = Vec::new();
/// s.feed(b"<a x=\"1\"/> <b><c/></b>", &mut |off| cuts.push(off));
/// assert_eq!(cuts, vec![10, 22]);
/// assert!(!s.in_record());
/// ```
#[derive(Debug, Clone, Default)]
pub struct BoundaryScanner {
    scan: Scan,
}

impl BoundaryScanner {
    /// A scanner positioned between documents at the start of a stream.
    pub fn new() -> BoundaryScanner {
        BoundaryScanner { scan: Scan::new() }
    }

    /// Feeds one chunk; `boundary` receives the chunk-relative offset
    /// just past each document completed within it (state carries across
    /// calls, so chunks may split documents anywhere).
    pub fn feed(&mut self, chunk: &[u8], boundary: &mut impl FnMut(usize)) {
        let n = chunk.len();
        let mut i = 0usize;
        while i < n {
            if self.scan.in_record() {
                match self.scan.run(chunk, i) {
                    Some(end) => {
                        boundary(end);
                        i = end;
                    }
                    None => i = n,
                }
            } else {
                match chunk[i] {
                    b' ' | b'\t' | b'\r' | b'\n' => i += 1,
                    _ => self.scan.open(),
                }
            }
        }
    }

    /// True when the last fed byte was inside a document (the stream
    /// ends with an unterminated document or trailing misc).
    pub fn in_record(&self) -> bool {
        self.scan.in_record()
    }
}

/// Default cap on one record's carry-over bytes (16 MiB): large enough
/// for any schema-shaped document, small enough that an unclosed tag
/// cannot buffer a multi-gigabyte stream.
pub const DEFAULT_MAX_RECORD_BYTES: usize = 16 * 1024 * 1024;

/// A chunk-fed incremental XML parser.
///
/// Feed arbitrary byte slices; each completed top-level document is
/// parsed with the byte-level [`crate::parse_value_with`] and handed to the
/// sink as its §6.2 value. Call [`finish`](Streamer::finish) after the
/// last chunk.
///
/// ```
/// use tfd_value::Value;
/// let mut s = tfd_xml::stream::Streamer::new();
/// let mut out = Vec::new();
/// s.feed(b"<row id=\"4", &mut |v| out.push(v))?;   // split inside an attribute
/// s.feed(b"2\"/><row id=\"7\"><v>x</v></ro", &mut |v| out.push(v))?;
/// s.feed(b"w>", &mut |v| out.push(v))?;
/// s.finish(&mut |v| out.push(v))?;
/// assert_eq!(out.len(), 2);
/// assert_eq!(out[0].field("id"), Some(&Value::Int(42)));
/// # Ok::<(), tfd_xml::XmlError>(())
/// ```
pub struct Streamer {
    options: XmlOptions,
    /// Cap on one record's carry-over bytes: a document still open after
    /// buffering this much fails with [`XmlErrorKind::RecordTooLarge`]
    /// instead of buffering the rest of the stream.
    max_record_bytes: usize,
    /// Reused across records: one sink, one `EncodeOptions`, one cached
    /// `•` name — no per-record clones.
    vsink: ValueSink,
    /// Arena element/attribute names intern into (a shared handle —
    /// cloning an [`Interner`] shares the arena).
    interner: Interner,
    /// The resumable boundary state machine (shared with
    /// [`BoundaryScanner`]).
    scan: Scan,
    /// Carry-over bytes of a record that spans chunk boundaries.
    buf: Vec<u8>,
    /// Global position of the current record's start (bytes inside a
    /// record are accounted in bulk when it completes — the hot scanner
    /// loops never touch these).
    line: usize,
    /// 1-based char column of the next character on the current line.
    col: usize,
    prev_cr: bool,
    /// Snapshot of (line, col) where the current record starts.
    start: (usize, usize),
    failed: Option<XmlError>,
}

impl Default for Streamer {
    fn default() -> Self {
        Streamer::new()
    }
}

impl Streamer {
    /// A streamer with default [`XmlOptions`] and [`EncodeOptions`].
    pub fn new() -> Streamer {
        Streamer::with_options(&XmlOptions::default(), &EncodeOptions::default())
    }

    /// A streamer with explicit parser and encoding options (applied to
    /// every record).
    pub fn with_options(options: &XmlOptions, encode: &EncodeOptions) -> Streamer {
        Streamer::with_options_in(options, encode, Interner::global().clone())
    }

    /// A streamer interning element and attribute names into a
    /// caller-supplied arena — the corpus-scoped streaming path. The
    /// handle is cloned per streamer; all clones share one arena, so
    /// parallel shard workers can stream into a single corpus arena.
    pub fn with_options_in(
        options: &XmlOptions,
        encode: &EncodeOptions,
        interner: Interner,
    ) -> Streamer {
        Streamer {
            options: options.clone(),
            max_record_bytes: DEFAULT_MAX_RECORD_BYTES,
            vsink: ValueSink {
                options: encode.clone(),
                body: body_name(),
            },
            interner,
            scan: Scan::new(),
            buf: Vec::new(),
            line: 1,
            col: 1,
            prev_cr: false,
            start: (1, 1),
            failed: None,
        }
    }

    /// Caps one record's carry-over bytes (default
    /// [`DEFAULT_MAX_RECORD_BYTES`]): a document still open after
    /// buffering `limit` bytes fails with
    /// [`XmlErrorKind::RecordTooLarge`] at the document's start
    /// position, so an unclosed tag cannot buffer the whole stream.
    pub fn set_max_record_bytes(&mut self, limit: usize) {
        self.max_record_bytes = limit;
    }

    /// Feeds one chunk; every document completed within it is parsed and
    /// passed to `sink` in input order.
    ///
    /// # Errors
    ///
    /// The first malformed document poisons the streamer: the error is
    /// returned now and again from any later call.
    pub fn feed(&mut self, chunk: &[u8], sink: &mut impl FnMut(Value)) -> Result<(), XmlError> {
        if let Some(e) = &self.failed {
            return Err(e.clone());
        }
        let r = self.feed_inner(chunk, sink);
        if let Err(e) = &r {
            self.failed = Some(e.clone());
        }
        r
    }

    /// Signals end of input. A pending tail is parsed with the one-shot
    /// multi-document parser, so an unterminated document reports
    /// exactly the one-shot EOF error and a trailing comment/PI/DOCTYPE
    /// (a record that never opened its root) is accepted silently.
    ///
    /// # Errors
    ///
    /// As [`feed`](Streamer::feed).
    pub fn finish(&mut self, sink: &mut impl FnMut(Value)) -> Result<(), XmlError> {
        if let Some(e) = &self.failed {
            return Err(e.clone());
        }
        if !self.scan.in_record() {
            return Ok(());
        }
        let buf = std::mem::take(&mut self.buf);
        let r = self
            .parse_tail(&buf)
            .map(|values| values.into_iter().for_each(&mut *sink));
        self.buf = buf;
        self.buf.clear();
        self.scan.mode = XMode::Between;
        if let Err(e) = &r {
            self.failed = Some(e.clone());
        }
        r
    }

    #[allow(clippy::expect_used)] // checked invariant, documented at each site
    fn feed_inner(&mut self, chunk: &[u8], sink: &mut impl FnMut(Value)) -> Result<(), XmlError> {
        let n = chunk.len();
        // The chunk's valid-UTF-8 prefix, validated once: records that
        // start inside it can be parsed straight off the chunk (a root
        // element is self-delimiting), with no boundary pre-scan.
        let text: &str = match std::str::from_utf8(chunk) {
            Ok(t) => t,
            Err(e) => std::str::from_utf8(&chunk[..e.valid_up_to()]).expect("validated prefix"),
        };
        // Index in `chunk` where the unbuffered part of the current
        // record starts (0 while a record carried over in `buf` is open).
        let mut rec_start = 0usize;
        let mut i = 0usize;
        while i < n {
            if self.scan.in_record() {
                // Inside a record: the shared scanner hops to its end
                // (or the chunk's) — positions are settled in bulk at
                // completion.
                match self.scan.run(chunk, i) {
                    Some(end) => {
                        self.complete(chunk, rec_start, end, sink)?;
                        i = end;
                    }
                    None => i = n,
                }
            } else {
                let b = chunk[i];
                match b {
                    b' ' | b'\t' | b'\r' | b'\n' => {
                        self.advance_ws(b);
                        i += 1;
                    }
                    _ => {
                        // Any other byte opens a record (misbytes too:
                        // their parse reproduces the one-shot error).
                        self.start = (self.line, self.col);
                        rec_start = i;
                        debug_assert!(self.buf.is_empty());
                        // Fast path: parse the document straight off the
                        // chunk. Failures (straddling the chunk end, or
                        // truly malformed) are discarded; the resumable
                        // scanner re-derives them from the exact record
                        // slice.
                        if b == b'<' && i < text.len() {
                            if let Ok((v, consumed)) = parse_one_document(
                                &text[i..],
                                &self.options,
                                &mut self.vsink,
                                &self.interner,
                            ) {
                                if consumed > self.max_record_bytes {
                                    return Err(self.too_large());
                                }
                                sink(v);
                                self.advance_over(&chunk[i..i + consumed]);
                                i += consumed;
                                continue;
                            }
                        }
                        self.scan.open();
                    }
                }
            }
        }
        if self.scan.in_record() {
            self.buf.extend_from_slice(&chunk[rec_start..]);
            if self.buf.len() > self.max_record_bytes {
                return Err(self.too_large());
            }
        }
        Ok(())
    }

    /// The [`XmlErrorKind::RecordTooLarge`] error for the current
    /// record, positioned at its start (deterministic under any
    /// chunking).
    fn too_large(&self) -> XmlError {
        let (line, column) = self.start;
        XmlError {
            kind: XmlErrorKind::RecordTooLarge(self.max_record_bytes),
            line,
            column,
        }
    }

    /// Completes the current record, whose bytes are `buf` (carry-over)
    /// followed by `chunk[rec_start..end]`, parses it and emits the
    /// value.
    fn complete(
        &mut self,
        chunk: &[u8],
        rec_start: usize,
        end: usize,
        sink: &mut impl FnMut(Value),
    ) -> Result<(), XmlError> {
        // The size cap applies to every record, even one arriving whole
        // in a single feed (the buf-growth check only sees carry-over).
        if self.buf.len() + (end - rec_start) > self.max_record_bytes {
            return Err(self.too_large());
        }
        self.scan.mode = XMode::Between;
        let r = if self.buf.is_empty() {
            let v = self.parse_record(chunk, rec_start, end);
            self.advance_over(&chunk[rec_start..end]);
            v
        } else {
            let mut buf = std::mem::take(&mut self.buf);
            buf.extend_from_slice(&chunk[rec_start..end]);
            let v = self.parse_record(&buf, 0, buf.len());
            self.advance_over(&buf);
            buf.clear();
            self.buf = buf; // keep the allocation for the next carry-over
            v
        };
        r.map(sink)
    }

    /// Parses the complete record `bytes[from..to]`; error positions are
    /// translated from record-local to stream-global coordinates.
    fn parse_record(&mut self, bytes: &[u8], from: usize, to: usize) -> Result<Value, XmlError> {
        let bytes = &bytes[from..to];
        let text = match std::str::from_utf8(bytes) {
            Ok(t) => t,
            Err(e) => return Err(self.utf8_error(bytes, e.valid_up_to())),
        };
        parse_value_record(text, &self.options, &mut self.vsink, &self.interner)
            .map_err(|e| self.compose(e))
    }

    /// Parses a pending tail at end of input with the one-shot
    /// multi-document parser (it may be a misc-only record, which is
    /// fine, or an unterminated document, which errors exactly as the
    /// one-shot path does at EOF).
    fn parse_tail(&self, bytes: &[u8]) -> Result<Vec<Value>, XmlError> {
        let text = match std::str::from_utf8(bytes) {
            Ok(t) => t,
            Err(e) => return Err(self.utf8_error(bytes, e.valid_up_to())),
        };
        parse_many_values_with(text, &self.options, &self.vsink.options)
            .map_err(|e| self.compose(e))
    }

    fn utf8_error(&self, bytes: &[u8], valid_up_to: usize) -> XmlError {
        let (line, column) = local_pos(&bytes[..valid_up_to]);
        self.compose(XmlError {
            kind: XmlErrorKind::InvalidUtf8,
            line,
            column,
        })
    }

    /// Lifts a record-local error into the stream-global frame.
    fn compose(&self, e: XmlError) -> XmlError {
        let (line, col) = self.start;
        XmlError {
            kind: e.kind,
            line: line + e.line - 1,
            column: if e.line == 1 {
                col + e.column - 1
            } else {
                e.column
            },
        }
    }

    /// Advances the global position over one whitespace byte between
    /// records. LF, CRLF and bare CR each end a line once (matching
    /// `bump_byte`).
    fn advance_ws(&mut self, b: u8) {
        if b == b'\n' {
            if !self.prev_cr {
                self.line += 1;
            }
            self.col = 1;
        } else if b == b'\r' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        self.prev_cr = b == b'\r';
    }

    #[allow(clippy::expect_used)] // checked invariant, documented at each site
    /// Settles the global position over a completed record's bytes in
    /// one bulk pass (the hot scanner loops never track positions).
    /// Columns count characters; LF, CRLF and bare CR each end a line
    /// once.
    fn advance_over(&mut self, bytes: &[u8]) {
        // Fast path (no CR anywhere — the overwhelming case): LF counts
        // and the char count of the final line are branchless,
        // vectorizable passes.
        if bytes.iter().all(|&b| b != b'\r') {
            let newlines = bytes.iter().filter(|&&b| b == b'\n').count();
            let tail = if newlines == 0 {
                bytes
            } else {
                self.line += newlines;
                self.col = 1;
                let last = bytes
                    .iter()
                    .rposition(|&b| b == b'\n')
                    .expect("newlines > 0");
                &bytes[last + 1..]
            };
            self.col += if tail.is_ascii() {
                tail.len()
            } else {
                tail.iter().filter(|&&b| b & 0xC0 != 0x80).count()
            };
            if !bytes.is_empty() {
                self.prev_cr = false;
            }
            return;
        }
        // CR present: the careful byte-at-a-time walk (LF, CRLF and bare
        // CR each end a line once).
        let mut line = self.line;
        let mut col = self.col;
        let mut prev_cr = self.prev_cr;
        for &b in bytes {
            if b == b'\n' {
                if !prev_cr {
                    line += 1;
                }
                col = 1;
            } else if b == b'\r' {
                line += 1;
                col = 1;
            } else {
                col += usize::from(b & 0xC0 != 0x80);
            }
            prev_cr = b == b'\r';
        }
        self.line = line;
        self.col = col;
        self.prev_cr = prev_cr;
    }
}

/// Byte length of the UTF-8 character introduced by lead byte `b`.
fn utf8_len(b: u8) -> u8 {
    match b {
        0xC2..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// The record-local (line, column) just past a valid UTF-8 `prefix` of a
/// record (used to place `InvalidUtf8` errors).
fn local_pos(prefix: &[u8]) -> (usize, usize) {
    let mut line = 1usize;
    let mut col = 1usize;
    let mut prev_cr = false;
    for &b in prefix {
        if b == b'\n' {
            if !prev_cr {
                line += 1;
            }
            col = 1;
        } else if b == b'\r' {
            line += 1;
            col = 1;
        } else if b & 0xC0 != 0x80 {
            col += 1;
        }
        prev_cr = b == b'\r';
    }
    (line, col)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_many_values;

    /// Streams `text` in chunks of `size` bytes; returns the values.
    fn stream_chunked(text: &str, size: usize) -> Result<Vec<Value>, XmlError> {
        let mut s = Streamer::new();
        let mut out = Vec::new();
        for chunk in text.as_bytes().chunks(size.max(1)) {
            s.feed(chunk, &mut |v| out.push(v))?;
        }
        s.finish(&mut |v| out.push(v))?;
        Ok(out)
    }

    /// Asserts streaming at several chunk sizes agrees with the one-shot
    /// multi-document parse, values and errors alike.
    fn assert_agrees(text: &str) {
        let oneshot = parse_many_values(text);
        for size in [1, 2, 3, 5, 7, 64, 4096] {
            let streamed = stream_chunked(text, size);
            assert_eq!(streamed, oneshot, "chunk size {size} on {text:?}");
        }
    }

    #[test]
    fn documents_stream_with_any_split() {
        assert_agrees(r#"<root id="1"><item>Hello!</item></root>"#);
        assert_agrees("<a/><b/><c x=\"1\"/>");
        assert_agrees("<a>1</a>\n<a>2</a>\n");
        assert_agrees("");
        assert_agrees("   \n ");
        assert_agrees("<p>text <b>bold</b> more</p>");
        assert_agrees("<čaj típ=\"zelený\">42</čaj>");
    }

    #[test]
    fn prolog_and_misc_stream_with_any_split() {
        assert_agrees("<?xml version=\"1.0\"?>\n<!DOCTYPE d [<!ELEMENT d ANY>]>\n<d/>");
        assert_agrees("<!-- lead --><a/><!-- mid --><b/><!-- trail -->");
        assert_agrees("<a><?php echo ?><b/></a>");
        assert_agrees("<a><!-- c --- --></a>");
        assert_agrees("<!-- only a comment -->");
    }

    #[test]
    fn cdata_and_entities_stream_with_any_split() {
        assert_agrees("<a><![CDATA[<not-a-tag> & raw]]></a>");
        assert_agrees("<a><![CDATA[x]y]]z]]></a>");
        assert_agrees("<a x=\"&lt;&amp;&quot;\">&gt;&apos;</a>");
        assert_agrees("<a>&#65;&#x42;&#x1F600;</a>");
    }

    #[test]
    fn attribute_edge_cases_stream_with_any_split() {
        assert_agrees("<a x=\"1\" y='two' z=\"a > b\"/>");
        assert_agrees("<a x=\"multi\nline\"/>");
        assert_agrees("<a x = \"1\"  y=\"2\" />");
    }

    #[test]
    fn errors_agree_with_oneshot() {
        for bad in [
            "<a><b></a></b>",
            "<a><b>",
            "<a>&nope;</a>",
            "<a>&#xD800;</a>",
            "<a>\n  <b x=>\n</a>",
            "<a>\n<žluť x=@>\n</a>",
            "<a x=1/>",
            "< a>",
            "junk <a/>",
            "<a/>junk",
            "<a/><b x=\"&broken\"/>",
            "<a>&ééééééé;</a>",
            "<a>&aaaaaaaaaaaaaaaa;</a>",
            "<a x=\"&ééééééé;\"/>",
            "<!-- unterminated",
            "<!DOCTYPE oops",
            "<?pi never ends",
            "<a>\r\n<b>\r\n<bad @></a>",
            "<a>\r<b>\r<bad @></a>",
            "<a\u{00A0}x=\"1\"/>",
        ] {
            assert_agrees(bad);
        }
    }

    #[test]
    fn deep_nesting_error_agrees() {
        let deep = "<a>".repeat(300) + &"</a>".repeat(300);
        assert_agrees(&deep);
    }

    #[test]
    fn error_positions_translate_across_records() {
        let text = "<ok/>\n<ok/>\n<bad @>";
        let oneshot = parse_many_values(text).unwrap_err();
        let streamed = stream_chunked(text, 1).unwrap_err();
        assert_eq!(streamed, oneshot);
        assert_eq!(streamed.line, 3);
    }

    #[test]
    fn stream_is_poisoned_after_error() {
        let mut s = Streamer::new();
        let mut out = Vec::new();
        let err = s.feed(b"<a></b> <c/>", &mut |v| out.push(v)).unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::MismatchedTag { .. }));
        assert_eq!(s.feed(b"<d/>", &mut |v| out.push(v)), Err(err.clone()));
        assert_eq!(s.finish(&mut |v| out.push(v)), Err(err));
        assert!(out.is_empty());
    }

    #[test]
    fn unclosed_document_trips_the_record_cap_at_one_byte_chunks() {
        let mut s = Streamer::new();
        s.set_max_record_bytes(64);
        let mut n = 0usize;
        s.feed(b"<ok/>\n<open><v>", &mut |_| n += 1).unwrap();
        assert_eq!(n, 1);
        let mut err = None;
        for _ in 0..1000 {
            if let Err(e) = s.feed(b"x", &mut |_| n += 1) {
                err = Some(e);
                break;
            }
        }
        let err = err.expect("the cap must trip long before 1000 bytes");
        assert_eq!(err.kind, XmlErrorKind::RecordTooLarge(64));
        // The error sits at the document's start.
        assert_eq!((err.line, err.column), (2, 1));
        assert!(s.buf.len() <= 64 + 1, "buf grew to {}", s.buf.len());
        assert_eq!(s.finish(&mut |_| n += 1), Err(err));
    }

    #[test]
    fn invalid_utf8_is_reported_with_position() {
        let mut s = Streamer::new();
        s.feed(b"<a>", &mut |_| ()).unwrap();
        s.feed(&[0xFF], &mut |_| ()).unwrap();
        let err = s.feed(b"</a>", &mut |_| ()).unwrap_err();
        assert_eq!(err.kind, XmlErrorKind::InvalidUtf8);
        assert_eq!((err.line, err.column), (1, 4));
    }
}
