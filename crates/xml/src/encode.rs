//! Encoding XML elements into the universal data value (§6.2).
//!
//! > "For each node, we create a record. Attributes become record fields
//! > and the body becomes a field with a special name. […] This XML
//! > becomes a record root with fields id and • for the body. The nested
//! > element contains only the • field with the inner text. As with CSV,
//! > we infer shape of primitive values."
//!
//! Concretely, for `<root id="1"><item>Hello!</item></root>`:
//!
//! ```text
//! root {id ↦ 1, • ↦ [item {• ↦ "Hello!"}]}
//! ```

use crate::Element;
use tfd_csv::literal::{parse_literal, LiteralOptions};
use tfd_value::{body_name, Name, Value};

/// Options for the element→value encoding.
#[derive(Debug, Clone, Default)]
pub struct EncodeOptions {
    /// Literal-inference options applied to attribute values and text
    /// content ("As with CSV, we infer shape of primitive values").
    pub literals: LiteralOptions,
}

/// Encodes an element as a record per §6.2.
///
/// Rules:
///
/// * the record is named after the element;
/// * each attribute becomes a field, its text run through
///   [`parse_literal`];
/// * the body becomes a `•` field: if the element contains only text, the
///   field holds the inferred literal; if it contains child elements, the
///   field holds the collection of encoded children (interleaved text is
///   dropped from the collection — the paper notes such mixed content
///   stays reachable only through the underlying representation);
/// * an element with neither attributes nor content becomes an empty
///   record (its `•` field would be `null`, which we encode by omitting
///   the field so that inference marks it optional).
///
/// ```
/// let root = tfd_xml::parse(r#"<root id="1"><item>Hello!</item></root>"#)?;
/// let v = tfd_xml::element_to_value(&root, &tfd_xml::EncodeOptions::default());
/// assert_eq!(v.record_name(), Some("root"));
/// let body = v.field(tfd_value::BODY_FIELD).unwrap();
/// assert_eq!(body.elements().unwrap().len(), 1);
/// # Ok::<(), tfd_xml::XmlError>(())
/// ```
pub fn element_to_value(element: &Element, options: &EncodeOptions) -> Value {
    // Attribute and element names are already interned by the parser;
    // encoding copies the `Name` symbols, allocating nothing.
    let mut fields: Vec<(Name, Value)> = element
        .attributes
        .iter()
        .map(|a| (a.name, parse_literal(&a.value, &options.literals)))
        .collect();

    let child_elements: Vec<&Element> = element.child_elements().collect();
    if child_elements.is_empty() {
        // Text-only (or empty) body.
        let text = element.text();
        let trimmed = text.trim();
        if !trimmed.is_empty() {
            fields.push((body_name(), parse_literal(trimmed, &options.literals)));
        }
    } else {
        let children: Vec<Value> = child_elements
            .iter()
            .map(|c| element_to_value(c, options))
            .collect();
        fields.push((body_name(), Value::List(children)));
    }

    Value::record(element.name, fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use tfd_value::BODY_FIELD;

    fn encode(xml: &str) -> Value {
        element_to_value(&parse(xml).unwrap(), &EncodeOptions::default())
    }

    #[test]
    fn paper_root_item_example() {
        // §6.2: root {id ↦ 1, • ↦ [item {• ↦ "Hello!"}]}
        let v = encode(r#"<root id="1"><item>Hello!</item></root>"#);
        assert_eq!(v.record_name(), Some("root"));
        assert_eq!(v.field("id"), Some(&Value::Int(1)));
        let body = v.field(BODY_FIELD).unwrap();
        let items = body.elements().unwrap();
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].record_name(), Some("item"));
        assert_eq!(items[0].field(BODY_FIELD), Some(&Value::str("Hello!")));
    }

    #[test]
    fn attributes_are_literal_inferred() {
        let v = encode(r##"<a i="42" f="2.5" b="true" s="hey" m="#N/A"/>"##);
        assert_eq!(v.field("i"), Some(&Value::Int(42)));
        assert_eq!(v.field("f"), Some(&Value::Float(2.5)));
        assert_eq!(v.field("b"), Some(&Value::Bool(true)));
        assert_eq!(v.field("s"), Some(&Value::str("hey")));
        assert_eq!(v.field("m"), Some(&Value::Null));
    }

    #[test]
    fn text_content_is_literal_inferred() {
        assert_eq!(encode("<n>42</n>").field(BODY_FIELD), Some(&Value::Int(42)));
        assert_eq!(
            encode("<n>hello</n>").field(BODY_FIELD),
            Some(&Value::str("hello"))
        );
    }

    #[test]
    fn empty_element_omits_body_field() {
        let v = encode("<a/>");
        assert_eq!(v.field(BODY_FIELD), None);
        assert_eq!(v.fields().unwrap().len(), 0);
    }

    #[test]
    fn whitespace_only_body_omitted() {
        let v = encode("<a>   </a>");
        assert_eq!(v.field(BODY_FIELD), None);
    }

    #[test]
    fn children_become_collection() {
        let v = encode("<doc><p>one</p><p>two</p></doc>");
        let body = v.field(BODY_FIELD).unwrap();
        assert_eq!(body.elements().unwrap().len(), 2);
    }

    #[test]
    fn mixed_content_keeps_elements_only() {
        let v = encode("<p>text <b>bold</b> more</p>");
        let body = v.field(BODY_FIELD).unwrap();
        let items = body.elements().unwrap();
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].record_name(), Some("b"));
    }

    #[test]
    fn text_is_trimmed_before_inference() {
        assert_eq!(
            encode("<n>  42 </n>").field(BODY_FIELD),
            Some(&Value::Int(42))
        );
    }

    #[test]
    fn paper_doc_sample_encodes() {
        let v = encode(
            "<doc>\
               <heading>Working with JSON</heading>\
               <p>Type providers make this easy.</p>\
               <image source=\"xml.png\" />\
             </doc>",
        );
        let body = v.field(BODY_FIELD).unwrap().elements().unwrap().to_vec();
        assert_eq!(body.len(), 3);
        assert_eq!(body[0].record_name(), Some("heading"));
        assert_eq!(body[2].record_name(), Some("image"));
        assert_eq!(body[2].field("source"), Some(&Value::str("xml.png")));
    }
}
