//! A non-validating XML parser — single-pass, byte-level.
//!
//! Implements the subset of XML 1.0 needed for data documents: elements,
//! attributes, text, CDATA, comments, processing instructions, the XML
//! declaration, DOCTYPE skipping, predefined entities (`&lt; &gt; &amp;
//! &apos; &quot;`) and numeric character references (`&#65;`, `&#x41;`).
//! External entities are never resolved.
//!
//! Like the byte-level JSON parser (`tfd_json::parser`), this is hot-path
//! code — a type provider parses every XML sample through here before
//! inference runs — so the parser works directly on the input bytes:
//!
//! * element and attribute names are **interned into [`Name`] symbols
//!   straight from borrowed slices** of the input; a million `<row>`
//!   elements allocate their tag spelling once, not a million times;
//! * text runs and attribute values are scanned as byte runs and copied
//!   in bulk (one `push_str` per run instead of one `push` per char);
//!   entity-free attribute values materialize with a single copy;
//! * lookahead is **offset-based probing** (`bytes[pos + 1]`), replacing
//!   the char-iterator clones of the retained [`crate::reference`]
//!   parser;
//! * line/column positions are not tracked per character: the parser
//!   keeps the current line number and the byte offset of its start, and
//!   an error **computes** its char-correct column only when raised.
//!
//! The previous char-level parser is retained unchanged as
//! [`crate::reference`] so benchmarks can quantify the difference.

use crate::encode::EncodeOptions;
use crate::{Attribute, Element, XmlNode};
use std::borrow::Cow;
use std::fmt;
use tfd_csv::literal::parse_literal;
use tfd_value::{body_name, Interner, Name, Value};

/// Parser configuration.
#[derive(Debug, Clone)]
pub struct XmlOptions {
    /// Maximum element nesting depth. Default: 256.
    pub max_depth: usize,
    /// When `true` (default), whitespace-only text nodes between elements
    /// are dropped, so `<a>\n  <b/>\n</a>` has one child, not three.
    pub ignore_whitespace_text: bool,
}

impl Default for XmlOptions {
    fn default() -> Self {
        XmlOptions {
            max_depth: 256,
            ignore_whitespace_text: true,
        }
    }
}

/// What went wrong while parsing XML.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlErrorKind {
    /// Input ended unexpectedly.
    UnexpectedEof(&'static str),
    /// A character that is not valid at this point.
    Unexpected {
        /// The offending character.
        found: char,
        /// What the parser was looking for.
        expected: &'static str,
    },
    /// `</a>` closed an element opened as `<b>`.
    MismatchedTag {
        /// Name in the open tag.
        open: String,
        /// Name in the close tag.
        close: String,
    },
    /// No root element was found.
    NoRoot,
    /// Extra content after the root element.
    TrailingContent,
    /// An unknown named entity such as `&foo;`.
    UnknownEntity(String),
    /// A numeric character reference that is not a valid scalar value.
    BadCharRef(String),
    /// Nesting exceeded [`XmlOptions::max_depth`].
    TooDeep(usize),
    /// The byte stream is not valid UTF-8. Only the chunk-fed
    /// [`Streamer`](crate::stream::Streamer) reports this: the one-shot
    /// entry points take `&str` and cannot observe it.
    InvalidUtf8,
    /// A single record exceeded the streamer's byte cap; the payload is
    /// the configured limit. Only the chunk-fed
    /// [`Streamer`](crate::stream::Streamer) and the engine's recovery
    /// drivers report this — the one-shot entry points already hold the
    /// whole input. The position is the record's start.
    RecordTooLarge(usize),
}

impl fmt::Display for XmlErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlErrorKind::UnexpectedEof(ctx) => write!(f, "unexpected end of input in {ctx}"),
            XmlErrorKind::Unexpected { found, expected } => {
                write!(f, "expected {expected}, found {found:?}")
            }
            XmlErrorKind::MismatchedTag { open, close } => {
                write!(f, "mismatched tag: <{open}> closed by </{close}>")
            }
            XmlErrorKind::NoRoot => write!(f, "document has no root element"),
            XmlErrorKind::TrailingContent => write!(f, "content after root element"),
            XmlErrorKind::UnknownEntity(e) => write!(f, "unknown entity &{e};"),
            XmlErrorKind::BadCharRef(e) => write!(f, "invalid character reference &#{e};"),
            XmlErrorKind::TooDeep(limit) => {
                write!(f, "element nesting exceeds limit of {limit}")
            }
            XmlErrorKind::InvalidUtf8 => write!(f, "input is not valid UTF-8"),
            XmlErrorKind::RecordTooLarge(limit) => {
                write!(f, "record exceeds size limit of {limit} bytes")
            }
        }
    }
}

/// An XML parse error with a line/column position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// What went wrong.
    pub kind: XmlErrorKind,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at line {}, column {}",
            self.kind, self.line, self.column
        )
    }
}

impl std::error::Error for XmlError {}

/// Parses an XML document, returning its root element.
///
/// Element and attribute names are interned into the process-global
/// [`Name`] table, which only grows — the right trade for schema-shaped
/// data (tag vocabularies are tiny), but documents whose tag names are
/// themselves unbounded *data* will grow the interner per distinct name.
///
/// # Errors
///
/// Returns [`XmlError`] for malformed input.
///
/// ```
/// let root = tfd_xml::parse("<doc><heading>Hi</heading></doc>")?;
/// assert_eq!(root.name, "doc");
/// assert_eq!(root.child_elements().count(), 1);
/// # Ok::<(), tfd_xml::XmlError>(())
/// ```
pub fn parse(input: &str) -> Result<Element, XmlError> {
    parse_with(input, &XmlOptions::default())
}

/// Parses an XML document with explicit [`XmlOptions`].
///
/// # Errors
///
/// As [`parse`], plus [`XmlErrorKind::TooDeep`] when nesting exceeds the
/// configured limit.
pub fn parse_with(input: &str, options: &XmlOptions) -> Result<Element, XmlError> {
    let mut p = XmlParser::new(input, options.clone());
    p.skip_prolog()?;
    let root = p.parse_element(&mut ElementSink, 0)?;
    p.skip_misc()?;
    if !p.at_eof() {
        return Err(p.error(XmlErrorKind::TrailingContent));
    }
    Ok(root)
}

/// Parses an XML document straight into the universal data [`Value`] per
/// §6.2 ("For each node, we create a record. Attributes become record
/// fields and the body becomes a field with a special name"), skipping
/// the [`Element`] tree entirely — the parse→infer hot path, mirroring
/// `tfd_json::parse_value`.
///
/// One pass over the bytes: names intern from borrowed slices, attribute
/// values and trimmed text feed the shared literal inference directly
/// (an `id="42"` allocates nothing on its way to `Value::Int(42)`), and
/// no `Attribute`/`XmlNode` nodes ever materialize.
///
/// # Errors
///
/// As [`parse`].
///
/// ```
/// use tfd_value::Value;
/// let v = tfd_xml::parse_value(r#"<root id="1"><item>Hello!</item></root>"#)?;
/// assert_eq!(v.record_name(), Some("root"));
/// assert_eq!(v.field("id"), Some(&Value::Int(1)));
/// # Ok::<(), tfd_xml::XmlError>(())
/// ```
pub fn parse_value(input: &str) -> Result<Value, XmlError> {
    parse_value_with(input, &XmlOptions::default(), &EncodeOptions::default())
}

/// [`parse_value`] under explicit parser and encoding options.
///
/// Produces exactly the same value as
/// `parse_with(input, options)?` followed by
/// [`element_to_value`](crate::element_to_value) (the round-trip suite
/// asserts this), without building the element tree.
///
/// # Errors
///
/// As [`parse_with`].
pub fn parse_value_with(
    input: &str,
    options: &XmlOptions,
    encode: &EncodeOptions,
) -> Result<Value, XmlError> {
    parse_value_in(input, options, encode, Interner::global())
}

/// [`parse_value_with`] interning element and attribute names into a
/// caller-supplied arena — the corpus-scoped hot path. Names in the
/// returned value borrow from `interner`'s storage;
/// [`Value::reintern`] whatever must outlive it.
///
/// # Errors
///
/// As [`parse_value_with`].
pub fn parse_value_in(
    input: &str,
    options: &XmlOptions,
    encode: &EncodeOptions,
    interner: &Interner,
) -> Result<Value, XmlError> {
    let mut p = XmlParser::new_in(input, options.clone(), interner);
    p.skip_prolog()?;
    let mut sink = ValueSink {
        options: encode.clone(),
        body: body_name(),
    };
    let root = p.parse_element(&mut sink, 0)?;
    p.skip_misc()?;
    if !p.at_eof() {
        return Err(p.error(XmlErrorKind::TrailingContent));
    }
    Ok(root)
}

/// Parses a *sequence* of XML documents laid end to end — each with its
/// own optional prolog (declaration, DOCTYPE, comments, PIs) — into one
/// [`Value`] per root element. This is the one-shot counterpart of the
/// chunk-fed [`Streamer`](crate::stream::Streamer), and the reference
/// the streaming differential suite compares against. Empty (or
/// misc-only) input yields an empty vector.
///
/// # Errors
///
/// Returns the first [`XmlError`] encountered.
///
/// ```
/// let docs = tfd_xml::parse_many_values("<a i=\"1\"/>\n<!-- x -->\n<a i=\"2\"/>")?;
/// assert_eq!(docs.len(), 2);
/// # Ok::<(), tfd_xml::XmlError>(())
/// ```
pub fn parse_many_values(input: &str) -> Result<Vec<Value>, XmlError> {
    parse_many_values_with(input, &XmlOptions::default(), &EncodeOptions::default())
}

/// [`parse_many_values`] under explicit parser and encoding options.
///
/// # Errors
///
/// As [`parse_many_values`].
pub fn parse_many_values_with(
    input: &str,
    options: &XmlOptions,
    encode: &EncodeOptions,
) -> Result<Vec<Value>, XmlError> {
    parse_many_values_in(input, options, encode, Interner::global())
}

/// [`parse_many_values_with`] interning element and attribute names into
/// a caller-supplied arena (see [`parse_value_in`]).
///
/// # Errors
///
/// As [`parse_many_values_with`].
pub fn parse_many_values_in(
    input: &str,
    options: &XmlOptions,
    encode: &EncodeOptions,
    interner: &Interner,
) -> Result<Vec<Value>, XmlError> {
    let mut p = XmlParser::new_in(input, options.clone(), interner);
    let mut sink = ValueSink {
        options: encode.clone(),
        body: body_name(),
    };
    let mut docs = Vec::new();
    while p.skip_prolog_opt()? {
        docs.push(p.parse_element(&mut sink, 0)?);
    }
    Ok(docs)
}

/// Parses exactly one document through a caller-held [`ValueSink`] — the
/// chunk-fed streamer's per-record entry point, kept separate from
/// [`parse_value_with`] so the hot path pays no per-record
/// [`EncodeOptions`] clone.
pub(crate) fn parse_value_record(
    input: &str,
    options: &XmlOptions,
    sink: &mut ValueSink,
    interner: &Interner,
) -> Result<Value, XmlError> {
    let mut p = XmlParser::new_in(input, options.clone(), interner);
    p.skip_prolog()?;
    let root = p.parse_element(sink, 0)?;
    p.skip_misc()?;
    if !p.at_eof() {
        return Err(p.error(XmlErrorKind::TrailingContent));
    }
    Ok(root)
}

/// Parses one document (prolog + root element) from the *front* of
/// `input` — which must start at a `<` — and returns its value with the
/// byte length consumed. The streamer uses this to parse a record
/// straight out of a chunk without first scanning for its boundary: a
/// root element is self-delimiting, so success is definitive wherever
/// the document ends. On failure the caller falls back to the resumable
/// scanner and this error is discarded.
pub(crate) fn parse_one_document(
    input: &str,
    options: &XmlOptions,
    sink: &mut ValueSink,
    interner: &Interner,
) -> Result<(Value, usize), XmlError> {
    let mut p = XmlParser::new_in(input, options.clone(), interner);
    if !p.skip_prolog_opt()? {
        // Misc-only input is ambiguous from a chunk front (a comment may
        // continue in the next chunk): never definitive.
        return Err(p.error(XmlErrorKind::NoRoot));
    }
    let root = p.parse_element(sink, 0)?;
    Ok((root, p.pos))
}

/// How parsed pieces are assembled into an output document. Two
/// instantiations exist: [`ElementSink`] (the [`Element`] tree) and
/// [`ValueSink`] (the §6.2 encoding into the universal [`Value`], with
/// literal inference applied to attributes and text). The parser is
/// generic over the sink so both outputs share the single byte-level
/// pass.
trait Sink {
    /// Per-element accumulator.
    type Elem;
    /// Finished node for a completed element.
    type Out;

    fn elem(&mut self, name: Name) -> Self::Elem;
    fn attr(&mut self, e: &mut Self::Elem, name: Name, value: Cow<'_, str>);
    /// A text run that survived whitespace filtering.
    fn text(&mut self, e: &mut Self::Elem, run: String);
    fn child(&mut self, e: &mut Self::Elem, child: Self::Out);
    fn finish(&mut self, e: Self::Elem) -> Self::Out;
}

struct ElementSink;

impl Sink for ElementSink {
    type Elem = Element;
    type Out = Element;

    fn elem(&mut self, name: Name) -> Element {
        Element {
            name,
            attributes: Vec::new(),
            children: Vec::new(),
        }
    }
    fn attr(&mut self, e: &mut Element, name: Name, value: Cow<'_, str>) {
        e.attributes.push(Attribute {
            name,
            value: value.into_owned(),
        });
    }
    fn text(&mut self, e: &mut Element, run: String) {
        e.children.push(XmlNode::Text(run));
    }
    fn child(&mut self, e: &mut Element, child: Element) {
        e.children.push(XmlNode::Element(child));
    }
    fn finish(&mut self, e: Element) -> Element {
        e
    }
}

pub(crate) struct ValueSink {
    pub(crate) options: EncodeOptions,
    pub(crate) body: Name,
}

/// Accumulator for one element being encoded as a value: attribute
/// fields, encoded child elements and the concatenated surviving text.
struct ValueElem {
    name: Name,
    fields: Vec<(Name, Value)>,
    children: Vec<Value>,
    text: String,
}

impl Sink for ValueSink {
    type Elem = ValueElem;
    type Out = Value;

    fn elem(&mut self, name: Name) -> ValueElem {
        ValueElem {
            name,
            fields: Vec::new(),
            children: Vec::new(),
            text: String::new(),
        }
    }
    fn attr(&mut self, e: &mut ValueElem, name: Name, value: Cow<'_, str>) {
        // Literal inference straight off the (usually borrowed) slice —
        // numeric/boolean/null attributes allocate nothing.
        e.fields
            .push((name, parse_literal(&value, &self.options.literals)));
    }
    fn text(&mut self, e: &mut ValueElem, run: String) {
        if e.text.is_empty() {
            e.text = run; // steal the first run's buffer
        } else {
            e.text.push_str(&run);
        }
    }
    fn child(&mut self, e: &mut ValueElem, child: Value) {
        e.children.push(child);
    }
    fn finish(&mut self, e: ValueElem) -> Value {
        // The §6.2 body rules of `crate::encode::element_to_value`:
        // text-only bodies are trimmed and literal-inferred, elements
        // make a collection (interleaved text is dropped), and an empty
        // body omits the `•` field so inference marks it optional.
        let mut fields = e.fields;
        if e.children.is_empty() {
            let trimmed = e.text.trim();
            if !trimmed.is_empty() {
                fields.push((self.body, parse_literal(trimmed, &self.options.literals)));
            }
        } else {
            fields.push((self.body, Value::List(e.children)));
        }
        Value::record(e.name, fields)
    }
}

struct XmlParser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    /// Current byte offset.
    pos: usize,
    /// Current 1-based line.
    line: usize,
    /// Byte offset where the current line starts; columns are computed
    /// from it (in characters) only when an error is raised.
    line_start: usize,
    options: XmlOptions,
    /// Arena element/attribute names intern into (the process-default
    /// arena for the legacy entry points, a corpus arena for the `_in`
    /// variants).
    interner: &'a Interner,
}

impl<'a> XmlParser<'a> {
    fn new(input: &'a str, options: XmlOptions) -> Self {
        XmlParser::new_in(input, options, Interner::global())
    }

    fn new_in(input: &'a str, options: XmlOptions, interner: &'a Interner) -> Self {
        XmlParser {
            input,
            bytes: input.as_bytes(),
            pos: 0,
            line: 1,
            line_start: 0,
            options,
            interner,
        }
    }

    /// Builds an error at the current position. The column counts
    /// *characters* since the start of the current line — the happy path
    /// never counts columns.
    fn error(&self, kind: XmlErrorKind) -> XmlError {
        XmlError {
            kind,
            line: self.line,
            column: self.input[self.line_start..self.pos].chars().count() + 1,
        }
    }

    fn at_eof(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    /// The char starting at the current byte offset, if any.
    fn peek_char(&self) -> Option<char> {
        self.input[self.pos..].chars().next()
    }

    /// Advances one byte, maintaining the line bookkeeping (LF, CRLF and
    /// bare-CR line endings each count once). Only valid when the byte
    /// at `pos` is ASCII (multi-byte chars advance by bulk-run scanning).
    fn bump_byte(&mut self) {
        match self.bytes[self.pos] {
            b'\n' => {
                self.line += 1;
                self.line_start = self.pos + 1;
            }
            b'\r' if self.bytes.get(self.pos + 1) != Some(&b'\n') => {
                self.line += 1;
                self.line_start = self.pos + 1;
            }
            _ => {}
        }
        self.pos += 1;
    }

    #[allow(clippy::expect_used)] // checked invariant, documented at each site
    fn expect_byte(&mut self, want: u8, ctx: &'static str) -> Result<(), XmlError> {
        match self.bytes.get(self.pos) {
            Some(&b) if b == want => {
                self.bump_byte();
                Ok(())
            }
            Some(_) => {
                let found = self.peek_char().expect("in-bounds");
                Err(self.error(XmlErrorKind::Unexpected {
                    found,
                    expected: ctx,
                }))
            }
            None => Err(self.error(XmlErrorKind::UnexpectedEof(ctx))),
        }
    }

    /// Skips XML whitespace — exactly the spec's `S` production (space,
    /// tab, CR, LF). This is deliberately narrower than the retained
    /// reference parser, which accidentally accepted any Unicode
    /// whitespace (e.g. a no-break space between attributes); such
    /// documents are not well-formed XML and are now rejected.
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' => self.pos += 1,
                b'\r' | b'\n' => self.bump_byte(),
                _ => break,
            }
        }
    }

    /// Skips `<?...?>`, `<!--...-->`, `<!DOCTYPE...>` and whitespace before
    /// the root element. Dispatch probes `bytes[pos + 1]` directly — no
    /// iterator clones.
    fn skip_prolog(&mut self) -> Result<(), XmlError> {
        if self.skip_prolog_opt()? {
            Ok(())
        } else {
            Err(self.error(XmlErrorKind::NoRoot))
        }
    }

    #[allow(clippy::expect_used)] // checked invariant, documented at each site
    /// [`skip_prolog`], but end of input yields `Ok(false)` instead of a
    /// `NoRoot` error — the multi-document entry points use this to stop
    /// cleanly after the last document. `Ok(true)` means the parser is
    /// positioned at an element's `<`.
    fn skip_prolog_opt(&mut self) -> Result<bool, XmlError> {
        loop {
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b'<') => {}
                Some(_) => {
                    let found = self.peek_char().expect("in-bounds");
                    return Err(self.error(XmlErrorKind::Unexpected {
                        found,
                        expected: "'<'",
                    }));
                }
                None => return Ok(false),
            }
            match self.bytes.get(self.pos + 1) {
                Some(b'?') => self.skip_pi()?,
                Some(b'!') => {
                    if self.bytes.get(self.pos + 2) == Some(&b'-') {
                        self.skip_comment()?;
                    } else {
                        self.skip_doctype()?;
                    }
                }
                _ => return Ok(true),
            }
        }
    }

    /// Skips comments/PIs/whitespace after the root element.
    fn skip_misc(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_ws();
            if self.bytes.get(self.pos) != Some(&b'<') {
                return Ok(());
            }
            match self.bytes.get(self.pos + 1) {
                Some(b'?') => self.skip_pi()?,
                Some(b'!') => self.skip_comment()?,
                _ => return Ok(()),
            }
        }
    }

    fn skip_pi(&mut self) -> Result<(), XmlError> {
        self.expect_byte(b'<', "processing instruction")?;
        self.expect_byte(b'?', "processing instruction")?;
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'?' && self.bytes.get(self.pos + 1) == Some(&b'>') {
                self.pos += 2;
                return Ok(());
            }
            self.bump_byte();
        }
        Err(self.error(XmlErrorKind::UnexpectedEof("processing instruction")))
    }

    fn skip_comment(&mut self) -> Result<(), XmlError> {
        self.expect_byte(b'<', "comment")?;
        self.expect_byte(b'!', "comment")?;
        self.expect_byte(b'-', "comment")?;
        self.expect_byte(b'-', "comment")?;
        // The comment ends at the first '>' preceded by at least two '-'.
        let mut dashes = 0usize;
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'-' => {
                    dashes += 1;
                    self.pos += 1;
                }
                b'>' if dashes >= 2 => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => {
                    dashes = 0;
                    self.bump_byte();
                }
            }
        }
        Err(self.error(XmlErrorKind::UnexpectedEof("comment")))
    }

    fn skip_doctype(&mut self) -> Result<(), XmlError> {
        self.expect_byte(b'<', "DOCTYPE")?;
        self.expect_byte(b'!', "DOCTYPE")?;
        // Consume until the matching '>', tracking nested '[' ... ']' for
        // internal subsets.
        let mut bracket_depth = 0usize;
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'[' => {
                    bracket_depth += 1;
                    self.pos += 1;
                }
                b']' => {
                    bracket_depth = bracket_depth.saturating_sub(1);
                    self.pos += 1;
                }
                b'>' if bracket_depth == 0 => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => self.bump_byte(),
            }
        }
        Err(self.error(XmlErrorKind::UnexpectedEof("DOCTYPE")))
    }

    fn is_name_start(c: char) -> bool {
        c.is_alphabetic() || c == '_' || c == ':'
    }

    fn is_name_char(c: char) -> bool {
        Self::is_name_start(c) || c.is_numeric() || c == '-' || c == '.'
    }

    fn is_ascii_name_byte(b: u8) -> bool {
        b.is_ascii_alphanumeric() || matches!(b, b'_' | b':' | b'-' | b'.')
    }

    #[allow(clippy::expect_used)] // checked invariant, documented at each site
    /// Scans a name and interns it straight from the borrowed slice —
    /// no intermediate `String` ever materializes.
    fn parse_name(&mut self) -> Result<Name, XmlError> {
        let start = self.pos;
        match self.peek_char() {
            Some(c) if Self::is_name_start(c) => self.pos += c.len_utf8(),
            Some(found) => {
                return Err(self.error(XmlErrorKind::Unexpected {
                    found,
                    expected: "a name",
                }))
            }
            None => return Err(self.error(XmlErrorKind::UnexpectedEof("name"))),
        }
        loop {
            match self.bytes.get(self.pos) {
                // ASCII fast path: one byte, one table check.
                Some(&b) if b.is_ascii() => {
                    if Self::is_ascii_name_byte(b) {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                Some(_) => {
                    let c = self.peek_char().expect("in-bounds");
                    if Self::is_name_char(c) {
                        self.pos += c.len_utf8();
                    } else {
                        break;
                    }
                }
                None => break,
            }
        }
        Ok(self.interner.intern(&self.input[start..self.pos]))
    }

    #[allow(clippy::expect_used)] // checked invariant, documented at each site
    /// Decodes the entity at `pos` (positioned *after* the `&`).
    fn parse_entity(&mut self) -> Result<char, XmlError> {
        let start = self.pos;
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.error(XmlErrorKind::UnexpectedEof("entity"))),
                Some(b';') => break,
                Some(&b) => {
                    // Advance whole characters so the length check and
                    // the error slice below always sit on char
                    // boundaries (a body of multi-byte chars must not
                    // split one).
                    if b.is_ascii() {
                        self.bump_byte();
                    } else {
                        let c = self.peek_char().expect("in-bounds");
                        self.pos += c.len_utf8();
                    }
                    if self.pos - start > 12 {
                        return Err(self.error(XmlErrorKind::UnknownEntity(
                            self.input[start..self.pos].to_owned(),
                        )));
                    }
                }
            }
        }
        let body = &self.input[start..self.pos];
        self.pos += 1; // ';'
        match body {
            "lt" => Ok('<'),
            "gt" => Ok('>'),
            "amp" => Ok('&'),
            "apos" => Ok('\''),
            "quot" => Ok('"'),
            _ => {
                if let Some(hex) = body.strip_prefix("#x").or_else(|| body.strip_prefix("#X")) {
                    u32::from_str_radix(hex, 16)
                        .ok()
                        .and_then(char::from_u32)
                        .ok_or_else(|| self.error(XmlErrorKind::BadCharRef(body.to_owned())))
                } else if let Some(dec) = body.strip_prefix('#') {
                    dec.parse::<u32>()
                        .ok()
                        .and_then(char::from_u32)
                        .ok_or_else(|| self.error(XmlErrorKind::BadCharRef(body.to_owned())))
                } else {
                    Err(self.error(XmlErrorKind::UnknownEntity(body.to_owned())))
                }
            }
        }
    }

    #[allow(clippy::expect_used)] // checked invariant, documented at each site
    /// Parses a quoted attribute value. Entity-free values — the common
    /// case — are returned as a borrowed slice of the input; values with
    /// entities build an owned buffer from bulk runs.
    fn parse_attr_value(&mut self) -> Result<Cow<'a, str>, XmlError> {
        let quote = match self.bytes.get(self.pos) {
            Some(&b @ (b'"' | b'\'')) => {
                self.pos += 1;
                b
            }
            Some(_) => {
                let found = self.peek_char().expect("in-bounds");
                return Err(self.error(XmlErrorKind::Unexpected {
                    found,
                    expected: "a quoted attribute value",
                }));
            }
            None => return Err(self.error(XmlErrorKind::UnexpectedEof("attribute value"))),
        };
        let start = self.pos;
        let mut value: Option<String> = None;
        let mut run_start = start;
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.error(XmlErrorKind::UnexpectedEof("attribute value"))),
                Some(&b) if b == quote => {
                    let out = match value {
                        Some(mut v) => {
                            v.push_str(&self.input[run_start..self.pos]);
                            Cow::Owned(v)
                        }
                        None => Cow::Borrowed(&self.input[start..self.pos]),
                    };
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'&') => {
                    let v =
                        value.get_or_insert_with(|| String::with_capacity(self.pos - start + 16));
                    v.push_str(&self.input[run_start..self.pos]);
                    self.pos += 1;
                    let c = self.parse_entity()?;
                    v.push(c);
                    run_start = self.pos;
                }
                Some(_) => self.bump_byte(),
            }
        }
    }

    #[allow(clippy::expect_used)] // checked invariant, documented at each site
    fn parse_element<S: Sink>(&mut self, sink: &mut S, depth: usize) -> Result<S::Out, XmlError> {
        if depth >= self.options.max_depth {
            return Err(self.error(XmlErrorKind::TooDeep(self.options.max_depth)));
        }
        self.expect_byte(b'<', "element")?;
        let name = self.parse_name()?;
        let mut element = sink.elem(name);

        // Attributes.
        loop {
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(b'/') => {
                    self.pos += 1;
                    self.expect_byte(b'>', "self-closing tag")?;
                    return Ok(sink.finish(element));
                }
                Some(_) => {
                    let c = self.peek_char().expect("in-bounds");
                    if !Self::is_name_start(c) {
                        return Err(self.error(XmlErrorKind::Unexpected {
                            found: c,
                            expected: "attribute, '>' or '/>'",
                        }));
                    }
                    let attr_name = self.parse_name()?;
                    self.skip_ws();
                    self.expect_byte(b'=', "attribute")?;
                    self.skip_ws();
                    let value = self.parse_attr_value()?;
                    sink.attr(&mut element, attr_name, value);
                }
                None => return Err(self.error(XmlErrorKind::UnexpectedEof("start tag"))),
            }
        }

        // Content.
        let mut text_run = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.error(XmlErrorKind::UnexpectedEof("element content"))),
                Some(b'<') => match self.bytes.get(self.pos + 1) {
                    Some(b'/') => {
                        self.flush_text(sink, &mut element, &mut text_run);
                        self.pos += 2; // "</"
                        let close = self.parse_name()?;
                        self.skip_ws();
                        self.expect_byte(b'>', "end tag")?;
                        if close != name {
                            return Err(self.error(XmlErrorKind::MismatchedTag {
                                open: name.as_str().to_owned(),
                                close: close.as_str().to_owned(),
                            }));
                        }
                        return Ok(sink.finish(element));
                    }
                    Some(b'!') => {
                        if self.bytes.get(self.pos + 2) == Some(&b'[') {
                            // CDATA section: <![CDATA[ ... ]]>
                            if !self.bytes[self.pos..].starts_with(b"<![CDATA[") {
                                return Err(self.error(XmlErrorKind::Unexpected {
                                    found: '[',
                                    expected: "CDATA section",
                                }));
                            }
                            self.pos += "<![CDATA[".len();
                            self.read_cdata(&mut text_run)?;
                        } else {
                            self.flush_text(sink, &mut element, &mut text_run);
                            self.skip_comment()?;
                        }
                    }
                    Some(b'?') => {
                        self.flush_text(sink, &mut element, &mut text_run);
                        self.skip_pi()?;
                    }
                    _ => {
                        self.flush_text(sink, &mut element, &mut text_run);
                        let child = self.parse_element(sink, depth + 1)?;
                        sink.child(&mut element, child);
                    }
                },
                Some(b'&') => {
                    self.pos += 1;
                    let c = self.parse_entity()?;
                    text_run.push(c);
                }
                Some(_) => {
                    // Bulk text run: scan to the next markup or entity
                    // and copy the whole run at once.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'<' || b == b'&' {
                            break;
                        }
                        if b == b'\n' || b == b'\r' {
                            self.bump_byte();
                        } else {
                            self.pos += 1;
                        }
                    }
                    text_run.push_str(&self.input[start..self.pos]);
                }
            }
        }
    }

    fn read_cdata(&mut self, text_run: &mut String) -> Result<(), XmlError> {
        // Already consumed "<![CDATA[". Copy the content in one run,
        // delimited by "]]>".
        let run_start = self.pos;
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.error(XmlErrorKind::UnexpectedEof("CDATA section"))),
                Some(b']')
                    if self.bytes.get(self.pos + 1) == Some(&b']')
                        && self.bytes.get(self.pos + 2) == Some(&b'>') =>
                {
                    text_run.push_str(&self.input[run_start..self.pos]);
                    self.pos += 3;
                    return Ok(());
                }
                Some(_) => self.bump_byte(),
            }
        }
    }

    fn flush_text<S: Sink>(&mut self, sink: &mut S, element: &mut S::Elem, text_run: &mut String) {
        if text_run.is_empty() {
            return;
        }
        let run = std::mem::take(text_run);
        if self.options.ignore_whitespace_text && run.chars().all(char::is_whitespace) {
            return;
        }
        sink.text(element, run);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_element() {
        let e = parse("<a/>").unwrap();
        assert_eq!(e.name, "a");
        assert!(e.attributes.is_empty());
        assert!(e.children.is_empty());
        let e2 = parse("<a></a>").unwrap();
        assert_eq!(e, e2);
    }

    #[test]
    fn attributes_single_and_double_quoted() {
        let e = parse(r#"<a x="1" y='two'/>"#).unwrap();
        assert_eq!(e.attribute("x"), Some("1"));
        assert_eq!(e.attribute("y"), Some("two"));
    }

    #[test]
    fn attribute_spacing_variants() {
        let e = parse("<a x = \"1\"  y=\"2\" />").unwrap();
        assert_eq!(e.attribute("x"), Some("1"));
        assert_eq!(e.attribute("y"), Some("2"));
    }

    #[test]
    fn nested_elements_and_text() {
        let e = parse("<root><item>Hello!</item></root>").unwrap();
        assert_eq!(e.children.len(), 1);
        match &e.children[0] {
            XmlNode::Element(item) => {
                assert_eq!(item.name, "item");
                assert_eq!(item.text(), "Hello!");
            }
            other => panic!("expected element, got {other:?}"),
        }
    }

    #[test]
    fn whitespace_only_text_dropped_by_default() {
        let e = parse("<a>\n  <b/>\n  <c/>\n</a>").unwrap();
        assert_eq!(e.children.len(), 2);
    }

    #[test]
    fn whitespace_text_kept_when_configured() {
        let opts = XmlOptions {
            ignore_whitespace_text: false,
            ..XmlOptions::default()
        };
        let e = parse_with("<a> <b/> </a>", &opts).unwrap();
        assert_eq!(e.children.len(), 3);
    }

    #[test]
    fn mixed_content_preserved() {
        let e = parse("<p>one <b>two</b> three</p>").unwrap();
        assert_eq!(e.children.len(), 3);
        assert_eq!(e.text(), "one  three");
    }

    #[test]
    fn predefined_entities_decode() {
        let e = parse("<a x=\"&lt;&amp;&quot;\">&gt;&apos;</a>").unwrap();
        assert_eq!(e.attribute("x"), Some("<&\""));
        assert_eq!(e.text(), ">'");
    }

    #[test]
    fn numeric_character_references() {
        let e = parse("<a>&#65;&#x42;&#x1F600;</a>").unwrap();
        assert_eq!(e.text(), "AB\u{1F600}");
    }

    #[test]
    fn unknown_entity_is_error() {
        let err = parse("<a>&nbsp;</a>").unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::UnknownEntity(_)));
    }

    #[test]
    fn overlong_multibyte_entity_is_error_not_panic() {
        // The 12-byte limit used to fire mid-character and panic on the
        // char-boundary slice; it must error cleanly instead.
        for doc in [
            "<a>&ééééééé;</a>",
            "<a x=\"&ééééééé;\"/>",
            "<a>&日本語キーです;</a>",
        ] {
            let err = parse(doc).unwrap_err();
            assert!(matches!(err.kind, XmlErrorKind::UnknownEntity(_)), "{doc}");
        }
    }

    #[test]
    fn bad_char_ref_is_error() {
        let err = parse("<a>&#xD800;</a>").unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::BadCharRef(_)));
    }

    #[test]
    fn cdata_sections() {
        let e = parse("<a><![CDATA[<not-a-tag> & raw]]></a>").unwrap();
        assert_eq!(e.text(), "<not-a-tag> & raw");
    }

    #[test]
    fn cdata_with_brackets() {
        let e = parse("<a><![CDATA[x]y]]z]]></a>").unwrap();
        assert_eq!(e.text(), "x]y]]z");
    }

    #[test]
    fn comments_are_skipped() {
        let e = parse("<a><!-- hi --><b/><!-- --- --></a>").unwrap();
        assert_eq!(e.child_elements().count(), 1);
    }

    #[test]
    fn xml_declaration_and_doctype_skipped() {
        let e = parse("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<!DOCTYPE doc [<!ELEMENT doc ANY>]>\n<doc/>").unwrap();
        assert_eq!(e.name, "doc");
    }

    #[test]
    fn processing_instructions_in_content() {
        let e = parse("<a><?php echo ?><b/></a>").unwrap();
        assert_eq!(e.child_elements().count(), 1);
    }

    #[test]
    fn namespaced_names_kept_verbatim() {
        let e = parse(r#"<ns:a xmlns:ns="http://x" ns:attr="1"><ns:b/></ns:a>"#).unwrap();
        assert_eq!(e.name, "ns:a");
        assert_eq!(e.attribute("ns:attr"), Some("1"));
        assert_eq!(e.child_elements().next().unwrap().name, "ns:b");
    }

    #[test]
    fn non_ascii_names_intern() {
        let e = parse("<čaj típ=\"zelený\">42</čaj>").unwrap();
        assert_eq!(e.name, "čaj");
        assert_eq!(e.attribute("típ"), Some("zelený"));
        assert_eq!(e.text(), "42");
    }

    #[test]
    fn mismatched_tags_error() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::MismatchedTag { .. }));
    }

    #[test]
    fn unclosed_element_error() {
        let err = parse("<a><b>").unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::UnexpectedEof(_)));
    }

    #[test]
    fn trailing_content_error() {
        let err = parse("<a/><b/>").unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::TrailingContent));
    }

    #[test]
    fn trailing_comment_ok() {
        assert!(parse("<a/>\n<!-- done -->\n").is_ok());
    }

    #[test]
    fn no_root_error() {
        let err = parse("   ").unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::NoRoot));
    }

    #[test]
    fn depth_limit() {
        let deep = "<a>".repeat(300) + &"</a>".repeat(300);
        let err = parse(&deep).unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::TooDeep(256)));
    }

    #[test]
    fn error_positions_are_tracked() {
        let err = parse("<a>\n  <b x=>\n</a>").unwrap_err();
        assert_eq!(err.line, 2);
    }

    /// Only the spec's `S` production counts as markup whitespace: the
    /// retained reference parser accidentally accepted any Unicode
    /// whitespace between attributes, which is not well-formed XML.
    #[test]
    fn unicode_whitespace_in_markup_is_rejected() {
        for doc in ["<a\u{00A0}x=\"1\"/>", "<a x=\"1\"\u{2003}/>"] {
            assert!(parse(doc).is_err(), "{doc:?} should be rejected");
            // The divergence from the lenient reference is intentional:
            assert!(crate::reference::parse(doc).is_ok());
        }
        // ...while Unicode whitespace inside text/attribute *content*
        // is data, not markup, and passes through both parsers:
        let e = parse("<a x=\"\u{00A0}\">\u{2003}ok</a>").unwrap();
        assert_eq!(e.attribute("x"), Some("\u{00A0}"));
    }

    /// LF, CRLF and bare-CR (classic-Mac) line endings all advance the
    /// error line the same way — the XML analogue of the CSV bare-CR
    /// line-counting fix; the retained reference parser counts only LF.
    #[test]
    fn bare_cr_line_endings_count_in_error_positions() {
        for (doc, line, column) in [
            ("<a>\n<b>\n<bad @></a>", 3, 6),
            ("<a>\r\n<b>\r\n<bad @></a>", 3, 6),
            ("<a>\r<b>\r<bad @></a>", 3, 6),
        ] {
            let err = parse(doc).unwrap_err();
            assert_eq!((err.line, err.column), (line, column), "{doc:?}");
        }
    }

    #[test]
    fn error_column_counts_characters_not_bytes() {
        // "žluť" is 4 characters but 6 bytes; the column of the error
        // after it must count characters, as an editor shows them.
        let err = parse("<a>\n<žluť x=@>\n</a>").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.column, 9, "column must be in characters");
    }

    #[test]
    fn parse_value_agrees_with_parse_then_encode() {
        let docs = [
            r#"<root id="1"><item>Hello!</item></root>"#,
            r##"<a i="42" f="2.5" b="true" s="hey" m="#N/A"/>"##,
            "<n>  42 </n>",
            "<a>   </a>",
            "<p>text <b>bold</b> more</p>",
            "<doc><p>one</p><p>two</p></doc>",
            "<a><![CDATA[<not-a-tag> & raw]]></a>",
            "<a x=\"&lt;&amp;&quot;\">&gt;&apos;</a>",
            "<a>\n  <b/>\n  <c/>\n</a>",
            "<čaj típ=\"zelený\">42</čaj>",
        ];
        for doc in docs {
            assert_eq!(
                parse_value(doc).unwrap(),
                parse(doc).unwrap().to_value(),
                "mismatch on {doc}"
            );
        }
    }

    #[test]
    fn parse_value_propagates_errors() {
        assert!(matches!(
            parse_value("<a><b></a></b>").unwrap_err().kind,
            XmlErrorKind::MismatchedTag { .. }
        ));
        assert!(parse_value("<a>&nope;</a>").is_err());
        let deep = "<a>".repeat(300) + &"</a>".repeat(300);
        assert!(matches!(
            parse_value(&deep).unwrap_err().kind,
            XmlErrorKind::TooDeep(256)
        ));
    }

    #[test]
    fn paper_doc_sample_parses() {
        // The §2.2 example document.
        let e = parse(
            "<doc>\n\
               <heading>Working with JSON</heading>\n\
               <p>Type providers make this easy.</p>\n\
               <heading>Working with XML</heading>\n\
               <p>Processing XML is as easy as JSON.</p>\n\
               <image source=\"xml.png\" />\n\
             </doc>",
        )
        .unwrap();
        assert_eq!(e.name, "doc");
        let names: Vec<_> = e.child_elements().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["heading", "p", "heading", "p", "image"]);
        assert_eq!(
            e.child_elements().last().unwrap().attribute("source"),
            Some("xml.png")
        );
    }
}
