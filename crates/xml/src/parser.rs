//! A non-validating XML parser.
//!
//! Implements the subset of XML 1.0 needed for data documents: elements,
//! attributes, text, CDATA, comments, processing instructions, the XML
//! declaration, DOCTYPE skipping, predefined entities (`&lt; &gt; &amp;
//! &apos; &quot;`) and numeric character references (`&#65;`, `&#x41;`).
//! External entities are never resolved.

use crate::{Attribute, Element, XmlNode};
use std::fmt;

/// Parser configuration.
#[derive(Debug, Clone)]
pub struct XmlOptions {
    /// Maximum element nesting depth. Default: 256.
    pub max_depth: usize,
    /// When `true` (default), whitespace-only text nodes between elements
    /// are dropped, so `<a>\n  <b/>\n</a>` has one child, not three.
    pub ignore_whitespace_text: bool,
}

impl Default for XmlOptions {
    fn default() -> Self {
        XmlOptions { max_depth: 256, ignore_whitespace_text: true }
    }
}

/// What went wrong while parsing XML.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlErrorKind {
    /// Input ended unexpectedly.
    UnexpectedEof(&'static str),
    /// A character that is not valid at this point.
    Unexpected {
        /// The offending character.
        found: char,
        /// What the parser was looking for.
        expected: &'static str },
    /// `</a>` closed an element opened as `<b>`.
    MismatchedTag {
        /// Name in the open tag.
        open: String,
        /// Name in the close tag.
        close: String,
    },
    /// No root element was found.
    NoRoot,
    /// Extra content after the root element.
    TrailingContent,
    /// An unknown named entity such as `&foo;`.
    UnknownEntity(String),
    /// A numeric character reference that is not a valid scalar value.
    BadCharRef(String),
    /// Nesting exceeded [`XmlOptions::max_depth`].
    TooDeep(usize),
}

impl fmt::Display for XmlErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlErrorKind::UnexpectedEof(ctx) => write!(f, "unexpected end of input in {ctx}"),
            XmlErrorKind::Unexpected { found, expected } => {
                write!(f, "expected {expected}, found {found:?}")
            }
            XmlErrorKind::MismatchedTag { open, close } => {
                write!(f, "mismatched tag: <{open}> closed by </{close}>")
            }
            XmlErrorKind::NoRoot => write!(f, "document has no root element"),
            XmlErrorKind::TrailingContent => write!(f, "content after root element"),
            XmlErrorKind::UnknownEntity(e) => write!(f, "unknown entity &{e};"),
            XmlErrorKind::BadCharRef(e) => write!(f, "invalid character reference &#{e};"),
            XmlErrorKind::TooDeep(limit) => {
                write!(f, "element nesting exceeds limit of {limit}")
            }
        }
    }
}

/// An XML parse error with a line/column position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// What went wrong.
    pub kind: XmlErrorKind,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at line {}, column {}", self.kind, self.line, self.column)
    }
}

impl std::error::Error for XmlError {}

/// Parses an XML document, returning its root element.
///
/// # Errors
///
/// Returns [`XmlError`] for malformed input.
///
/// ```
/// let root = tfd_xml::parse("<doc><heading>Hi</heading></doc>")?;
/// assert_eq!(root.name, "doc");
/// assert_eq!(root.child_elements().count(), 1);
/// # Ok::<(), tfd_xml::XmlError>(())
/// ```
pub fn parse(input: &str) -> Result<Element, XmlError> {
    parse_with(input, &XmlOptions::default())
}

/// Parses an XML document with explicit [`XmlOptions`].
///
/// # Errors
///
/// As [`parse`], plus [`XmlErrorKind::TooDeep`] when nesting exceeds the
/// configured limit.
pub fn parse_with(input: &str, options: &XmlOptions) -> Result<Element, XmlError> {
    let mut p = XmlParser::new(input, options.clone());
    p.skip_prolog()?;
    let root = p.parse_element(0)?;
    p.skip_misc()?;
    if !p.at_eof() {
        return Err(p.error(XmlErrorKind::TrailingContent));
    }
    Ok(root)
}

struct XmlParser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: usize,
    column: usize,
    options: XmlOptions,
}

impl<'a> XmlParser<'a> {
    fn new(input: &'a str, options: XmlOptions) -> Self {
        XmlParser { chars: input.chars().peekable(), line: 1, column: 1, options }
    }

    fn error(&self, kind: XmlErrorKind) -> XmlError {
        XmlError { kind, line: self.line, column: self.column }
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn at_eof(&mut self) -> bool {
        self.peek().is_none()
    }

    fn expect(&mut self, want: char, ctx: &'static str) -> Result<(), XmlError> {
        match self.bump() {
            Some(c) if c == want => Ok(()),
            Some(c) => Err(self.error(XmlErrorKind::Unexpected { found: c, expected: ctx })),
            None => Err(self.error(XmlErrorKind::UnexpectedEof(ctx))),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.bump();
        }
    }

    /// Consumes `text` if it is next in the input (used after `<`).
    fn eat(&mut self, text: &str) -> bool {
        // Clone-based lookahead: cheap because `text` is short.
        let mut probe = self.chars.clone();
        for want in text.chars() {
            if probe.next() != Some(want) {
                return false;
            }
        }
        for _ in text.chars() {
            self.bump();
        }
        true
    }

    /// Skips `<?...?>`, `<!--...-->`, `<!DOCTYPE...>` and whitespace before
    /// the root element.
    fn skip_prolog(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_ws();
            match self.peek() {
                Some('<') => {}
                Some(found) => {
                    return Err(self.error(XmlErrorKind::Unexpected { found, expected: "'<'" }))
                }
                None => return Err(self.error(XmlErrorKind::NoRoot)),
            }
            let mut probe = self.chars.clone();
            probe.next(); // '<'
            match probe.next() {
                Some('?') => self.skip_pi()?,
                Some('!') => {
                    let mut probe2 = probe.clone();
                    if probe2.next() == Some('-') {
                        self.skip_comment()?;
                    } else {
                        self.skip_doctype()?;
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    /// Skips comments/PIs/whitespace after the root element.
    fn skip_misc(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_ws();
            if self.at_eof() {
                return Ok(());
            }
            let mut probe = self.chars.clone();
            if probe.next() != Some('<') {
                return Ok(());
            }
            match probe.next() {
                Some('?') => self.skip_pi()?,
                Some('!') => self.skip_comment()?,
                _ => return Ok(()),
            }
        }
    }

    fn skip_pi(&mut self) -> Result<(), XmlError> {
        self.expect('<', "processing instruction")?;
        self.expect('?', "processing instruction")?;
        loop {
            match self.bump() {
                None => return Err(self.error(XmlErrorKind::UnexpectedEof("processing instruction"))),
                Some('?') if self.peek() == Some('>') => {
                    self.bump();
                    return Ok(());
                }
                Some(_) => {}
            }
        }
    }

    fn skip_comment(&mut self) -> Result<(), XmlError> {
        self.expect('<', "comment")?;
        self.expect('!', "comment")?;
        self.expect('-', "comment")?;
        self.expect('-', "comment")?;
        let mut dashes = 0usize;
        loop {
            match self.bump() {
                None => return Err(self.error(XmlErrorKind::UnexpectedEof("comment"))),
                Some('-') => dashes += 1,
                Some('>') if dashes >= 2 => return Ok(()),
                Some(_) => dashes = 0,
            }
        }
    }

    fn skip_doctype(&mut self) -> Result<(), XmlError> {
        self.expect('<', "DOCTYPE")?;
        self.expect('!', "DOCTYPE")?;
        // Consume until the matching '>', tracking nested '[' ... ']' for
        // internal subsets.
        let mut bracket_depth = 0usize;
        loop {
            match self.bump() {
                None => return Err(self.error(XmlErrorKind::UnexpectedEof("DOCTYPE"))),
                Some('[') => bracket_depth += 1,
                Some(']') => bracket_depth = bracket_depth.saturating_sub(1),
                Some('>') if bracket_depth == 0 => return Ok(()),
                Some(_) => {}
            }
        }
    }

    fn is_name_start(c: char) -> bool {
        c.is_alphabetic() || c == '_' || c == ':'
    }

    fn is_name_char(c: char) -> bool {
        Self::is_name_start(c) || c.is_numeric() || c == '-' || c == '.'
    }

    fn parse_name(&mut self) -> Result<String, XmlError> {
        let mut name = String::new();
        match self.peek() {
            Some(c) if Self::is_name_start(c) => {
                name.push(c);
                self.bump();
            }
            Some(c) => {
                return Err(self.error(XmlErrorKind::Unexpected { found: c, expected: "a name" }))
            }
            None => return Err(self.error(XmlErrorKind::UnexpectedEof("name"))),
        }
        while matches!(self.peek(), Some(c) if Self::is_name_char(c)) {
            name.push(self.bump().expect("peeked"));
        }
        Ok(name)
    }

    fn parse_entity(&mut self) -> Result<char, XmlError> {
        // Called after consuming '&'.
        let mut body = String::new();
        loop {
            match self.bump() {
                None => return Err(self.error(XmlErrorKind::UnexpectedEof("entity"))),
                Some(';') => break,
                Some(c) => body.push(c),
            }
            if body.len() > 12 {
                return Err(self.error(XmlErrorKind::UnknownEntity(body)));
            }
        }
        match body.as_str() {
            "lt" => Ok('<'),
            "gt" => Ok('>'),
            "amp" => Ok('&'),
            "apos" => Ok('\''),
            "quot" => Ok('"'),
            _ => {
                if let Some(hex) = body.strip_prefix("#x").or_else(|| body.strip_prefix("#X")) {
                    u32::from_str_radix(hex, 16)
                        .ok()
                        .and_then(char::from_u32)
                        .ok_or_else(|| self.error(XmlErrorKind::BadCharRef(body.clone())))
                } else if let Some(dec) = body.strip_prefix('#') {
                    dec.parse::<u32>()
                        .ok()
                        .and_then(char::from_u32)
                        .ok_or_else(|| self.error(XmlErrorKind::BadCharRef(body.clone())))
                } else {
                    Err(self.error(XmlErrorKind::UnknownEntity(body)))
                }
            }
        }
    }

    fn parse_attr_value(&mut self) -> Result<String, XmlError> {
        let quote = match self.bump() {
            Some(c @ ('"' | '\'')) => c,
            Some(c) => {
                return Err(self.error(XmlErrorKind::Unexpected {
                    found: c,
                    expected: "a quoted attribute value",
                }))
            }
            None => return Err(self.error(XmlErrorKind::UnexpectedEof("attribute value"))),
        };
        let mut value = String::new();
        loop {
            match self.bump() {
                None => return Err(self.error(XmlErrorKind::UnexpectedEof("attribute value"))),
                Some(c) if c == quote => return Ok(value),
                Some('&') => value.push(self.parse_entity()?),
                Some(c) => value.push(c),
            }
        }
    }

    fn parse_element(&mut self, depth: usize) -> Result<Element, XmlError> {
        if depth >= self.options.max_depth {
            return Err(self.error(XmlErrorKind::TooDeep(self.options.max_depth)));
        }
        self.expect('<', "element")?;
        let name = self.parse_name()?;
        let mut element = Element::new(name);

        // Attributes.
        loop {
            self.skip_ws();
            match self.peek() {
                Some('>') => {
                    self.bump();
                    break;
                }
                Some('/') => {
                    self.bump();
                    self.expect('>', "self-closing tag")?;
                    return Ok(element);
                }
                Some(c) if Self::is_name_start(c) => {
                    let attr_name = self.parse_name()?;
                    self.skip_ws();
                    self.expect('=', "attribute")?;
                    self.skip_ws();
                    let value = self.parse_attr_value()?;
                    element.attributes.push(Attribute { name: attr_name, value });
                }
                Some(c) => {
                    return Err(self.error(XmlErrorKind::Unexpected {
                        found: c,
                        expected: "attribute, '>' or '/>'",
                    }))
                }
                None => return Err(self.error(XmlErrorKind::UnexpectedEof("start tag"))),
            }
        }

        // Content.
        let mut text_run = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error(XmlErrorKind::UnexpectedEof("element content"))),
                Some('<') => {
                    let mut probe = self.chars.clone();
                    probe.next(); // '<'
                    match probe.next() {
                        Some('/') => {
                            self.flush_text(&mut element, &mut text_run);
                            self.bump(); // '<'
                            self.bump(); // '/'
                            let close = self.parse_name()?;
                            self.skip_ws();
                            self.expect('>', "end tag")?;
                            if close != element.name {
                                return Err(self.error(XmlErrorKind::MismatchedTag {
                                    open: element.name,
                                    close,
                                }));
                            }
                            return Ok(element);
                        }
                        Some('!') => {
                            let mut probe2 = probe.clone();
                            if probe2.next() == Some('[') {
                                // CDATA section: <![CDATA[ ... ]]>
                                if !self.eat("<![CDATA[") {
                                    return Err(self.error(XmlErrorKind::Unexpected {
                                        found: '[',
                                        expected: "CDATA section",
                                    }));
                                }
                                self.read_cdata(&mut text_run)?;
                            } else {
                                self.flush_text(&mut element, &mut text_run);
                                self.skip_comment()?;
                            }
                        }
                        Some('?') => {
                            self.flush_text(&mut element, &mut text_run);
                            self.skip_pi()?;
                        }
                        _ => {
                            self.flush_text(&mut element, &mut text_run);
                            let child = self.parse_element(depth + 1)?;
                            element.children.push(XmlNode::Element(child));
                        }
                    }
                }
                Some('&') => {
                    self.bump();
                    text_run.push(self.parse_entity()?);
                }
                Some(_) => {
                    text_run.push(self.bump().expect("peeked"));
                }
            }
        }
    }

    fn read_cdata(&mut self, text_run: &mut String) -> Result<(), XmlError> {
        // Already consumed "<![CDATA[". Read until "]]>".
        loop {
            match self.bump() {
                None => return Err(self.error(XmlErrorKind::UnexpectedEof("CDATA section"))),
                Some(']') => {
                    let mut probe = self.chars.clone();
                    if probe.next() == Some(']') && probe.next() == Some('>') {
                        self.bump();
                        self.bump();
                        return Ok(());
                    }
                    text_run.push(']');
                }
                Some(c) => text_run.push(c),
            }
        }
    }

    fn flush_text(&mut self, element: &mut Element, text_run: &mut String) {
        if text_run.is_empty() {
            return;
        }
        let run = std::mem::take(text_run);
        if self.options.ignore_whitespace_text && run.chars().all(char::is_whitespace) {
            return;
        }
        element.children.push(XmlNode::Text(run));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_element() {
        let e = parse("<a/>").unwrap();
        assert_eq!(e.name, "a");
        assert!(e.attributes.is_empty());
        assert!(e.children.is_empty());
        let e2 = parse("<a></a>").unwrap();
        assert_eq!(e, e2);
    }

    #[test]
    fn attributes_single_and_double_quoted() {
        let e = parse(r#"<a x="1" y='two'/>"#).unwrap();
        assert_eq!(e.attribute("x"), Some("1"));
        assert_eq!(e.attribute("y"), Some("two"));
    }

    #[test]
    fn attribute_spacing_variants() {
        let e = parse("<a x = \"1\"  y=\"2\" />").unwrap();
        assert_eq!(e.attribute("x"), Some("1"));
        assert_eq!(e.attribute("y"), Some("2"));
    }

    #[test]
    fn nested_elements_and_text() {
        let e = parse("<root><item>Hello!</item></root>").unwrap();
        assert_eq!(e.children.len(), 1);
        match &e.children[0] {
            XmlNode::Element(item) => {
                assert_eq!(item.name, "item");
                assert_eq!(item.text(), "Hello!");
            }
            other => panic!("expected element, got {other:?}"),
        }
    }

    #[test]
    fn whitespace_only_text_dropped_by_default() {
        let e = parse("<a>\n  <b/>\n  <c/>\n</a>").unwrap();
        assert_eq!(e.children.len(), 2);
    }

    #[test]
    fn whitespace_text_kept_when_configured() {
        let opts = XmlOptions { ignore_whitespace_text: false, ..XmlOptions::default() };
        let e = parse_with("<a> <b/> </a>", &opts).unwrap();
        assert_eq!(e.children.len(), 3);
    }

    #[test]
    fn mixed_content_preserved() {
        let e = parse("<p>one <b>two</b> three</p>").unwrap();
        assert_eq!(e.children.len(), 3);
        assert_eq!(e.text(), "one  three");
    }

    #[test]
    fn predefined_entities_decode() {
        let e = parse("<a x=\"&lt;&amp;&quot;\">&gt;&apos;</a>").unwrap();
        assert_eq!(e.attribute("x"), Some("<&\""));
        assert_eq!(e.text(), ">'");
    }

    #[test]
    fn numeric_character_references() {
        let e = parse("<a>&#65;&#x42;&#x1F600;</a>").unwrap();
        assert_eq!(e.text(), "AB\u{1F600}");
    }

    #[test]
    fn unknown_entity_is_error() {
        let err = parse("<a>&nbsp;</a>").unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::UnknownEntity(_)));
    }

    #[test]
    fn bad_char_ref_is_error() {
        let err = parse("<a>&#xD800;</a>").unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::BadCharRef(_)));
    }

    #[test]
    fn cdata_sections() {
        let e = parse("<a><![CDATA[<not-a-tag> & raw]]></a>").unwrap();
        assert_eq!(e.text(), "<not-a-tag> & raw");
    }

    #[test]
    fn cdata_with_brackets() {
        let e = parse("<a><![CDATA[x]y]]z]]></a>").unwrap();
        assert_eq!(e.text(), "x]y]]z");
    }

    #[test]
    fn comments_are_skipped() {
        let e = parse("<a><!-- hi --><b/><!-- --- --></a>").unwrap();
        assert_eq!(e.child_elements().count(), 1);
    }

    #[test]
    fn xml_declaration_and_doctype_skipped() {
        let e = parse("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<!DOCTYPE doc [<!ELEMENT doc ANY>]>\n<doc/>").unwrap();
        assert_eq!(e.name, "doc");
    }

    #[test]
    fn processing_instructions_in_content() {
        let e = parse("<a><?php echo ?><b/></a>").unwrap();
        assert_eq!(e.child_elements().count(), 1);
    }

    #[test]
    fn namespaced_names_kept_verbatim() {
        let e = parse(r#"<ns:a xmlns:ns="http://x" ns:attr="1"><ns:b/></ns:a>"#).unwrap();
        assert_eq!(e.name, "ns:a");
        assert_eq!(e.attribute("ns:attr"), Some("1"));
        assert_eq!(e.child_elements().next().unwrap().name, "ns:b");
    }

    #[test]
    fn mismatched_tags_error() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::MismatchedTag { .. }));
    }

    #[test]
    fn unclosed_element_error() {
        let err = parse("<a><b>").unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::UnexpectedEof(_)));
    }

    #[test]
    fn trailing_content_error() {
        let err = parse("<a/><b/>").unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::TrailingContent));
    }

    #[test]
    fn trailing_comment_ok() {
        assert!(parse("<a/>\n<!-- done -->\n").is_ok());
    }

    #[test]
    fn no_root_error() {
        let err = parse("   ").unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::NoRoot));
    }

    #[test]
    fn depth_limit() {
        let deep = "<a>".repeat(300) + &"</a>".repeat(300);
        let err = parse(&deep).unwrap_err();
        assert!(matches!(err.kind, XmlErrorKind::TooDeep(256)));
    }

    #[test]
    fn error_positions_are_tracked() {
        let err = parse("<a>\n  <b x=>\n</a>").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn paper_doc_sample_parses() {
        // The §2.2 example document.
        let e = parse(
            "<doc>\n\
               <heading>Working with JSON</heading>\n\
               <p>Type providers make this easy.</p>\n\
               <heading>Working with XML</heading>\n\
               <p>Processing XML is as easy as JSON.</p>\n\
               <image source=\"xml.png\" />\n\
             </doc>",
        )
        .unwrap();
        assert_eq!(e.name, "doc");
        let names: Vec<_> = e.child_elements().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["heading", "p", "heading", "p", "image"]);
        assert_eq!(
            e.child_elements().last().unwrap().attribute("source"),
            Some("xml.png")
        );
    }
}
