//! The retained char-level XML parser — the honesty baseline for the
//! byte-level `crate::parser`.
//!
//! This module preserves the pre-byte-level implementation: a
//! `Peekable<Chars>` state machine whose lookahead works by **cloning the
//! char iterator** (`eat`, the prolog/misc dispatchers, CDATA scanning)
//! and which tracks line/column eagerly on every `bump`. The byte-level
//! parser replaces all of that with offset-based probing and lazy
//! positions; `cargo bench -p tfd-bench --bench pipeline` compares the
//! two as `pipeline/xml` vs `pipeline/xml-reference`.
//!
//! Behavior is identical to [`crate::parse`] on well-formed documents
//! (the round-trip suite in `tests/parser_roundtrips.rs` asserts
//! agreement); keep it compiling but do not extend it. Two deliberate
//! divergences on *non*-well-formed input: this parser accidentally
//! accepts any Unicode whitespace between attributes (the byte parser
//! enforces the spec's `S` production) and counts only LF when
//! reporting error lines (the byte parser counts LF/CRLF/bare CR
//! uniformly).

use crate::parser::{XmlError, XmlErrorKind, XmlOptions};
use crate::{Attribute, Element, XmlNode};
use tfd_value::Name;

/// Parses an XML document through the retained char-level parser.
///
/// # Errors
///
/// Returns [`XmlError`] for malformed input.
pub fn parse(input: &str) -> Result<Element, XmlError> {
    parse_with(input, &XmlOptions::default())
}

/// Parses with explicit [`XmlOptions`] through the retained char-level
/// parser.
///
/// # Errors
///
/// As [`parse`], plus [`XmlErrorKind::TooDeep`] when nesting exceeds the
/// configured limit.
pub fn parse_with(input: &str, options: &XmlOptions) -> Result<Element, XmlError> {
    let mut p = XmlParser::new(input, options.clone());
    p.skip_prolog()?;
    let root = p.parse_element(0)?;
    p.skip_misc()?;
    if !p.at_eof() {
        return Err(p.error(XmlErrorKind::TrailingContent));
    }
    Ok(root)
}

struct XmlParser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: usize,
    column: usize,
    options: XmlOptions,
}

impl<'a> XmlParser<'a> {
    fn new(input: &'a str, options: XmlOptions) -> Self {
        XmlParser {
            chars: input.chars().peekable(),
            line: 1,
            column: 1,
            options,
        }
    }

    fn error(&self, kind: XmlErrorKind) -> XmlError {
        XmlError {
            kind,
            line: self.line,
            column: self.column,
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn at_eof(&mut self) -> bool {
        self.peek().is_none()
    }

    fn expect(&mut self, want: char, ctx: &'static str) -> Result<(), XmlError> {
        match self.bump() {
            Some(c) if c == want => Ok(()),
            Some(c) => Err(self.error(XmlErrorKind::Unexpected {
                found: c,
                expected: ctx,
            })),
            None => Err(self.error(XmlErrorKind::UnexpectedEof(ctx))),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.bump();
        }
    }

    /// Consumes `text` if it is next in the input (used after `<`).
    fn eat(&mut self, text: &str) -> bool {
        // Clone-based lookahead: cheap because `text` is short.
        let mut probe = self.chars.clone();
        for want in text.chars() {
            if probe.next() != Some(want) {
                return false;
            }
        }
        for _ in text.chars() {
            self.bump();
        }
        true
    }

    /// Skips `<?...?>`, `<!--...-->`, `<!DOCTYPE...>` and whitespace before
    /// the root element.
    fn skip_prolog(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_ws();
            match self.peek() {
                Some('<') => {}
                Some(found) => {
                    return Err(self.error(XmlErrorKind::Unexpected {
                        found,
                        expected: "'<'",
                    }))
                }
                None => return Err(self.error(XmlErrorKind::NoRoot)),
            }
            let mut probe = self.chars.clone();
            probe.next(); // '<'
            match probe.next() {
                Some('?') => self.skip_pi()?,
                Some('!') => {
                    let mut probe2 = probe.clone();
                    if probe2.next() == Some('-') {
                        self.skip_comment()?;
                    } else {
                        self.skip_doctype()?;
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    /// Skips comments/PIs/whitespace after the root element.
    fn skip_misc(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_ws();
            if self.at_eof() {
                return Ok(());
            }
            let mut probe = self.chars.clone();
            if probe.next() != Some('<') {
                return Ok(());
            }
            match probe.next() {
                Some('?') => self.skip_pi()?,
                Some('!') => self.skip_comment()?,
                _ => return Ok(()),
            }
        }
    }

    fn skip_pi(&mut self) -> Result<(), XmlError> {
        self.expect('<', "processing instruction")?;
        self.expect('?', "processing instruction")?;
        loop {
            match self.bump() {
                None => {
                    return Err(self.error(XmlErrorKind::UnexpectedEof("processing instruction")))
                }
                Some('?') if self.peek() == Some('>') => {
                    self.bump();
                    return Ok(());
                }
                Some(_) => {}
            }
        }
    }

    fn skip_comment(&mut self) -> Result<(), XmlError> {
        self.expect('<', "comment")?;
        self.expect('!', "comment")?;
        self.expect('-', "comment")?;
        self.expect('-', "comment")?;
        let mut dashes = 0usize;
        loop {
            match self.bump() {
                None => return Err(self.error(XmlErrorKind::UnexpectedEof("comment"))),
                Some('-') => dashes += 1,
                Some('>') if dashes >= 2 => return Ok(()),
                Some(_) => dashes = 0,
            }
        }
    }

    fn skip_doctype(&mut self) -> Result<(), XmlError> {
        self.expect('<', "DOCTYPE")?;
        self.expect('!', "DOCTYPE")?;
        // Consume until the matching '>', tracking nested '[' ... ']' for
        // internal subsets.
        let mut bracket_depth = 0usize;
        loop {
            match self.bump() {
                None => return Err(self.error(XmlErrorKind::UnexpectedEof("DOCTYPE"))),
                Some('[') => bracket_depth += 1,
                Some(']') => bracket_depth = bracket_depth.saturating_sub(1),
                Some('>') if bracket_depth == 0 => return Ok(()),
                Some(_) => {}
            }
        }
    }

    fn is_name_start(c: char) -> bool {
        c.is_alphabetic() || c == '_' || c == ':'
    }

    fn is_name_char(c: char) -> bool {
        Self::is_name_start(c) || c.is_numeric() || c == '-' || c == '.'
    }

    #[allow(clippy::expect_used)] // checked invariant, documented at each site
    fn parse_name(&mut self) -> Result<String, XmlError> {
        let mut name = String::new();
        match self.peek() {
            Some(c) if Self::is_name_start(c) => {
                name.push(c);
                self.bump();
            }
            Some(c) => {
                return Err(self.error(XmlErrorKind::Unexpected {
                    found: c,
                    expected: "a name",
                }))
            }
            None => return Err(self.error(XmlErrorKind::UnexpectedEof("name"))),
        }
        while matches!(self.peek(), Some(c) if Self::is_name_char(c)) {
            name.push(self.bump().expect("peeked"));
        }
        Ok(name)
    }

    fn parse_entity(&mut self) -> Result<char, XmlError> {
        // Called after consuming '&'.
        let mut body = String::new();
        loop {
            match self.bump() {
                None => return Err(self.error(XmlErrorKind::UnexpectedEof("entity"))),
                Some(';') => break,
                Some(c) => body.push(c),
            }
            if body.len() > 12 {
                return Err(self.error(XmlErrorKind::UnknownEntity(body)));
            }
        }
        match body.as_str() {
            "lt" => Ok('<'),
            "gt" => Ok('>'),
            "amp" => Ok('&'),
            "apos" => Ok('\''),
            "quot" => Ok('"'),
            _ => {
                if let Some(hex) = body.strip_prefix("#x").or_else(|| body.strip_prefix("#X")) {
                    u32::from_str_radix(hex, 16)
                        .ok()
                        .and_then(char::from_u32)
                        .ok_or_else(|| self.error(XmlErrorKind::BadCharRef(body.clone())))
                } else if let Some(dec) = body.strip_prefix('#') {
                    dec.parse::<u32>()
                        .ok()
                        .and_then(char::from_u32)
                        .ok_or_else(|| self.error(XmlErrorKind::BadCharRef(body.clone())))
                } else {
                    Err(self.error(XmlErrorKind::UnknownEntity(body)))
                }
            }
        }
    }

    fn parse_attr_value(&mut self) -> Result<String, XmlError> {
        let quote = match self.bump() {
            Some(c @ ('"' | '\'')) => c,
            Some(c) => {
                return Err(self.error(XmlErrorKind::Unexpected {
                    found: c,
                    expected: "a quoted attribute value",
                }))
            }
            None => return Err(self.error(XmlErrorKind::UnexpectedEof("attribute value"))),
        };
        let mut value = String::new();
        loop {
            match self.bump() {
                None => return Err(self.error(XmlErrorKind::UnexpectedEof("attribute value"))),
                Some(c) if c == quote => return Ok(value),
                Some('&') => value.push(self.parse_entity()?),
                Some(c) => value.push(c),
            }
        }
    }

    #[allow(clippy::expect_used)] // checked invariant, documented at each site
    fn parse_element(&mut self, depth: usize) -> Result<Element, XmlError> {
        if depth >= self.options.max_depth {
            return Err(self.error(XmlErrorKind::TooDeep(self.options.max_depth)));
        }
        self.expect('<', "element")?;
        let name = self.parse_name()?;
        let mut element = Element::new(name);

        // Attributes.
        loop {
            self.skip_ws();
            match self.peek() {
                Some('>') => {
                    self.bump();
                    break;
                }
                Some('/') => {
                    self.bump();
                    self.expect('>', "self-closing tag")?;
                    return Ok(element);
                }
                Some(c) if Self::is_name_start(c) => {
                    let attr_name = self.parse_name()?;
                    self.skip_ws();
                    self.expect('=', "attribute")?;
                    self.skip_ws();
                    let value = self.parse_attr_value()?;
                    element.attributes.push(Attribute {
                        name: Name::new(attr_name),
                        value,
                    });
                }
                Some(c) => {
                    return Err(self.error(XmlErrorKind::Unexpected {
                        found: c,
                        expected: "attribute, '>' or '/>'",
                    }))
                }
                None => return Err(self.error(XmlErrorKind::UnexpectedEof("start tag"))),
            }
        }

        // Content.
        let mut text_run = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error(XmlErrorKind::UnexpectedEof("element content"))),
                Some('<') => {
                    let mut probe = self.chars.clone();
                    probe.next(); // '<'
                    match probe.next() {
                        Some('/') => {
                            self.flush_text(&mut element, &mut text_run);
                            self.bump(); // '<'
                            self.bump(); // '/'
                            let close = self.parse_name()?;
                            self.skip_ws();
                            self.expect('>', "end tag")?;
                            if close != element.name {
                                return Err(self.error(XmlErrorKind::MismatchedTag {
                                    open: element.name.as_str().to_owned(),
                                    close,
                                }));
                            }
                            return Ok(element);
                        }
                        Some('!') => {
                            let mut probe2 = probe.clone();
                            if probe2.next() == Some('[') {
                                // CDATA section: <![CDATA[ ... ]]>
                                if !self.eat("<![CDATA[") {
                                    return Err(self.error(XmlErrorKind::Unexpected {
                                        found: '[',
                                        expected: "CDATA section",
                                    }));
                                }
                                self.read_cdata(&mut text_run)?;
                            } else {
                                self.flush_text(&mut element, &mut text_run);
                                self.skip_comment()?;
                            }
                        }
                        Some('?') => {
                            self.flush_text(&mut element, &mut text_run);
                            self.skip_pi()?;
                        }
                        _ => {
                            self.flush_text(&mut element, &mut text_run);
                            let child = self.parse_element(depth + 1)?;
                            element.children.push(XmlNode::Element(child));
                        }
                    }
                }
                Some('&') => {
                    self.bump();
                    text_run.push(self.parse_entity()?);
                }
                Some(_) => {
                    text_run.push(self.bump().expect("peeked"));
                }
            }
        }
    }

    fn read_cdata(&mut self, text_run: &mut String) -> Result<(), XmlError> {
        // Already consumed "<![CDATA[". Read until "]]>".
        loop {
            match self.bump() {
                None => return Err(self.error(XmlErrorKind::UnexpectedEof("CDATA section"))),
                Some(']') => {
                    let mut probe = self.chars.clone();
                    if probe.next() == Some(']') && probe.next() == Some('>') {
                        self.bump();
                        self.bump();
                        return Ok(());
                    }
                    text_run.push(']');
                }
                Some(c) => text_run.push(c),
            }
        }
    }

    fn flush_text(&mut self, element: &mut Element, text_run: &mut String) {
        if text_run.is_empty() {
            return;
        }
        let run = std::mem::take(text_run);
        if self.options.ignore_whitespace_text && run.chars().all(char::is_whitespace) {
            return;
        }
        element.children.push(XmlNode::Text(run));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_still_parses_the_happy_path() {
        let e = parse(r#"<doc id="1"><item x='2'>Hi &amp; bye</item><!-- c --></doc>"#).unwrap();
        assert_eq!(e.name, "doc");
        assert_eq!(e.attribute("id"), Some("1"));
        let item = e.child_elements().next().unwrap();
        assert_eq!(item.attribute("x"), Some("2"));
        assert_eq!(item.text(), "Hi & bye");
    }

    #[test]
    fn reference_rejects_malformed_input() {
        for bad in ["", "<a", "<a></b>", "<a>&nope;</a>", "<a/><b/>"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }
}
