//! # tfd-xml — XML front-end
//!
//! A from-scratch XML parser for the `types-from-data` workspace and the
//! §6.2 encoding of XML documents into the universal data value:
//!
//! > "For each node, we create a record. Attributes become record fields
//! > and the body becomes a field with a special name."
//!
//! So `<root id="1"><item>Hello!</item></root>` becomes
//!
//! ```text
//! root {id ↦ 1, • ↦ [item {• ↦ "Hello!"}]}
//! ```
//!
//! The parser handles elements, attributes (single- or double-quoted),
//! self-closing tags, text nodes, CDATA sections, comments, processing
//! instructions, XML declarations, the five predefined entities plus
//! numeric character references, and namespace-prefixed names (kept
//! verbatim as record names). It is a non-validating parser: DOCTYPE
//! declarations are skipped and external entities are never resolved
//! (which also makes the parser immune to XXE-style attacks by
//! construction).
//!
//! [`parse`] is a single-pass byte-level parser that interns element and
//! attribute names straight from borrowed input slices; the previous
//! char-level implementation is retained as [`mod@reference`] for benchmarks
//! and agreement tests.
//!
//! Like the paper's implementation, primitive values that appear in
//! attributes and text content are *re-inferred* from their string form
//! ("As with CSV, we infer shape of primitive values", §6.2): `"1"`
//! becomes `Value::Int(1)`, `"true"` becomes `Value::Bool(true)`, etc.
//! This uses the shared literal-inference rules from [`tfd_csv::literal`].
//!
//! # Example
//!
//! ```
//! let doc = tfd_xml::parse(r#"<root id="1"><item>Hello!</item></root>"#)?;
//! let value = doc.to_value();
//! assert_eq!(value.record_name(), Some("root"));
//! assert_eq!(value.field("id"), Some(&tfd_value::Value::Int(1)));
//! # Ok::<(), tfd_xml::XmlError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod encode;
mod parser;
pub mod reference;
pub mod stream;

pub use encode::{element_to_value, EncodeOptions};
pub use parser::{
    parse, parse_many_values, parse_many_values_in, parse_many_values_with, parse_value,
    parse_value_in, parse_value_with, parse_with, XmlError, XmlErrorKind, XmlOptions,
};
pub use stream::{BoundaryScanner, Streamer};

use tfd_value::{Name, Value};

/// An XML attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name (possibly namespace-prefixed, kept verbatim),
    /// interned: tag and attribute vocabularies are tiny compared to
    /// document sizes, so each distinct spelling allocates once.
    pub name: Name,
    /// Attribute value with entities decoded.
    pub value: String,
}

/// A node in an XML document body.
#[derive(Debug, Clone, PartialEq)]
pub enum XmlNode {
    /// A child element.
    Element(Element),
    /// A text run (entities decoded; includes CDATA content).
    Text(String),
}

/// An XML element: name, attributes and body nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct Element {
    /// Element name (possibly namespace-prefixed, kept verbatim),
    /// interned straight from the input slice at parse time.
    pub name: Name,
    /// Attributes in source order.
    pub attributes: Vec<Attribute>,
    /// Child nodes in source order.
    pub children: Vec<XmlNode>,
}

impl Element {
    /// Creates an element with no attributes or children.
    pub fn new(name: impl Into<Name>) -> Element {
        Element {
            name: name.into(),
            attributes: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Looks up an attribute value by name.
    ///
    /// ```
    /// let e = tfd_xml::parse(r#"<a x="1"/>"#)?;
    /// assert_eq!(e.attribute("x"), Some("1"));
    /// # Ok::<(), tfd_xml::XmlError>(())
    /// ```
    pub fn attribute(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|a| a.name == name)
            .map(|a| a.value.as_str())
    }

    /// Child elements (skipping text nodes).
    pub fn child_elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(|n| match n {
            XmlNode::Element(e) => Some(e),
            XmlNode::Text(_) => None,
        })
    }

    /// The concatenated text content of this element's direct children.
    pub fn text(&self) -> String {
        let mut out = String::new();
        for node in &self.children {
            if let XmlNode::Text(t) = node {
                out.push_str(t);
            }
        }
        out
    }

    /// Encodes the element as a universal data [`Value`] per §6.2 with
    /// default options. See [`element_to_value`] for the rules.
    pub fn to_value(&self) -> Value {
        element_to_value(self, &EncodeOptions::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribute_lookup() {
        let e = parse(r#"<a x="1" y="two"/>"#).unwrap();
        assert_eq!(e.attribute("x"), Some("1"));
        assert_eq!(e.attribute("y"), Some("two"));
        assert_eq!(e.attribute("z"), None);
    }

    #[test]
    fn text_concatenates_runs() {
        let e = parse("<a>one<b/>two</a>").unwrap();
        assert_eq!(e.text(), "onetwo");
    }

    #[test]
    fn child_elements_skips_text() {
        let e = parse("<a>x<b/>y<c/></a>").unwrap();
        let names: Vec<_> = e.child_elements().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["b", "c"]);
    }

    #[test]
    fn to_value_convenience_matches_encode() {
        let e = parse(r#"<root id="1"/>"#).unwrap();
        assert_eq!(
            e.to_value(),
            element_to_value(&e, &EncodeOptions::default())
        );
    }
}
