//! Extraction of tables and lists from the scanned event stream.

use crate::scanner::{scan, HtmlEvent};
use tfd_csv::literal::{parse_literal, LiteralOptions};
use tfd_value::{Value, BODY_NAME};

/// An extracted HTML table: headers (from `<th>` cells or synthesized
/// `Column1…` names) and rows of cell text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HtmlTable {
    id: Option<String>,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl HtmlTable {
    /// The table's `id` attribute, if present.
    pub fn id(&self) -> Option<&str> {
        self.id.as_deref()
    }

    /// Column names (trimmed `<th>` text, or `Column1…` when the table
    /// has no header row).
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Data rows (trimmed cell text).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Converts the table to the universal data value exactly like a CSV
    /// file (§6.2): a collection of `•` records, one per row, cells run
    /// through literal inference.
    pub fn to_value(&self) -> Value {
        let options = LiteralOptions::default();
        Value::List(
            self.rows
                .iter()
                .map(|row| {
                    Value::record(
                        BODY_NAME,
                        self.headers.iter().enumerate().map(|(i, h)| {
                            let cell = row.get(i).map(String::as_str).unwrap_or("");
                            (h.clone(), parse_literal(cell, &options))
                        }),
                    )
                })
                .collect(),
        )
    }
}

/// Extracts every `<table>` in the document, in source order. Nested
/// tables are flattened into separate results (their rows do not leak
/// into the outer table).
pub fn parse_tables(html: &str) -> Vec<HtmlTable> {
    let events = scan(html);
    let mut tables: Vec<HtmlTable> = Vec::new();
    // Stack of in-progress tables (for nesting).
    struct InProgress {
        id: Option<String>,
        header: Vec<String>,
        rows: Vec<Vec<String>>,
        current_row: Option<Vec<String>>,
        current_cell: Option<(bool, String)>, // (is_header, text)
    }
    let mut stack: Vec<InProgress> = Vec::new();

    fn close_cell(t: &mut InProgress) {
        if let Some((is_header, text)) = t.current_cell.take() {
            let text = text.trim().to_owned();
            if is_header && t.rows.is_empty() && t.current_row.as_ref().is_some_and(Vec::is_empty) {
                t.header.push(text);
            } else if let Some(row) = &mut t.current_row {
                if is_header && row.is_empty() && t.rows.is_empty() && t.header.is_empty() {
                    t.header.push(text);
                } else {
                    row.push(text);
                }
            }
        }
    }

    fn close_row(t: &mut InProgress) {
        close_cell(t);
        if let Some(row) = t.current_row.take() {
            if !row.is_empty() {
                t.rows.push(row);
            }
        }
    }

    for event in events {
        match event {
            HtmlEvent::Open {
                name,
                attributes,
                self_closing,
            } => match name.as_str() {
                "table" if !self_closing => {
                    stack.push(InProgress {
                        id: attributes
                            .iter()
                            .find(|(k, _)| k == "id")
                            .map(|(_, v)| v.clone()),
                        header: Vec::new(),
                        rows: Vec::new(),
                        current_row: None,
                        current_cell: None,
                    });
                }
                "tr" => {
                    if let Some(t) = stack.last_mut() {
                        close_row(t);
                        t.current_row = Some(Vec::new());
                    }
                }
                "td" | "th" => {
                    if let Some(t) = stack.last_mut() {
                        close_cell(t);
                        if t.current_row.is_none() {
                            t.current_row = Some(Vec::new());
                        }
                        t.current_cell = Some((name == "th", String::new()));
                    }
                }
                "br" => {
                    if let Some(t) = stack.last_mut() {
                        if let Some((_, text)) = &mut t.current_cell {
                            text.push(' ');
                        }
                    }
                }
                _ => {}
            },
            HtmlEvent::Close(name) => match name.as_str() {
                "table" => {
                    if let Some(mut t) = stack.pop() {
                        close_row(&mut t);
                        let width = t
                            .rows
                            .iter()
                            .map(Vec::len)
                            .max()
                            .unwrap_or(t.header.len())
                            .max(t.header.len());
                        let mut headers = t.header;
                        for i in headers.len()..width {
                            headers.push(format!("Column{}", i + 1));
                        }
                        tables.push(HtmlTable {
                            id: t.id,
                            headers,
                            rows: t.rows,
                        });
                    }
                }
                "tr" => {
                    if let Some(t) = stack.last_mut() {
                        close_row(t);
                    }
                }
                "td" | "th" => {
                    if let Some(t) = stack.last_mut() {
                        close_cell(t);
                    }
                }
                _ => {}
            },
            HtmlEvent::Text(text) => {
                if let Some(t) = stack.last_mut() {
                    if let Some((_, cell)) = &mut t.current_cell {
                        cell.push_str(&text);
                    }
                }
            }
        }
    }
    // Unclosed tables at EOF still count (permissive parsing).
    while let Some(mut t) = stack.pop() {
        close_row(&mut t);
        let width = t
            .rows
            .iter()
            .map(Vec::len)
            .max()
            .unwrap_or(t.header.len())
            .max(t.header.len());
        let mut headers = t.header;
        for i in headers.len()..width {
            headers.push(format!("Column{}", i + 1));
        }
        tables.push(HtmlTable {
            id: t.id,
            headers,
            rows: t.rows,
        });
    }
    tables
}

/// Extracts every `<ul>`/`<ol>` list as a vector of item texts.
pub fn parse_lists(html: &str) -> Vec<Vec<String>> {
    let events = scan(html);
    let mut lists: Vec<Vec<String>> = Vec::new();
    let mut stack: Vec<Vec<String>> = Vec::new();
    let mut current_item: Option<String> = None;

    fn close_item(stack: &mut [Vec<String>], item: &mut Option<String>) {
        if let Some(text) = item.take() {
            if let Some(list) = stack.last_mut() {
                let text = text.trim().to_owned();
                if !text.is_empty() {
                    list.push(text);
                }
            }
        }
    }

    for event in events {
        match event {
            HtmlEvent::Open { name, .. } => match name.as_str() {
                "ul" | "ol" => {
                    close_item(&mut stack, &mut current_item);
                    stack.push(Vec::new());
                }
                "li" => {
                    close_item(&mut stack, &mut current_item);
                    current_item = Some(String::new());
                }
                _ => {}
            },
            HtmlEvent::Close(name) => match name.as_str() {
                "ul" | "ol" => {
                    close_item(&mut stack, &mut current_item);
                    if let Some(list) = stack.pop() {
                        lists.push(list);
                    }
                }
                "li" => close_item(&mut stack, &mut current_item),
                _ => {}
            },
            HtmlEvent::Text(text) => {
                if let Some(item) = &mut current_item {
                    item.push_str(&text);
                }
            }
        }
    }
    while let Some(list) = stack.pop() {
        lists.push(list);
    }
    lists
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
        <html><body>
          <h1>Weather</h1>
          <table id="cities">
            <tr><th>City</th><th>Temp</th><th>Rain</th></tr>
            <tr><td>Prague</td><td>5</td><td>0.5</td></tr>
            <tr><td>London</td><td>12</td><td>2.5</td></tr>
          </table>
          <ul><li>one</li><li>two</li></ul>
        </body></html>"#;

    #[test]
    fn extracts_headers_and_rows() {
        let tables = parse_tables(SAMPLE);
        assert_eq!(tables.len(), 1);
        let t = &tables[0];
        assert_eq!(t.id(), Some("cities"));
        assert_eq!(t.headers(), &["City", "Temp", "Rain"]);
        assert_eq!(t.rows().len(), 2);
        assert_eq!(t.rows()[0], vec!["Prague", "5", "0.5"]);
    }

    #[test]
    fn to_value_runs_literal_inference() {
        let tables = parse_tables(SAMPLE);
        let v = tables[0].to_value();
        let rows = v.elements().unwrap();
        assert_eq!(rows[0].field("City"), Some(&Value::str("Prague")));
        assert_eq!(rows[0].field("Temp"), Some(&Value::Int(5)));
        assert_eq!(rows[1].field("Rain"), Some(&Value::Float(2.5)));
    }

    #[test]
    fn unclosed_cells_and_rows_are_tolerated() {
        // The messy-HTML form: <td> and <tr> never closed.
        let html = "<table><tr><th>A<th>B<tr><td>1<td>2<tr><td>3<td>4</table>";
        let tables = parse_tables(html);
        assert_eq!(tables[0].headers(), &["A", "B"]);
        assert_eq!(
            tables[0].rows(),
            &[
                vec!["1".to_owned(), "2".into()],
                vec!["3".into(), "4".into()]
            ]
        );
    }

    #[test]
    fn headerless_tables_get_column_names() {
        let html = "<table><tr><td>1</td><td>2</td></tr></table>";
        let tables = parse_tables(html);
        assert_eq!(tables[0].headers(), &["Column1", "Column2"]);
        assert_eq!(tables[0].rows().len(), 1);
    }

    #[test]
    fn nested_tables_do_not_leak_rows() {
        let html = "<table><tr><th>Outer</th></tr><tr><td>\
                    <table><tr><td>inner</td></tr></table>\
                    </td></tr></table>";
        let tables = parse_tables(html);
        assert_eq!(tables.len(), 2);
        // Inner closes first.
        assert_eq!(tables[0].rows()[0], vec!["inner"]);
        assert_eq!(tables[1].headers(), &["Outer"]);
    }

    #[test]
    fn multiple_tables_in_order() {
        let html = "<table><tr><td>a</td></tr></table><table><tr><td>b</td></tr></table>";
        let tables = parse_tables(html);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].rows()[0], vec!["a"]);
        assert_eq!(tables[1].rows()[0], vec!["b"]);
    }

    #[test]
    fn lists_are_extracted() {
        let lists = parse_lists(SAMPLE);
        assert_eq!(lists, vec![vec!["one".to_owned(), "two".into()]]);
    }

    #[test]
    fn unclosed_list_items() {
        let lists = parse_lists("<ol><li>1<li>2<li>3</ol>");
        assert_eq!(lists[0], vec!["1", "2", "3"]);
    }

    #[test]
    fn markup_inside_cells_contributes_text_only() {
        let html = "<table><tr><td><b>bold</b> text</td></tr></table>";
        let tables = parse_tables(html);
        assert_eq!(tables[0].rows()[0], vec!["bold text"]);
    }

    #[test]
    fn no_tables_no_panic() {
        assert!(parse_tables("<p>nothing here</p>").is_empty());
        assert!(parse_lists("<p>nothing here</p>").is_empty());
    }
}
