//! A permissive HTML scanner.
//!
//! Produces a flat stream of [`HtmlEvent`]s: open tags (with attributes),
//! close tags and text runs. It never fails — real-world HTML is messy
//! and the table extractor downstream only looks for the structure it
//! understands. Script and style element contents are skipped, comments
//! and doctypes dropped, and the five standard entities plus numeric
//! character references are decoded in text and attribute values.

/// One event of the scanned HTML stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HtmlEvent {
    /// An opening tag: lower-cased name, attributes, and whether it was
    /// self-closing (`<br/>`).
    Open {
        /// Lower-cased tag name.
        name: String,
        /// Attributes (lower-cased names, decoded values).
        attributes: Vec<(String, String)>,
        /// `<name …/>`.
        self_closing: bool,
    },
    /// A closing tag (lower-cased name).
    Close(String),
    /// A text run with entities decoded (whitespace preserved).
    Text(String),
}

fn decode_entities(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars().peekable();
    while let Some(c) = chars.next() {
        if c != '&' {
            out.push(c);
            continue;
        }
        // Collect up to ; or a non-entity character.
        let mut body = String::new();
        let mut terminated = false;
        while let Some(&n) = chars.peek() {
            if n == ';' {
                chars.next();
                terminated = true;
                break;
            }
            if body.len() > 10 || n == '&' || n == '<' || n.is_whitespace() {
                break;
            }
            body.push(n);
            chars.next();
        }
        let decoded = if terminated {
            match body.as_str() {
                "lt" => Some('<'),
                "gt" => Some('>'),
                "amp" => Some('&'),
                "quot" => Some('"'),
                "apos" => Some('\''),
                "nbsp" => Some(' '),
                _ => body
                    .strip_prefix("#x")
                    .or_else(|| body.strip_prefix("#X"))
                    .and_then(|h| u32::from_str_radix(h, 16).ok())
                    .or_else(|| body.strip_prefix('#').and_then(|d| d.parse().ok()))
                    .and_then(char::from_u32),
            }
        } else {
            None
        };
        match decoded {
            Some(ch) => out.push(ch),
            None => {
                // Not an entity: emit verbatim.
                out.push('&');
                out.push_str(&body);
                if terminated {
                    out.push(';');
                }
            }
        }
    }
    out
}

/// Void elements that never have closing tags.
fn is_void(name: &str) -> bool {
    matches!(
        name,
        "area"
            | "base"
            | "br"
            | "col"
            | "embed"
            | "hr"
            | "img"
            | "input"
            | "link"
            | "meta"
            | "param"
            | "source"
            | "track"
            | "wbr"
    )
}

/// Scans HTML text into a flat event stream. Never fails; unparseable
/// stretches are treated as text.
pub fn scan(input: &str) -> Vec<HtmlEvent> {
    let mut events = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0usize;
    let mut text_start = 0usize;

    let flush_text = |events: &mut Vec<HtmlEvent>, from: usize, to: usize| {
        if from < to {
            let raw = &input[from..to];
            if !raw.chars().all(char::is_whitespace) {
                events.push(HtmlEvent::Text(decode_entities(raw)));
            }
        }
    };

    while i < bytes.len() {
        if bytes[i] != b'<' {
            i += 1;
            continue;
        }
        // Comment?
        if input[i..].starts_with("<!--") {
            flush_text(&mut events, text_start, i);
            let end = input[i + 4..]
                .find("-->")
                .map(|p| i + 4 + p + 3)
                .unwrap_or(input.len());
            i = end;
            text_start = i;
            continue;
        }
        // Doctype / CDATA / other declarations: skip to '>'.
        if input[i..].starts_with("<!") {
            flush_text(&mut events, text_start, i);
            let end = input[i..]
                .find('>')
                .map(|p| i + p + 1)
                .unwrap_or(input.len());
            i = end;
            text_start = i;
            continue;
        }
        // A tag must start with a letter or '/'.
        let after = input[i + 1..].chars().next();
        let is_tag = matches!(after, Some(c) if c.is_ascii_alphabetic() || c == '/');
        if !is_tag {
            i += 1;
            continue;
        }
        let Some(close_rel) = input[i..].find('>') else {
            break; // unterminated tag: treat the rest as text
        };
        flush_text(&mut events, text_start, i);
        let tag_body = &input[i + 1..i + close_rel];
        i += close_rel + 1;
        text_start = i;

        if let Some(name) = tag_body.strip_prefix('/') {
            let name = name.trim().to_ascii_lowercase();
            if !name.is_empty() {
                events.push(HtmlEvent::Close(name));
            }
            continue;
        }

        let (name, attributes, self_closing) = parse_tag_body(tag_body);
        if name.is_empty() {
            continue;
        }
        // Raw-text elements: emit the open tag but skip their content.
        if (name == "script" || name == "style") && !self_closing {
            events.push(HtmlEvent::Open {
                name: name.clone(),
                attributes,
                self_closing: false,
            });
            let end_tag = format!("</{name}");
            if let Some(p) = input[i..].to_ascii_lowercase().find(&end_tag) {
                let after_end = input[i + p..]
                    .find('>')
                    .map(|q| i + p + q + 1)
                    .unwrap_or(input.len());
                i = after_end;
                text_start = i;
                events.push(HtmlEvent::Close(name));
            } else {
                i = input.len();
                text_start = i;
            }
            continue;
        }
        let self_closing = self_closing || is_void(&name);
        events.push(HtmlEvent::Open {
            name,
            attributes,
            self_closing,
        });
    }
    flush_text(&mut events, text_start, input.len());
    events
}

fn parse_tag_body(body: &str) -> (String, Vec<(String, String)>, bool) {
    let body = body.trim();
    let (body, self_closing) = match body.strip_suffix('/') {
        Some(b) => (b.trim_end(), true),
        None => (body, false),
    };
    let mut chars = body.char_indices().peekable();
    // Tag name.
    let mut name_end = body.len();
    for (idx, c) in chars.by_ref() {
        if c.is_whitespace() {
            name_end = idx;
            break;
        }
    }
    let name = body[..name_end].to_ascii_lowercase();
    let mut attributes = Vec::new();
    let rest = &body[name_end.min(body.len())..];
    let mut it = rest.char_indices().peekable();
    while let Some(&(start, c)) = it.peek() {
        if c.is_whitespace() {
            it.next();
            continue;
        }
        // Attribute name.
        let mut eq_pos = None;
        let mut end = rest.len();
        for (idx, ch) in rest[start..].char_indices() {
            let abs = start + idx;
            if ch == '=' {
                eq_pos = Some(abs);
                break;
            }
            if ch.is_whitespace() {
                end = abs;
                break;
            }
        }
        match eq_pos {
            None => {
                // Bare attribute (e.g. `disabled`).
                let attr = rest[start..end.min(rest.len())].to_ascii_lowercase();
                if !attr.is_empty() {
                    attributes.push((attr, String::new()));
                }
                // Advance past it.
                while let Some(&(idx, _)) = it.peek() {
                    if idx >= end {
                        break;
                    }
                    it.next();
                }
                if end == rest.len() {
                    break;
                }
            }
            Some(eq) => {
                let attr = rest[start..eq].trim().to_ascii_lowercase();
                // Value: quoted or bare.
                let vstart = eq + 1;
                let value_rest = &rest[vstart..];
                let (value, consumed) = if let Some(stripped) = value_rest.strip_prefix('"') {
                    match stripped.find('"') {
                        Some(p) => (stripped[..p].to_owned(), p + 2),
                        None => (stripped.to_owned(), value_rest.len()),
                    }
                } else if let Some(stripped) = value_rest.strip_prefix('\'') {
                    match stripped.find('\'') {
                        Some(p) => (stripped[..p].to_owned(), p + 2),
                        None => (stripped.to_owned(), value_rest.len()),
                    }
                } else {
                    let p = value_rest
                        .find(char::is_whitespace)
                        .unwrap_or(value_rest.len());
                    (value_rest[..p].to_owned(), p)
                };
                if !attr.is_empty() {
                    attributes.push((attr, decode_entities(&value)));
                }
                let consumed_end = vstart + consumed;
                while let Some(&(idx, _)) = it.peek() {
                    if idx >= consumed_end {
                        break;
                    }
                    it.next();
                }
                if consumed_end >= rest.len() {
                    break;
                }
            }
        }
    }
    (name, attributes, self_closing)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn open(name: &str) -> HtmlEvent {
        HtmlEvent::Open {
            name: name.into(),
            attributes: vec![],
            self_closing: false,
        }
    }

    #[test]
    fn simple_tags_and_text() {
        let events = scan("<p>Hello</p>");
        assert_eq!(
            events,
            vec![
                open("p"),
                HtmlEvent::Text("Hello".into()),
                HtmlEvent::Close("p".into())
            ]
        );
    }

    #[test]
    fn case_is_normalized() {
        let events = scan("<TABLE><TR></TR></TABLE>");
        assert_eq!(events[0], open("table"));
        assert_eq!(events[1], open("tr"));
        assert_eq!(events[2], HtmlEvent::Close("tr".into()));
    }

    #[test]
    fn attributes_quoted_and_bare() {
        let events = scan(r#"<td colspan="2" class='x' align=left disabled>"#);
        let HtmlEvent::Open { attributes, .. } = &events[0] else {
            panic!()
        };
        assert_eq!(
            attributes,
            &vec![
                ("colspan".to_owned(), "2".to_owned()),
                ("class".to_owned(), "x".to_owned()),
                ("align".to_owned(), "left".to_owned()),
                ("disabled".to_owned(), String::new()),
            ]
        );
    }

    #[test]
    fn void_and_self_closing_elements() {
        let events = scan("<br><img src=\"x.png\"/><hr >");
        for e in &events {
            let HtmlEvent::Open { self_closing, .. } = e else {
                panic!("{e:?}")
            };
            assert!(self_closing);
        }
    }

    #[test]
    fn comments_and_doctype_are_dropped() {
        let events = scan("<!DOCTYPE html><!-- hi --><p>x</p>");
        assert_eq!(events.len(), 3);
        assert_eq!(events[0], open("p"));
    }

    #[test]
    fn script_and_style_contents_skipped() {
        let events = scan("<script>if (a < b) { alert('<td>') }</script><p>x</p>");
        assert_eq!(events[0], open("script"));
        assert_eq!(events[1], HtmlEvent::Close("script".into()));
        assert_eq!(events[2], open("p"));
        // The script body contributed no events (no <td>, no text):
        assert!(!events
            .iter()
            .any(|e| matches!(e, HtmlEvent::Open { name, .. } if name == "td")));
    }

    #[test]
    fn entities_decode_in_text_and_attributes() {
        let events = scan("<a title=\"a&amp;b\">x &lt; y &#65; &nbsp;z</a>");
        let HtmlEvent::Open { attributes, .. } = &events[0] else {
            panic!()
        };
        assert_eq!(attributes[0].1, "a&b");
        assert_eq!(events[1], HtmlEvent::Text("x < y A  z".into()));
    }

    #[test]
    fn stray_ampersands_and_angles_survive() {
        let events = scan("<p>AT&T, 1 < 2 & done</p>");
        assert_eq!(events[1], HtmlEvent::Text("AT&T, 1 < 2 & done".into()));
    }

    #[test]
    fn whitespace_only_text_dropped() {
        let events = scan("<tr>\n   <td>x</td>\n</tr>");
        assert_eq!(events.len(), 5);
    }

    #[test]
    fn never_panics_on_garbage() {
        for garbage in ["<", "<<<>>>", "</>", "<a b=\"", "<p", "&#xZZZ;", "< p>"] {
            let _ = scan(garbage);
        }
    }
}
