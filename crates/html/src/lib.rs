//! # tfd-html — HTML front-end (tables and lists)
//!
//! The extension the paper points to in footnote 10:
//!
//! > "The same mechanism has later been used by the HTML type provider
//! > …, which provides similarly easy access to data in HTML tables and
//! > lists."
//!
//! Real-world HTML is not XML — tags go unclosed (`<td>a<td>b`), case
//! varies, attributes are unquoted — so this crate implements a small
//! *permissive* scanner tuned to the structures the provider consumes:
//! `<table>` elements (rows of cells, with `<th>` headers) and
//! `<ul>`/`<ol>` lists. Extracted cell text goes through the same
//! literal inference as CSV cells (§6.2), so a column of numbers infers
//! as numbers.
//!
//! # Example
//!
//! ```
//! let html = r#"<html><body>
//!   <table>
//!     <tr><th>City</th><th>Temp</th></tr>
//!     <tr><td>Prague</td><td>5</td></tr>
//!     <tr><td>London<td>12</tr>
//!   </table>
//! </body></html>"#;
//! let tables = tfd_html::parse_tables(html);
//! assert_eq!(tables.len(), 1);
//! assert_eq!(tables[0].headers(), &["City", "Temp"]);
//! assert_eq!(tables[0].rows().len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod scanner;
mod table;

pub use scanner::{scan, HtmlEvent};
pub use table::{parse_lists, parse_tables, HtmlTable};
