//! Access errors for the typed runtime.
//!
//! Where the Foo calculus models runtime failures as stuck states
//! (§4.1), the Rust runtime reports a structured [`AccessError`] carrying
//! the [`Path`] to the offending sub-value — the information a user needs
//! to add the failing document as another sample (§6.5: "When a program
//! fails on some input, the input can be added as another sample").

use std::fmt;
use tfd_value::Path;

/// What went wrong during a typed access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessErrorKind {
    /// The value had a different kind than the provided type expected —
    /// the analogue of a stuck `convPrim`/`convFloat`.
    ShapeMismatch {
        /// What the provided type expected (e.g. `"int"`).
        expected: String,
        /// What the document contained (e.g. `"string \"old\""`).
        found: String,
    },
    /// A record access on a non-record value — stuck `convField`.
    NotARecord {
        /// Kind of the value found instead.
        found: String,
    },
    /// A collection access on a non-collection value — stuck
    /// `convElements`.
    NotACollection {
        /// Kind of the value found instead.
        found: String,
    },
    /// A heterogeneous-collection case with multiplicity `1` (or `1?`)
    /// matched the wrong number of elements — stuck `convTagged`.
    CaseCardinality {
        /// The case's member name.
        case: String,
        /// Matching elements found.
        found: usize,
        /// What the multiplicity allows, e.g. `"exactly one"`.
        allowed: &'static str,
    },
    /// `null` (or a missing field) where a non-optional value was
    /// provided — stuck `convPrim(σ, null)`.
    UnexpectedNull,
}

impl fmt::Display for AccessErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessErrorKind::ShapeMismatch { expected, found } => {
                write!(f, "expected {expected}, found {found}")
            }
            AccessErrorKind::NotARecord { found } => {
                write!(f, "expected a record, found {found}")
            }
            AccessErrorKind::NotACollection { found } => {
                write!(f, "expected a collection, found {found}")
            }
            AccessErrorKind::CaseCardinality {
                case,
                found,
                allowed,
            } => {
                write!(f, "case {case} matched {found} elements, allowed {allowed}")
            }
            AccessErrorKind::UnexpectedNull => write!(f, "unexpected null value"),
        }
    }
}

/// A typed-access failure at a specific location in the document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessError {
    /// What went wrong.
    pub kind: AccessErrorKind,
    /// Where in the document (JSONPath-like).
    pub path: Path,
}

impl AccessError {
    /// Creates an error at a path.
    pub fn new(kind: AccessErrorKind, path: Path) -> AccessError {
        AccessError { kind, path }
    }
}

impl fmt::Display for AccessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.kind, self.path)
    }
}

impl std::error::Error for AccessError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_path() {
        let err = AccessError::new(
            AccessErrorKind::ShapeMismatch {
                expected: "int".into(),
                found: "string".into(),
            },
            Path::root().child_field("age"),
        );
        assert_eq!(err.to_string(), "expected int, found string at $.age");
    }

    #[test]
    fn display_variants() {
        assert_eq!(
            AccessErrorKind::UnexpectedNull.to_string(),
            "unexpected null value"
        );
        assert_eq!(
            AccessErrorKind::NotARecord {
                found: "collection".into()
            }
            .to_string(),
            "expected a record, found collection"
        );
        assert_eq!(
            AccessErrorKind::CaseCardinality {
                case: "Record".into(),
                found: 2,
                allowed: "exactly one"
            }
            .to_string(),
            "case Record matched 2 elements, allowed exactly one"
        );
    }
}
