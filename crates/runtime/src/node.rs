//! [`Node`] — a typed cursor over a weakly typed document.
//!
//! The generated Rust code (from `tfd-codegen` / the proc-macro
//! providers) wraps a `Node` and exposes the inferred members as methods;
//! each method body is one of the conversions below — the Rust analogues
//! of the Foo calculus' `convPrim`, `convFloat`, `convField`, `convNull`,
//! `convElements` and `convTagged` (Fig. 6 Part I).
//!
//! A `Node` shares the document via [`Arc`] and remembers its [`Path`]
//! from the root, so access errors point at the exact sub-value.

use crate::error::{AccessError, AccessErrorKind};
use std::sync::Arc;
use tfd_core::{conforms, value_matches_tag, Shape, Tag};
use tfd_csv::Date;
use tfd_value::{Path, Value};

/// A location inside a shared document.
///
/// `resolve` addresses the value within `root`; `path` is the
/// user-facing location from the original document root. The two differ
/// only for the synthetic null node a missing record field produces.
#[derive(Debug, Clone)]
pub struct Node {
    root: Arc<Value>,
    resolve: Path,
    path: Path,
}

impl PartialEq for Node {
    /// Nodes compare by the values they point at.
    fn eq(&self, other: &Self) -> bool {
        self.value() == other.value()
    }
}

impl Node {
    /// Wraps a document root.
    ///
    /// ```
    /// use tfd_runtime::Node;
    /// use tfd_value::Value;
    /// let node = Node::new(Value::Int(42));
    /// assert_eq!(node.as_i64().unwrap(), 42);
    /// ```
    pub fn new(value: Value) -> Node {
        Node {
            root: Arc::new(value),
            resolve: Path::root(),
            path: Path::root(),
        }
    }

    #[allow(clippy::expect_used)] // checked invariant, documented at each site
    /// The value this node points at.
    ///
    /// # Panics
    ///
    /// Never panics for nodes produced by this API: paths are only
    /// extended after checking they resolve.
    pub fn value(&self) -> &Value {
        self.root
            .at(&self.resolve)
            .expect("node path always resolves within its document")
    }

    /// The path of this node from the document root.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The raw underlying value — the escape hatch §6.3 describes (the
    /// `JsonValue`/`XElement` member of the real library).
    pub fn raw(&self) -> &Value {
        self.value()
    }

    fn error(&self, kind: AccessErrorKind) -> AccessError {
        AccessError::new(kind, self.path.clone())
    }

    fn mismatch(&self, expected: &str) -> AccessError {
        self.error(AccessErrorKind::ShapeMismatch {
            expected: expected.to_owned(),
            found: describe(self.value()),
        })
    }

    // --- convPrim / convFloat analogues ---

    /// `convPrim(int, ·)`: the integer value. Accepts string-encoded
    /// integers (`"2012"`) — the §2.3 convention "often used to avoid
    /// non-standard numerical types of JavaScript", which the inference
    /// mirrors with its `stringly_primitives` option.
    ///
    /// # Errors
    ///
    /// [`AccessErrorKind::ShapeMismatch`] unless the value is an integer.
    pub fn as_i64(&self) -> Result<i64, AccessError> {
        match self.value() {
            Value::Int(i) => Ok(*i),
            Value::Str(s) => match tfd_csv::literal::infer_primitive(s) {
                Some(Value::Int(i)) => Ok(i),
                _ => Err(self.mismatch("int")),
            },
            Value::Null => Err(self.error(AccessErrorKind::UnexpectedNull)),
            _ => Err(self.mismatch("int")),
        }
    }

    /// `convFloat(float, ·)`: the numeric value, widening integers —
    /// "convFloat(float, 42) turns an integer 42 into a floating-point
    /// numerical value 42.0" (§4.1). Accepts string-encoded numbers
    /// (`"35.14229"`, §2.3).
    ///
    /// # Errors
    ///
    /// [`AccessErrorKind::ShapeMismatch`] unless the value is numeric.
    pub fn as_f64(&self) -> Result<f64, AccessError> {
        match self.value() {
            Value::Int(i) => Ok(*i as f64),
            Value::Float(f) => Ok(*f),
            Value::Str(s) => match tfd_csv::literal::infer_primitive(s) {
                Some(Value::Int(i)) => Ok(i as f64),
                Some(Value::Float(f)) => Ok(f),
                _ => Err(self.mismatch("float")),
            },
            Value::Null => Err(self.error(AccessErrorKind::UnexpectedNull)),
            _ => Err(self.mismatch("float")),
        }
    }

    /// `convPrim(bool, ·)`: the boolean value. Accepts string-encoded
    /// booleans (`"true"`, any capitalization).
    ///
    /// # Errors
    ///
    /// [`AccessErrorKind::ShapeMismatch`] unless the value is a boolean.
    pub fn as_bool(&self) -> Result<bool, AccessError> {
        match self.value() {
            Value::Bool(b) => Ok(*b),
            Value::Str(s) => match tfd_csv::literal::infer_primitive(s) {
                Some(Value::Bool(b)) => Ok(b),
                _ => Err(self.mismatch("bool")),
            },
            Value::Null => Err(self.error(AccessErrorKind::UnexpectedNull)),
            _ => Err(self.mismatch("bool")),
        }
    }

    /// `convPrim(string, ·)`: the string value.
    ///
    /// # Errors
    ///
    /// [`AccessErrorKind::ShapeMismatch`] unless the value is a string.
    pub fn as_str(&self) -> Result<&str, AccessError> {
        match self.value() {
            Value::Str(s) => Ok(s),
            Value::Null => Err(self.error(AccessErrorKind::UnexpectedNull)),
            _ => Err(self.mismatch("string")),
        }
    }

    /// The `bit` extension (§6.2): a 0/1 integer (or a real boolean) read
    /// as a boolean — the `Autofilled` column of the paper's CSV example.
    ///
    /// # Errors
    ///
    /// [`AccessErrorKind::ShapeMismatch`] for other values.
    pub fn as_bit_bool(&self) -> Result<bool, AccessError> {
        match self.value() {
            Value::Int(0) => Ok(false),
            Value::Int(1) => Ok(true),
            Value::Bool(b) => Ok(*b),
            Value::Null => Err(self.error(AccessErrorKind::UnexpectedNull)),
            _ => Err(self.mismatch("bit (0/1)")),
        }
    }

    /// The `date` extension (§6.2): a date-formatted string parsed to a
    /// calendar [`Date`].
    ///
    /// # Errors
    ///
    /// [`AccessErrorKind::ShapeMismatch`] unless the value is a string
    /// in a recognized date format.
    pub fn as_date(&self) -> Result<Date, AccessError> {
        match self.value() {
            Value::Str(s) => tfd_csv::parse_date(s).ok_or_else(|| self.mismatch("date")),
            Value::Null => Err(self.error(AccessErrorKind::UnexpectedNull)),
            _ => Err(self.mismatch("date")),
        }
    }

    // --- convField analogue ---

    /// `convField`: descends into a record field. A *missing* field
    /// yields a null node (exactly like `convField(ν, ν′, d, e) ↝ e null`
    /// in Fig. 6) so that optional accessors compose.
    ///
    /// # Errors
    ///
    /// [`AccessErrorKind::NotARecord`] when the value is not a record.
    pub fn field(&self, name: &str) -> Result<Node, AccessError> {
        match self.value() {
            Value::Record { fields, .. } => {
                if fields.iter().any(|f| f.name == name) {
                    Ok(Node {
                        root: Arc::clone(&self.root),
                        resolve: self.resolve.child_field(name),
                        path: self.path.child_field(name),
                    })
                } else {
                    // Missing field reads as null (a fresh null document;
                    // the display path records where it came from).
                    Ok(Node {
                        root: Arc::new(Value::Null),
                        resolve: Path::root(),
                        path: self.path.child_field(name),
                    })
                }
            }
            other => Err(self.error(AccessErrorKind::NotARecord {
                found: describe(other),
            })),
        }
    }

    // --- convNull analogue ---

    /// `convNull`: `None` when the value is null, otherwise the node
    /// itself — generated code maps optional members through this.
    pub fn opt(&self) -> Option<Node> {
        if self.value().is_null() {
            None
        } else {
            Some(self.clone())
        }
    }

    // --- convElements analogue ---

    /// `convElements`: the element nodes of a collection; `null` reads as
    /// the empty collection (design decision D3, §3.1).
    ///
    /// # Errors
    ///
    /// [`AccessErrorKind::NotACollection`] when the value is neither a
    /// collection nor null.
    pub fn elements(&self) -> Result<Vec<Node>, AccessError> {
        match self.value() {
            Value::Null => Ok(Vec::new()),
            Value::List(items) => Ok((0..items.len())
                .map(|i| Node {
                    root: Arc::clone(&self.root),
                    resolve: self.resolve.child_index(i),
                    path: self.path.child_index(i),
                })
                .collect()),
            other => Err(self.error(AccessErrorKind::NotACollection {
                found: describe(other),
            })),
        }
    }

    // --- hasShape analogue ---

    /// `hasShape(σ, ·)` — the runtime shape test used by labelled-top
    /// members.
    pub fn has_shape(&self, shape: &Shape) -> bool {
        conforms(shape, self.value())
    }

    /// `hasShape(σ, ·)` under a shape environment: μ-references in σ
    /// unfold to their definitions, so recursive provided types check
    /// their values all the way down.
    pub fn has_shape_in(&self, shape: &Shape, env: &tfd_core::ShapeEnv) -> bool {
        tfd_core::conforms_in(shape, self.value(), Some(env))
    }

    /// Labelled-top member access: `Some(node)` when the value conforms
    /// to the label, `None` otherwise (the open-world `table` element of
    /// §2.2 answers `None` to every statically known label).
    pub fn case(&self, label: &Shape) -> Option<Node> {
        if self.has_shape(label) {
            Some(self.clone())
        } else {
            None
        }
    }

    /// [`Node::case`] under a shape environment — used by generated code
    /// whose case shapes contain μ-references.
    pub fn case_in(&self, label: &Shape, env: &tfd_core::ShapeEnv) -> Option<Node> {
        if self.has_shape_in(label, env) {
            Some(self.clone())
        } else {
            None
        }
    }

    // --- convTagged analogues (§6.4 heterogeneous collections) ---

    fn tagged(&self, tag: &Tag) -> Result<Vec<Node>, AccessError> {
        let nodes = self.elements()?;
        Ok(nodes
            .into_iter()
            .filter(|n| value_matches_tag(tag, n.value()))
            .collect())
    }

    /// Multiplicity `1`: exactly one element with the case's tag.
    ///
    /// # Errors
    ///
    /// [`AccessErrorKind::CaseCardinality`] unless exactly one element
    /// matches.
    pub fn tagged_one(&self, case: &str, tag: &Tag) -> Result<Node, AccessError> {
        let mut matches = self.tagged(tag)?;
        if matches.len() == 1 {
            Ok(matches.remove(0))
        } else {
            Err(self.error(AccessErrorKind::CaseCardinality {
                case: case.to_owned(),
                found: matches.len(),
                allowed: "exactly one",
            }))
        }
    }

    /// Multiplicity `1?`: at most one element with the case's tag.
    ///
    /// # Errors
    ///
    /// [`AccessErrorKind::CaseCardinality`] when two or more elements
    /// match.
    pub fn tagged_opt(&self, case: &str, tag: &Tag) -> Result<Option<Node>, AccessError> {
        let mut matches = self.tagged(tag)?;
        match matches.len() {
            0 => Ok(None),
            1 => Ok(Some(matches.remove(0))),
            n => Err(self.error(AccessErrorKind::CaseCardinality {
                case: case.to_owned(),
                found: n,
                allowed: "at most one",
            })),
        }
    }

    /// Multiplicity `*`: all elements with the case's tag.
    ///
    /// # Errors
    ///
    /// [`AccessErrorKind::NotACollection`] when the value is not a
    /// collection.
    pub fn tagged_many(&self, tag: &Tag) -> Result<Vec<Node>, AccessError> {
        self.tagged(tag)
    }

    /// Descends to an index (convenience for tests and examples).
    ///
    /// # Errors
    ///
    /// [`AccessErrorKind::NotACollection`] or a
    /// [`AccessErrorKind::ShapeMismatch`] for out-of-range indexes.
    pub fn index(&self, i: usize) -> Result<Node, AccessError> {
        let items = self.elements()?;
        items.into_iter().nth(i).ok_or_else(|| {
            self.error(AccessErrorKind::ShapeMismatch {
                expected: format!("an element at index {i}"),
                found: "a shorter collection".to_owned(),
            })
        })
    }
}

fn describe(v: &Value) -> String {
    match v {
        Value::Str(s) if s.len() <= 24 => format!("string {s:?}"),
        Value::Str(_) => "string".to_owned(),
        other => other.kind().to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfd_value::{arr, json_rec, rec};

    fn node(v: Value) -> Node {
        Node::new(v)
    }

    #[test]
    fn primitive_accessors() {
        assert_eq!(node(Value::Int(5)).as_i64().unwrap(), 5);
        assert_eq!(node(Value::Int(5)).as_f64().unwrap(), 5.0);
        assert_eq!(node(Value::Float(2.5)).as_f64().unwrap(), 2.5);
        assert!(node(Value::Bool(true)).as_bool().unwrap());
        assert_eq!(node(Value::str("x")).as_str().unwrap(), "x");
    }

    #[test]
    fn primitive_mismatches_report_paths() {
        let doc = json_rec([("age", Value::str("old"))]);
        let err = node(doc).field("age").unwrap().as_i64().unwrap_err();
        assert_eq!(err.path.to_string(), "$.age");
        assert!(matches!(err.kind, AccessErrorKind::ShapeMismatch { .. }));
    }

    #[test]
    fn int_accessor_rejects_floats_like_conv_prim() {
        assert!(node(Value::Float(1.5)).as_i64().is_err());
        // ... but the float accessor accepts ints like convFloat:
        assert_eq!(node(Value::Int(1)).as_f64().unwrap(), 1.0);
    }

    #[test]
    fn null_reports_unexpected_null() {
        let err = node(Value::Null).as_i64().unwrap_err();
        assert_eq!(err.kind, AccessErrorKind::UnexpectedNull);
    }

    #[test]
    fn bit_accessor() {
        assert!(!node(Value::Int(0)).as_bit_bool().unwrap());
        assert!(node(Value::Int(1)).as_bit_bool().unwrap());
        assert!(node(Value::Bool(true)).as_bit_bool().unwrap());
        assert!(node(Value::Int(2)).as_bit_bool().is_err());
    }

    #[test]
    fn date_accessor() {
        let d = node(Value::str("2012-05-01")).as_date().unwrap();
        assert_eq!(d.to_string(), "2012-05-01");
        assert!(node(Value::str("3 kveten")).as_date().is_err());
        assert!(node(Value::Int(1)).as_date().is_err());
    }

    #[test]
    fn field_access_and_missing_fields() {
        let doc = json_rec([("a", Value::Int(1))]);
        let n = node(doc);
        assert_eq!(n.field("a").unwrap().as_i64().unwrap(), 1);
        // Missing field reads as null (convField's e null):
        let missing = n.field("b").unwrap();
        assert!(missing.value().is_null());
        assert!(missing.opt().is_none());
        assert_eq!(missing.path().to_string(), "$.b");
        // Field access on a non-record:
        assert!(node(Value::Int(1)).field("a").is_err());
    }

    #[test]
    fn opt_mirrors_conv_null() {
        assert!(node(Value::Null).opt().is_none());
        assert!(node(Value::Int(1)).opt().is_some());
    }

    #[test]
    fn elements_and_null_collection() {
        let doc = arr([Value::Int(1), Value::Int(2)]);
        let items = node(doc).elements().unwrap();
        assert_eq!(items.len(), 2);
        assert_eq!(items[1].as_i64().unwrap(), 2);
        assert_eq!(items[1].path().to_string(), "$[1]");
        assert!(node(Value::Null).elements().unwrap().is_empty());
        assert!(node(Value::Int(1)).elements().is_err());
    }

    #[test]
    fn case_answers_open_world_queries() {
        let heading = Shape::record("heading", [("x", Shape::Int)]);
        let known = rec("heading", [("x", Value::Int(1))]);
        let unknown = rec("table", [("x", Value::Int(1))]);
        assert!(node(known).case(&heading).is_some());
        assert!(node(unknown).case(&heading).is_none());
    }

    #[test]
    fn tagged_accessors_respect_multiplicities() {
        let doc = arr([json_rec([("pages", Value::Int(5))]), arr([Value::Int(1)])]);
        let n = node(doc);
        let rec_tag = Tag::Name(tfd_value::body_name());
        let coll_tag = Tag::Collection;
        assert!(n.tagged_one("Record", &rec_tag).is_ok());
        assert!(n.tagged_opt("Array", &coll_tag).unwrap().is_some());
        assert_eq!(n.tagged_many(&Tag::Number).unwrap().len(), 0);

        let no_array = arr([json_rec([("pages", Value::Int(5))])]);
        assert!(node(no_array.clone())
            .tagged_opt("Array", &coll_tag)
            .unwrap()
            .is_none());
        let two_recs = arr([
            json_rec([("pages", Value::Int(5))]),
            json_rec([("pages", Value::Int(6))]),
        ]);
        let err = node(two_recs).tagged_one("Record", &rec_tag).unwrap_err();
        assert!(matches!(
            err.kind,
            AccessErrorKind::CaseCardinality { found: 2, .. }
        ));
    }

    #[test]
    fn index_access() {
        let doc = arr([Value::Int(7)]);
        assert_eq!(node(doc.clone()).index(0).unwrap().as_i64().unwrap(), 7);
        assert!(node(doc).index(1).is_err());
    }

    #[test]
    fn nested_paths_accumulate() {
        let doc = json_rec([("items", arr([json_rec([("x", Value::Int(1))])]))]);
        let x = node(doc)
            .field("items")
            .unwrap()
            .index(0)
            .unwrap()
            .field("x")
            .unwrap();
        assert_eq!(x.path().to_string(), "$.items[0].x");
        assert_eq!(x.as_i64().unwrap(), 1);
    }

    #[test]
    fn raw_exposes_underlying_value() {
        let doc = json_rec([("a", Value::Int(1))]);
        let n = node(doc.clone());
        assert_eq!(n.raw(), &doc);
    }
}
