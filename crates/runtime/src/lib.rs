//! # tfd-runtime — typed access over weakly typed data, in Rust
//!
//! The Rust analogue of the F# Data runtime that the paper's Foo calculus
//! models (§4.1): a small set of conversions that generated code uses to
//! move from the "dirty" world of structural data into typed values.
//!
//! | Foo operation      | Runtime method                                   |
//! |--------------------|--------------------------------------------------|
//! | `convPrim(int, ·)` | [`Node::as_i64`]                                 |
//! | `convFloat`        | [`Node::as_f64`] (widens integers)               |
//! | `convPrim(bool,·)` | [`Node::as_bool`]                                |
//! | `convPrim(string,·)`| [`Node::as_str`]                                |
//! | `convField`        | [`Node::field`] (missing field ⇒ null node)      |
//! | `convNull`         | [`Node::opt`]                                    |
//! | `convElements`     | [`Node::elements`] (null ⇒ empty)                |
//! | `hasShape`         | [`Node::has_shape`] / [`Node::case`]             |
//! | `convTagged` (§6.4)| [`Node::tagged_one`] / [`tagged_opt`](Node::tagged_opt) / [`tagged_many`](Node::tagged_many) |
//!
//! Failures return [`AccessError`] with the document [`path`](Node::path)
//! — the runtime equivalent of a Foo stuck state, and the information
//! needed to add the offending document as a new sample (§6.5).
//!
//! # Example
//!
//! ```
//! use tfd_runtime::Node;
//! use tfd_value::{json_rec, Value};
//!
//! let doc = json_rec([("main", json_rec([("temp", Value::Int(5))]))]);
//! let node = Node::new(doc);
//! let temp = node.field("main")?.field("temp")?.as_f64()?;
//! assert_eq!(temp, 5.0);
//! # Ok::<(), tfd_runtime::AccessError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod node;

pub use error::{AccessError, AccessErrorKind};
pub use node::Node;
pub use tfd_csv::Date;
