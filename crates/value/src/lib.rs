//! # tfd-value — the universal structured data value
//!
//! This crate defines the first-order data value `d` from §3.4 of
//! *Types from data: Making structured data first-class citizens in F#*
//! (Petricek, Guerra, Syme; PLDI 2016):
//!
//! ```text
//! d = i | f | s | true | false | null
//!   | [d1; ...; dn] | ν {ν1 ↦ d1, ..., νn ↦ dn}
//! ```
//!
//! The same representation uniformly captures JSON, XML and CSV documents
//! (§6.2 of the paper): JSON records use the single name `•`, XML elements
//! become records named after the element with attributes as fields and the
//! body under the special `•` field, and CSV files become collections of
//! unnamed (`•`) records with a field per column.
//!
//! The crate also provides:
//!
//! * [`Path`] / [`PathSegment`] — stable addresses of sub-values, used by
//!   error messages in the downstream runtime,
//! * a pretty-printer (the [`std::fmt::Display`] impl) writing the notation
//!   used throughout the paper,
//! * structural metrics ([`Value::depth`], [`Value::node_count`]) used by
//!   the benchmark harness,
//! * [`builder`] helpers and [`corpus`] generators producing synthetic
//!   documents for tests and benchmarks.
//!
//! # Example
//!
//! ```
//! use tfd_value::{Value, rec, arr};
//!
//! // root {id ↦ 1, • ↦ [item {• ↦ "Hello!"}]}   (§6.2 of the paper)
//! let doc = rec(
//!     "root",
//!     [
//!         ("id", Value::Int(1)),
//!         (tfd_value::BODY_FIELD, arr([rec("item", [(tfd_value::BODY_FIELD, Value::from("Hello!"))])])),
//!     ],
//! );
//! assert_eq!(doc.depth(), 4); // root → list → item → "Hello!"
//! assert!(doc.is_record());
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod corpus;
pub mod hash;
pub mod intern;
mod metrics;
mod path;
mod print;
pub mod scan;

pub use builder::{arr, json_rec, rec};
pub use intern::{InternStats, Interner, Name};
pub use path::{Path, PathSegment};

use std::borrow::Cow;
use std::cmp::Ordering;
use std::fmt;

/// The name used for records that have no meaningful name of their own.
///
/// The paper writes this name as `•`: JSON records always use it (§3.1) and
/// XML element bodies are stored under a field of this name (§6.2).
pub const BODY_NAME: &str = "\u{2022}";

/// The field name under which XML element bodies are stored (§6.2).
///
/// This is the same `•` symbol as [`BODY_NAME`]; a separate constant keeps
/// call sites self-describing.
pub const BODY_FIELD: &str = "\u{2022}";

/// The interned [`Name`] of [`BODY_NAME`] (`•`). Cheaper than re-interning
/// the constant at every use in a hot loop.
pub fn body_name() -> Name {
    Name::new(BODY_NAME)
}

/// A record field: a name paired with a value.
///
/// Field order is preserved as parsed (the paper allows free reordering of
/// record fields; equality on [`Value`] is order-insensitive for records).
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// The field name `νᵢ` (interned — copying a field name is free).
    pub name: Name,
    /// The field value `dᵢ`.
    pub value: Value,
}

impl Field {
    /// Creates a field from a name and a value.
    ///
    /// ```
    /// use tfd_value::{Field, Value};
    /// let f = Field::new("age", Value::Int(25));
    /// assert_eq!(f.name, "age");
    /// ```
    pub fn new(name: impl Into<Name>, value: Value) -> Self {
        Field {
            name: name.into(),
            value,
        }
    }
}

/// The first-order structured data value `d` of §3.4.
///
/// A single representation shared by the JSON, XML and CSV front-ends, the
/// shape-inference algorithm (`tfd-core`), the Foo calculus (`tfd-foo`) and
/// the typed runtime (`tfd-runtime`).
#[derive(Debug, Clone)]
pub enum Value {
    /// Integer literal `i`.
    Int(i64),
    /// Floating-point literal `f`.
    Float(f64),
    /// String literal `s`.
    Str(String),
    /// Boolean literal `true` / `false`.
    Bool(bool),
    /// The `null` value.
    Null,
    /// A collection `[d1; ...; dn]`.
    List(Vec<Value>),
    /// A named record `ν {ν1 ↦ d1, ..., νn ↦ dn}`.
    Record {
        /// The record name `ν` ([`BODY_NAME`] for JSON objects / CSV rows),
        /// interned.
        name: Name,
        /// The record fields in source order.
        fields: Vec<Field>,
    },
}

impl Value {
    /// Builds a string value.
    ///
    /// ```
    /// # use tfd_value::Value;
    /// assert!(Value::str("hi").is_primitive());
    /// ```
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Builds a record value from a name and `(field, value)` pairs.
    ///
    /// ```
    /// # use tfd_value::Value;
    /// let p = Value::record("Point", vec![("x", Value::Int(3))]);
    /// assert_eq!(p.record_name(), Some("Point"));
    /// ```
    pub fn record<N, I, F>(name: N, fields: I) -> Value
    where
        N: Into<Name>,
        I: IntoIterator<Item = (F, Value)>,
        F: Into<Name>,
    {
        Value::Record {
            name: name.into(),
            fields: fields.into_iter().map(|(n, v)| Field::new(n, v)).collect(),
        }
    }

    /// Migrates every record and field name in this value into
    /// `interner` (see [`Name::reintern`]). Values that must outlive the
    /// corpus arena they were parsed in are migrated with this before
    /// the arena drops; string *values* are owned and unaffected.
    pub fn reintern(&mut self, interner: &Interner) {
        match self {
            Value::Int(_) | Value::Float(_) | Value::Str(_) | Value::Bool(_) | Value::Null => {}
            Value::List(items) => {
                for item in items {
                    item.reintern(interner);
                }
            }
            Value::Record { name, fields } => {
                *name = name.reintern(interner);
                for field in fields {
                    field.name = field.name.reintern(interner);
                    field.value.reintern(interner);
                }
            }
        }
    }

    /// Returns `true` for `Int`, `Float`, `Str` and `Bool` values.
    pub fn is_primitive(&self) -> bool {
        matches!(
            self,
            Value::Int(_) | Value::Float(_) | Value::Str(_) | Value::Bool(_)
        )
    }

    /// Returns `true` if the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Returns `true` if the value is a record.
    pub fn is_record(&self) -> bool {
        matches!(self, Value::Record { .. })
    }

    /// Returns `true` if the value is a collection.
    pub fn is_list(&self) -> bool {
        matches!(self, Value::List(_))
    }

    /// The record name `ν`, if this value is a record.
    pub fn record_name(&self) -> Option<&str> {
        match self {
            Value::Record { name, .. } => Some(name.as_str()),
            _ => None,
        }
    }

    /// The record name as an interned [`Name`], if this value is a record.
    pub fn record_name_sym(&self) -> Option<Name> {
        match self {
            Value::Record { name, .. } => Some(*name),
            _ => None,
        }
    }

    /// The record fields, if this value is a record.
    pub fn fields(&self) -> Option<&[Field]> {
        match self {
            Value::Record { fields, .. } => Some(fields),
            _ => None,
        }
    }

    /// The collection elements, if this value is a collection.
    pub fn elements(&self) -> Option<&[Value]> {
        match self {
            Value::List(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up a record field by name.
    ///
    /// Returns `None` when the value is not a record or has no such field.
    ///
    /// ```
    /// # use tfd_value::Value;
    /// let p = Value::record("Point", vec![("x", Value::Int(3))]);
    /// assert_eq!(p.field("x"), Some(&Value::Int(3)));
    /// assert_eq!(p.field("y"), None);
    /// ```
    pub fn field(&self, name: &str) -> Option<&Value> {
        self.fields()?
            .iter()
            .find(|f| f.name == name)
            .map(|f| &f.value)
    }

    /// Follows a [`Path`] from this value to a sub-value.
    ///
    /// Returns `None` when any segment does not resolve.
    ///
    /// ```
    /// # use tfd_value::{Value, Path, PathSegment, arr};
    /// let v = arr([Value::Int(1), Value::Int(2)]);
    /// let p: Path = [PathSegment::Index(1)].into_iter().collect();
    /// assert_eq!(v.at(&p), Some(&Value::Int(2)));
    /// ```
    pub fn at(&self, path: &Path) -> Option<&Value> {
        let mut cur = self;
        for seg in path.segments() {
            cur = match seg {
                PathSegment::Field(name) => cur.field(name)?,
                PathSegment::Index(i) => cur.elements()?.get(*i)?,
            };
        }
        Some(cur)
    }

    /// A short tag describing the kind of value, used in error messages.
    ///
    /// ```
    /// # use tfd_value::Value;
    /// assert_eq!(Value::Null.kind(), "null");
    /// assert_eq!(Value::Int(1).kind(), "int");
    /// ```
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Bool(_) => "bool",
            Value::Null => "null",
            Value::List(_) => "collection",
            Value::Record { .. } => "record",
        }
    }

    /// Returns the numeric content as `f64` for `Int`/`Float` values.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Returns the string content for `Str` values.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Renames this record (no-op for non-records). Used by the XML
    /// front-end when applying element naming rules.
    pub fn with_record_name(self, new_name: impl Into<Name>) -> Value {
        match self {
            Value::Record { fields, .. } => Value::Record {
                name: new_name.into(),
                fields,
            },
            other => other,
        }
    }
}

impl Default for Value {
    /// The default value is `null`, the bottom of the data world.
    fn default() -> Self {
        Value::Null
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<Cow<'_, str>> for Value {
    fn from(s: Cow<'_, str>) -> Self {
        Value::Str(s.into_owned())
    }
}

impl<V: Into<Value>> From<Option<V>> for Value {
    /// `None` maps to `null`, mirroring how missing data enters samples.
    fn from(v: Option<V>) -> Self {
        match v {
            Some(v) => v.into(),
            None => Value::Null,
        }
    }
}

impl<V: Into<Value>> FromIterator<V> for Value {
    fn from_iter<T: IntoIterator<Item = V>>(iter: T) -> Self {
        Value::List(iter.into_iter().map(Into::into).collect())
    }
}

/// Structural equality.
///
/// Record fields compare as unordered name→value maps — the paper assumes
/// "record fields can be freely reordered" (§3.1). Floats compare by bit
/// pattern of their `f64` so that `Value` can be `Eq` (NaN equals NaN);
/// note that `Int(1)` and `Float(1.0)` are *different* values (they have
/// different inferred shapes).
impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Null, Value::Null) => true,
            (Value::List(a), Value::List(b)) => a == b,
            (
                Value::Record {
                    name: na,
                    fields: fa,
                },
                Value::Record {
                    name: nb,
                    fields: fb,
                },
            ) => {
                if na != nb || fa.len() != fb.len() {
                    return false;
                }
                fa.iter().all(|f| {
                    fb.iter()
                        .find(|g| g.name == f.name)
                        .is_some_and(|g| g.value == f.value)
                })
            }
            _ => false,
        }
    }
}

impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        use std::hash::Hasher;
        std::mem::discriminant(self).hash(state);
        match self {
            Value::Int(i) => i.hash(state),
            Value::Float(f) => f.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
            Value::Bool(b) => b.hash(state),
            Value::Null => {}
            Value::List(items) => items.hash(state),
            Value::Record { name, fields } => {
                name.hash(state);
                // Order-insensitive: fold per-field hashes with XOR so that
                // permutations of the same fields hash identically.
                fields.len().hash(state);
                let mut acc: u64 = 0;
                for f in fields {
                    let mut h = std::collections::hash_map::DefaultHasher::new();
                    f.name.hash(&mut h);
                    f.value.hash(&mut h);
                    acc ^= h.finish();
                }
                acc.hash(state);
            }
        }
    }
}

/// A total order on values, primarily so values can live in sorted
/// containers in the benchmark harness. Orders by kind first, then content
/// (records compare by name, then sorted field names, then field values).
impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) => 2,
                Value::Float(_) => 3,
                Value::Str(_) => 4,
                Value::List(_) => 5,
                Value::Record { .. } => 6,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::List(a), Value::List(b)) => a.cmp(b),
            (
                Value::Record {
                    name: na,
                    fields: fa,
                },
                Value::Record {
                    name: nb,
                    fields: fb,
                },
            ) => na.cmp(nb).then_with(|| {
                let mut ka: Vec<_> = fa.iter().map(|f| (&f.name, &f.value)).collect();
                let mut kb: Vec<_> = fb.iter().map(|f| (&f.name, &f.value)).collect();
                ka.sort_by(|x, y| x.0.cmp(y.0));
                kb.sort_by(|x, y| x.0.cmp(y.0));
                ka.cmp(&kb)
            }),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Value {
    /// Formats the value in the paper's notation; see the `print` module.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        print::write_value(f, self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(x: i64) -> Value {
        Value::record("Point", vec![("x", Value::Int(x))])
    }

    #[test]
    fn primitives_classify() {
        assert!(Value::Int(1).is_primitive());
        assert!(Value::Float(1.5).is_primitive());
        assert!(Value::str("s").is_primitive());
        assert!(Value::Bool(true).is_primitive());
        assert!(!Value::Null.is_primitive());
        assert!(!Value::List(vec![]).is_primitive());
        assert!(!point(1).is_primitive());
    }

    #[test]
    fn kind_tags() {
        assert_eq!(Value::Int(1).kind(), "int");
        assert_eq!(Value::Float(1.0).kind(), "float");
        assert_eq!(Value::str("").kind(), "string");
        assert_eq!(Value::Bool(false).kind(), "bool");
        assert_eq!(Value::Null.kind(), "null");
        assert_eq!(Value::List(vec![]).kind(), "collection");
        assert_eq!(point(0).kind(), "record");
    }

    #[test]
    fn record_field_lookup() {
        let p = Value::record("P", vec![("x", Value::Int(3)), ("y", Value::Int(4))]);
        assert_eq!(p.field("x"), Some(&Value::Int(3)));
        assert_eq!(p.field("y"), Some(&Value::Int(4)));
        assert_eq!(p.field("z"), None);
        assert_eq!(Value::Int(1).field("x"), None);
    }

    #[test]
    fn record_equality_is_order_insensitive() {
        let a = Value::record("P", vec![("x", Value::Int(3)), ("y", Value::Int(4))]);
        let b = Value::record("P", vec![("y", Value::Int(4)), ("x", Value::Int(3))]);
        assert_eq!(a, b);
    }

    #[test]
    fn record_equality_requires_same_name() {
        let a = Value::record("P", vec![("x", Value::Int(3))]);
        let b = Value::record("Q", vec![("x", Value::Int(3))]);
        assert_ne!(a, b);
    }

    #[test]
    fn record_equality_requires_same_width() {
        let a = Value::record("P", vec![("x", Value::Int(3))]);
        let b = Value::record("P", vec![("x", Value::Int(3)), ("y", Value::Int(4))]);
        assert_ne!(a, b);
    }

    #[test]
    fn int_and_float_are_distinct_values() {
        assert_ne!(Value::Int(1), Value::Float(1.0));
    }

    #[test]
    fn nan_equals_itself() {
        assert_eq!(Value::Float(f64::NAN), Value::Float(f64::NAN));
    }

    #[test]
    fn hash_agrees_with_eq_under_field_permutation() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let a = Value::record("P", vec![("x", Value::Int(3)), ("y", Value::Int(4))]);
        let b = Value::record("P", vec![("y", Value::Int(4)), ("x", Value::Int(3))]);
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        a.hash(&mut ha);
        b.hash(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from(2.5f64), Value::Float(2.5));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("hi"), Value::str("hi"));
        assert_eq!(Value::from(Some(1i64)), Value::Int(1));
        assert_eq!(Value::from(None::<i64>), Value::Null);
    }

    #[test]
    fn collect_into_list() {
        let v: Value = (1i64..=3).collect();
        assert_eq!(
            v,
            Value::List(vec![Value::Int(1), Value::Int(2), Value::Int(3)])
        );
    }

    #[test]
    fn default_is_null() {
        assert_eq!(Value::default(), Value::Null);
    }

    #[test]
    fn ordering_ranks_kinds() {
        let mut vs = [point(1), Value::Null, Value::Int(2), Value::Bool(true)];
        vs.sort();
        assert_eq!(vs[0], Value::Null);
        assert_eq!(vs[1], Value::Bool(true));
        assert_eq!(vs[2], Value::Int(2));
        assert!(vs[3].is_record());
    }

    #[test]
    fn with_record_name_renames_records_only() {
        assert_eq!(point(1).with_record_name("Q").record_name(), Some("Q"));
        assert_eq!(Value::Int(1).with_record_name("Q"), Value::Int(1));
    }

    #[test]
    fn at_follows_nested_paths() {
        let v = Value::record(
            "root",
            vec![("items", Value::List(vec![point(7), point(8)]))],
        );
        let p: Path = [
            PathSegment::Field("items".into()),
            PathSegment::Index(1),
            PathSegment::Field("x".into()),
        ]
        .into_iter()
        .collect();
        assert_eq!(v.at(&p), Some(&Value::Int(8)));
    }

    #[test]
    fn at_returns_none_for_bad_paths() {
        let v = point(1);
        let p: Path = [PathSegment::Index(0)].into_iter().collect();
        assert_eq!(v.at(&p), None);
    }
}
