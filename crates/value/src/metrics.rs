//! Structural metrics over [`Value`]s, used by the benchmark harness to
//! characterize generated corpora (depth/width sweeps in experiment B2).

use crate::Value;

impl Value {
    /// The height of the value tree.
    ///
    /// Primitives and `null` have depth 1; a container's depth is one more
    /// than its deepest child (empty containers have depth 1).
    ///
    /// ```
    /// # use tfd_value::{Value, arr};
    /// assert_eq!(Value::Int(1).depth(), 1);
    /// assert_eq!(arr([Value::Int(1)]).depth(), 2);
    /// ```
    pub fn depth(&self) -> usize {
        match self {
            Value::List(items) => 1 + items.iter().map(Value::depth).max().unwrap_or(0),
            Value::Record { fields, .. } => {
                1 + fields.iter().map(|f| f.value.depth()).max().unwrap_or(0)
            }
            _ => 1,
        }
    }

    /// Total number of nodes in the value tree (every primitive, `null`,
    /// list and record counts as one node).
    ///
    /// ```
    /// # use tfd_value::{Value, arr};
    /// assert_eq!(arr([Value::Int(1), Value::Int(2)]).node_count(), 3);
    /// ```
    pub fn node_count(&self) -> usize {
        match self {
            Value::List(items) => 1 + items.iter().map(Value::node_count).sum::<usize>(),
            Value::Record { fields, .. } => {
                1 + fields.iter().map(|f| f.value.node_count()).sum::<usize>()
            }
            _ => 1,
        }
    }

    /// Number of `null` leaves in the value tree.
    pub fn null_count(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::List(items) => items.iter().map(Value::null_count).sum(),
            Value::Record { fields, .. } => fields.iter().map(|f| f.value.null_count()).sum(),
            _ => 0,
        }
    }

    /// Maximum record width (field count) anywhere in the tree.
    pub fn max_record_width(&self) -> usize {
        match self {
            Value::List(items) => items.iter().map(Value::max_record_width).max().unwrap_or(0),
            Value::Record { fields, .. } => fields.len().max(
                fields
                    .iter()
                    .map(|f| f.value.max_record_width())
                    .max()
                    .unwrap_or(0),
            ),
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{arr, rec, Value};

    #[test]
    fn depth_of_primitives_is_one() {
        assert_eq!(Value::Null.depth(), 1);
        assert_eq!(Value::Bool(true).depth(), 1);
        assert_eq!(Value::str("x").depth(), 1);
    }

    #[test]
    fn depth_of_empty_containers_is_one() {
        assert_eq!(Value::List(vec![]).depth(), 1);
        assert_eq!(Value::record("E", Vec::<(String, Value)>::new()).depth(), 1);
    }

    #[test]
    fn depth_nests() {
        let v = rec("a", [("b", arr([rec("c", [("d", Value::Int(1))])]))]);
        assert_eq!(v.depth(), 4);
    }

    #[test]
    fn node_count_counts_everything() {
        let v = rec("a", [("b", arr([Value::Int(1), Value::Null]))]);
        // record + list + int + null
        assert_eq!(v.node_count(), 4);
    }

    #[test]
    fn null_count_finds_nested_nulls() {
        let v = arr([Value::Null, rec("r", [("x", Value::Null)]), Value::Int(3)]);
        assert_eq!(v.null_count(), 2);
    }

    #[test]
    fn max_record_width_scans_tree() {
        let wide = rec(
            "w",
            [
                ("a", Value::Int(1)),
                ("b", Value::Int(2)),
                ("c", Value::Int(3)),
            ],
        );
        let v = arr([rec("n", [("only", wide)])]);
        assert_eq!(v.max_record_width(), 3);
    }
}
