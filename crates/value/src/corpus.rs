//! Deterministic synthetic document generators.
//!
//! The benchmark harness (experiments B2–B5) and property tests need
//! realistic document corpora with controllable depth, record width and
//! "messiness" (missing fields, nulls, mixed number encodings — the
//! real-world problems §2.3 of the paper motivates). The generators here
//! use a small self-contained SplitMix64 PRNG so this crate stays
//! dependency-free and corpora are reproducible from a seed.

use crate::{body_name, Field, Value};

/// A tiny deterministic PRNG (SplitMix64), sufficient for corpus
/// generation. Not cryptographic.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound` must be non-zero).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be non-zero");
        self.next_u64() % bound
    }

    /// Bernoulli trial: `true` with probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

/// Configuration for the synthetic JSON-like corpus generator.
///
/// Defaults produce the kind of "API response" documents the paper's
/// introduction describes: arrays of records with a few primitive fields,
/// occasional missing fields and nulls.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Maximum nesting depth of containers.
    pub max_depth: usize,
    /// Number of fields in each record.
    pub record_width: usize,
    /// Number of elements in each collection.
    pub list_len: usize,
    /// Probability that a record field is dropped (producing the
    /// missing-data patterns of §2.1).
    pub missing_field_prob: f64,
    /// Probability that a primitive is replaced by `null` (§2.3).
    pub null_prob: f64,
    /// Probability that an integer is rendered as a float (mixed number
    /// encodings, §2.1's `25` vs `3.5`).
    pub float_prob: f64,
    /// Probability that a number is encoded as a *string* (the World Bank
    /// `"35.14229"` pattern, §2.3).
    pub stringly_number_prob: f64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            max_depth: 4,
            record_width: 5,
            list_len: 8,
            missing_field_prob: 0.15,
            null_prob: 0.05,
            float_prob: 0.3,
            stringly_number_prob: 0.0,
        }
    }
}

/// Field-name pool used by the generator; realistic API-ish names.
const FIELD_NAMES: &[&str] = &[
    "id",
    "name",
    "age",
    "value",
    "date",
    "temp",
    "pressure",
    "humidity",
    "lat",
    "lon",
    "count",
    "pages",
    "indicator",
    "status",
    "kind",
    "speed",
    "country",
    "city",
    "total",
    "score",
];

/// Generates one synthetic document.
///
/// ```
/// use tfd_value::corpus::{generate, CorpusConfig, Rng};
/// let mut rng = Rng::new(42);
/// let doc = generate(&mut rng, &CorpusConfig::default());
/// let again = generate(&mut Rng::new(42), &CorpusConfig::default());
/// assert_eq!(doc, again); // deterministic in the seed
/// ```
pub fn generate(rng: &mut Rng, config: &CorpusConfig) -> Value {
    gen_value(rng, config, config.max_depth)
}

/// Generates a corpus of `n` documents sharing one structural "schema"
/// (same field layout) but with independent randomness in the leaves —
/// what multiple samples of the same API endpoint look like.
pub fn generate_corpus(seed: u64, n: usize, config: &CorpusConfig) -> Vec<Value> {
    let mut rng = Rng::new(seed);
    (0..n).map(|_| generate(&mut rng, config)).collect()
}

fn gen_primitive(rng: &mut Rng, config: &CorpusConfig) -> Value {
    if rng.chance(config.null_prob) {
        return Value::Null;
    }
    let n = rng.below(100) as i64;
    if rng.chance(config.stringly_number_prob) {
        return Value::Str(format!("{}.{:05}", n, rng.below(100_000)));
    }
    match rng.below(4) {
        0 => {
            if rng.chance(config.float_prob) {
                Value::Float(n as f64 + 0.5)
            } else {
                Value::Int(n)
            }
        }
        1 => Value::Str(format!("item-{n}")),
        2 => Value::Bool(n % 2 == 0),
        _ => {
            if rng.chance(config.float_prob) {
                Value::Float(n as f64 / 3.0)
            } else {
                Value::Int(n)
            }
        }
    }
}

fn gen_value(rng: &mut Rng, config: &CorpusConfig, depth: usize) -> Value {
    if depth <= 1 {
        return gen_primitive(rng, config);
    }
    match rng.below(3) {
        0 => gen_primitive(rng, config),
        1 => Value::List(
            (0..config.list_len)
                .map(|_| gen_value(rng, config, depth - 1))
                .collect(),
        ),
        _ => {
            let mut fields = Vec::with_capacity(config.record_width);
            for i in 0..config.record_width {
                if rng.chance(config.missing_field_prob) {
                    continue;
                }
                let name = FIELD_NAMES[i % FIELD_NAMES.len()];
                fields.push(Field::new(name, gen_value(rng, config, depth - 1)));
            }
            Value::Record {
                name: body_name(),
                fields,
            }
        }
    }
}

/// Generates a homogeneous "rows" document: a collection of `rows` flat
/// records of `width` primitive fields — the shape of a CSV file or a
/// tabular JSON API. Used by parser and access benchmarks.
pub fn generate_table(seed: u64, rows: usize, width: usize) -> Value {
    let mut rng = Rng::new(seed);
    let config = CorpusConfig::default();
    Value::List(
        (0..rows)
            .map(|_| {
                let fields = (0..width)
                    .map(|i| {
                        let name = FIELD_NAMES[i % FIELD_NAMES.len()];
                        Field::new(name, gen_primitive(&mut rng, &config))
                    })
                    .collect();
                Value::Record {
                    name: body_name(),
                    fields,
                }
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn rng_below_respects_bound() {
        let mut rng = Rng::new(1);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "bound must be non-zero")]
    fn rng_below_zero_panics() {
        Rng::new(1).below(0);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Rng::new(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn generate_is_deterministic_in_seed() {
        let c = CorpusConfig::default();
        let a = generate(&mut Rng::new(99), &c);
        let b = generate(&mut Rng::new(99), &c);
        assert_eq!(a, b);
    }

    #[test]
    fn generate_respects_max_depth() {
        let c = CorpusConfig {
            max_depth: 3,
            ..CorpusConfig::default()
        };
        for seed in 0..20 {
            let v = generate(&mut Rng::new(seed), &c);
            assert!(v.depth() <= 3, "depth {} for seed {seed}", v.depth());
        }
    }

    #[test]
    fn corpus_has_requested_size() {
        let docs = generate_corpus(5, 12, &CorpusConfig::default());
        assert_eq!(docs.len(), 12);
    }

    #[test]
    fn table_is_list_of_flat_records() {
        let t = generate_table(11, 20, 4);
        let rows = t.elements().unwrap();
        assert_eq!(rows.len(), 20);
        for row in rows {
            assert!(row.is_record());
            assert!(row.depth() <= 2);
            assert_eq!(row.fields().unwrap().len(), 4);
        }
    }

    #[test]
    fn missing_fields_do_occur() {
        let c = CorpusConfig {
            missing_field_prob: 0.5,
            max_depth: 2,
            record_width: 6,
            ..CorpusConfig::default()
        };
        let mut rng = Rng::new(17);
        let mut saw_narrow = false;
        for _ in 0..50 {
            if let Value::Record { fields, .. } = gen_value(&mut rng, &c, 2) {
                if fields.len() < 6 {
                    saw_narrow = true;
                }
            }
        }
        assert!(
            saw_narrow,
            "expected at least one record with dropped fields"
        );
    }
}
