//! Paths addressing sub-values inside a [`Value`](crate::Value) tree.
//!
//! Paths are produced by the runtime when reporting shape mismatches, so a
//! user can see *where* in a document an access failed, e.g.
//! `$.items[2].age`.

use crate::Name;
use std::fmt;

/// One step of a [`Path`]: either a record field or a collection index.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PathSegment {
    /// Descend into the record field with this name (interned).
    Field(Name),
    /// Descend into the collection element at this index.
    Index(usize),
}

impl fmt::Display for PathSegment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathSegment::Field(name) => write!(f, ".{name}"),
            PathSegment::Index(i) => write!(f, "[{i}]"),
        }
    }
}

/// A sequence of [`PathSegment`]s from the document root to a sub-value.
///
/// Displayed in the JSONPath-like notation `$` / `$.a[0].b`.
///
/// ```
/// use tfd_value::{Path, PathSegment};
///
/// let mut p = Path::root();
/// assert!(p.is_root());
/// p.push_field("items");
/// p.push_index(2);
/// assert_eq!(p.to_string(), "$.items[2]");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Path {
    segments: Vec<PathSegment>,
}

impl Path {
    /// The empty path, addressing the document root.
    pub fn root() -> Path {
        Path::default()
    }

    /// Returns `true` when the path has no segments.
    pub fn is_root(&self) -> bool {
        self.segments.is_empty()
    }

    /// The segments of this path in root-to-leaf order.
    pub fn segments(&self) -> &[PathSegment] {
        &self.segments
    }

    /// Number of segments in the path.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Returns `true` when the path has no segments (alias of
    /// [`Path::is_root`], provided for the usual `len`/`is_empty` pairing).
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Appends a field segment in place.
    pub fn push_field(&mut self, name: impl Into<Name>) {
        self.segments.push(PathSegment::Field(name.into()));
    }

    /// Appends an index segment in place.
    pub fn push_index(&mut self, index: usize) {
        self.segments.push(PathSegment::Index(index));
    }

    /// Removes and returns the last segment, if any.
    pub fn pop(&mut self) -> Option<PathSegment> {
        self.segments.pop()
    }

    /// Returns a new path extended with a field segment.
    ///
    /// ```
    /// # use tfd_value::Path;
    /// let p = Path::root().child_field("a").child_index(0);
    /// assert_eq!(p.to_string(), "$.a[0]");
    /// ```
    #[must_use]
    pub fn child_field(&self, name: impl Into<Name>) -> Path {
        let mut p = self.clone();
        p.push_field(name);
        p
    }

    /// Returns a new path extended with an index segment.
    #[must_use]
    pub fn child_index(&self, index: usize) -> Path {
        let mut p = self.clone();
        p.push_index(index);
        p
    }

    /// Migrates every field name in this path into `interner` (see
    /// [`Name::reintern`]) so the path can outlive the corpus arena it
    /// was built against.
    pub fn reintern(&mut self, interner: &crate::Interner) {
        for seg in &mut self.segments {
            if let PathSegment::Field(name) = seg {
                *name = name.reintern(interner);
            }
        }
    }
}

impl FromIterator<PathSegment> for Path {
    fn from_iter<T: IntoIterator<Item = PathSegment>>(iter: T) -> Self {
        Path {
            segments: iter.into_iter().collect(),
        }
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "$")?;
        for seg in &self.segments {
            write!(f, "{seg}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_displays_as_dollar() {
        assert_eq!(Path::root().to_string(), "$");
        assert!(Path::root().is_root());
    }

    #[test]
    fn display_mixes_fields_and_indices() {
        let p = Path::root()
            .child_field("a")
            .child_index(3)
            .child_field("b");
        assert_eq!(p.to_string(), "$.a[3].b");
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn push_and_pop_roundtrip() {
        let mut p = Path::root();
        p.push_field("x");
        p.push_index(1);
        assert_eq!(p.pop(), Some(PathSegment::Index(1)));
        assert_eq!(p.pop(), Some(PathSegment::Field("x".into())));
        assert_eq!(p.pop(), None);
    }

    #[test]
    fn collect_from_segments() {
        let p: Path = vec![PathSegment::Field("f".into()), PathSegment::Index(0)]
            .into_iter()
            .collect();
        assert_eq!(p.to_string(), "$.f[0]");
    }

    #[test]
    fn child_does_not_mutate_parent() {
        let p = Path::root().child_field("a");
        let q = p.child_index(0);
        assert_eq!(p.to_string(), "$.a");
        assert_eq!(q.to_string(), "$.a[0]");
    }
}
