//! Global name interning — the allocation-free representation of record
//! and field names.
//!
//! Structured-data corpora repeat the same handful of names millions of
//! times: every CSV row re-states its column names, every JSON object in
//! an array re-states its keys, every XML element its tag. Materializing
//! an owned `String` per occurrence made names the dominant allocation of
//! the parse→infer hot path. [`Name`] replaces them with a small `Copy`
//! symbol backed by a process-wide interner:
//!
//! * **O(1) equality and hashing** — interning canonicalizes spelling, so
//!   two `Name`s are equal iff they point at the same interned bytes;
//!   equality is a pointer comparison and hashing hashes the pointer.
//! * **Zero-cost resolution** — a `Name` *is* a `&'static str` (the
//!   interner leaks each distinct spelling once), so [`Name::as_str`],
//!   [`Deref`] and `Display` never take a lock.
//! * **Deterministic ordering** — [`Ord`] compares string contents, so
//!   sorted output is stable across runs even though pointer identities
//!   are not.
//!
//! The interner only grows: memory is bounded by the number of *distinct*
//! names ever seen (the schema vocabulary), not by corpus size. Interning
//! takes a read lock on the fast path and a write lock only for
//! never-before-seen spellings.

use std::borrow::Cow;
use std::collections::HashSet;
use std::fmt;
use std::ops::Deref;
use std::sync::{OnceLock, PoisonError, RwLock};

fn interner() -> &'static RwLock<HashSet<&'static str>> {
    static INTERNER: OnceLock<RwLock<HashSet<&'static str>>> = OnceLock::new();
    INTERNER.get_or_init(|| RwLock::new(HashSet::new()))
}

/// A point-in-time snapshot of the interner, reported by [`stats`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InternStats {
    /// Number of distinct spellings interned since process start.
    pub symbols: usize,
    /// Total bytes of interned string data retained for the process
    /// lifetime (spellings only, excluding table overhead).
    pub retained_bytes: usize,
}

/// Reports how much the process-wide interner currently retains. The
/// interner only grows, so these figures measure the *schema
/// vocabulary* encountered so far — not corpus size.
///
/// ```
/// use tfd_value::{intern, Name};
/// let before = intern::stats();
/// Name::new("a-definitely-fresh-spelling");
/// let after = intern::stats();
/// assert!(after.symbols > before.symbols);
/// assert!(after.retained_bytes >= before.retained_bytes + "a-definitely-fresh-spelling".len());
/// ```
pub fn stats() -> InternStats {
    let table = interner().read().unwrap_or_else(PoisonError::into_inner);
    InternStats {
        symbols: table.len(),
        retained_bytes: table.iter().map(|s| s.len()).sum(),
    }
}

/// An interned record/field name: a small `Copy` symbol with O(1)
/// equality and hashing and free resolution to `&'static str`.
///
/// ```
/// use tfd_value::Name;
/// let a = Name::new("temperature");
/// let b = Name::new(String::from("temperature"));
/// assert_eq!(a, b);                 // pointer equality after interning
/// assert_eq!(a.as_str(), "temperature");
/// assert_eq!(a, "temperature");     // compares against plain strings too
/// assert!(a < Name::new("wind"));   // ordered by contents
/// ```
#[derive(Clone, Copy)]
pub struct Name(&'static str);

impl Name {
    /// Interns a spelling, returning its canonical symbol.
    pub fn new(s: impl AsRef<str>) -> Name {
        let s = s.as_ref();
        if let Some(&hit) = interner()
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(s)
        {
            return Name(hit);
        }
        let mut w = interner().write().unwrap_or_else(PoisonError::into_inner);
        if let Some(&hit) = w.get(s) {
            return Name(hit);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        w.insert(leaked);
        Name(leaked)
    }

    /// Looks a spelling up without interning it. `None` means no name
    /// with this spelling exists anywhere in the process — useful to
    /// answer negative lookups without growing the interner.
    pub fn lookup(s: &str) -> Option<Name> {
        interner()
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(s)
            .map(|&hit| Name(hit))
    }

    /// The interned spelling. Never locks.
    pub fn as_str(self) -> &'static str {
        self.0
    }

    /// Number of distinct names interned so far (diagnostics/tests).
    pub fn interned_count() -> usize {
        interner()
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }
}

impl Deref for Name {
    type Target = str;

    fn deref(&self) -> &str {
        self.0
    }
}

impl AsRef<str> for Name {
    fn as_ref(&self) -> &str {
        self.0
    }
}

impl PartialEq for Name {
    /// O(1): interning canonicalizes, so pointer identity decides.
    fn eq(&self, other: &Self) -> bool {
        std::ptr::eq(self.0, other.0)
    }
}

impl Eq for Name {}

impl std::hash::Hash for Name {
    /// O(1): hashes the interned pointer, not the string bytes.
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        (self.0.as_ptr() as usize).hash(state);
    }
}

impl PartialOrd for Name {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Name {
    /// Content order (deterministic across runs), with an identity fast
    /// path.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if std::ptr::eq(self.0, other.0) {
            std::cmp::Ordering::Equal
        } else {
            self.0.cmp(other.0)
        }
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.0, f)
    }
}

impl From<&str> for Name {
    fn from(s: &str) -> Name {
        Name::new(s)
    }
}

impl From<&String> for Name {
    fn from(s: &String) -> Name {
        Name::new(s)
    }
}

impl From<String> for Name {
    fn from(s: String) -> Name {
        Name::new(s)
    }
}

impl From<Cow<'_, str>> for Name {
    fn from(s: Cow<'_, str>) -> Name {
        Name::new(s)
    }
}

impl From<Name> for String {
    fn from(n: Name) -> String {
        n.0.to_owned()
    }
}

impl PartialEq<str> for Name {
    fn eq(&self, other: &str) -> bool {
        self.0 == other
    }
}

impl PartialEq<&str> for Name {
    fn eq(&self, other: &&str) -> bool {
        self.0 == *other
    }
}

impl PartialEq<String> for Name {
    fn eq(&self, other: &String) -> bool {
        self.0 == other.as_str()
    }
}

impl PartialEq<Name> for str {
    fn eq(&self, other: &Name) -> bool {
        self == other.0
    }
}

impl PartialEq<Name> for &str {
    fn eq(&self, other: &Name) -> bool {
        *self == other.0
    }
}

impl PartialEq<Name> for String {
    fn eq(&self, other: &Name) -> bool {
        self.as_str() == other.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of<T: Hash>(t: &T) -> u64 {
        let mut h = DefaultHasher::new();
        t.hash(&mut h);
        h.finish()
    }

    #[test]
    fn interning_canonicalizes() {
        let a = Name::new("alpha-test-name");
        let b = Name::new(String::from("alpha-test-name"));
        assert_eq!(a, b);
        assert!(std::ptr::eq(a.as_str(), b.as_str()));
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn distinct_spellings_differ() {
        assert_ne!(Name::new("left-name"), Name::new("right-name"));
    }

    #[test]
    fn ordering_is_by_content() {
        let mut names = [Name::new("zeta"), Name::new("beta"), Name::new("eta")];
        names.sort();
        let spellings: Vec<&str> = names.iter().map(|n| n.as_str()).collect();
        assert_eq!(spellings, vec!["beta", "eta", "zeta"]);
    }

    #[test]
    fn display_and_debug_roundtrip() {
        let n = Name::new("display-roundtrip");
        assert_eq!(n.to_string(), "display-roundtrip");
        assert_eq!(format!("{n:?}"), "\"display-roundtrip\"");
        assert_eq!(Name::new(n), n);
    }

    #[test]
    fn compares_against_plain_strings() {
        let n = Name::new("plain-compare");
        assert_eq!(n, "plain-compare");
        assert_eq!("plain-compare", n);
        assert_eq!(n, String::from("plain-compare"));
        assert_ne!(n, "other");
    }

    #[test]
    fn deref_exposes_str_methods() {
        let n = Name::new("deref-methods");
        assert_eq!(n.len(), "deref-methods".len());
        assert!(n.starts_with("deref"));
    }

    #[test]
    fn lookup_does_not_intern() {
        assert!(Name::lookup("never-interned-spelling-xyzzy").is_none());
        let n = Name::new("looked-up-spelling");
        assert_eq!(Name::lookup("looked-up-spelling"), Some(n));
    }

    #[test]
    fn record_equality_stays_order_insensitive_across_name_sources() {
        // Field names entering through different spellings' sources
        // (&str, String, concatenation) intern to the same symbols, and
        // record equality on Value stays order-insensitive.
        use crate::Value;
        let a = Value::record("P", vec![("x", Value::Int(3)), ("y", Value::Int(4))]);
        let b = Value::record(
            String::from("P"),
            vec![
                (format!("{}{}", "y", ""), Value::Int(4)),
                (String::from("x"), Value::Int(3)),
            ],
        );
        assert_eq!(a, b);
        assert_ne!(a, Value::record("P", vec![("x", Value::Int(3))]));
    }

    #[test]
    fn concurrent_interning_agrees() {
        let names: Vec<String> = (0..64).map(|i| format!("concurrent-{i}")).collect();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let names = names.clone();
                std::thread::spawn(move || names.iter().map(Name::new).collect::<Vec<Name>>())
            })
            .collect();
        let results: Vec<Vec<Name>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for per_thread in &results[1..] {
            assert_eq!(per_thread, &results[0]);
        }
        // All threads resolved each spelling to the same interned pointer.
        for (i, name) in results[0].iter().enumerate() {
            assert!(std::ptr::eq(name.as_str(), Name::new(&names[i]).as_str()));
        }
    }
}
