//! Scoped name interning — the allocation-free representation of record
//! and field names, with per-corpus memory reclamation.
//!
//! Structured-data corpora repeat the same handful of names millions of
//! times: every CSV row re-states its column names, every JSON object in
//! an array re-states its keys, every XML element its tag. Materializing
//! an owned `String` per occurrence made names the dominant allocation of
//! the parse→infer hot path. [`Name`] replaces them with a small `Copy`
//! symbol backed by an **arena** — an [`Interner`] that owns its string
//! storage:
//!
//! * **O(1) equality and hashing** — interning canonicalizes spelling
//!   within an arena, so two same-arena `Name`s are equal iff they point
//!   at the same interned bytes. Every `Name` also carries a cached
//!   content hash, so hashing is O(1) *and* stable across arenas and
//!   process runs, and a cross-arena comparison rejects unequal
//!   spellings in O(1) before falling back to a content check.
//! * **Zero-cost resolution** — a `Name` carries a direct reference to
//!   its interned spelling, so [`Name::as_str`], [`Deref`] and `Display`
//!   never take a lock.
//! * **Deterministic ordering** — [`Ord`] compares string contents, so
//!   sorted output is stable across runs and across arenas.
//!
//! # Memory model: one arena per corpus
//!
//! Earlier revisions used a single process-global interner that leaked
//! every distinct spelling for the process lifetime (`Box::leak` by
//! design). That is fine for one-shot inference over a finite schema
//! vocabulary — the paper's setting — but it is an unbounded memory leak
//! for a long-running service ingesting corpora whose keys are *data*
//! (UUID-keyed JSON objects, per-request CSV headers): the vocabulary
//! never stops growing and nothing is ever reclaimed.
//!
//! The arena model fixes this:
//!
//! * [`Interner::new`] creates a **scoped arena**. Intern a corpus's
//!   names into it, fold the corpus, migrate whatever survives (the
//!   schema-sized shape) into a longer-lived arena with
//!   [`Name::reintern`], and drop the handle — every spelling the corpus
//!   introduced is freed. Cloning an `Interner` shares the arena
//!   (parallel shard workers clone one corpus handle).
//! * [`Interner::global`] is the **process-default arena**: never
//!   dropped, so its names really are `'static`. [`Name::new`] interns
//!   there, which keeps macros, doctests and one-shot CLI runs
//!   zero-setup. Long-lived shapes (the CLI's cross-file fold) live
//!   here too, re-interned from their corpus arenas.
//!
//! # Lifetime discipline
//!
//! A `Name` borrows its spelling from the owning arena's storage. The
//! type is `Copy` and carries no lifetime, so the compiler cannot
//! enforce the obvious rule: **a `Name` must not be resolved after its
//! arena is dropped** (names from the process-default arena are exempt —
//! that arena never drops). Resolving a dangling `Name` is
//! use-after-free. In debug builds, [`Name::as_str`] asserts that the
//! owning arena is still alive, which makes a missed [`Name::reintern`]
//! fail loudly in tests rather than silently reading freed memory.
//! Equality, hashing and ordering between names from *different* live
//! arenas are well-defined (content semantics) — re-interning before a
//! cross-corpus fold is a memory optimization, not a correctness
//! requirement.
//!
//! [`stats`] reports an honest, capacity-based estimate of retained
//! bytes per live arena and process-wide (see [`InternStats`]).

// The one unsafe block in the workspace: lifetime-laundering an arena's
// `Box<str>` contents to `&'static str` (see the SAFETY comment in
// `Interner::intern`). The crate otherwise denies unsafe code.
#![allow(unsafe_code)]

use std::borrow::Cow;
use std::collections::HashMap;
use std::fmt;
use std::ops::Deref;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError, RwLock, Weak};

/// Arena id of the process-default arena ([`Interner::global`]).
const GLOBAL_ARENA: u32 = 0;

/// FNV-1a over a spelling — the cached content hash every [`Name`]
/// carries. Deterministic across arenas, threads and process runs.
fn content_hash(s: &str) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in s.as_bytes() {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// One arena's table: the canonical spellings it owns.
#[derive(Default)]
struct Table {
    /// Spelling → cached content hash. Keys borrow from `strings`.
    map: HashMap<&'static str, u32>,
    /// Owned storage. A `Box<str>`'s heap bytes are stable under moves
    /// of the box, so `map` keys and issued `Name`s stay valid while the
    /// arena lives.
    strings: Vec<Box<str>>,
    /// Sum of spelling lengths (the figure the old interner reported as
    /// its whole footprint).
    spelling_bytes: usize,
}

struct ArenaInner {
    id: u32,
    table: RwLock<Table>,
}

impl Drop for ArenaInner {
    fn drop(&mut self) {
        // Deregister, so process-wide stats stop counting this arena.
        // (The strings themselves are freed by the field drops below.)
        if let Some(reg) = registry_if_init() {
            reg.lock()
                .unwrap_or_else(PoisonError::into_inner)
                .remove(&self.id);
        }
    }
}

type Registry = Mutex<HashMap<u32, Weak<ArenaInner>>>;

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

fn registry_if_init() -> Option<&'static Registry> {
    static INIT: OnceLock<()> = OnceLock::new();
    let _ = INIT.set(());
    Some(registry())
}

/// Monotonic arena id allocation — ids are never reused, so a dangling
/// arena id can never be mistaken for a live arena in debug checks.
fn next_arena_id() -> u32 {
    static NEXT: AtomicU32 = AtomicU32::new(GLOBAL_ARENA + 1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// A handle to a name arena: owns (a share of) the string storage every
/// [`Name`] interned through it points into.
///
/// Cloning is cheap (`Arc`) and shares the arena — the parallel drivers
/// clone one corpus handle into every shard worker. Memory is reclaimed
/// when the **last** handle drops.
///
/// ```
/// use tfd_value::{intern, Interner};
/// let before = intern::stats();
/// {
///     let corpus = Interner::new();
///     let n = corpus.intern("a-corpus-scoped-spelling");
///     assert_eq!(n, "a-corpus-scoped-spelling");
///     assert!(intern::stats().retained_bytes > before.retained_bytes);
/// } // ← the arena drops here and its spellings are freed
/// assert_eq!(intern::stats().retained_bytes, before.retained_bytes);
/// ```
#[derive(Clone)]
pub struct Interner {
    inner: Arc<ArenaInner>,
}

impl Interner {
    /// Creates a fresh scoped arena.
    pub fn new() -> Interner {
        let inner = Arc::new(ArenaInner {
            id: next_arena_id(),
            table: RwLock::new(Table::default()),
        });
        let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
        reg.retain(|_, w| w.strong_count() > 0);
        reg.insert(inner.id, Arc::downgrade(&inner));
        Interner { inner }
    }

    /// The process-default arena: never dropped, so its names are truly
    /// `'static`. [`Name::new`] interns here — the zero-setup path for
    /// macros, doctests and one-shot runs, and the home of long-lived
    /// shapes that outlive any one corpus.
    pub fn global() -> &'static Interner {
        static GLOBAL: OnceLock<Interner> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let inner = Arc::new(ArenaInner {
                id: GLOBAL_ARENA,
                table: RwLock::new(Table::default()),
            });
            registry()
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .insert(GLOBAL_ARENA, Arc::downgrade(&inner));
            Interner { inner }
        })
    }

    /// This arena's id (0 is the process-default arena).
    pub fn id(&self) -> u32 {
        self.inner.id
    }

    /// Interns a spelling into this arena, returning its canonical
    /// symbol. Takes a read lock on the fast path and a write lock only
    /// for never-before-seen spellings.
    pub fn intern(&self, s: impl AsRef<str>) -> Name {
        let s = s.as_ref();
        let arena = self.inner.id;
        if let Some((&spelling, &chash)) = self
            .inner
            .table
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .map
            .get_key_value(s)
        {
            return Name {
                s: spelling,
                chash,
                arena,
            };
        }
        let mut t = self
            .inner
            .table
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some((&spelling, &chash)) = t.map.get_key_value(s) {
            return Name {
                s: spelling,
                chash,
                arena,
            };
        }
        let chash = content_hash(s);
        let boxed: Box<str> = Box::from(s);
        // SAFETY: the heap bytes behind `boxed` are stable under moves of
        // the box and live exactly as long as the arena (`strings` is
        // append-only and dropped with `ArenaInner`). The `'static` is a
        // promise the *caller* keeps by not resolving a `Name` after its
        // arena drops — see the module docs' lifetime discipline; the
        // process-default arena never drops, so its names really are
        // `'static`.
        let spelling: &'static str = unsafe { &*std::ptr::from_ref::<str>(&*boxed) };
        t.strings.push(boxed);
        t.spelling_bytes += s.len();
        t.map.insert(spelling, chash);
        Name {
            s: spelling,
            chash,
            arena,
        }
    }

    /// Looks a spelling up without interning it. `None` means no name
    /// with this spelling exists in *this arena* — useful to answer
    /// negative lookups without growing the arena.
    pub fn lookup(&self, s: &str) -> Option<Name> {
        self.inner
            .table
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .map
            .get_key_value(s)
            .map(|(&spelling, &chash)| Name {
                s: spelling,
                chash,
                arena: self.inner.id,
            })
    }

    /// Number of distinct spellings interned into this arena.
    pub fn len(&self) -> usize {
        self.inner
            .table
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .map
            .len()
    }

    /// `true` if nothing has been interned into this arena.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` if `name` was interned through this arena.
    pub fn owns(&self, name: Name) -> bool {
        name.arena == self.inner.id
    }

    /// A point-in-time snapshot of *this arena's* footprint (honest,
    /// capacity-based — see [`InternStats::retained_bytes`]).
    pub fn stats(&self) -> InternStats {
        let t = self
            .inner
            .table
            .read()
            .unwrap_or_else(PoisonError::into_inner);
        InternStats {
            symbols: t.map.len(),
            spelling_bytes: t.spelling_bytes,
            retained_bytes: estimate_retained(&t),
            arenas: 1,
        }
    }
}

impl Default for Interner {
    fn default() -> Interner {
        Interner::new()
    }
}

impl fmt::Debug for Interner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.stats();
        f.debug_struct("Interner")
            .field("id", &self.inner.id)
            .field("symbols", &s.symbols)
            .field("retained_bytes", &s.retained_bytes)
            .finish()
    }
}

/// Capacity-based footprint estimate for one arena: spelling bytes, plus
/// the storage vector's slot capacity, plus the hash table's bucket
/// capacity (entry payload + one control byte per bucket). Allocator
/// rounding of individual string blocks is not modeled.
fn estimate_retained(t: &Table) -> usize {
    t.spelling_bytes
        + t.strings.capacity() * std::mem::size_of::<Box<str>>()
        + t.map.capacity() * (std::mem::size_of::<(&str, u32)>() + 1)
        + std::mem::size_of::<Table>()
}

/// A point-in-time snapshot of interner memory, reported per arena by
/// [`Interner::stats`] and process-wide by [`stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InternStats {
    /// Number of distinct spellings currently interned.
    pub symbols: usize,
    /// Total bytes of interned string data (spelling lengths only — the
    /// figure the old grow-only interner *under*-reported as its whole
    /// footprint).
    pub spelling_bytes: usize,
    /// Honest retained-memory estimate: spelling bytes **plus** table
    /// and storage-vector capacity overhead (see the per-arena formula
    /// in the module source). Still an estimate — per-allocation
    /// rounding by the system allocator is not modeled — but it tracks
    /// real occupancy instead of assuming tables are free.
    pub retained_bytes: usize,
    /// Number of live arenas contributing to this snapshot (1 for a
    /// per-arena snapshot; the process-default arena counts once it has
    /// been touched).
    pub arenas: usize,
}

impl InternStats {
    /// Component-wise sum (process totals are sums over live arenas).
    fn absorb(&mut self, other: InternStats) {
        self.symbols += other.symbols;
        self.spelling_bytes += other.spelling_bytes;
        self.retained_bytes += other.retained_bytes;
        self.arenas += other.arenas;
    }
}

/// Process-wide interner snapshot: the sum over all **live** arenas.
/// Unlike the old grow-only interner, these figures go back *down* when
/// a corpus arena is dropped — per-corpus memory is reclaimed, and only
/// the process-default arena's (schema-sized) vocabulary persists.
///
/// ```
/// use tfd_value::{intern, Name};
/// let before = intern::stats();
/// Name::new("a-definitely-fresh-spelling");
/// let after = intern::stats();
/// assert!(after.symbols > before.symbols);
/// assert!(after.retained_bytes >= before.retained_bytes + "a-definitely-fresh-spelling".len());
/// ```
pub fn stats() -> InternStats {
    let arenas: Vec<Arc<ArenaInner>> = registry()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .values()
        .filter_map(Weak::upgrade)
        .collect();
    let mut total = InternStats::default();
    for a in arenas {
        let t = a.table.read().unwrap_or_else(PoisonError::into_inner);
        total.absorb(InternStats {
            symbols: t.map.len(),
            spelling_bytes: t.spelling_bytes,
            retained_bytes: estimate_retained(&t),
            arenas: 1,
        });
    }
    total
}

/// An interned record/field name: a small `Copy` symbol with O(1)
/// equality and hashing, content ordering, and lock-free resolution.
///
/// ```
/// use tfd_value::Name;
/// let a = Name::new("temperature");
/// let b = Name::new(String::from("temperature"));
/// assert_eq!(a, b);                 // pointer equality after interning
/// assert_eq!(a.as_str(), "temperature");
/// assert_eq!(a, "temperature");     // compares against plain strings too
/// assert!(a < Name::new("wind"));   // ordered by contents
/// ```
///
/// Names interned through different arenas compare by content (the
/// cached hash keeps the unequal case O(1)):
///
/// ```
/// use tfd_value::{Interner, Name};
/// let corpus = Interner::new();
/// assert_eq!(corpus.intern("city"), Name::new("city"));
/// assert_ne!(corpus.intern("city"), Name::new("country"));
/// ```
#[derive(Clone, Copy)]
pub struct Name {
    /// The interned spelling, borrowed from the owning arena's storage.
    /// Truly `'static` only for the process-default arena — see the
    /// module docs' lifetime discipline.
    s: &'static str,
    /// Cached FNV-1a content hash: O(1) hashing, stable across arenas
    /// and process runs.
    chash: u32,
    /// Owning arena id ([`GLOBAL_ARENA`] for the process-default arena).
    arena: u32,
}

impl Name {
    /// Interns a spelling into the process-default arena, returning its
    /// canonical symbol. For corpus-scoped interning use
    /// [`Interner::intern`].
    pub fn new(s: impl AsRef<str>) -> Name {
        Interner::global().intern(s)
    }

    /// Looks a spelling up in the process-default arena without
    /// interning it. `None` means no name with this spelling exists in
    /// the default arena (corpus arenas are not consulted).
    pub fn lookup(s: &str) -> Option<Name> {
        Interner::global().lookup(s)
    }

    /// The interned spelling. Never locks.
    ///
    /// The returned reference is borrowed from the owning arena; it is
    /// genuinely `'static` only for names from the process-default
    /// arena. Resolving a name whose scoped arena has been dropped is
    /// use-after-free — debug builds assert the arena is still alive.
    pub fn as_str(self) -> &'static str {
        self.debug_assert_arena_live();
        self.s
    }

    /// Migrates this name into `interner`, returning the equivalent
    /// symbol there (a no-op when the name already lives in that arena).
    /// This is how schema-sized survivors (a folded shape) outlive the
    /// corpus arena they were parsed in.
    pub fn reintern(self, interner: &Interner) -> Name {
        if self.arena == interner.inner.id {
            self
        } else {
            interner.intern(self.s)
        }
    }

    /// The owning arena's id (0 is the process-default arena).
    pub fn arena_id(self) -> u32 {
        self.arena
    }

    /// Number of distinct names in the process-default arena
    /// (diagnostics/tests).
    pub fn interned_count() -> usize {
        Interner::global().len()
    }

    /// Debug-build check that the owning arena is still registered —
    /// catching resolution of a `Name` that outlived its corpus arena
    /// (a missed [`Name::reintern`]) as a loud panic instead of a silent
    /// use-after-free. Arena ids are never reused, so a stale id cannot
    /// alias a newer arena.
    #[inline]
    fn debug_assert_arena_live(self) {
        #[cfg(debug_assertions)]
        {
            if self.arena != GLOBAL_ARENA {
                let live = registry()
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .get(&self.arena)
                    .is_some_and(|w| w.strong_count() > 0);
                debug_assert!(
                    live,
                    "Name resolved after its arena (id {}) was dropped; \
                     reintern names that must outlive their corpus",
                    self.arena
                );
            }
        }
    }
}

impl Deref for Name {
    type Target = str;

    fn deref(&self) -> &str {
        self.debug_assert_arena_live();
        self.s
    }
}

impl AsRef<str> for Name {
    fn as_ref(&self) -> &str {
        self.debug_assert_arena_live();
        self.s
    }
}

impl PartialEq for Name {
    /// O(1): same-arena names compare by pointer (interning
    /// canonicalizes); cross-arena names compare by content, with the
    /// cached hash rejecting unequal spellings before any byte is read.
    fn eq(&self, other: &Self) -> bool {
        if self.arena == other.arena {
            std::ptr::eq(self.s, other.s)
        } else {
            self.chash == other.chash && self.s == other.s
        }
    }
}

impl Eq for Name {}

impl std::hash::Hash for Name {
    /// O(1): hashes the cached content hash — consistent with [`Eq`]
    /// across arenas, and stable across process runs.
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.chash.hash(state);
    }
}

impl PartialOrd for Name {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Name {
    /// Content order (deterministic across runs and arenas), with an
    /// identity fast path.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if std::ptr::eq(self.s, other.s) {
            std::cmp::Ordering::Equal
        } else {
            self.s.cmp(other.s)
        }
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_ref())
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_ref(), f)
    }
}

impl From<&str> for Name {
    fn from(s: &str) -> Name {
        Name::new(s)
    }
}

impl From<&String> for Name {
    fn from(s: &String) -> Name {
        Name::new(s)
    }
}

impl From<String> for Name {
    fn from(s: String) -> Name {
        Name::new(s)
    }
}

impl From<Cow<'_, str>> for Name {
    fn from(s: Cow<'_, str>) -> Name {
        Name::new(s)
    }
}

impl From<Name> for String {
    fn from(n: Name) -> String {
        n.as_ref().to_owned()
    }
}

impl PartialEq<str> for Name {
    fn eq(&self, other: &str) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&str> for Name {
    fn eq(&self, other: &&str) -> bool {
        self.as_ref() == *other
    }
}

impl PartialEq<String> for Name {
    fn eq(&self, other: &String) -> bool {
        self.as_ref() == other.as_str()
    }
}

impl PartialEq<Name> for str {
    fn eq(&self, other: &Name) -> bool {
        self == other.as_ref()
    }
}

impl PartialEq<Name> for &str {
    fn eq(&self, other: &Name) -> bool {
        *self == other.as_ref()
    }
}

impl PartialEq<Name> for String {
    fn eq(&self, other: &Name) -> bool {
        self.as_str() == other.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of<T: Hash>(t: &T) -> u64 {
        let mut h = DefaultHasher::new();
        t.hash(&mut h);
        h.finish()
    }

    #[test]
    fn interning_canonicalizes() {
        let a = Name::new("alpha-test-name");
        let b = Name::new(String::from("alpha-test-name"));
        assert_eq!(a, b);
        assert!(std::ptr::eq(a.as_str(), b.as_str()));
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn distinct_spellings_differ() {
        assert_ne!(Name::new("left-name"), Name::new("right-name"));
    }

    #[test]
    fn ordering_is_by_content() {
        let mut names = [Name::new("zeta"), Name::new("beta"), Name::new("eta")];
        names.sort();
        let spellings: Vec<&str> = names.iter().map(|n| n.as_str()).collect();
        assert_eq!(spellings, vec!["beta", "eta", "zeta"]);
    }

    #[test]
    fn display_and_debug_roundtrip() {
        let n = Name::new("display-roundtrip");
        assert_eq!(n.to_string(), "display-roundtrip");
        assert_eq!(format!("{n:?}"), "\"display-roundtrip\"");
        assert_eq!(Name::new(n), n);
    }

    #[test]
    fn compares_against_plain_strings() {
        let n = Name::new("plain-compare");
        assert_eq!(n, "plain-compare");
        assert_eq!("plain-compare", n);
        assert_eq!(n, String::from("plain-compare"));
        assert_ne!(n, "other");
    }

    #[test]
    fn deref_exposes_str_methods() {
        let n = Name::new("deref-methods");
        assert_eq!(n.len(), "deref-methods".len());
        assert!(n.starts_with("deref"));
    }

    #[test]
    fn lookup_does_not_intern() {
        assert!(Name::lookup("never-interned-spelling-xyzzy").is_none());
        let n = Name::new("looked-up-spelling");
        assert_eq!(Name::lookup("looked-up-spelling"), Some(n));
    }

    #[test]
    fn record_equality_stays_order_insensitive_across_name_sources() {
        // Field names entering through different spellings' sources
        // (&str, String, concatenation) intern to the same symbols, and
        // record equality on Value stays order-insensitive.
        use crate::Value;
        let a = Value::record("P", vec![("x", Value::Int(3)), ("y", Value::Int(4))]);
        let b = Value::record(
            String::from("P"),
            vec![
                (format!("{}{}", "y", ""), Value::Int(4)),
                (String::from("x"), Value::Int(3)),
            ],
        );
        assert_eq!(a, b);
        assert_ne!(a, Value::record("P", vec![("x", Value::Int(3))]));
    }

    #[test]
    fn concurrent_interning_agrees() {
        let names: Vec<String> = (0..64).map(|i| format!("concurrent-{i}")).collect();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let names = names.clone();
                std::thread::spawn(move || names.iter().map(Name::new).collect::<Vec<Name>>())
            })
            .collect();
        let results: Vec<Vec<Name>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for per_thread in &results[1..] {
            assert_eq!(per_thread, &results[0]);
        }
        // All threads resolved each spelling to the same interned pointer.
        for (i, name) in results[0].iter().enumerate() {
            assert!(std::ptr::eq(name.as_str(), Name::new(&names[i]).as_str()));
        }
    }

    #[test]
    fn scoped_arena_reclaims_memory_on_drop() {
        let before = stats();
        let peak;
        {
            let corpus = Interner::new();
            for i in 0..512 {
                corpus.intern(format!("scoped-reclaim-{i}"));
            }
            assert_eq!(corpus.len(), 512);
            peak = stats();
            assert!(peak.symbols >= before.symbols + 512);
            assert!(peak.arenas > before.arenas);
        }
        let after = stats();
        assert_eq!(after.symbols, before.symbols);
        assert_eq!(after.retained_bytes, before.retained_bytes);
        // None of the corpus vocabulary leaked into the default arena.
        assert!(Name::lookup("scoped-reclaim-0").is_none());
    }

    #[test]
    fn cross_arena_names_compare_by_content() {
        let a = Interner::new();
        let b = Interner::new();
        let na = a.intern("shared-spelling");
        let nb = b.intern("shared-spelling");
        let ng = Name::new("shared-spelling");
        assert_eq!(na, nb);
        assert_eq!(na, ng);
        assert_eq!(hash_of(&na), hash_of(&nb));
        assert_eq!(hash_of(&na), hash_of(&ng));
        assert_ne!(na, b.intern("other-spelling"));
        assert!(a.owns(na) && !a.owns(nb));
        // Ordering is content order regardless of arena.
        assert!(a.intern("aa") < b.intern("ab"));
        assert_eq!(na.cmp(&nb), std::cmp::Ordering::Equal);
    }

    #[test]
    fn reintern_migrates_between_arenas() {
        let corpus = Interner::new();
        let n = corpus.intern("migrant-name");
        let g = n.reintern(Interner::global());
        assert_eq!(g.arena_id(), Interner::global().id());
        assert_eq!(n, g);
        // Already-home names are returned unchanged.
        let same = g.reintern(Interner::global());
        assert!(std::ptr::eq(g.as_str(), same.as_str()));
        drop(corpus);
        // The migrated symbol survives its birth arena.
        assert_eq!(g.as_str(), "migrant-name");
    }

    #[test]
    fn arena_stats_are_capacity_honest() {
        let corpus = Interner::new();
        let empty = corpus.stats();
        assert_eq!(empty.symbols, 0);
        for i in 0..100 {
            corpus.intern(format!("honest-{i:03}"));
        }
        let s = corpus.stats();
        assert_eq!(s.symbols, 100);
        assert_eq!(s.spelling_bytes, 100 * "honest-000".len());
        // The honest estimate strictly exceeds the spelling-only figure:
        // tables and storage slots are not free.
        assert!(s.retained_bytes > s.spelling_bytes);
        assert_eq!(s.arenas, 1);
    }

    #[test]
    fn shared_handles_hit_one_arena() {
        let a = Interner::new();
        let b = a.clone();
        let n1 = a.intern("shared-handle-name");
        let n2 = b.intern("shared-handle-name");
        assert!(std::ptr::eq(n1.as_str(), n2.as_str()));
        assert_eq!(a.len(), 1);
        assert_eq!(a.id(), b.id());
    }

    #[test]
    fn concurrent_interning_into_one_shared_arena_agrees() {
        let arena = Interner::new();
        let names: Vec<String> = (0..64).map(|i| format!("arena-conc-{i}")).collect();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let arena = arena.clone();
                let names = names.clone();
                std::thread::spawn(move || {
                    names.iter().map(|n| arena.intern(n)).collect::<Vec<Name>>()
                })
            })
            .collect();
        let results: Vec<Vec<Name>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for per_thread in &results[1..] {
            assert_eq!(per_thread, &results[0]);
        }
        // Every thread resolved each spelling to the same arena symbol,
        // and nothing spilled into the default arena.
        assert_eq!(arena.len(), 64);
        for (i, name) in results[0].iter().enumerate() {
            assert!(std::ptr::eq(
                name.as_str(),
                arena.intern(&names[i]).as_str()
            ));
            assert!(Name::lookup(&names[i]).is_none());
        }
    }
}
