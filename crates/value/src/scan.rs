//! memchr-style chunked byte scanning with runtime SIMD dispatch for
//! the front-end hot loops.
//!
//! Every byte-level boundary scanner in the workspace spends its time
//! answering one question: *where is the next special byte?* — the next
//! delimiter, quote or line ending for CSV, the next `<`/`&` for XML
//! character data, the next bracket or quote for JSON containers.
//! Answering it byte-at-a-time wastes the memory bus. These helpers
//! split the work in two:
//!
//! * a bounded **short-hop probe** (≤ 16 scalar bytes, which LLVM
//!   autovectorizes) handles the common case of a special a few bytes
//!   away — the crossover was measured, not guessed (see the
//!   `csv_scan_swar_vs_naive` entry `pipeline_baseline` writes);
//! * runs longer than the probe fall through to a **kernel picked once
//!   per process** from a function-pointer table, memchr-style: AVX2
//!   when `is_x86_feature_detected!` says so, SSE2 on every x86-64,
//!   NEON on aarch64, and the portable SWAR word loop everywhere else
//!   (the build environment has no crates.io, so `memchr` itself is out
//!   of reach):
//!
//! ```text
//! zero_byte_mask(x) = (x - 0x0101…) & !x & 0x8080…
//! ```
//!
//! sets the high bit of every byte of `x` that is zero; XORing the word
//! with a splatted needle first turns "find byte `b`" into "find zero".
//! `u64::from_le_bytes` + `trailing_zeros` keep the index math
//! endian-correct everywhere.
//!
//! The selected kernel is visible as [`backend_name`] (recorded in the
//! bench JSONs), every compiled kernel is enumerable via
//! [`available_backends`] and forcible via [`force_backend`] or the
//! `TFD_SCAN_BACKEND` environment variable — which is how the
//! `tests/scan_backends.rs` differential suite proves every kernel
//! byte-identical to the scalar reference.
//!
//! The module lives in `tfd-value` (the one crate every front-end
//! depends on) so the CSV, JSON and XML scanners all share one
//! implementation; `tfd_csv::scan` re-exports it for compatibility. The
//! `*_naive` twins are the byte-at-a-time loops the helpers replaced;
//! the `pipeline_baseline` benchmark runs dispatch, SWAR and naive
//! side by side so the speedup stays an honest, re-measurable number
//! (see `BENCH_PR4.json`/`BENCH_PR5.json`/`BENCH_PR10.json`).

use std::sync::atomic::{AtomicU8, Ordering};

const LO: u64 = 0x0101_0101_0101_0101;
const HI: u64 = 0x8080_8080_8080_8080;

/// Length of the scalar short-hop probe the public wrappers run before
/// dispatching to a kernel.
const PROBE: usize = 16;

#[inline]
fn splat(b: u8) -> u64 {
    u64::from(b) * LO
}

/// High bit set in every byte of `x` that is zero.
#[inline]
fn zero_byte_mask(x: u64) -> u64 {
    x.wrapping_sub(LO) & !x & HI
}

// --- The dispatch table ---

/// One scanner implementation: the four arities the front-ends use.
#[allow(clippy::type_complexity)] // plain fn-pointer fields; aliases would obscure them
struct Kernels {
    name: &'static str,
    find_byte: fn(&[u8], u8) -> Option<usize>,
    find_any2: fn(&[u8], u8, u8) -> Option<usize>,
    find_any3: fn(&[u8], u8, u8, u8) -> Option<usize>,
    find_any5: fn(&[u8], u8, u8, u8, u8, u8) -> Option<usize>,
}

static SWAR_KERNELS: Kernels = Kernels {
    name: "swar",
    find_byte: swar::find_byte,
    find_any2: swar::find_any2,
    find_any3: swar::find_any3,
    find_any5: swar::find_any5,
};

#[cfg(target_arch = "x86_64")]
static SSE2_KERNELS: Kernels = Kernels {
    name: "sse2",
    find_byte: x86::sse2_find_byte,
    find_any2: x86::sse2_find_any2,
    find_any3: x86::sse2_find_any3,
    find_any5: x86::sse2_find_any5,
};

#[cfg(target_arch = "x86_64")]
static AVX2_KERNELS: Kernels = Kernels {
    name: "avx2",
    find_byte: x86::avx2_find_byte,
    find_any2: x86::avx2_find_any2,
    find_any3: x86::avx2_find_any3,
    find_any5: x86::avx2_find_any5,
};

#[cfg(target_arch = "aarch64")]
static NEON_KERNELS: Kernels = Kernels {
    name: "neon",
    find_byte: neon::find_byte,
    find_any2: neon::find_any2,
    find_any3: neon::find_any3,
    find_any5: neon::find_any5,
};

// Backend selector values for the one-word dispatch state. 0 means
// "not yet selected"; `kernels()` resolves it exactly once per process
// (or after a `force_backend` reset) and every later call is one
// relaxed load + a two-instruction match.
const B_UNSET: u8 = 0;
const B_SWAR: u8 = 1;
#[cfg(target_arch = "x86_64")]
const B_SSE2: u8 = 2;
#[cfg(target_arch = "x86_64")]
const B_AVX2: u8 = 3;
#[cfg(target_arch = "aarch64")]
const B_NEON: u8 = 4;

static ACTIVE: AtomicU8 = AtomicU8::new(B_UNSET);

#[inline]
fn kernels() -> &'static Kernels {
    match ACTIVE.load(Ordering::Relaxed) {
        B_SWAR => &SWAR_KERNELS,
        #[cfg(target_arch = "x86_64")]
        B_SSE2 => &SSE2_KERNELS,
        #[cfg(target_arch = "x86_64")]
        B_AVX2 => &AVX2_KERNELS,
        #[cfg(target_arch = "aarch64")]
        B_NEON => &NEON_KERNELS,
        _ => select_kernels(),
    }
}

/// Cold path: picks the widest kernel the host supports (honouring a
/// `TFD_SCAN_BACKEND` override), publishes it, and returns it. Racing
/// initializers agree on the answer, so the store needs no CAS.
#[cold]
fn select_kernels() -> &'static Kernels {
    let forced = std::env::var("TFD_SCAN_BACKEND").ok();
    let id = forced
        .as_deref()
        .and_then(backend_id)
        .unwrap_or_else(detect_backend);
    ACTIVE.store(id, Ordering::Relaxed);
    by_id(id)
}

/// The widest backend this host can run.
fn detect_backend() -> u8 {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return B_AVX2;
        }
        return B_SSE2;
    }
    #[cfg(target_arch = "aarch64")]
    {
        return B_NEON;
    }
    #[allow(unreachable_code)]
    B_SWAR
}

/// The selector for `name`, if that backend is compiled in *and*
/// runnable on this host.
fn backend_id(name: &str) -> Option<u8> {
    match name {
        "swar" => Some(B_SWAR),
        #[cfg(target_arch = "x86_64")]
        "sse2" => Some(B_SSE2),
        #[cfg(target_arch = "x86_64")]
        "avx2" if std::arch::is_x86_feature_detected!("avx2") => Some(B_AVX2),
        #[cfg(target_arch = "aarch64")]
        "neon" => Some(B_NEON),
        _ => None,
    }
}

fn by_id(id: u8) -> &'static Kernels {
    match id {
        #[cfg(target_arch = "x86_64")]
        B_SSE2 => &SSE2_KERNELS,
        #[cfg(target_arch = "x86_64")]
        B_AVX2 => &AVX2_KERNELS,
        #[cfg(target_arch = "aarch64")]
        B_NEON => &NEON_KERNELS,
        _ => &SWAR_KERNELS,
    }
}

/// The name of the kernel dispatch is currently using: `"avx2"`,
/// `"sse2"`, `"neon"` or `"swar"`. Selection happens on first use (of
/// this function or any scanner); the bench harness records it so scan
/// figures are interpretable across hosts.
pub fn backend_name() -> &'static str {
    kernels().name
}

/// Every backend this build can run on this host, widest first. The
/// parity suite iterates this list, forcing each in turn.
pub fn available_backends() -> Vec<&'static str> {
    let mut out = Vec::new();
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            out.push("avx2");
        }
        out.push("sse2");
    }
    #[cfg(target_arch = "aarch64")]
    out.push("neon");
    out.push("swar");
    out
}

/// Forces dispatch onto the named backend (`"auto"` re-runs detection).
/// Returns `false` — leaving the current selection untouched — when the
/// backend is not compiled in or not runnable on this host. A testing
/// and benchmarking hook: it swaps a process-global table, so never
/// call it concurrently with scans whose backend must stay fixed.
pub fn force_backend(name: &str) -> bool {
    if name == "auto" {
        ACTIVE.store(detect_backend(), Ordering::Relaxed);
        return true;
    }
    match backend_id(name) {
        Some(id) => {
            ACTIVE.store(id, Ordering::Relaxed);
            true
        }
        None => false,
    }
}

// --- Public entry points (probe + dispatch) ---

/// Index of the first occurrence of `a` or `b` in `haystack`.
///
/// ```
/// use tfd_value::scan::find_any2;
/// assert_eq!(find_any2(b"character data here <tag>", b'<', b'&'), Some(20));
/// assert_eq!(find_any2(b"no specials", b'<', b'&'), None);
/// ```
#[inline]
pub fn find_any2(haystack: &[u8], a: u8, b: u8) -> Option<usize> {
    // Short-hop fast path: most runs between specials are a few bytes
    // wide, and for those a bounded scalar probe (which LLVM vectorizes)
    // beats any kernel's setup. Only runs longer than the probe pay the
    // dispatch load.
    let probe = haystack.len().min(PROBE);
    if let Some(p) = haystack[..probe].iter().position(|&x| x == a || x == b) {
        return Some(p);
    }
    if probe == haystack.len() {
        return None;
    }
    (kernels().find_any2)(&haystack[probe..], a, b).map(|p| probe + p)
}

/// Index of the first occurrence of `a`, `b` or `c` in `haystack`.
///
/// ```
/// use tfd_value::scan::find_any3;
/// let hay = b"abcdefgh,ijklmnop\nq";
/// assert_eq!(find_any3(hay, b',', b'\n', b'\r'), Some(8));
/// assert_eq!(find_any3(b"no specials here", b',', b'\n', b'\r'), None);
/// ```
#[inline]
pub fn find_any3(haystack: &[u8], a: u8, b: u8, c: u8) -> Option<usize> {
    let probe = haystack.len().min(PROBE);
    if let Some(p) = haystack[..probe]
        .iter()
        .position(|&x| x == a || x == b || x == c)
    {
        return Some(p);
    }
    if probe == haystack.len() {
        return None;
    }
    (kernels().find_any3)(&haystack[probe..], a, b, c).map(|p| probe + p)
}

/// Index of the first occurrence of any of five needles — sized for the
/// JSON container scanner, whose specials are `{` `}` `[` `]` `"`.
///
/// ```
/// use tfd_value::scan::find_any5;
/// let hay = br#"some content then "a string""#;
/// assert_eq!(find_any5(hay, b'{', b'}', b'[', b']', b'"'), Some(18));
/// ```
#[inline]
pub fn find_any5(haystack: &[u8], a: u8, b: u8, c: u8, d: u8, e: u8) -> Option<usize> {
    let probe = haystack.len().min(PROBE);
    if let Some(p) = haystack[..probe]
        .iter()
        .position(|&x| x == a || x == b || x == c || x == d || x == e)
    {
        return Some(p);
    }
    if probe == haystack.len() {
        return None;
    }
    (kernels().find_any5)(&haystack[probe..], a, b, c, d, e).map(|p| probe + p)
}

/// Index of the first occurrence of `needle`.
///
/// ```
/// use tfd_value::scan::find_byte;
/// assert_eq!(find_byte(b"quoted content\" tail", b'"'), Some(14));
/// assert_eq!(find_byte(b"none", b'"'), None);
/// ```
#[inline]
pub fn find_byte(haystack: &[u8], needle: u8) -> Option<usize> {
    let probe = haystack.len().min(PROBE);
    if let Some(p) = haystack[..probe].iter().position(|&x| x == needle) {
        return Some(p);
    }
    if probe == haystack.len() {
        return None;
    }
    (kernels().find_byte)(&haystack[probe..], needle).map(|p| probe + p)
}

/// The byte-at-a-time loop [`find_any3`] replaced — kept as the honesty
/// baseline for `pipeline_baseline` and the parity suites.
#[inline]
pub fn find_any3_naive(haystack: &[u8], a: u8, b: u8, c: u8) -> Option<usize> {
    haystack.iter().position(|&x| x == a || x == b || x == c)
}

/// The byte-at-a-time loop [`find_byte`] replaced — kept as the honesty
/// baseline for `pipeline_baseline` and the parity suites.
#[inline]
pub fn find_byte_naive(haystack: &[u8], needle: u8) -> Option<usize> {
    haystack.iter().position(|&x| x == needle)
}

// --- The portable SWAR kernel (PR 4), the fallback every target has ---

mod swar {
    use super::{splat, zero_byte_mask};

    #[allow(clippy::expect_used)] // 8-byte window, checked by the loop bound
    pub(super) fn find_byte(haystack: &[u8], needle: u8) -> Option<usize> {
        let s = splat(needle);
        let n = haystack.len();
        let mut i = 0;
        while i + 8 <= n {
            let word = u64::from_le_bytes(haystack[i..i + 8].try_into().expect("8-byte chunk"));
            let hits = zero_byte_mask(word ^ s);
            if hits != 0 {
                return Some(i + (hits.trailing_zeros() / 8) as usize);
            }
            i += 8;
        }
        haystack[i..]
            .iter()
            .position(|&x| x == needle)
            .map(|p| i + p)
    }

    #[allow(clippy::expect_used)] // 8-byte window, checked by the loop bound
    pub(super) fn find_any2(haystack: &[u8], a: u8, b: u8) -> Option<usize> {
        let (sa, sb) = (splat(a), splat(b));
        let n = haystack.len();
        let mut i = 0;
        while i + 8 <= n {
            let word = u64::from_le_bytes(haystack[i..i + 8].try_into().expect("8-byte chunk"));
            let hits = zero_byte_mask(word ^ sa) | zero_byte_mask(word ^ sb);
            if hits != 0 {
                return Some(i + (hits.trailing_zeros() / 8) as usize);
            }
            i += 8;
        }
        haystack[i..]
            .iter()
            .position(|&x| x == a || x == b)
            .map(|p| i + p)
    }

    #[allow(clippy::expect_used)] // 8-byte window, checked by the loop bound
    pub(super) fn find_any3(haystack: &[u8], a: u8, b: u8, c: u8) -> Option<usize> {
        let (sa, sb, sc) = (splat(a), splat(b), splat(c));
        let n = haystack.len();
        let mut i = 0;
        while i + 8 <= n {
            let word = u64::from_le_bytes(haystack[i..i + 8].try_into().expect("8-byte chunk"));
            let hits =
                zero_byte_mask(word ^ sa) | zero_byte_mask(word ^ sb) | zero_byte_mask(word ^ sc);
            if hits != 0 {
                return Some(i + (hits.trailing_zeros() / 8) as usize);
            }
            i += 8;
        }
        haystack[i..]
            .iter()
            .position(|&x| x == a || x == b || x == c)
            .map(|p| i + p)
    }

    #[allow(clippy::expect_used)] // 8-byte window, checked by the loop bound
    pub(super) fn find_any5(haystack: &[u8], a: u8, b: u8, c: u8, d: u8, e: u8) -> Option<usize> {
        let (sa, sb, sc, sd, se) = (splat(a), splat(b), splat(c), splat(d), splat(e));
        let n = haystack.len();
        let mut i = 0;
        while i + 8 <= n {
            let word = u64::from_le_bytes(haystack[i..i + 8].try_into().expect("8-byte chunk"));
            let hits = zero_byte_mask(word ^ sa)
                | zero_byte_mask(word ^ sb)
                | zero_byte_mask(word ^ sc)
                | zero_byte_mask(word ^ sd)
                | zero_byte_mask(word ^ se);
            if hits != 0 {
                return Some(i + (hits.trailing_zeros() / 8) as usize);
            }
            i += 8;
        }
        haystack[i..]
            .iter()
            .position(|&x| x == a || x == b || x == c || x == d || x == e)
            .map(|p| i + p)
    }
}

// --- x86-64 kernels: SSE2 (baseline) and AVX2 (runtime-detected) ---

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)] // vector loads via raw pointers; every block carries its proof
mod x86 {
    use core::arch::x86_64::{
        __m128i, __m256i, _mm256_cmpeq_epi8, _mm256_loadu_si256, _mm256_movemask_epi8,
        _mm256_or_si256, _mm256_set1_epi8, _mm256_setzero_si256, _mm_cmpeq_epi8, _mm_loadu_si128,
        _mm_movemask_epi8, _mm_or_si128, _mm_set1_epi8, _mm_setzero_si128,
    };

    /// The shared kernel skeleton: full-width unaligned loads over the
    /// body, then one *overlapped* load covering the final `W` bytes
    /// (its low lanes re-scan bytes already proven needle-free, so the
    /// mask is shifted to discard them). `$scalar` is the fallback for
    /// haystacks shorter than one vector.
    macro_rules! simd_body {
        ($h:ident, $w:expr, $setzero:expr, $set1:expr, $loadu:expr, $cmpeq:expr, $or:expr,
         $movemask:expr, ($($n:ident),+)) => {{
            let len = $h.len();
            if len < $w {
                return $h.iter().position(|&x| false $(|| x == $n)+);
            }
            $(let $n = $set1($n as i8);)+
            let ptr = $h.as_ptr();
            let mut i = 0usize;
            while i + $w <= len {
                // SAFETY: `i + $w <= len`, so the $w-byte unaligned load
                // stays inside the haystack.
                let v = unsafe { $loadu(ptr.add(i).cast()) };
                let mut hits = $setzero();
                $(hits = $or(hits, $cmpeq(v, $n));)+
                let m = $movemask(hits) as u32;
                if m != 0 {
                    return Some(i + m.trailing_zeros() as usize);
                }
                i += $w;
            }
            if i < len {
                // Overlapped tail: load the last $w bytes. `len >= $w`
                // held above, so `j` does not underflow.
                let j = len - $w;
                // SAFETY: `j + $w == len`, so the load stays in bounds.
                let v = unsafe { $loadu(ptr.add(j).cast()) };
                let mut hits = $setzero();
                $(hits = $or(hits, $cmpeq(v, $n));)+
                // Bytes below `i` were already scanned clean; shift
                // their lanes off so indices stay first-match-correct.
                let m = ($movemask(hits) as u32) >> (i - j);
                if m != 0 {
                    return Some(i + m.trailing_zeros() as usize);
                }
            }
            None
        }};
    }

    macro_rules! sse2_body {
        ($h:ident, ($($n:ident),+)) => {
            simd_body!($h, 16, _mm_setzero_si128, _mm_set1_epi8,
                |p: *const __m128i| _mm_loadu_si128(p), _mm_cmpeq_epi8, _mm_or_si128,
                _mm_movemask_epi8, ($($n),+))
        };
    }

    macro_rules! avx2_body {
        ($h:ident, ($($n:ident),+)) => {
            simd_body!($h, 32, _mm256_setzero_si256, _mm256_set1_epi8,
                |p: *const __m256i| _mm256_loadu_si256(p), _mm256_cmpeq_epi8, _mm256_or_si256,
                _mm256_movemask_epi8, ($($n),+))
        };
    }

    // The compiler only treats vector intrinsics as safe inside a
    // function that lists the feature in `#[target_feature]`, so even
    // the always-available SSE2 kernels get the impl/wrapper split.
    // SSE2 is part of the x86-64 baseline ABI, which is what makes the
    // wrappers' unsafe calls trivially sound.

    #[target_feature(enable = "sse2")]
    unsafe fn sse2_find_byte_impl(h: &[u8], a: u8) -> Option<usize> {
        sse2_body!(h, (a))
    }

    #[target_feature(enable = "sse2")]
    unsafe fn sse2_find_any2_impl(h: &[u8], a: u8, b: u8) -> Option<usize> {
        sse2_body!(h, (a, b))
    }

    #[target_feature(enable = "sse2")]
    unsafe fn sse2_find_any3_impl(h: &[u8], a: u8, b: u8, c: u8) -> Option<usize> {
        sse2_body!(h, (a, b, c))
    }

    #[target_feature(enable = "sse2")]
    unsafe fn sse2_find_any5_impl(h: &[u8], a: u8, b: u8, c: u8, d: u8, e: u8) -> Option<usize> {
        sse2_body!(h, (a, b, c, d, e))
    }

    pub(super) fn sse2_find_byte(h: &[u8], a: u8) -> Option<usize> {
        // SAFETY: SSE2 is unconditionally available on x86-64.
        unsafe { sse2_find_byte_impl(h, a) }
    }

    pub(super) fn sse2_find_any2(h: &[u8], a: u8, b: u8) -> Option<usize> {
        // SAFETY: as `sse2_find_byte`.
        unsafe { sse2_find_any2_impl(h, a, b) }
    }

    pub(super) fn sse2_find_any3(h: &[u8], a: u8, b: u8, c: u8) -> Option<usize> {
        // SAFETY: as `sse2_find_byte`.
        unsafe { sse2_find_any3_impl(h, a, b, c) }
    }

    pub(super) fn sse2_find_any5(h: &[u8], a: u8, b: u8, c: u8, d: u8, e: u8) -> Option<usize> {
        // SAFETY: as `sse2_find_byte`.
        unsafe { sse2_find_any5_impl(h, a, b, c, d, e) }
    }

    // AVX2 kernels compile with the feature enabled and are only ever
    // installed in the dispatch table after `is_x86_feature_detected!`
    // confirms the host supports it (see `backend_id`/`detect_backend`).

    #[target_feature(enable = "avx2")]
    unsafe fn avx2_find_byte_impl(h: &[u8], a: u8) -> Option<usize> {
        avx2_body!(h, (a))
    }

    #[target_feature(enable = "avx2")]
    unsafe fn avx2_find_any2_impl(h: &[u8], a: u8, b: u8) -> Option<usize> {
        avx2_body!(h, (a, b))
    }

    #[target_feature(enable = "avx2")]
    unsafe fn avx2_find_any3_impl(h: &[u8], a: u8, b: u8, c: u8) -> Option<usize> {
        avx2_body!(h, (a, b, c))
    }

    #[target_feature(enable = "avx2")]
    unsafe fn avx2_find_any5_impl(h: &[u8], a: u8, b: u8, c: u8, d: u8, e: u8) -> Option<usize> {
        avx2_body!(h, (a, b, c, d, e))
    }

    pub(super) fn avx2_find_byte(h: &[u8], a: u8) -> Option<usize> {
        // SAFETY: reachable only through AVX2_KERNELS, which dispatch
        // installs only after runtime detection confirms AVX2.
        unsafe { avx2_find_byte_impl(h, a) }
    }

    pub(super) fn avx2_find_any2(h: &[u8], a: u8, b: u8) -> Option<usize> {
        // SAFETY: as `avx2_find_byte`.
        unsafe { avx2_find_any2_impl(h, a, b) }
    }

    pub(super) fn avx2_find_any3(h: &[u8], a: u8, b: u8, c: u8) -> Option<usize> {
        // SAFETY: as `avx2_find_byte`.
        unsafe { avx2_find_any3_impl(h, a, b, c) }
    }

    pub(super) fn avx2_find_any5(h: &[u8], a: u8, b: u8, c: u8, d: u8, e: u8) -> Option<usize> {
        // SAFETY: as `avx2_find_byte`.
        unsafe { avx2_find_any5_impl(h, a, b, c, d, e) }
    }
}

// --- aarch64 NEON kernels (baseline on aarch64, like SSE2 on x86-64) ---

#[cfg(target_arch = "aarch64")]
#[allow(unsafe_code)] // vector loads via raw pointers; every block carries its proof
mod neon {
    use core::arch::aarch64::{vceqq_u8, vdupq_n_u8, vld1q_u8, vmaxvq_u8, vorrq_u8};

    /// NEON has no movemask: the kernel tests each 16-byte block with
    /// `vmaxvq_u8` (any lane non-zero) and re-scans the hit block with
    /// the scalar loop to recover the exact index — the block is tiny
    /// and hits are rare in long runs, so the rescan is in the noise.
    macro_rules! neon_body {
        ($h:ident, ($($n:ident),+)) => {{
            let len = $h.len();
            if len < 16 {
                return $h.iter().position(|&x| false $(|| x == $n)+);
            }
            $(let $n = ($n, vdupq_n_u8($n));)+
            let ptr = $h.as_ptr();
            let mut i = 0usize;
            while i + 16 <= len {
                // SAFETY: `i + 16 <= len`, so the 16-byte load stays
                // inside the haystack.
                let v = unsafe { vld1q_u8(ptr.add(i)) };
                let mut hits = vdupq_n_u8(0);
                $(hits = vorrq_u8(hits, vceqq_u8(v, $n.1));)+
                if vmaxvq_u8(hits) != 0 {
                    return $h[i..i + 16]
                        .iter()
                        .position(|&x| false $(|| x == $n.0)+)
                        .map(|p| i + p);
                }
                i += 16;
            }
            $h[i..]
                .iter()
                .position(|&x| false $(|| x == $n.0)+)
                .map(|p| i + p)
        }};
    }

    pub(super) fn find_byte(h: &[u8], a: u8) -> Option<usize> {
        neon_body!(h, (a))
    }

    pub(super) fn find_any2(h: &[u8], a: u8, b: u8) -> Option<usize> {
        neon_body!(h, (a, b))
    }

    pub(super) fn find_any3(h: &[u8], a: u8, b: u8, c: u8) -> Option<usize> {
        neon_body!(h, (a, b, c))
    }

    pub(super) fn find_any5(h: &[u8], a: u8, b: u8, c: u8, d: u8, e: u8) -> Option<usize> {
        neon_body!(h, (a, b, c, d, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agrees_with_naive_on_crafted_inputs() {
        let cases: &[&[u8]] = &[
            b"",
            b"a",
            b"abcdefg",   // shorter than a word
            b"abcdefgh",  // exactly one word
            b"abcdefghi", // word + tail
            b",starts",
            b"ends with,",
            b"mid,dle and \n more, stuff \r here",
            b"\r\n\r\n",
            b"xxxxxxxx,yyyyyyyy", // special exactly at a word boundary
            b"xxxxxxx,yyyyyyyy",  // special one before a word boundary
            "žluťoučký,kůň".as_bytes(),
        ];
        for &hay in cases {
            assert_eq!(
                find_any3(hay, b',', b'\n', b'\r'),
                find_any3_naive(hay, b',', b'\n', b'\r'),
                "{:?}",
                String::from_utf8_lossy(hay)
            );
            assert_eq!(
                find_any2(hay, b',', b'\n'),
                hay.iter().position(|&x| x == b',' || x == b'\n'),
                "{:?}",
                String::from_utf8_lossy(hay)
            );
            assert_eq!(
                find_byte(hay, b','),
                find_byte_naive(hay, b','),
                "{:?}",
                String::from_utf8_lossy(hay)
            );
        }
    }

    #[test]
    fn agrees_with_naive_exhaustively_on_positions() {
        // A special byte planted at every position of a 100-byte buffer,
        // for every needle of every arity — catches any word-boundary,
        // vector-tail or trailing-zeros math error. 100 bytes covers
        // the probe, several AVX2 vectors and a ragged overlapped tail.
        for pos in 0..100usize {
            for needle in [b',', b'\n', b'\r'] {
                let mut hay = vec![b'x'; 100];
                hay[pos] = needle;
                assert_eq!(find_any3(&hay, b',', b'\n', b'\r'), Some(pos), "pos {pos}");
                assert_eq!(find_byte(&hay, needle), Some(pos), "pos {pos}");
            }
            for needle in [b'<', b'&'] {
                let mut hay = vec![b'x'; 100];
                hay[pos] = needle;
                assert_eq!(find_any2(&hay, b'<', b'&'), Some(pos), "pos {pos}");
            }
            for needle in [b'{', b'}', b'[', b']', b'"'] {
                let mut hay = vec![b'x'; 100];
                hay[pos] = needle;
                assert_eq!(
                    find_any5(&hay, b'{', b'}', b'[', b']', b'"'),
                    Some(pos),
                    "pos {pos}"
                );
            }
        }
    }

    #[test]
    fn every_compiled_kernel_agrees_with_naive() {
        // Direct kernel-table parity (no probe, no dispatch): plant a
        // needle at every position, at many lengths around the vector
        // widths. The process-global force_backend hook is deliberately
        // NOT used here (unit tests run concurrently in one process);
        // the forced-dispatch walk lives in tests/scan_backends.rs.
        let mut tables: Vec<&Kernels> = vec![&SWAR_KERNELS];
        #[cfg(target_arch = "x86_64")]
        {
            tables.push(&SSE2_KERNELS);
            if std::arch::is_x86_feature_detected!("avx2") {
                tables.push(&AVX2_KERNELS);
            }
        }
        #[cfg(target_arch = "aarch64")]
        tables.push(&NEON_KERNELS);
        for k in tables {
            for len in [0usize, 1, 7, 8, 15, 16, 17, 31, 32, 33, 63, 64, 65, 100] {
                for pos in 0..len {
                    let mut hay = vec![b'x'; len];
                    hay[pos] = b',';
                    assert_eq!((k.find_byte)(&hay, b','), Some(pos), "{} len {len}", k.name);
                    assert_eq!(
                        (k.find_any2)(&hay, b',', b'\n'),
                        Some(pos),
                        "{} len {len}",
                        k.name
                    );
                    assert_eq!(
                        (k.find_any3)(&hay, b',', b'\n', b'\r'),
                        Some(pos),
                        "{} len {len}",
                        k.name
                    );
                    assert_eq!(
                        (k.find_any5)(&hay, b',', b'{', b'}', b'[', b']'),
                        Some(pos),
                        "{} len {len}",
                        k.name
                    );
                }
                let clean = vec![b'x'; len];
                assert_eq!((k.find_byte)(&clean, b','), None, "{} len {len}", k.name);
                assert_eq!(
                    (k.find_any5)(&clean, b',', b'{', b'}', b'[', b']'),
                    None,
                    "{} len {len}",
                    k.name
                );
            }
            // Duplicate needles and late-vs-early ties.
            let hay = b"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa]aaaa}";
            assert_eq!(
                (k.find_any5)(hay, b'}', b']', b']', b'}', b']'),
                Some(38),
                "{}",
                k.name
            );
        }
    }

    #[test]
    fn backend_introspection_is_coherent() {
        let available = available_backends();
        assert!(available.contains(&"swar"));
        let active = backend_name();
        assert!(available.contains(&active), "{active} not in {available:?}");
        #[cfg(target_arch = "x86_64")]
        assert!(available.contains(&"sse2"));
        // Unknown backends are refused without disturbing dispatch.
        assert!(!force_backend("vliw"));
        assert_eq!(backend_name(), active);
    }

    #[test]
    fn first_of_several_specials_wins() {
        let hay = b"aaaa\raa,aaaa\naaaa";
        assert_eq!(find_any3(hay, b',', b'\n', b'\r'), Some(4));
        let hay = b"aaaaaaaaaa,a\ra";
        assert_eq!(find_any3(hay, b',', b'\n', b'\r'), Some(10));
        let hay = b"aaaaaaaaaaaaaaaaaaaaaa]aaaa}";
        assert_eq!(find_any5(hay, b'{', b'}', b'[', b']', b'"'), Some(22));
        let hay = b"aaaaaaaaaaaaaaaaaaaaaa&aaa<";
        assert_eq!(find_any2(hay, b'<', b'&'), Some(22));
    }

    #[test]
    fn high_bit_bytes_do_not_false_positive() {
        // 0x80/0xFF bytes are where naive SWAR masks — and signed
        // vector compares — go wrong.
        let hay = [0x80u8, 0xFF, 0xFE, 0x80, 0xFF, 0xFE, 0x80, 0xFF, b','];
        assert_eq!(find_any3(&hay, b',', b'\n', b'\r'), Some(8));
        assert_eq!(find_byte(&hay, b','), Some(8));
        assert_eq!(find_byte(&hay, 0xFF), Some(1));
        assert_eq!(find_any2(&hay, b',', b'\n'), Some(8));
        assert_eq!(find_any5(&hay, b',', b'{', b'}', b'[', b']'), Some(8));
        // The same past the probe, where the kernels take over.
        let mut long = vec![0xFFu8; 80];
        long[77] = b',';
        assert_eq!(find_any3(&long, b',', b'\n', b'\r'), Some(77));
        assert_eq!(find_byte(&long, 0xFF), Some(0));
    }

    #[test]
    fn find_any5_no_match_and_tails() {
        assert_eq!(find_any5(b"", b'{', b'}', b'[', b']', b'"'), None);
        let long = vec![b'x'; 100];
        assert_eq!(find_any5(&long, b'{', b'}', b'[', b']', b'"'), None);
        assert_eq!(find_any2(&long, b'<', b'&'), None);
    }
}
