//! memchr-style chunked byte scanning (SWAR) for the front-end hot loops.
//!
//! Every byte-level boundary scanner in the workspace spends its time
//! answering one question: *where is the next special byte?* — the next
//! delimiter, quote or line ending for CSV, the next `<`/`&` for XML
//! character data, the next bracket or quote for JSON containers.
//! Answering it byte-at-a-time wastes the memory bus. These helpers
//! process eight bytes per iteration with the classic SWAR zero-byte
//! trick (no intrinsics, no dependencies — the build environment has no
//! crates.io, so `memchr` itself is out of reach):
//!
//! ```text
//! zero_byte_mask(x) = (x - 0x0101…) & !x & 0x8080…
//! ```
//!
//! sets the high bit of every byte of `x` that is zero; XORing the word
//! with a splatted needle first turns "find byte `b`" into "find zero".
//! `u64::from_le_bytes` + `trailing_zeros` keep the index math
//! endian-correct everywhere.
//!
//! The module lives in `tfd-value` (the one crate every front-end
//! depends on) so the CSV, JSON and XML scanners all share one
//! implementation; `tfd_csv::scan` re-exports it for compatibility. The
//! `*_naive` twins are the byte-at-a-time loops the helpers replaced;
//! the `pipeline_baseline` benchmark runs both so the speedup stays an
//! honest, re-measurable number (see `BENCH_PR4.json`/`BENCH_PR5.json`).

const LO: u64 = 0x0101_0101_0101_0101;
const HI: u64 = 0x8080_8080_8080_8080;

#[inline]
fn splat(b: u8) -> u64 {
    u64::from(b) * LO
}

/// High bit set in every byte of `x` that is zero.
#[inline]
fn zero_byte_mask(x: u64) -> u64 {
    x.wrapping_sub(LO) & !x & HI
}

#[allow(clippy::expect_used)] // checked invariant, documented at each site
/// Index of the first occurrence of `a` or `b` in `haystack`, SWAR eight
/// bytes at a time.
///
/// ```
/// use tfd_value::scan::find_any2;
/// assert_eq!(find_any2(b"character data here <tag>", b'<', b'&'), Some(20));
/// assert_eq!(find_any2(b"no specials", b'<', b'&'), None);
/// ```
#[inline]
pub fn find_any2(haystack: &[u8], a: u8, b: u8) -> Option<usize> {
    // Short-hop fast path: most runs between specials are a few bytes
    // wide, and for those a bounded scalar probe (which LLVM vectorizes)
    // beats the word-loop setup. Only runs longer than the probe fall
    // through to SWAR.
    let probe = haystack.len().min(16);
    if let Some(p) = haystack[..probe].iter().position(|&x| x == a || x == b) {
        return Some(p);
    }
    if probe == haystack.len() {
        return None;
    }
    let (sa, sb) = (splat(a), splat(b));
    let n = haystack.len();
    let mut i = probe;
    while i + 8 <= n {
        let word = u64::from_le_bytes(haystack[i..i + 8].try_into().expect("8-byte chunk"));
        let hits = zero_byte_mask(word ^ sa) | zero_byte_mask(word ^ sb);
        if hits != 0 {
            return Some(i + (hits.trailing_zeros() / 8) as usize);
        }
        i += 8;
    }
    haystack[i..]
        .iter()
        .position(|&x| x == a || x == b)
        .map(|p| i + p)
}

#[allow(clippy::expect_used)] // checked invariant, documented at each site
/// Index of the first occurrence of `a`, `b` or `c` in `haystack`, SWAR
/// eight bytes at a time.
///
/// ```
/// use tfd_value::scan::find_any3;
/// let hay = b"abcdefgh,ijklmnop\nq";
/// assert_eq!(find_any3(hay, b',', b'\n', b'\r'), Some(8));
/// assert_eq!(find_any3(b"no specials here", b',', b'\n', b'\r'), None);
/// ```
#[inline]
pub fn find_any3(haystack: &[u8], a: u8, b: u8, c: u8) -> Option<usize> {
    // Same short-hop probe as [`find_any2`]. The crossover was measured,
    // not guessed — see the `csv_scan_swar_vs_naive` entry
    // `pipeline_baseline` writes.
    let probe = haystack.len().min(16);
    if let Some(p) = haystack[..probe]
        .iter()
        .position(|&x| x == a || x == b || x == c)
    {
        return Some(p);
    }
    if probe == haystack.len() {
        return None;
    }
    let (sa, sb, sc) = (splat(a), splat(b), splat(c));
    let n = haystack.len();
    let mut i = probe;
    while i + 8 <= n {
        let word = u64::from_le_bytes(haystack[i..i + 8].try_into().expect("8-byte chunk"));
        let hits =
            zero_byte_mask(word ^ sa) | zero_byte_mask(word ^ sb) | zero_byte_mask(word ^ sc);
        if hits != 0 {
            return Some(i + (hits.trailing_zeros() / 8) as usize);
        }
        i += 8;
    }
    haystack[i..]
        .iter()
        .position(|&x| x == a || x == b || x == c)
        .map(|p| i + p)
}

#[allow(clippy::expect_used)] // checked invariant, documented at each site
/// Index of the first occurrence of any of five needles, SWAR eight
/// bytes at a time — sized for the JSON container scanner, whose
/// specials are `{` `}` `[` `]` `"`.
///
/// ```
/// use tfd_value::scan::find_any5;
/// let hay = br#"some content then "a string""#;
/// assert_eq!(find_any5(hay, b'{', b'}', b'[', b']', b'"'), Some(18));
/// ```
#[inline]
pub fn find_any5(haystack: &[u8], a: u8, b: u8, c: u8, d: u8, e: u8) -> Option<usize> {
    let probe = haystack.len().min(16);
    if let Some(p) = haystack[..probe]
        .iter()
        .position(|&x| x == a || x == b || x == c || x == d || x == e)
    {
        return Some(p);
    }
    if probe == haystack.len() {
        return None;
    }
    let (sa, sb, sc, sd, se) = (splat(a), splat(b), splat(c), splat(d), splat(e));
    let n = haystack.len();
    let mut i = probe;
    while i + 8 <= n {
        let word = u64::from_le_bytes(haystack[i..i + 8].try_into().expect("8-byte chunk"));
        let hits = zero_byte_mask(word ^ sa)
            | zero_byte_mask(word ^ sb)
            | zero_byte_mask(word ^ sc)
            | zero_byte_mask(word ^ sd)
            | zero_byte_mask(word ^ se);
        if hits != 0 {
            return Some(i + (hits.trailing_zeros() / 8) as usize);
        }
        i += 8;
    }
    haystack[i..]
        .iter()
        .position(|&x| x == a || x == b || x == c || x == d || x == e)
        .map(|p| i + p)
}

#[allow(clippy::expect_used)] // checked invariant, documented at each site
/// Index of the first occurrence of `needle`, SWAR eight bytes at a time.
///
/// ```
/// use tfd_value::scan::find_byte;
/// assert_eq!(find_byte(b"quoted content\" tail", b'"'), Some(14));
/// assert_eq!(find_byte(b"none", b'"'), None);
/// ```
#[inline]
pub fn find_byte(haystack: &[u8], needle: u8) -> Option<usize> {
    // Same short-hop probe as [`find_any3`].
    let probe = haystack.len().min(16);
    if let Some(p) = haystack[..probe].iter().position(|&x| x == needle) {
        return Some(p);
    }
    if probe == haystack.len() {
        return None;
    }
    let s = splat(needle);
    let n = haystack.len();
    let mut i = probe;
    while i + 8 <= n {
        let word = u64::from_le_bytes(haystack[i..i + 8].try_into().expect("8-byte chunk"));
        let hits = zero_byte_mask(word ^ s);
        if hits != 0 {
            return Some(i + (hits.trailing_zeros() / 8) as usize);
        }
        i += 8;
    }
    haystack[i..]
        .iter()
        .position(|&x| x == needle)
        .map(|p| i + p)
}

/// The byte-at-a-time loop [`find_any3`] replaced — kept as the honesty
/// baseline for `pipeline_baseline`.
#[inline]
pub fn find_any3_naive(haystack: &[u8], a: u8, b: u8, c: u8) -> Option<usize> {
    haystack.iter().position(|&x| x == a || x == b || x == c)
}

/// The byte-at-a-time loop [`find_byte`] replaced — kept as the honesty
/// baseline for `pipeline_baseline`.
#[inline]
pub fn find_byte_naive(haystack: &[u8], needle: u8) -> Option<usize> {
    haystack.iter().position(|&x| x == needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agrees_with_naive_on_crafted_inputs() {
        let cases: &[&[u8]] = &[
            b"",
            b"a",
            b"abcdefg",   // shorter than a word
            b"abcdefgh",  // exactly one word
            b"abcdefghi", // word + tail
            b",starts",
            b"ends with,",
            b"mid,dle and \n more, stuff \r here",
            b"\r\n\r\n",
            b"xxxxxxxx,yyyyyyyy", // special exactly at a word boundary
            b"xxxxxxx,yyyyyyyy",  // special one before a word boundary
            "žluťoučký,kůň".as_bytes(),
        ];
        for &hay in cases {
            assert_eq!(
                find_any3(hay, b',', b'\n', b'\r'),
                find_any3_naive(hay, b',', b'\n', b'\r'),
                "{:?}",
                String::from_utf8_lossy(hay)
            );
            assert_eq!(
                find_any2(hay, b',', b'\n'),
                hay.iter().position(|&x| x == b',' || x == b'\n'),
                "{:?}",
                String::from_utf8_lossy(hay)
            );
            assert_eq!(
                find_byte(hay, b','),
                find_byte_naive(hay, b','),
                "{:?}",
                String::from_utf8_lossy(hay)
            );
        }
    }

    #[test]
    fn agrees_with_naive_exhaustively_on_positions() {
        // A special byte planted at every position of a 40-byte buffer,
        // for every needle of every arity — catches any word-boundary or
        // trailing-zeros math error.
        for pos in 0..40usize {
            for needle in [b',', b'\n', b'\r'] {
                let mut hay = vec![b'x'; 40];
                hay[pos] = needle;
                assert_eq!(find_any3(&hay, b',', b'\n', b'\r'), Some(pos), "pos {pos}");
                assert_eq!(find_byte(&hay, needle), Some(pos), "pos {pos}");
            }
            for needle in [b'<', b'&'] {
                let mut hay = vec![b'x'; 40];
                hay[pos] = needle;
                assert_eq!(find_any2(&hay, b'<', b'&'), Some(pos), "pos {pos}");
            }
            for needle in [b'{', b'}', b'[', b']', b'"'] {
                let mut hay = vec![b'x'; 40];
                hay[pos] = needle;
                assert_eq!(
                    find_any5(&hay, b'{', b'}', b'[', b']', b'"'),
                    Some(pos),
                    "pos {pos}"
                );
            }
        }
    }

    #[test]
    fn first_of_several_specials_wins() {
        let hay = b"aaaa\raa,aaaa\naaaa";
        assert_eq!(find_any3(hay, b',', b'\n', b'\r'), Some(4));
        let hay = b"aaaaaaaaaa,a\ra";
        assert_eq!(find_any3(hay, b',', b'\n', b'\r'), Some(10));
        let hay = b"aaaaaaaaaaaaaaaaaaaaaa]aaaa}";
        assert_eq!(find_any5(hay, b'{', b'}', b'[', b']', b'"'), Some(22));
        let hay = b"aaaaaaaaaaaaaaaaaaaaaa&aaa<";
        assert_eq!(find_any2(hay, b'<', b'&'), Some(22));
    }

    #[test]
    fn high_bit_bytes_do_not_false_positive() {
        // 0x80/0xFF bytes are where naive SWAR masks go wrong.
        let hay = [0x80u8, 0xFF, 0xFE, 0x80, 0xFF, 0xFE, 0x80, 0xFF, b','];
        assert_eq!(find_any3(&hay, b',', b'\n', b'\r'), Some(8));
        assert_eq!(find_byte(&hay, b','), Some(8));
        assert_eq!(find_byte(&hay, 0xFF), Some(1));
        assert_eq!(find_any2(&hay, b',', b'\n'), Some(8));
        assert_eq!(find_any5(&hay, b',', b'{', b'}', b'[', b']'), Some(8));
    }

    #[test]
    fn find_any5_no_match_and_tails() {
        assert_eq!(find_any5(b"", b'{', b'}', b'[', b']', b'"'), None);
        let long = vec![b'x'; 100];
        assert_eq!(find_any5(&long, b'{', b'}', b'[', b']', b'"'), None);
        assert_eq!(find_any2(&long, b'<', b'&'), None);
    }
}
