//! Stable, process-independent hashing for fingerprints.
//!
//! [`Name`](crate::Name) deliberately hashes by interned *pointer* (O(1),
//! but different in every process run), so anything that must be stable
//! across runs — cache keys, schema fingerprints, on-disk indices —
//! cannot go through `std::hash::Hash`. [`StableHasher`] is a 64-bit
//! FNV-1a over explicitly fed bytes: the caller serializes exactly the
//! content that defines identity (string contents, not pointers; sorted
//! orders, not table orders), so equal content always produces the same
//! digest, in any process, on any host.

/// A 64-bit FNV-1a hasher fed explicit bytes.
///
/// ```
/// use tfd_value::hash::StableHasher;
/// let mut a = StableHasher::new();
/// a.write(b"schema");
/// let mut b = StableHasher::new();
/// b.write(b"schema");
/// assert_eq!(a.finish(), b.finish());
/// ```
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl StableHasher {
    /// A fresh hasher at the FNV-1a offset basis.
    pub fn new() -> StableHasher {
        StableHasher { state: FNV_OFFSET }
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds a single byte (cheap discriminants).
    pub fn write_u8(&mut self, b: u8) {
        self.state ^= u64::from(b);
        self.state = self.state.wrapping_mul(FNV_PRIME);
    }

    /// Feeds a length/index as little-endian bytes, so `("ab","c")` and
    /// `("a","bc")` digest differently.
    pub fn write_usize(&mut self, n: usize) {
        self.write(&(n as u64).to_le_bytes());
    }

    /// Feeds a string as its length followed by its bytes (prefix-free).
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write(s.as_bytes());
    }

    /// The current digest.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for StableHasher {
    fn default() -> StableHasher {
        StableHasher::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_content_equal_digest() {
        let mut a = StableHasher::new();
        let mut b = StableHasher::new();
        a.write_str("temperature");
        b.write_str("temperature");
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn known_fnv_vector() {
        // FNV-1a("a") = 0xaf63dc4c8601ec8c — pins the algorithm so the
        // digest never silently changes across refactors.
        let mut h = StableHasher::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        // The empty input is the offset basis.
        assert_eq!(StableHasher::new().finish(), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn strings_are_prefix_free() {
        let mut a = StableHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn discriminants_separate_cases() {
        let mut a = StableHasher::new();
        a.write_u8(1);
        a.write_u8(2);
        let mut b = StableHasher::new();
        b.write_u8(2);
        b.write_u8(1);
        assert_ne!(a.finish(), b.finish());
    }
}
