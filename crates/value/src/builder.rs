//! Ergonomic constructors for [`Value`] trees.
//!
//! Tests, examples and benchmarks build many literal documents; these
//! helpers keep those call sites close to the paper's notation.

use crate::{Name, Value, BODY_NAME};

pub use crate::print::{to_compact_string, to_pretty_string};

/// Builds a named record: `rec("Point", [("x", 3.into())])`.
///
/// ```
/// use tfd_value::{rec, Value};
/// let p = rec("Point", [("x", Value::Int(3))]);
/// assert_eq!(p.record_name(), Some("Point"));
/// ```
pub fn rec<N, I, F>(name: N, fields: I) -> Value
where
    N: Into<Name>,
    I: IntoIterator<Item = (F, Value)>,
    F: Into<Name>,
{
    Value::record(name, fields)
}

/// Builds a JSON-style record — named [`BODY_NAME`] (`•`), as the paper
/// prescribes for JSON objects (§3.1).
///
/// ```
/// use tfd_value::{json_rec, Value, BODY_NAME};
/// let p = json_rec([("name", Value::from("Jan")), ("age", Value::Int(25))]);
/// assert_eq!(p.record_name(), Some(BODY_NAME));
/// ```
pub fn json_rec<I, F>(fields: I) -> Value
where
    I: IntoIterator<Item = (F, Value)>,
    F: Into<Name>,
{
    Value::record(BODY_NAME, fields)
}

/// Builds a collection: `arr([Value::Int(1), Value::Int(2)])`.
///
/// ```
/// use tfd_value::{arr, Value};
/// assert_eq!(arr([Value::Int(1)]).elements().unwrap().len(), 1);
/// ```
pub fn arr<I>(items: I) -> Value
where
    I: IntoIterator<Item = Value>,
{
    Value::List(items.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rec_builds_named_records() {
        let v = rec("R", [("a", Value::Int(1))]);
        assert_eq!(v.record_name(), Some("R"));
        assert_eq!(v.field("a"), Some(&Value::Int(1)));
    }

    #[test]
    fn json_rec_uses_body_name() {
        let v = json_rec([("a", Value::Int(1))]);
        assert_eq!(v.record_name(), Some(BODY_NAME));
    }

    #[test]
    fn arr_collects() {
        let v = arr(vec![Value::Null, Value::Bool(true)]);
        assert_eq!(v.elements().unwrap().len(), 2);
    }
}
