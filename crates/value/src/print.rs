//! Pretty-printing of [`Value`]s in the paper's mathematical notation.
//!
//! §3.4 writes values as `Point {x ↦ 3, y ↦ 4}`, `[1; 2; 3]`, `"s"`,
//! `null`, etc. The [`Display`](std::fmt::Display) impl of `Value` uses this
//! module; [`to_compact_string`] and [`to_pretty_string`] offer explicit
//! single-line and indented renderings.

use crate::{Field, Value};
use std::fmt;

/// Writes `v` in the paper's compact notation.
pub(crate) fn write_value(f: &mut fmt::Formatter<'_>, v: &Value) -> fmt::Result {
    let mut out = String::new();
    compact(&mut out, v);
    f.write_str(&out)
}

/// Renders a value on a single line in the paper's notation.
///
/// ```
/// use tfd_value::{Value, rec};
/// let v = rec("Point", [("x", Value::Int(3)), ("y", Value::Int(4))]);
/// assert_eq!(
///     tfd_value::builder::to_compact_string(&v),
///     "Point {x \u{21a6} 3, y \u{21a6} 4}"
/// );
/// ```
pub fn to_compact_string(v: &Value) -> String {
    let mut out = String::new();
    compact(&mut out, v);
    out
}

/// Renders a value with two-space indentation, one field/element per line.
pub fn to_pretty_string(v: &Value) -> String {
    let mut out = String::new();
    pretty(&mut out, v, 0);
    out
}

fn write_escaped_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats a float so that it never reads back as an integer literal
/// (`5` prints as `5.0`), keeping the int/float distinction visible.
pub(crate) fn float_repr(x: f64) -> String {
    if x.is_finite() && x.fract() == 0.0 && x.abs() < 1e15 {
        format!("{x:.1}")
    } else {
        format!("{x}")
    }
}

fn compact(out: &mut String, v: &Value) {
    match v {
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(x) => out.push_str(&float_repr(*x)),
        Value::Str(s) => write_escaped_str(out, s),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Null => out.push_str("null"),
        Value::List(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str("; ");
                }
                compact(out, item);
            }
            out.push(']');
        }
        Value::Record { name, fields } => {
            out.push_str(name);
            out.push_str(" {");
            for (i, Field { name, value }) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(name);
                out.push_str(" \u{21a6} ");
                compact(out, value);
            }
            out.push('}');
        }
    }
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn pretty(out: &mut String, v: &Value, level: usize) {
    match v {
        Value::List(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                indent(out, level + 1);
                pretty(out, item, level + 1);
                if i + 1 < items.len() {
                    out.push(';');
                }
                out.push('\n');
            }
            indent(out, level);
            out.push(']');
        }
        Value::Record { name, fields } if !fields.is_empty() => {
            out.push_str(name);
            out.push_str(" {\n");
            for (i, Field { name, value }) in fields.iter().enumerate() {
                indent(out, level + 1);
                out.push_str(name);
                out.push_str(" \u{21a6} ");
                pretty(out, value, level + 1);
                if i + 1 < fields.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            indent(out, level);
            out.push('}');
        }
        other => compact(out, other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{arr, rec};

    #[test]
    fn primitives_render() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Float(3.5).to_string(), "3.5");
        assert_eq!(Value::Bool(true).to_string(), "true");
        assert_eq!(Value::Bool(false).to_string(), "false");
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::str("hi").to_string(), "\"hi\"");
    }

    #[test]
    fn whole_floats_keep_decimal_point() {
        assert_eq!(Value::Float(5.0).to_string(), "5.0");
        assert_eq!(Value::Float(-2.0).to_string(), "-2.0");
    }

    #[test]
    fn special_floats_render() {
        assert_eq!(Value::Float(f64::NAN).to_string(), "NaN");
        assert_eq!(Value::Float(f64::INFINITY).to_string(), "inf");
    }

    #[test]
    fn strings_escape_controls_and_quotes() {
        assert_eq!(Value::str("a\"b\\c\nd").to_string(), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn lists_use_semicolons() {
        let v = arr([Value::Int(1), Value::Int(2)]);
        assert_eq!(v.to_string(), "[1; 2]");
        assert_eq!(Value::List(vec![]).to_string(), "[]");
    }

    #[test]
    fn records_use_maplets() {
        let v = rec("Point", [("x", Value::Int(3)), ("y", Value::Int(4))]);
        assert_eq!(v.to_string(), "Point {x \u{21a6} 3, y \u{21a6} 4}");
    }

    #[test]
    fn empty_record_renders_braces() {
        let v = Value::record("E", Vec::<(String, Value)>::new());
        assert_eq!(v.to_string(), "E {}");
    }

    #[test]
    fn pretty_indents_nested_structures() {
        let v = rec("root", [("xs", arr([Value::Int(1)]))]);
        let s = to_pretty_string(&v);
        assert!(s.contains("root {\n"));
        assert!(s.contains("  xs \u{21a6} [\n"));
        assert!(s.contains("    1\n"));
    }

    #[test]
    fn pretty_keeps_empty_containers_compact() {
        assert_eq!(to_pretty_string(&Value::List(vec![])), "[]");
    }
}
