//! The retained **tokenizing reference path**: the original
//! lexer+parser pipeline (a `Token` stream with owned `String` payloads,
//! consumed by recursive descent).
//!
//! The production parser ([`crate::parse`]) is a single-pass byte-level
//! parser that allocates no intermediate token values; this module keeps
//! the token-based implementation compiling and correct so that the
//! `pipeline` benchmark can measure the difference honestly (see
//! `BENCH_PR1.json`). It is not used anywhere else.

use crate::lexer::{Lexer, Pos, Token};
use crate::parser::{ParseError, ParseErrorKind, ParserOptions};
use crate::Json;

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a [`ParseError`] with line/column information when the input is
/// not valid JSON (per RFC 8259) or nests deeper than the default limit.
///
/// ```
/// let doc = tfd_json::parse("[1, 2.5, null]")?;
/// assert_eq!(doc.items().unwrap().len(), 3);
/// # Ok::<(), tfd_json::ParseError>(())
/// ```
pub fn parse(input: &str) -> Result<Json, ParseError> {
    parse_with(input, &ParserOptions::default())
}

/// Parses a complete JSON document under explicit [`ParserOptions`].
///
/// # Errors
///
/// As [`parse`], plus [`ParseErrorKind::TooDeep`] when nesting exceeds
/// `options.max_depth`.
pub fn parse_with(input: &str, options: &ParserOptions) -> Result<Json, ParseError> {
    let mut p = ParserState::new(input, options.clone())?;
    let doc = p.parse_value(0)?;
    p.expect_eof()?;
    Ok(doc)
}

/// Parses several newline- or whitespace-separated JSON documents
/// (JSON-lines style), used when a type provider is given multiple
/// samples in one file.
///
/// # Errors
///
/// Returns the first [`ParseError`] encountered.
///
/// ```
/// let docs = tfd_json::parse_many("{\"a\":1}\n{\"a\":2}")?;
/// assert_eq!(docs.len(), 2);
/// # Ok::<(), tfd_json::ParseError>(())
/// ```
pub fn parse_many(input: &str) -> Result<Vec<Json>, ParseError> {
    let options = ParserOptions::default();
    let mut p = ParserState::new(input, options)?;
    let mut docs = Vec::new();
    while p.lookahead != Token::Eof {
        docs.push(p.parse_value(0)?);
    }
    Ok(docs)
}

struct ParserState<'a> {
    lexer: Lexer<'a>,
    lookahead: Token,
    lookahead_pos: Pos,
    options: ParserOptions,
}

impl<'a> ParserState<'a> {
    fn new(input: &'a str, options: ParserOptions) -> Result<Self, ParseError> {
        let mut lexer = Lexer::new(input);
        let (lookahead, lookahead_pos) = lexer.next_token()?;
        Ok(ParserState {
            lexer,
            lookahead,
            lookahead_pos,
            options,
        })
    }

    fn advance(&mut self) -> Result<(Token, Pos), ParseError> {
        let (next, next_pos) = self.lexer.next_token()?;
        let tok = std::mem::replace(&mut self.lookahead, next);
        let pos = std::mem::replace(&mut self.lookahead_pos, next_pos);
        Ok((tok, pos))
    }

    fn unexpected<T>(&self, expected: &str) -> Result<T, ParseError> {
        Err(ParseError {
            kind: ParseErrorKind::Unexpected {
                found: self.lookahead.describe(),
                expected: expected.to_owned(),
            },
            pos: self.lookahead_pos,
        })
    }

    fn expect_eof(&mut self) -> Result<(), ParseError> {
        if self.lookahead == Token::Eof {
            Ok(())
        } else {
            Err(ParseError {
                kind: ParseErrorKind::TrailingContent(self.lookahead.describe()),
                pos: self.lookahead_pos,
            })
        }
    }

    fn check_depth(&self, depth: usize) -> Result<(), ParseError> {
        if depth >= self.options.max_depth {
            Err(ParseError {
                kind: ParseErrorKind::TooDeep(self.options.max_depth),
                pos: self.lookahead_pos,
            })
        } else {
            Ok(())
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Json, ParseError> {
        match &self.lookahead {
            Token::LBrace => self.parse_object(depth),
            Token::LBracket => self.parse_array(depth),
            Token::Str(_) => {
                let (tok, _) = self.advance()?;
                match tok {
                    Token::Str(s) => Ok(Json::String(s)),
                    _ => unreachable!("lookahead was a string"),
                }
            }
            Token::Int(i) => {
                let i = *i;
                self.advance()?;
                Ok(Json::Int(i))
            }
            Token::Float(f) => {
                let f = *f;
                self.advance()?;
                Ok(Json::Float(f))
            }
            Token::True => {
                self.advance()?;
                Ok(Json::Bool(true))
            }
            Token::False => {
                self.advance()?;
                Ok(Json::Bool(false))
            }
            Token::Null => {
                self.advance()?;
                Ok(Json::Null)
            }
            _ => self.unexpected("a JSON value"),
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.check_depth(depth)?;
        self.advance()?; // consume '{'
        let mut members = Vec::new();
        if self.lookahead == Token::RBrace {
            self.advance()?;
            return Ok(Json::Object(members));
        }
        loop {
            let key = match &self.lookahead {
                Token::Str(_) => {
                    let (tok, _) = self.advance()?;
                    match tok {
                        Token::Str(s) => tfd_value::Name::new(s),
                        _ => unreachable!("lookahead was a string"),
                    }
                }
                _ => return self.unexpected("an object key (string)"),
            };
            if self.lookahead != Token::Colon {
                return self.unexpected("':'");
            }
            self.advance()?;
            let value = self.parse_value(depth + 1)?;
            members.push((key, value));
            match self.lookahead {
                Token::Comma => {
                    self.advance()?;
                }
                Token::RBrace => {
                    self.advance()?;
                    return Ok(Json::Object(members));
                }
                _ => return self.unexpected("',' or '}'"),
            }
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.check_depth(depth)?;
        self.advance()?; // consume '['
        let mut items = Vec::new();
        if self.lookahead == Token::RBracket {
            self.advance()?;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.parse_value(depth + 1)?);
            match self.lookahead {
                Token::Comma => {
                    self.advance()?;
                }
                Token::RBracket => {
                    self.advance()?;
                    return Ok(Json::Array(items));
                }
                _ => return self.unexpected("',' or ']'"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The reference path and the byte-level parser agree, document for
    /// document — including error/success classification.
    #[test]
    fn agrees_with_byte_parser() {
        let docs = [
            r#"{"a": [1, 2.5, null, {"b": true}], "c": "x"}"#,
            r#"[ { "name":"Jan", "age":25 }, { "name":"Tomas" } ]"#,
            "[]",
            "{}",
            r#""esc \n A end""#,
            "\"čaj 😀\"",
            "-17",
            "3.25e2",
            "123456789012345678901234567890",
        ];
        for doc in docs {
            assert_eq!(parse(doc).unwrap(), crate::parse(doc).unwrap(), "on {doc}");
        }
        let bad = ["", "[1,", "{1: 2}", "01", "tru", r#""\q""#, "[1] 2"];
        for doc in bad {
            assert!(parse(doc).is_err(), "reference accepted {doc}");
            assert!(crate::parse(doc).is_err(), "byte parser accepted {doc}");
        }
    }

    /// Error positions agree on the documents the test-suite pins.
    #[test]
    fn error_positions_agree() {
        for doc in ["{\n  \"a\": @\n}", "[1, @]", "{ \"čaj\": @ }"] {
            let a = parse(doc).unwrap_err();
            let b = crate::parse(doc).unwrap_err();
            assert_eq!(
                (a.pos.line, a.pos.column),
                (b.pos.line, b.pos.column),
                "on {doc}"
            );
        }
    }
}
