//! # tfd-json — JSON front-end
//!
//! A from-scratch JSON parser and serializer for the `types-from-data`
//! workspace, mirroring the role of `JsonValue` in §2.1 of the paper:
//!
//! ```text
//! type JsonValue =
//!   | Number of float | Boolean of bool | String of string
//!   | Record of Map<string, JsonValue> | Array of JsonValue[] | Null
//! ```
//!
//! Our [`Json`] type refines `Number` into `Int`/`Float` because the shape
//! algebra distinguishes the two (§3.1: "We include two numerical
//! primitives, int for integers and float for floating-point numbers").
//!
//! The parser implements the full JSON grammar (RFC 8259): escape
//! sequences including `\uXXXX` with surrogate pairs, the complete number
//! grammar, and precise line/column error reporting. [`Json::to_value`]
//! maps documents onto the universal [`Value`], naming
//! every object record `•` exactly as the paper prescribes for JSON.
//!
//! # Example
//!
//! ```
//! let doc = tfd_json::parse(r#"{ "name": "Jan", "age": 25 }"#)?;
//! assert_eq!(doc.get("age"), Some(&tfd_json::Json::Int(25)));
//! let value = doc.to_value();
//! assert_eq!(value.record_name(), Some(tfd_value::BODY_NAME));
//! # Ok::<(), tfd_json::ParseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod lexer;
mod parser;
pub mod reference;
pub mod stream;
mod writer;

pub use lexer::Pos;
pub use parser::{
    parse, parse_many, parse_many_values, parse_many_values_in, parse_many_values_with,
    parse_value, parse_value_in, parse_value_with, parse_with, ParseError, ParseErrorKind,
    ParserOptions,
};
pub use stream::{BoundaryScanner, Streamer};
pub use writer::{to_json_string, to_json_string_pretty};

use tfd_value::{Name, Value};

/// A parsed JSON document.
///
/// Compared to the paper's `JsonValue`, numbers carry their lexical
/// category: a literal without fraction/exponent that fits `i64` parses as
/// [`Json::Int`], everything else as [`Json::Float`].
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// An integer literal, e.g. `25`.
    Int(i64),
    /// A floating-point literal, e.g. `3.5` or `1e-3`.
    Float(f64),
    /// A string literal.
    String(String),
    /// A boolean literal.
    Bool(bool),
    /// An object; key order is preserved. Keys are interned at parse
    /// time — object keys repeat across arrays of records, so a `Name`
    /// per key avoids one `String` per occurrence.
    Object(Vec<(Name, Json)>),
    /// An array.
    Array(Vec<Json>),
    /// The `null` literal.
    Null,
}

impl Json {
    /// Looks up an object member by key.
    ///
    /// ```
    /// # use tfd_json::Json;
    /// let obj = Json::Object(vec![("a".into(), Json::Int(1))]);
    /// assert_eq!(obj.get("a"), Some(&Json::Int(1)));
    /// assert_eq!(obj.get("b"), None);
    /// ```
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Returns array elements, if this is an array.
    pub fn items(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Converts the document to the universal data value of §3.4.
    ///
    /// Objects become records named [`tfd_value::BODY_NAME`] (`•`), arrays become
    /// collections, and primitives map one-to-one.
    pub fn to_value(&self) -> Value {
        match self {
            Json::Int(i) => Value::Int(*i),
            Json::Float(f) => Value::Float(*f),
            Json::String(s) => Value::Str(s.clone()),
            Json::Bool(b) => Value::Bool(*b),
            Json::Null => Value::Null,
            Json::Array(items) => Value::List(items.iter().map(Json::to_value).collect()),
            Json::Object(members) => Value::record(
                tfd_value::body_name(),
                members.iter().map(|(k, v)| (*k, v.to_value())),
            ),
        }
    }

    /// Reconstructs a JSON document from a universal value.
    ///
    /// Record names are dropped (JSON has no record names); this is the
    /// left inverse of [`Json::to_value`] for values that came from JSON.
    pub fn from_value(value: &Value) -> Json {
        match value {
            Value::Int(i) => Json::Int(*i),
            Value::Float(f) => Json::Float(*f),
            Value::Str(s) => Json::String(s.clone()),
            Value::Bool(b) => Json::Bool(*b),
            Value::Null => Json::Null,
            Value::List(items) => Json::Array(items.iter().map(Json::from_value).collect()),
            Value::Record { fields, .. } => Json::Object(
                fields
                    .iter()
                    .map(|f| (f.name, Json::from_value(&f.value)))
                    .collect(),
            ),
        }
    }
}

impl std::fmt::Display for Json {
    /// Serializes the document as compact JSON text.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&to_json_string(self))
    }
}

impl std::str::FromStr for Json {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfd_value::BODY_NAME;

    #[test]
    fn get_on_non_object_is_none() {
        assert_eq!(Json::Int(1).get("x"), None);
        assert_eq!(Json::Array(vec![]).get("x"), None);
    }

    #[test]
    fn items_on_non_array_is_none() {
        assert_eq!(Json::Null.items(), None);
    }

    #[test]
    fn to_value_names_objects_with_bullet() {
        let j = Json::Object(vec![("a".into(), Json::Int(1))]);
        let v = j.to_value();
        assert_eq!(v.record_name(), Some(BODY_NAME));
        assert_eq!(v.field("a"), Some(&Value::Int(1)));
    }

    #[test]
    fn to_value_preserves_primitives() {
        assert_eq!(Json::Int(5).to_value(), Value::Int(5));
        assert_eq!(Json::Float(5.5).to_value(), Value::Float(5.5));
        assert_eq!(Json::Bool(true).to_value(), Value::Bool(true));
        assert_eq!(Json::Null.to_value(), Value::Null);
        assert_eq!(Json::String("s".into()).to_value(), Value::str("s"));
    }

    #[test]
    fn from_value_roundtrips_json_values() {
        let j: Json = parse(r#"{"a": [1, 2.5, null, {"b": true}]}"#).unwrap();
        assert_eq!(Json::from_value(&j.to_value()), j);
    }

    #[test]
    fn from_str_trait_works() {
        let j: Json = "[1,2]".parse().unwrap();
        assert_eq!(j, Json::Array(vec![Json::Int(1), Json::Int(2)]));
    }
}
