//! Tokenizer for the JSON grammar (RFC 8259).
//!
//! The lexer tracks byte offset, line and column for every token so the
//! parser can report precise positions — important in practice because type
//! providers surface these errors at compile time.

use std::fmt;

/// A source position (0-based byte offset, 1-based line/column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    /// Byte offset into the input.
    pub offset: usize,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number (in characters).
    pub column: usize,
}

impl Pos {
    pub(crate) fn start() -> Pos {
        Pos {
            offset: 0,
            line: 1,
            column: 1,
        }
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, column {}", self.line, self.column)
    }
}

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// A string literal with escapes already decoded.
    Str(String),
    /// An integer literal that fits `i64`.
    Int(i64),
    /// Any other numeric literal.
    Float(f64),
    /// `true`
    True,
    /// `false`
    False,
    /// `null`
    Null,
    /// End of input.
    Eof,
}

impl Token {
    /// A short description for error messages.
    pub fn describe(&self) -> String {
        match self {
            Token::LBrace => "'{'".into(),
            Token::RBrace => "'}'".into(),
            Token::LBracket => "'['".into(),
            Token::RBracket => "']'".into(),
            Token::Colon => "':'".into(),
            Token::Comma => "','".into(),
            Token::Str(_) => "string".into(),
            Token::Int(_) | Token::Float(_) => "number".into(),
            Token::True | Token::False => "boolean".into(),
            Token::Null => "'null'".into(),
            Token::Eof => "end of input".into(),
        }
    }
}

/// Lexer errors (turned into `ParseError` by the parser).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LexErrorKind {
    /// A character that cannot start any token.
    UnexpectedChar(char),
    /// Input ended inside a string literal.
    UnterminatedString,
    /// An invalid escape sequence in a string literal.
    BadEscape(String),
    /// A `\uXXXX` escape that is not valid (bad hex or lone surrogate).
    BadUnicodeEscape,
    /// A control character appeared raw inside a string literal.
    ControlCharInString(char),
    /// A malformed numeric literal.
    BadNumber(String),
}

impl fmt::Display for LexErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LexErrorKind::UnexpectedChar(c) => write!(f, "unexpected character {c:?}"),
            LexErrorKind::UnterminatedString => write!(f, "unterminated string literal"),
            LexErrorKind::BadEscape(e) => write!(f, "invalid escape sequence '\\{e}'"),
            LexErrorKind::BadUnicodeEscape => write!(f, "invalid unicode escape"),
            LexErrorKind::ControlCharInString(c) => {
                write!(f, "raw control character {:?} in string literal", c)
            }
            LexErrorKind::BadNumber(s) => write!(f, "malformed number literal '{s}'"),
        }
    }
}

/// A lexical error with its position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// What went wrong.
    pub kind: LexErrorKind,
    /// Where it went wrong.
    pub pos: Pos,
}

pub(crate) struct Lexer<'a> {
    input: &'a str,
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    pos: Pos,
}

impl<'a> Lexer<'a> {
    pub(crate) fn new(input: &'a str) -> Lexer<'a> {
        Lexer {
            input,
            chars: input.char_indices().peekable(),
            pos: Pos::start(),
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().map(|&(_, c)| c)
    }

    fn bump(&mut self) -> Option<char> {
        let (i, c) = self.chars.next()?;
        self.pos.offset = i + c.len_utf8();
        if c == '\n' {
            self.pos.line += 1;
            self.pos.column = 1;
        } else {
            self.pos.column += 1;
        }
        Some(c)
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.bump();
        }
    }

    /// Produces the next token (with its starting position).
    pub(crate) fn next_token(&mut self) -> Result<(Token, Pos), LexError> {
        self.skip_whitespace();
        let start = self.pos;
        let Some(c) = self.peek() else {
            return Ok((Token::Eof, start));
        };
        match c {
            '{' => {
                self.bump();
                Ok((Token::LBrace, start))
            }
            '}' => {
                self.bump();
                Ok((Token::RBrace, start))
            }
            '[' => {
                self.bump();
                Ok((Token::LBracket, start))
            }
            ']' => {
                self.bump();
                Ok((Token::RBracket, start))
            }
            ':' => {
                self.bump();
                Ok((Token::Colon, start))
            }
            ',' => {
                self.bump();
                Ok((Token::Comma, start))
            }
            '"' => self.lex_string(start),
            c if c == '-' || c.is_ascii_digit() => self.lex_number(start),
            c if c.is_ascii_alphabetic() => self.lex_keyword(start),
            c => Err(LexError {
                kind: LexErrorKind::UnexpectedChar(c),
                pos: start,
            }),
        }
    }

    fn lex_keyword(&mut self, start: Pos) -> Result<(Token, Pos), LexError> {
        let mut word = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphabetic() {
                word.push(c);
                self.bump();
            } else {
                break;
            }
        }
        match word.as_str() {
            "true" => Ok((Token::True, start)),
            "false" => Ok((Token::False, start)),
            "null" => Ok((Token::Null, start)),
            _ => Err(LexError {
                kind: LexErrorKind::UnexpectedChar(word.chars().next().unwrap_or('?')),
                pos: start,
            }),
        }
    }

    fn lex_hex4(&mut self, start: Pos) -> Result<u16, LexError> {
        let mut v: u16 = 0;
        for _ in 0..4 {
            let c = self.bump().ok_or(LexError {
                kind: LexErrorKind::BadUnicodeEscape,
                pos: start,
            })?;
            let d = c.to_digit(16).ok_or(LexError {
                kind: LexErrorKind::BadUnicodeEscape,
                pos: start,
            })?;
            v = (v << 4) | d as u16;
        }
        Ok(v)
    }

    fn lex_string(&mut self, start: Pos) -> Result<(Token, Pos), LexError> {
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            let Some(c) = self.bump() else {
                return Err(LexError {
                    kind: LexErrorKind::UnterminatedString,
                    pos: start,
                });
            };
            match c {
                '"' => return Ok((Token::Str(out), start)),
                '\\' => {
                    let esc_pos = self.pos;
                    let Some(e) = self.bump() else {
                        return Err(LexError {
                            kind: LexErrorKind::UnterminatedString,
                            pos: start,
                        });
                    };
                    match e {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'b' => out.push('\u{0008}'),
                        'f' => out.push('\u{000C}'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'u' => {
                            let hi = self.lex_hex4(esc_pos)?;
                            if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: must be followed by \uXXXX low surrogate.
                                if self.bump() != Some('\\') || self.bump() != Some('u') {
                                    return Err(LexError {
                                        kind: LexErrorKind::BadUnicodeEscape,
                                        pos: esc_pos,
                                    });
                                }
                                let lo = self.lex_hex4(esc_pos)?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(LexError {
                                        kind: LexErrorKind::BadUnicodeEscape,
                                        pos: esc_pos,
                                    });
                                }
                                let cp = 0x10000
                                    + ((u32::from(hi) - 0xD800) << 10)
                                    + (u32::from(lo) - 0xDC00);
                                out.push(char::from_u32(cp).ok_or(LexError {
                                    kind: LexErrorKind::BadUnicodeEscape,
                                    pos: esc_pos,
                                })?);
                            } else if (0xDC00..0xE000).contains(&hi) {
                                // Lone low surrogate.
                                return Err(LexError {
                                    kind: LexErrorKind::BadUnicodeEscape,
                                    pos: esc_pos,
                                });
                            } else {
                                out.push(char::from_u32(u32::from(hi)).ok_or(LexError {
                                    kind: LexErrorKind::BadUnicodeEscape,
                                    pos: esc_pos,
                                })?);
                            }
                        }
                        other => {
                            return Err(LexError {
                                kind: LexErrorKind::BadEscape(other.to_string()),
                                pos: esc_pos,
                            })
                        }
                    }
                }
                c if (c as u32) < 0x20 => {
                    return Err(LexError {
                        kind: LexErrorKind::ControlCharInString(c),
                        pos: start,
                    })
                }
                c => out.push(c),
            }
        }
    }

    fn lex_number(&mut self, start: Pos) -> Result<(Token, Pos), LexError> {
        let begin = start.offset;
        let mut is_float = false;

        if self.peek() == Some('-') {
            self.bump();
        }
        // Integer part: either a single 0 or a nonzero digit followed by digits.
        match self.peek() {
            Some('0') => {
                self.bump();
                // Leading zeros are not allowed: `01` is malformed.
                if matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    let text = self.number_text(begin);
                    return Err(LexError {
                        kind: LexErrorKind::BadNumber(text),
                        pos: start,
                    });
                }
            }
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.bump();
                }
            }
            _ => {
                let text = self.number_text(begin);
                return Err(LexError {
                    kind: LexErrorKind::BadNumber(text),
                    pos: start,
                });
            }
        }
        // Fraction.
        if self.peek() == Some('.') {
            is_float = true;
            self.bump();
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                let text = self.number_text(begin);
                return Err(LexError {
                    kind: LexErrorKind::BadNumber(text),
                    pos: start,
                });
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
        }
        // Exponent.
        if matches!(self.peek(), Some('e' | 'E')) {
            is_float = true;
            self.bump();
            if matches!(self.peek(), Some('+' | '-')) {
                self.bump();
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                let text = self.number_text(begin);
                return Err(LexError {
                    kind: LexErrorKind::BadNumber(text),
                    pos: start,
                });
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
        }

        let text = self.number_text(begin);
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok((Token::Int(i), start));
            }
            // Out-of-range integers degrade to floats (JSON allows
            // arbitrary precision; we keep the value approximately).
        }
        let f: f64 = text.parse().map_err(|_| LexError {
            kind: LexErrorKind::BadNumber(text.clone()),
            pos: start,
        })?;
        Ok((Token::Float(f), start))
    }

    fn number_text(&mut self, begin: usize) -> String {
        let end = self
            .chars
            .peek()
            .map(|&(i, _)| i)
            .unwrap_or(self.input.len());
        self.input[begin..end].to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex_all(s: &str) -> Result<Vec<Token>, LexError> {
        let mut lx = Lexer::new(s);
        let mut out = Vec::new();
        loop {
            let (t, _) = lx.next_token()?;
            let done = t == Token::Eof;
            out.push(t);
            if done {
                return Ok(out);
            }
        }
    }

    #[test]
    fn punctuation_tokens() {
        assert_eq!(
            lex_all("{}[],:").unwrap(),
            vec![
                Token::LBrace,
                Token::RBrace,
                Token::LBracket,
                Token::RBracket,
                Token::Comma,
                Token::Colon,
                Token::Eof
            ]
        );
    }

    #[test]
    fn keywords() {
        assert_eq!(
            lex_all("true false null").unwrap(),
            vec![Token::True, Token::False, Token::Null, Token::Eof]
        );
    }

    #[test]
    fn bad_keyword_rejected() {
        assert!(lex_all("nul").is_err());
        assert!(lex_all("True").is_err());
    }

    #[test]
    fn integers_and_floats() {
        assert_eq!(lex_all("42").unwrap()[0], Token::Int(42));
        assert_eq!(lex_all("-7").unwrap()[0], Token::Int(-7));
        assert_eq!(lex_all("0").unwrap()[0], Token::Int(0));
        assert_eq!(lex_all("3.5").unwrap()[0], Token::Float(3.5));
        assert_eq!(lex_all("1e3").unwrap()[0], Token::Float(1000.0));
        assert_eq!(lex_all("1E+2").unwrap()[0], Token::Float(100.0));
        assert_eq!(lex_all("-2.5e-1").unwrap()[0], Token::Float(-0.25));
    }

    #[test]
    fn huge_integer_degrades_to_float() {
        match lex_all("123456789012345678901234567890").unwrap()[0] {
            Token::Float(f) => assert!(f > 1e29),
            ref t => panic!("expected float, got {t:?}"),
        }
    }

    #[test]
    fn leading_zero_rejected() {
        assert!(matches!(
            lex_all("01").unwrap_err().kind,
            LexErrorKind::BadNumber(_)
        ));
    }

    #[test]
    fn bare_minus_rejected() {
        assert!(matches!(
            lex_all("-").unwrap_err().kind,
            LexErrorKind::BadNumber(_)
        ));
    }

    #[test]
    fn dangling_fraction_rejected() {
        assert!(lex_all("1.").is_err());
        assert!(lex_all("1.e3").is_err());
    }

    #[test]
    fn dangling_exponent_rejected() {
        assert!(lex_all("1e").is_err());
        assert!(lex_all("1e+").is_err());
    }

    #[test]
    fn simple_strings() {
        assert_eq!(lex_all(r#""hi""#).unwrap()[0], Token::Str("hi".into()));
        assert_eq!(lex_all(r#""""#).unwrap()[0], Token::Str(String::new()));
    }

    #[test]
    fn escape_sequences() {
        assert_eq!(
            lex_all(r#""a\"b\\c\/d\be\ff\ng\rh\ti""#).unwrap()[0],
            Token::Str("a\"b\\c/d\u{8}e\u{c}f\ng\rh\ti".into())
        );
    }

    #[test]
    fn unicode_escape_bmp() {
        assert_eq!(lex_all("\"\\u0041\"").unwrap()[0], Token::Str("A".into()));
        assert_eq!(
            lex_all("\"\\u00e9\"").unwrap()[0],
            Token::Str("\u{e9}".into())
        );
    }

    #[test]
    fn unicode_escape_surrogate_pair() {
        // U+1F600 GRINNING FACE, encoded as a surrogate pair.
        assert_eq!(
            lex_all("\"\\uD83D\\uDE00\"").unwrap()[0],
            Token::Str("\u{1F600}".into())
        );
    }

    #[test]
    fn raw_non_ascii_passes_through() {
        assert_eq!(
            lex_all("\"čaj 😀\"").unwrap()[0],
            Token::Str("čaj 😀".into())
        );
    }

    #[test]
    fn lone_surrogates_rejected() {
        assert!(lex_all(r#""\uD83D""#).is_err());
        assert!(lex_all(r#""\uDE00""#).is_err());
        assert!(lex_all(r#""\uD83Dx""#).is_err());
    }

    #[test]
    fn bad_hex_rejected() {
        assert!(lex_all(r#""\u00g1""#).is_err());
        assert!(lex_all(r#""\u12""#).is_err());
    }

    #[test]
    fn unterminated_string() {
        assert!(matches!(
            lex_all(r#""abc"#).unwrap_err().kind,
            LexErrorKind::UnterminatedString
        ));
    }

    #[test]
    fn raw_control_char_rejected() {
        assert!(matches!(
            lex_all("\"a\nb\"").unwrap_err().kind,
            LexErrorKind::ControlCharInString('\n')
        ));
    }

    #[test]
    fn bad_escape_rejected() {
        assert!(matches!(
            lex_all(r#""\q""#).unwrap_err().kind,
            LexErrorKind::BadEscape(_)
        ));
    }

    #[test]
    fn positions_track_lines_and_columns() {
        let mut lx = Lexer::new("{\n  \"a\": 1\n}");
        let (_, p1) = lx.next_token().unwrap(); // {
        assert_eq!((p1.line, p1.column), (1, 1));
        let (_, p2) = lx.next_token().unwrap(); // "a"
        assert_eq!((p2.line, p2.column), (2, 3));
        let (_, p3) = lx.next_token().unwrap(); // :
        assert_eq!((p3.line, p3.column), (2, 6));
        let (_, p4) = lx.next_token().unwrap(); // 1
        assert_eq!((p4.line, p4.column), (2, 8));
        let (_, p5) = lx.next_token().unwrap(); // }
        assert_eq!((p5.line, p5.column), (3, 1));
    }

    #[test]
    fn columns_count_characters_not_bytes() {
        // "čaj" is 3 characters / 4 bytes and "😀" is 1 character /
        // 4 bytes: columns must advance per character so error positions
        // match what an editor shows for UTF-8 input.
        let mut lx = Lexer::new("\"čaj\" 😀");
        let (tok, p1) = lx.next_token().unwrap();
        assert_eq!(tok, Token::Str("čaj".into()));
        assert_eq!((p1.line, p1.column), (1, 1));
        let err = lx.next_token().unwrap_err();
        assert_eq!(err.pos.column, 7, "column after a 5-char token + space");
        // Byte offsets still measure bytes (for slicing):
        assert_eq!(err.pos.offset, 7);
    }

    #[test]
    fn unexpected_character() {
        assert!(matches!(
            lex_all("@").unwrap_err().kind,
            LexErrorKind::UnexpectedChar('@')
        ));
    }
}
