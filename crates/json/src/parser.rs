//! Recursive-descent JSON parser with precise error positions.

use crate::lexer::{LexError, Lexer, Pos, Token};
use crate::Json;
use std::fmt;

/// What went wrong while parsing.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseErrorKind {
    /// A lexical error (bad literal, bad escape, stray character).
    Lex(crate::lexer::LexErrorKind),
    /// A grammatical error: found a token where another was required.
    Unexpected {
        /// Description of the offending token.
        found: String,
        /// What the parser was looking for.
        expected: String,
    },
    /// Extra content after the end of the top-level document.
    TrailingContent(String),
    /// Document nesting exceeded [`ParserOptions::max_depth`].
    TooDeep(usize),
}

impl fmt::Display for ParseErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseErrorKind::Lex(e) => write!(f, "{e}"),
            ParseErrorKind::Unexpected { found, expected } => {
                write!(f, "expected {expected}, found {found}")
            }
            ParseErrorKind::TrailingContent(tok) => {
                write!(f, "unexpected {tok} after end of document")
            }
            ParseErrorKind::TooDeep(limit) => {
                write!(f, "document nesting exceeds limit of {limit}")
            }
        }
    }
}

/// A parse error with position information.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// What went wrong.
    pub kind: ParseErrorKind,
    /// Source position of the error.
    pub pos: Pos,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.kind, self.pos)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError { kind: ParseErrorKind::Lex(e.kind), pos: e.pos }
    }
}

/// Parser configuration.
#[derive(Debug, Clone)]
pub struct ParserOptions {
    /// Maximum container nesting depth (guards against stack exhaustion on
    /// adversarial inputs). Default: 128.
    pub max_depth: usize,
}

impl Default for ParserOptions {
    fn default() -> Self {
        ParserOptions { max_depth: 128 }
    }
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a [`ParseError`] with line/column information when the input is
/// not valid JSON (per RFC 8259) or nests deeper than the default limit.
///
/// ```
/// let doc = tfd_json::parse("[1, 2.5, null]")?;
/// assert_eq!(doc.items().unwrap().len(), 3);
/// # Ok::<(), tfd_json::ParseError>(())
/// ```
pub fn parse(input: &str) -> Result<Json, ParseError> {
    parse_with(input, &ParserOptions::default())
}

/// Parses a complete JSON document under explicit [`ParserOptions`].
///
/// # Errors
///
/// As [`parse`], plus [`ParseErrorKind::TooDeep`] when nesting exceeds
/// `options.max_depth`.
pub fn parse_with(input: &str, options: &ParserOptions) -> Result<Json, ParseError> {
    let mut p = ParserState::new(input, options.clone())?;
    let doc = p.parse_value(0)?;
    p.expect_eof()?;
    Ok(doc)
}

/// Parses several newline- or whitespace-separated JSON documents
/// (JSON-lines style), used when a type provider is given multiple
/// samples in one file.
///
/// # Errors
///
/// Returns the first [`ParseError`] encountered.
///
/// ```
/// let docs = tfd_json::parse_many("{\"a\":1}\n{\"a\":2}")?;
/// assert_eq!(docs.len(), 2);
/// # Ok::<(), tfd_json::ParseError>(())
/// ```
pub fn parse_many(input: &str) -> Result<Vec<Json>, ParseError> {
    let options = ParserOptions::default();
    let mut p = ParserState::new(input, options)?;
    let mut docs = Vec::new();
    while p.lookahead != Token::Eof {
        docs.push(p.parse_value(0)?);
    }
    Ok(docs)
}

struct ParserState<'a> {
    lexer: Lexer<'a>,
    lookahead: Token,
    lookahead_pos: Pos,
    options: ParserOptions,
}

impl<'a> ParserState<'a> {
    fn new(input: &'a str, options: ParserOptions) -> Result<Self, ParseError> {
        let mut lexer = Lexer::new(input);
        let (lookahead, lookahead_pos) = lexer.next_token()?;
        Ok(ParserState { lexer, lookahead, lookahead_pos, options })
    }

    fn advance(&mut self) -> Result<(Token, Pos), ParseError> {
        let (next, next_pos) = self.lexer.next_token()?;
        let tok = std::mem::replace(&mut self.lookahead, next);
        let pos = std::mem::replace(&mut self.lookahead_pos, next_pos);
        Ok((tok, pos))
    }

    fn unexpected<T>(&self, expected: &str) -> Result<T, ParseError> {
        Err(ParseError {
            kind: ParseErrorKind::Unexpected {
                found: self.lookahead.describe(),
                expected: expected.to_owned(),
            },
            pos: self.lookahead_pos,
        })
    }

    fn expect_eof(&mut self) -> Result<(), ParseError> {
        if self.lookahead == Token::Eof {
            Ok(())
        } else {
            Err(ParseError {
                kind: ParseErrorKind::TrailingContent(self.lookahead.describe()),
                pos: self.lookahead_pos,
            })
        }
    }

    fn check_depth(&self, depth: usize) -> Result<(), ParseError> {
        if depth >= self.options.max_depth {
            Err(ParseError {
                kind: ParseErrorKind::TooDeep(self.options.max_depth),
                pos: self.lookahead_pos,
            })
        } else {
            Ok(())
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Json, ParseError> {
        match &self.lookahead {
            Token::LBrace => self.parse_object(depth),
            Token::LBracket => self.parse_array(depth),
            Token::Str(_) => {
                let (tok, _) = self.advance()?;
                match tok {
                    Token::Str(s) => Ok(Json::String(s)),
                    _ => unreachable!("lookahead was a string"),
                }
            }
            Token::Int(i) => {
                let i = *i;
                self.advance()?;
                Ok(Json::Int(i))
            }
            Token::Float(f) => {
                let f = *f;
                self.advance()?;
                Ok(Json::Float(f))
            }
            Token::True => {
                self.advance()?;
                Ok(Json::Bool(true))
            }
            Token::False => {
                self.advance()?;
                Ok(Json::Bool(false))
            }
            Token::Null => {
                self.advance()?;
                Ok(Json::Null)
            }
            _ => self.unexpected("a JSON value"),
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.check_depth(depth)?;
        self.advance()?; // consume '{'
        let mut members = Vec::new();
        if self.lookahead == Token::RBrace {
            self.advance()?;
            return Ok(Json::Object(members));
        }
        loop {
            let key = match &self.lookahead {
                Token::Str(_) => {
                    let (tok, _) = self.advance()?;
                    match tok {
                        Token::Str(s) => s,
                        _ => unreachable!("lookahead was a string"),
                    }
                }
                _ => return self.unexpected("an object key (string)"),
            };
            if self.lookahead != Token::Colon {
                return self.unexpected("':'");
            }
            self.advance()?;
            let value = self.parse_value(depth + 1)?;
            members.push((key, value));
            match self.lookahead {
                Token::Comma => {
                    self.advance()?;
                }
                Token::RBrace => {
                    self.advance()?;
                    return Ok(Json::Object(members));
                }
                _ => return self.unexpected("',' or '}'"),
            }
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.check_depth(depth)?;
        self.advance()?; // consume '['
        let mut items = Vec::new();
        if self.lookahead == Token::RBracket {
            self.advance()?;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.parse_value(depth + 1)?);
            match self.lookahead {
                Token::Comma => {
                    self.advance()?;
                }
                Token::RBracket => {
                    self.advance()?;
                    return Ok(Json::Array(items));
                }
                _ => return self.unexpected("',' or ']'"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_primitives() {
        assert_eq!(parse("42").unwrap(), Json::Int(42));
        assert_eq!(parse("3.5").unwrap(), Json::Float(3.5));
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(r#""hi""#).unwrap(), Json::String("hi".into()));
    }

    #[test]
    fn parses_empty_containers() {
        assert_eq!(parse("{}").unwrap(), Json::Object(vec![]));
        assert_eq!(parse("[]").unwrap(), Json::Array(vec![]));
    }

    #[test]
    fn parses_nested_document() {
        let doc = parse(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(
            doc,
            Json::Object(vec![
                (
                    "a".into(),
                    Json::Array(vec![
                        Json::Int(1),
                        Json::Object(vec![("b".into(), Json::Null)])
                    ])
                ),
                ("c".into(), Json::String("x".into())),
            ])
        );
    }

    #[test]
    fn preserves_key_order_and_duplicates() {
        let doc = parse(r#"{"b":1,"a":2,"b":3}"#).unwrap();
        match doc {
            Json::Object(m) => {
                assert_eq!(m.len(), 3);
                assert_eq!(m[0].0, "b");
                assert_eq!(m[2], ("b".into(), Json::Int(3)));
            }
            _ => panic!("expected object"),
        }
    }

    #[test]
    fn whitespace_everywhere() {
        let doc = parse(" \t\n{ \"a\" :\r\n [ 1 , 2 ] } \n").unwrap();
        assert_eq!(
            doc,
            Json::Object(vec![(
                "a".into(),
                Json::Array(vec![Json::Int(1), Json::Int(2)])
            )])
        );
    }

    #[test]
    fn rejects_trailing_content() {
        let err = parse("1 2").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::TrailingContent(_)));
    }

    #[test]
    fn rejects_trailing_comma_in_array() {
        assert!(parse("[1,]").is_err());
    }

    #[test]
    fn rejects_trailing_comma_in_object() {
        assert!(parse(r#"{"a":1,}"#).is_err());
    }

    #[test]
    fn rejects_missing_colon() {
        let err = parse(r#"{"a" 1}"#).unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::Unexpected { .. }));
    }

    #[test]
    fn rejects_nonstring_keys() {
        assert!(parse("{1: 2}").is_err());
    }

    #[test]
    fn rejects_bare_comma() {
        assert!(parse(",").is_err());
        assert!(parse("[,]").is_err());
    }

    #[test]
    fn rejects_unclosed_containers() {
        assert!(parse("[1, 2").is_err());
        assert!(parse(r#"{"a": 1"#).is_err());
    }

    #[test]
    fn error_position_is_precise() {
        let err = parse("{\n  \"a\": @\n}").unwrap_err();
        assert_eq!(err.pos.line, 2);
        assert_eq!(err.pos.column, 8);
    }

    #[test]
    fn depth_limit_enforced() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        let err = parse(&deep).unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::TooDeep(128)));
        // And a custom limit: max_depth counts nested containers, so four
        // nested arrays are allowed and five are not.
        let opts = ParserOptions { max_depth: 4 };
        assert!(parse_with("[[[[[1]]]]]", &opts).is_err());
        assert!(parse_with("[[[[1]]]]", &opts).is_ok());
    }

    #[test]
    fn parse_many_reads_json_lines() {
        let docs = parse_many("{\"a\":1}\n[2]\n\"x\"").unwrap();
        assert_eq!(docs.len(), 3);
        assert_eq!(docs[1], Json::Array(vec![Json::Int(2)]));
    }

    #[test]
    fn parse_many_empty_input() {
        assert_eq!(parse_many("  \n ").unwrap(), vec![]);
    }

    #[test]
    fn parse_many_propagates_errors() {
        assert!(parse_many("{\"a\":1}\n[2,]").is_err());
    }

    #[test]
    fn error_display_mentions_position() {
        let err = parse("[1, @]").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 1"), "got: {msg}");
    }

    #[test]
    fn paper_people_sample_parses() {
        // The §2.1 sample document.
        let doc = parse(
            r#"[ { "name":"Jan", "age":25 },
                { "name":"Tomas" },
                { "name":"Alexander", "age":3.5 } ]"#,
        )
        .unwrap();
        let items = doc.items().unwrap();
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].get("age"), Some(&Json::Int(25)));
        assert_eq!(items[1].get("age"), None);
        assert_eq!(items[2].get("age"), Some(&Json::Float(3.5)));
    }

    #[test]
    fn paper_worldbank_sample_parses() {
        // The §2.3 sample document.
        let doc = parse(
            r#"[ { "pages": 5 },
                [ { "indicator": "GC.DOD.TOTL.GD.ZS",
                    "date": "2012", "value": null },
                  { "indicator": "GC.DOD.TOTL.GD.ZS",
                    "date": "2010", "value": "35.14229" } ] ]"#,
        )
        .unwrap();
        let items = doc.items().unwrap();
        assert_eq!(items.len(), 2);
        assert!(matches!(items[0], Json::Object(_)));
        assert!(matches!(items[1], Json::Array(_)));
    }
}
