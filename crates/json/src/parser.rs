//! Single-pass, byte-level JSON parsing with precise error positions.
//!
//! This is the hot path of the whole pipeline: a type provider parses
//! every sample document through here before inference runs. The parser
//! therefore works directly on the input bytes with **no intermediate
//! token values**:
//!
//! * escape-free string literals are returned as *borrowed* slices of the
//!   input (`Cow::Borrowed`) — the overwhelmingly common case for both
//!   keys and values — and only strings containing escapes allocate;
//! * object keys are interned into [`Name`] symbols straight from the
//!   borrowed slice, so a million-row array of records allocates its key
//!   strings once, not a million times;
//! * numbers parse straight from the input span (shared int/float fast
//!   path), with no per-token `String`;
//! * line/column positions are not tracked per character: the parser
//!   keeps only the current line number and the byte offset of its start,
//!   and an error **computes** its column by counting characters (not
//!   bytes — multi-byte UTF-8 input reports the same columns an editor
//!   shows) only when the error is actually raised.
//!
//! The previous lexer+parser pipeline is retained unchanged as
//! [`crate::reference`] so benchmarks can quantify the difference.

use crate::lexer::{LexErrorKind, Pos};
use crate::Json;
use std::borrow::Cow;
use std::fmt;
use tfd_value::{body_name, Field, Interner, Name, Value};

/// What went wrong while parsing.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseErrorKind {
    /// A lexical error (bad literal, bad escape, stray character).
    Lex(LexErrorKind),
    /// A grammatical error: found a token where another was required.
    Unexpected {
        /// Description of the offending token.
        found: String,
        /// What the parser was looking for.
        expected: String,
    },
    /// Extra content after the end of the top-level document.
    TrailingContent(String),
    /// Document nesting exceeded [`ParserOptions::max_depth`].
    TooDeep(usize),
    /// The byte stream is not valid UTF-8. Only the chunk-fed
    /// [`Streamer`](crate::stream::Streamer) reports this: the one-shot
    /// entry points take `&str` and cannot observe it.
    InvalidUtf8,
    /// A single record exceeded the streamer's byte cap; the payload is
    /// the configured limit. Only the chunk-fed
    /// [`Streamer`](crate::stream::Streamer) and the engine's recovery
    /// drivers report this — the one-shot entry points already hold the
    /// whole input. The position is the record's start.
    RecordTooLarge(usize),
}

impl fmt::Display for ParseErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseErrorKind::Lex(e) => write!(f, "{e}"),
            ParseErrorKind::Unexpected { found, expected } => {
                write!(f, "expected {expected}, found {found}")
            }
            ParseErrorKind::TrailingContent(tok) => {
                write!(f, "unexpected {tok} after end of document")
            }
            ParseErrorKind::TooDeep(limit) => {
                write!(f, "document nesting exceeds limit of {limit}")
            }
            ParseErrorKind::InvalidUtf8 => write!(f, "input is not valid UTF-8"),
            ParseErrorKind::RecordTooLarge(limit) => {
                write!(f, "record exceeds size limit of {limit} bytes")
            }
        }
    }
}

/// A parse error with position information.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// What went wrong.
    pub kind: ParseErrorKind,
    /// Source position of the error.
    pub pos: Pos,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.kind, self.pos)
    }
}

impl std::error::Error for ParseError {}

impl From<crate::lexer::LexError> for ParseError {
    fn from(e: crate::lexer::LexError) -> Self {
        ParseError {
            kind: ParseErrorKind::Lex(e.kind),
            pos: e.pos,
        }
    }
}

/// Parser configuration.
#[derive(Debug, Clone)]
pub struct ParserOptions {
    /// Maximum container nesting depth (guards against stack exhaustion on
    /// adversarial inputs). Default: 128.
    pub max_depth: usize,
}

impl Default for ParserOptions {
    fn default() -> Self {
        ParserOptions { max_depth: 128 }
    }
}

/// Parses a complete JSON document.
///
/// Object keys are interned into the process-default [`Name`] arena,
/// which lives for the process lifetime. That is the right trade for
/// one-shot runs over schema-shaped data — keys repeat across rows —
/// but a long-running process parsing corpora whose keys are themselves
/// *data* (objects used as maps with unbounded key vocabularies) should
/// use the `_in` entry points ([`parse_value_in`],
/// [`parse_many_values_in`]) with a scoped
/// [`Interner`](tfd_value::Interner) that is dropped — reclaiming the
/// vocabulary — when the corpus is done.
///
/// # Errors
///
/// Returns a [`ParseError`] with line/column information when the input is
/// not valid JSON (per RFC 8259) or nests deeper than the default limit.
///
/// ```
/// let doc = tfd_json::parse("[1, 2.5, null]")?;
/// assert_eq!(doc.items().unwrap().len(), 3);
/// # Ok::<(), tfd_json::ParseError>(())
/// ```
pub fn parse(input: &str) -> Result<Json, ParseError> {
    parse_with(input, &ParserOptions::default())
}

/// Parses a complete JSON document under explicit [`ParserOptions`].
///
/// # Errors
///
/// As [`parse`], plus [`ParseErrorKind::TooDeep`] when nesting exceeds
/// `options.max_depth`.
pub fn parse_with(input: &str, options: &ParserOptions) -> Result<Json, ParseError> {
    let mut p = Parser::new(input, options.max_depth, Interner::global());
    p.skip_ws();
    let doc = p.parse_value(&mut JsonSink, 0)?;
    p.expect_eof()?;
    Ok(doc)
}

/// Parses a document straight into the universal data [`Value`] of §3.4,
/// skipping the [`Json`] intermediate entirely: objects become `•`-named
/// records with interned field names, arrays become collections.
///
/// This is the parse→infer hot path — one pass over the bytes, one
/// allocation per container or escaped/owned string, zero per name.
///
/// ```
/// let v = tfd_json::parse_value(r#"{ "a": 1 }"#)?;
/// assert_eq!(v.record_name(), Some(tfd_value::BODY_NAME));
/// assert_eq!(v.field("a"), Some(&tfd_value::Value::Int(1)));
/// # Ok::<(), tfd_json::ParseError>(())
/// ```
pub fn parse_value(input: &str) -> Result<Value, ParseError> {
    parse_value_with(input, &ParserOptions::default())
}

/// [`parse_value`] under explicit [`ParserOptions`].
///
/// # Errors
///
/// As [`parse_value`], plus [`ParseErrorKind::TooDeep`] when nesting
/// exceeds `options.max_depth`.
pub fn parse_value_with(input: &str, options: &ParserOptions) -> Result<Value, ParseError> {
    parse_value_in(input, options, Interner::global())
}

/// [`parse_value_with`] interning object keys into a caller-supplied
/// arena — the corpus-scoped hot path. Names in the returned value
/// borrow from `interner`'s storage; [`Value::reintern`] whatever must
/// outlive it.
///
/// # Errors
///
/// As [`parse_value_with`].
///
/// ```
/// let corpus = tfd_value::Interner::new();
/// let v = tfd_json::parse_value_in(r#"{ "a": 1 }"#, &Default::default(), &corpus)?;
/// assert_eq!(v.field("a"), Some(&tfd_value::Value::Int(1)));
/// # Ok::<(), tfd_json::ParseError>(())
/// ```
pub fn parse_value_in(
    input: &str,
    options: &ParserOptions,
    interner: &Interner,
) -> Result<Value, ParseError> {
    let mut p = Parser::new(input, options.max_depth, interner);
    p.skip_ws();
    let doc = p.parse_value(&mut ValueSink { body: body_name() }, 0)?;
    p.expect_eof()?;
    Ok(doc)
}

/// Parses several whitespace-separated JSON documents (JSON-lines style),
/// used when a type provider is given multiple samples in one file.
///
/// # Errors
///
/// Returns the first [`ParseError`] encountered.
///
/// ```
/// let docs = tfd_json::parse_many("{\"a\":1}\n{\"a\":2}")?;
/// assert_eq!(docs.len(), 2);
/// # Ok::<(), tfd_json::ParseError>(())
/// ```
pub fn parse_many(input: &str) -> Result<Vec<Json>, ParseError> {
    let mut p = Parser::new(
        input,
        ParserOptions::default().max_depth,
        Interner::global(),
    );
    let mut docs = Vec::new();
    p.skip_ws();
    while !p.at_eof() {
        docs.push(p.parse_value(&mut JsonSink, 0)?);
        p.skip_ws();
    }
    Ok(docs)
}

/// Parses several whitespace-separated JSON documents straight into
/// universal [`Value`]s — the one-shot counterpart of the chunk-fed
/// [`Streamer`](crate::stream::Streamer), and the reference the streaming
/// differential suite compares against.
///
/// # Errors
///
/// Returns the first [`ParseError`] encountered.
///
/// ```
/// let docs = tfd_json::parse_many_values("{\"a\":1}\n{\"a\":2}")?;
/// assert_eq!(docs.len(), 2);
/// # Ok::<(), tfd_json::ParseError>(())
/// ```
pub fn parse_many_values(input: &str) -> Result<Vec<Value>, ParseError> {
    parse_many_values_with(input, &ParserOptions::default())
}

/// [`parse_many_values`] under explicit [`ParserOptions`].
///
/// # Errors
///
/// As [`parse_many_values`], plus [`ParseErrorKind::TooDeep`] when any
/// document nests past `options.max_depth`.
pub fn parse_many_values_with(
    input: &str,
    options: &ParserOptions,
) -> Result<Vec<Value>, ParseError> {
    parse_many_values_in(input, options, Interner::global())
}

/// [`parse_many_values_with`] interning object keys into a
/// caller-supplied arena (see [`parse_value_in`]).
///
/// # Errors
///
/// As [`parse_many_values_with`].
pub fn parse_many_values_in(
    input: &str,
    options: &ParserOptions,
    interner: &Interner,
) -> Result<Vec<Value>, ParseError> {
    let mut p = Parser::new(input, options.max_depth, interner);
    let mut sink = ValueSink { body: body_name() };
    let mut docs = Vec::new();
    p.skip_ws();
    while !p.at_eof() {
        docs.push(p.parse_value(&mut sink, 0)?);
        p.skip_ws();
    }
    Ok(docs)
}

/// Parses exactly one document through a caller-held [`ValueSink`] — the
/// chunk-fed streamer's per-record entry point, kept separate from
/// [`parse_value_with`] so the hot path pays no per-record sink setup.
pub(crate) fn parse_value_record(
    input: &str,
    max_depth: usize,
    sink: &mut ValueSink,
    interner: &Interner,
) -> Result<Value, ParseError> {
    let mut p = Parser::new(input, max_depth, interner);
    p.skip_ws();
    let doc = p.parse_value(sink, 0)?;
    p.expect_eof()?;
    Ok(doc)
}

/// Parses one value from the *front* of `input` (which must start at a
/// value, no leading whitespace) and returns it with the byte length
/// consumed. The streamer uses this to parse a self-delimiting record
/// (object/array/string) straight out of a chunk without first scanning
/// for its boundary; on failure the caller falls back to the resumable
/// scanner and this error is discarded.
pub(crate) fn parse_one_value(
    input: &str,
    max_depth: usize,
    sink: &mut ValueSink,
    interner: &Interner,
) -> Result<(Value, usize), ParseError> {
    let mut p = Parser::new(input, max_depth, interner);
    let doc = p.parse_value(sink, 0)?;
    Ok((doc, p.pos))
}

/// How parsed pieces are assembled into an output document. Two
/// instantiations exist: [`JsonSink`] (the [`Json`] tree) and
/// [`ValueSink`] (the universal [`Value`] with interned names). The
/// parser is generic over the sink so both outputs share the single
/// byte-level pass.
trait Sink {
    type Out;
    type Obj;

    fn int(&mut self, i: i64) -> Self::Out;
    fn float(&mut self, f: f64) -> Self::Out;
    fn boolean(&mut self, b: bool) -> Self::Out;
    fn null(&mut self) -> Self::Out;
    fn string(&mut self, s: Cow<'_, str>) -> Self::Out;
    fn obj_new(&mut self) -> Self::Obj;
    fn obj_push(&mut self, obj: &mut Self::Obj, key: Name, value: Self::Out);
    fn obj_finish(&mut self, obj: Self::Obj) -> Self::Out;
    fn arr_finish(&mut self, items: Vec<Self::Out>) -> Self::Out;
}

struct JsonSink;

impl Sink for JsonSink {
    type Out = Json;
    type Obj = Vec<(Name, Json)>;

    fn int(&mut self, i: i64) -> Json {
        Json::Int(i)
    }
    fn float(&mut self, f: f64) -> Json {
        Json::Float(f)
    }
    fn boolean(&mut self, b: bool) -> Json {
        Json::Bool(b)
    }
    fn null(&mut self) -> Json {
        Json::Null
    }
    fn string(&mut self, s: Cow<'_, str>) -> Json {
        Json::String(s.into_owned())
    }
    fn obj_new(&mut self) -> Self::Obj {
        Vec::new()
    }
    fn obj_push(&mut self, obj: &mut Self::Obj, key: Name, value: Json) {
        obj.push((key, value));
    }
    fn obj_finish(&mut self, obj: Self::Obj) -> Json {
        Json::Object(obj)
    }
    fn arr_finish(&mut self, items: Vec<Json>) -> Json {
        Json::Array(items)
    }
}

pub(crate) struct ValueSink {
    pub(crate) body: Name,
}

impl Sink for ValueSink {
    type Out = Value;
    type Obj = Vec<Field>;

    fn int(&mut self, i: i64) -> Value {
        Value::Int(i)
    }
    fn float(&mut self, f: f64) -> Value {
        Value::Float(f)
    }
    fn boolean(&mut self, b: bool) -> Value {
        Value::Bool(b)
    }
    fn null(&mut self) -> Value {
        Value::Null
    }
    fn string(&mut self, s: Cow<'_, str>) -> Value {
        Value::Str(s.into_owned())
    }
    fn obj_new(&mut self) -> Self::Obj {
        Vec::new()
    }
    fn obj_push(&mut self, obj: &mut Self::Obj, key: Name, value: Value) {
        obj.push(Field { name: key, value });
    }
    fn obj_finish(&mut self, obj: Self::Obj) -> Value {
        Value::Record {
            name: self.body,
            fields: obj,
        }
    }
    fn arr_finish(&mut self, items: Vec<Value>) -> Value {
        Value::List(items)
    }
}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    /// Current byte offset.
    pos: usize,
    /// Current 1-based line.
    line: usize,
    /// Byte offset where the current line starts (columns are computed
    /// from it, in characters, only when an error is raised).
    line_start: usize,
    max_depth: usize,
    /// Arena object keys intern into (the process-default arena for the
    /// legacy entry points, a corpus arena for the `_in` variants).
    interner: &'a Interner,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str, max_depth: usize, interner: &'a Interner) -> Parser<'a> {
        Parser {
            input,
            bytes: input.as_bytes(),
            pos: 0,
            line: 1,
            line_start: 0,
            max_depth,
            interner,
        }
    }

    /// The source position of `offset`, with the column counted in
    /// *characters* since the start of the current line. Only called on
    /// error paths; the happy path never counts columns.
    fn pos_of(&self, offset: usize) -> Pos {
        Pos {
            offset,
            line: self.line,
            column: self.input[self.line_start..offset].chars().count() + 1,
        }
    }

    fn cur_pos(&self) -> Pos {
        self.pos_of(self.pos)
    }

    fn err(&self, kind: LexErrorKind, at: usize) -> ParseError {
        ParseError {
            kind: ParseErrorKind::Lex(kind),
            pos: self.pos_of(at),
        }
    }

    fn at_eof(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'\n' => {
                    self.pos += 1;
                    self.line += 1;
                    self.line_start = self.pos;
                }
                _ => break,
            }
        }
    }

    /// A short description of whatever starts at the current position,
    /// used in "found ..." error messages.
    fn describe_here(&self) -> String {
        match self.bytes.get(self.pos) {
            None => "end of input".to_owned(),
            Some(b'{') => "'{'".to_owned(),
            Some(b'}') => "'}'".to_owned(),
            Some(b'[') => "'['".to_owned(),
            Some(b']') => "']'".to_owned(),
            Some(b':') => "':'".to_owned(),
            Some(b',') => "','".to_owned(),
            Some(b'"') => "string".to_owned(),
            Some(b) if b.is_ascii_digit() || *b == b'-' => "number".to_owned(),
            Some(b't' | b'f') => "boolean".to_owned(),
            Some(b'n') => "'null'".to_owned(),
            Some(_) => {
                let c = self.input[self.pos..].chars().next().unwrap_or('?');
                format!("{c:?}")
            }
        }
    }

    fn unexpected<T>(&self, expected: &str) -> Result<T, ParseError> {
        // A stray character that cannot start any token is a lexical
        // error (matching the reference tokenizer); a well-formed token
        // in the wrong place is a grammatical one.
        match self.bytes.get(self.pos) {
            Some(b) if !b"{}[]:,\"-0123456789tfn".contains(b) => {
                let c = self.input[self.pos..].chars().next().unwrap_or('?');
                Err(self.err(LexErrorKind::UnexpectedChar(c), self.pos))
            }
            _ => Err(ParseError {
                kind: ParseErrorKind::Unexpected {
                    found: self.describe_here(),
                    expected: expected.to_owned(),
                },
                pos: self.cur_pos(),
            }),
        }
    }

    fn expect_eof(&mut self) -> Result<(), ParseError> {
        self.skip_ws();
        if self.at_eof() {
            Ok(())
        } else {
            Err(ParseError {
                kind: ParseErrorKind::TrailingContent(self.describe_here()),
                pos: self.cur_pos(),
            })
        }
    }

    /// Parses one value; the caller must have skipped leading whitespace.
    fn parse_value<S: Sink>(&mut self, sink: &mut S, depth: usize) -> Result<S::Out, ParseError> {
        match self.bytes.get(self.pos) {
            Some(b'{') => self.parse_object(sink, depth),
            Some(b'[') => self.parse_array(sink, depth),
            Some(b'"') => {
                let s = self.parse_string()?;
                Ok(sink.string(s))
            }
            Some(b) if *b == b'-' || b.is_ascii_digit() => self.parse_number(sink),
            Some(b't') => {
                self.expect_keyword("true")?;
                Ok(sink.boolean(true))
            }
            Some(b'f') => {
                self.expect_keyword("false")?;
                Ok(sink.boolean(false))
            }
            Some(b'n') => {
                self.expect_keyword("null")?;
                Ok(sink.null())
            }
            _ => self.unexpected("a JSON value"),
        }
    }

    fn expect_keyword(&mut self, word: &'static str) -> Result<(), ParseError> {
        let end = self.pos + word.len();
        let matches = self.bytes.get(self.pos..end) == Some(word.as_bytes())
            && !matches!(self.bytes.get(end), Some(b) if b.is_ascii_alphabetic());
        if matches {
            self.pos = end;
            Ok(())
        } else {
            let c = self.input[self.pos..].chars().next().unwrap_or('?');
            Err(self.err(LexErrorKind::UnexpectedChar(c), self.pos))
        }
    }

    fn check_depth(&self, depth: usize) -> Result<(), ParseError> {
        if depth >= self.max_depth {
            Err(ParseError {
                kind: ParseErrorKind::TooDeep(self.max_depth),
                pos: self.cur_pos(),
            })
        } else {
            Ok(())
        }
    }

    fn parse_object<S: Sink>(&mut self, sink: &mut S, depth: usize) -> Result<S::Out, ParseError> {
        self.check_depth(depth)?;
        self.pos += 1; // '{'
        self.skip_ws();
        let mut obj = sink.obj_new();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(sink.obj_finish(obj));
        }
        loop {
            if self.bytes.get(self.pos) != Some(&b'"') {
                return self.unexpected("an object key (string)");
            }
            // Keys intern straight from the (usually borrowed) slice:
            // no String materializes for escape-free keys.
            let key = self.interner.intern(self.parse_string()?);
            self.skip_ws();
            if self.bytes.get(self.pos) != Some(&b':') {
                return self.unexpected("':'");
            }
            self.pos += 1;
            self.skip_ws();
            let value = self.parse_value(sink, depth + 1)?;
            sink.obj_push(&mut obj, key, value);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => {
                    self.pos += 1;
                    self.skip_ws();
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(sink.obj_finish(obj));
                }
                _ => return self.unexpected("',' or '}'"),
            }
        }
    }

    fn parse_array<S: Sink>(&mut self, sink: &mut S, depth: usize) -> Result<S::Out, ParseError> {
        self.check_depth(depth)?;
        self.pos += 1; // '['
        self.skip_ws();
        let mut items = Vec::new();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(sink.arr_finish(items));
        }
        loop {
            items.push(self.parse_value(sink, depth + 1)?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => {
                    self.pos += 1;
                    self.skip_ws();
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(sink.arr_finish(items));
                }
                _ => return self.unexpected("',' or ']'"),
            }
        }
    }

    /// Parses a string literal. Escape-free contents — the common case —
    /// are returned as a borrowed slice of the input; only strings with
    /// escapes allocate (once, seeded with the scanned prefix).
    fn parse_string(&mut self) -> Result<Cow<'a, str>, ParseError> {
        let quote = self.pos;
        self.pos += 1; // opening '"'
        let start = self.pos;
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err(LexErrorKind::UnterminatedString, quote)),
                Some(b'"') => {
                    let s = &self.input[start..self.pos];
                    self.pos += 1;
                    return Ok(Cow::Borrowed(s));
                }
                Some(b'\\') => {
                    // Escape found: switch to the owned slow path, seeded
                    // with everything scanned so far.
                    let mut out = String::with_capacity(self.pos - start + 16);
                    out.push_str(&self.input[start..self.pos]);
                    return self.parse_string_owned(quote, out).map(Cow::Owned);
                }
                Some(&b) if b < 0x20 => {
                    return Err(self.err(LexErrorKind::ControlCharInString(b as char), quote));
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    /// Continues a string literal from its first escape.
    fn parse_string_owned(&mut self, quote: usize, mut out: String) -> Result<String, ParseError> {
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err(LexErrorKind::UnterminatedString, quote)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    let esc = self.pos;
                    self.pos += 1;
                    let Some(&e) = self.bytes.get(self.pos) else {
                        return Err(self.err(LexErrorKind::UnterminatedString, quote));
                    };
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.parse_unicode_escape(esc)?),
                        other => {
                            return Err(
                                self.err(LexErrorKind::BadEscape((other as char).to_string()), esc)
                            );
                        }
                    }
                }
                Some(&b) if b < 0x20 => {
                    return Err(self.err(LexErrorKind::ControlCharInString(b as char), quote));
                }
                Some(_) => {
                    // Copy a maximal escape-free run in one push.
                    let run_start = self.pos;
                    while matches!(
                        self.bytes.get(self.pos),
                        Some(&b) if b != b'"' && b != b'\\' && b >= 0x20
                    ) {
                        self.pos += 1;
                    }
                    out.push_str(&self.input[run_start..self.pos]);
                }
            }
        }
    }

    /// Parses the `XXXX` of a `\uXXXX` escape (after `\u` is consumed),
    /// combining surrogate pairs.
    fn parse_unicode_escape(&mut self, esc: usize) -> Result<char, ParseError> {
        let hi = self.parse_hex4(esc)?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: must be followed by a \uXXXX low surrogate.
            if self.bytes.get(self.pos) != Some(&b'\\')
                || self.bytes.get(self.pos + 1) != Some(&b'u')
            {
                return Err(self.err(LexErrorKind::BadUnicodeEscape, esc));
            }
            self.pos += 2;
            let lo = self.parse_hex4(esc)?;
            if !(0xDC00..0xE000).contains(&lo) {
                return Err(self.err(LexErrorKind::BadUnicodeEscape, esc));
            }
            let cp = 0x10000 + ((u32::from(hi) - 0xD800) << 10) + (u32::from(lo) - 0xDC00);
            char::from_u32(cp).ok_or_else(|| self.err(LexErrorKind::BadUnicodeEscape, esc))
        } else if (0xDC00..0xE000).contains(&hi) {
            Err(self.err(LexErrorKind::BadUnicodeEscape, esc))
        } else {
            char::from_u32(u32::from(hi))
                .ok_or_else(|| self.err(LexErrorKind::BadUnicodeEscape, esc))
        }
    }

    fn parse_hex4(&mut self, esc: usize) -> Result<u16, ParseError> {
        let mut v: u16 = 0;
        for _ in 0..4 {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err(LexErrorKind::BadUnicodeEscape, esc));
            };
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err(LexErrorKind::BadUnicodeEscape, esc))?;
            v = (v << 4) | d as u16;
            self.pos += 1;
        }
        Ok(v)
    }

    /// Parses a number straight from the input span: one scan validates
    /// the RFC 8259 grammar, then integers take a no-allocation
    /// accumulation fast path and everything else (and out-of-range
    /// integers) parses as `f64` from the borrowed span.
    fn parse_number<S: Sink>(&mut self, sink: &mut S) -> Result<S::Out, ParseError> {
        let start = self.pos;
        let negative = self.bytes.get(self.pos) == Some(&b'-');
        if negative {
            self.pos += 1;
        }
        let int_start = self.pos;
        match self.bytes.get(self.pos) {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.bytes.get(self.pos), Some(b) if b.is_ascii_digit()) {
                    self.pos += 1;
                    return Err(self.bad_number(start));
                }
            }
            Some(b) if b.is_ascii_digit() => {
                while matches!(self.bytes.get(self.pos), Some(b) if b.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.bad_number(start)),
        }
        let int_end = self.pos;
        let mut is_float = false;
        if self.bytes.get(self.pos) == Some(&b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.bytes.get(self.pos), Some(b) if b.is_ascii_digit()) {
                return Err(self.bad_number(start));
            }
            while matches!(self.bytes.get(self.pos), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.bytes.get(self.pos), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.bytes.get(self.pos), Some(b) if b.is_ascii_digit()) {
                return Err(self.bad_number(start));
            }
            while matches!(self.bytes.get(self.pos), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }

        if !is_float {
            // Fast path: ≤18 digits always fit an i64; accumulate
            // directly from the bytes with no intermediate text.
            let digits = &self.bytes[int_start..int_end];
            if digits.len() <= 18 {
                let mut v: i64 = 0;
                for &d in digits {
                    v = v * 10 + i64::from(d - b'0');
                }
                return Ok(sink.int(if negative { -v } else { v }));
            }
            if let Ok(i) = self.input[start..self.pos].parse::<i64>() {
                return Ok(sink.int(i));
            }
            // Out-of-range integers degrade to floats (JSON allows
            // arbitrary precision; we keep the value approximately).
        }
        let span = &self.input[start..self.pos];
        span.parse::<f64>()
            .map(|f| sink.float(f))
            .map_err(|_| self.bad_number(start))
    }

    fn bad_number(&self, start: usize) -> ParseError {
        let end = (self.pos + 1).min(self.input.len());
        // Snap to a character boundary for the error payload.
        let end = (end..=self.input.len())
            .find(|&i| self.input.is_char_boundary(i))
            .unwrap_or(self.input.len());
        self.err(
            LexErrorKind::BadNumber(self.input[start..end].trim_end().to_owned()),
            start,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_primitives() {
        assert_eq!(parse("42").unwrap(), Json::Int(42));
        assert_eq!(parse("3.5").unwrap(), Json::Float(3.5));
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(r#""hi""#).unwrap(), Json::String("hi".into()));
    }

    #[test]
    fn parses_empty_containers() {
        assert_eq!(parse("{}").unwrap(), Json::Object(vec![]));
        assert_eq!(parse("[]").unwrap(), Json::Array(vec![]));
    }

    #[test]
    fn parses_nested_document() {
        let doc = parse(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(
            doc,
            Json::Object(vec![
                (
                    "a".into(),
                    Json::Array(vec![
                        Json::Int(1),
                        Json::Object(vec![("b".into(), Json::Null)])
                    ])
                ),
                ("c".into(), Json::String("x".into())),
            ])
        );
    }

    #[test]
    fn preserves_key_order_and_duplicates() {
        let doc = parse(r#"{"b":1,"a":2,"b":3}"#).unwrap();
        match doc {
            Json::Object(m) => {
                assert_eq!(m.len(), 3);
                assert_eq!(m[0].0, "b");
                assert_eq!(m[2], ("b".into(), Json::Int(3)));
            }
            _ => panic!("expected object"),
        }
    }

    #[test]
    fn whitespace_everywhere() {
        let doc = parse(" \t\n{ \"a\" :\r\n [ 1 , 2 ] } \n").unwrap();
        assert_eq!(
            doc,
            Json::Object(vec![(
                "a".into(),
                Json::Array(vec![Json::Int(1), Json::Int(2)])
            )])
        );
    }

    #[test]
    fn escape_sequences_decode() {
        assert_eq!(
            parse(r#""a\"b\\c\/d\be\ff\ng\rh\ti""#).unwrap(),
            Json::String("a\"b\\c/d\u{8}e\u{c}f\ng\rh\ti".into())
        );
        assert_eq!(parse("\"\\u0041\"").unwrap(), Json::String("A".into()));
        assert_eq!(parse("\"\\u00e9\"").unwrap(), Json::String("\u{e9}".into()));
        assert_eq!(
            parse("\"\\uD83D\\uDE00\"").unwrap(),
            Json::String("\u{1F600}".into())
        );
        // Escapes mid-string keep both the prefix and the tail:
        assert_eq!(
            parse(r#""pre\nmid\tpost""#).unwrap(),
            Json::String("pre\nmid\tpost".into())
        );
    }

    #[test]
    fn raw_non_ascii_passes_through() {
        assert_eq!(parse("\"čaj 😀\"").unwrap(), Json::String("čaj 😀".into()));
    }

    #[test]
    fn string_errors_are_lexical() {
        assert!(matches!(
            parse(r#""abc"#).unwrap_err().kind,
            ParseErrorKind::Lex(LexErrorKind::UnterminatedString)
        ));
        assert!(matches!(
            parse("\"a\nb\"").unwrap_err().kind,
            ParseErrorKind::Lex(LexErrorKind::ControlCharInString('\n'))
        ));
        assert!(matches!(
            parse(r#""\q""#).unwrap_err().kind,
            ParseErrorKind::Lex(LexErrorKind::BadEscape(_))
        ));
        assert!(parse(r#""\uD83D""#).is_err());
        assert!(parse(r#""\uDE00""#).is_err());
        assert!(parse(r#""\uD83Dx""#).is_err());
        assert!(parse(r#""\u00g1""#).is_err());
        assert!(parse(r#""\u12""#).is_err());
    }

    #[test]
    fn number_grammar_enforced() {
        assert_eq!(parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(parse("0").unwrap(), Json::Int(0));
        assert_eq!(parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(parse("1E+2").unwrap(), Json::Float(100.0));
        assert_eq!(parse("-2.5e-1").unwrap(), Json::Float(-0.25));
        for bad in ["01", "-", "1.", "1.e3", "1e", "1e+"] {
            assert!(
                matches!(
                    parse(bad).unwrap_err().kind,
                    ParseErrorKind::Lex(LexErrorKind::BadNumber(_))
                ),
                "{bad} should be a bad number"
            );
        }
    }

    #[test]
    fn huge_integer_degrades_to_float() {
        match parse("123456789012345678901234567890").unwrap() {
            Json::Float(f) => assert!(f > 1e29),
            t => panic!("expected float, got {t:?}"),
        }
        // 19 digits that still fit i64 stay exact:
        assert_eq!(parse("9223372036854775807").unwrap(), Json::Int(i64::MAX));
        assert_eq!(parse("-9223372036854775808").unwrap(), Json::Int(i64::MIN));
    }

    #[test]
    fn rejects_trailing_content() {
        let err = parse("1 2").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::TrailingContent(_)));
    }

    #[test]
    fn rejects_trailing_comma_in_array() {
        assert!(parse("[1,]").is_err());
    }

    #[test]
    fn rejects_trailing_comma_in_object() {
        assert!(parse(r#"{"a":1,}"#).is_err());
    }

    #[test]
    fn rejects_missing_colon() {
        let err = parse(r#"{"a" 1}"#).unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::Unexpected { .. }));
    }

    #[test]
    fn rejects_nonstring_keys() {
        assert!(parse("{1: 2}").is_err());
    }

    #[test]
    fn rejects_bare_comma() {
        assert!(parse(",").is_err());
        assert!(parse("[,]").is_err());
    }

    #[test]
    fn rejects_unclosed_containers() {
        assert!(parse("[1, 2").is_err());
        assert!(parse(r#"{"a": 1"#).is_err());
    }

    #[test]
    fn rejects_bad_keywords() {
        assert!(parse("nul").is_err());
        assert!(parse("True").is_err());
        assert!(parse("truex").is_err());
    }

    #[test]
    fn error_position_is_precise() {
        let err = parse("{\n  \"a\": @\n}").unwrap_err();
        assert_eq!(err.pos.line, 2);
        assert_eq!(err.pos.column, 8);
    }

    #[test]
    fn error_column_counts_characters_not_bytes() {
        // "čaj" is 3 characters but 4 bytes: the error column after it
        // must count characters, exactly as an editor displays them.
        let err = parse("{ \"čaj\": @ }").unwrap_err();
        assert_eq!(err.pos.line, 1);
        assert_eq!(err.pos.column, 10, "column must be in characters");
        // On a later line only the current line's characters count:
        let err = parse("{\n  \"日本語キー\": @\n}").unwrap_err();
        assert_eq!(err.pos.line, 2);
        assert_eq!(err.pos.column, 12);
    }

    #[test]
    fn depth_limit_enforced() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        let err = parse(&deep).unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::TooDeep(128)));
        // And a custom limit: max_depth counts nested containers, so four
        // nested arrays are allowed and five are not.
        let opts = ParserOptions { max_depth: 4 };
        assert!(parse_with("[[[[[1]]]]]", &opts).is_err());
        assert!(parse_with("[[[[1]]]]", &opts).is_ok());
    }

    #[test]
    fn parse_many_reads_json_lines() {
        let docs = parse_many("{\"a\":1}\n[2]\n\"x\"").unwrap();
        assert_eq!(docs.len(), 3);
        assert_eq!(docs[1], Json::Array(vec![Json::Int(2)]));
    }

    #[test]
    fn parse_many_empty_input() {
        assert_eq!(parse_many("  \n ").unwrap(), vec![]);
    }

    #[test]
    fn parse_many_propagates_errors() {
        assert!(parse_many("{\"a\":1}\n[2,]").is_err());
    }

    #[test]
    fn error_display_mentions_position() {
        let err = parse("[1, @]").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 1"), "got: {msg}");
    }

    #[test]
    fn parse_value_goes_straight_to_records() {
        let v = parse_value(r#"{ "name": "Jan", "age": 25 }"#).unwrap();
        assert_eq!(v.record_name(), Some(tfd_value::BODY_NAME));
        assert_eq!(v.field("name"), Some(&Value::str("Jan")));
        assert_eq!(v.field("age"), Some(&Value::Int(25)));
    }

    #[test]
    fn parse_value_agrees_with_parse_to_value() {
        let docs = [
            r#"{"a": [1, 2.5, null, {"b": true}], "c": "x"}"#,
            r#"[ { "name":"Jan", "age":25 }, { "name":"Tomas" } ]"#,
            "[]",
            "{}",
            r#""just a string""#,
            "-17",
            r#"{"esc": "a\nb\u0041"}"#,
        ];
        for doc in docs {
            assert_eq!(
                parse_value(doc).unwrap(),
                parse(doc).unwrap().to_value(),
                "mismatch on {doc}"
            );
        }
    }

    #[test]
    fn parse_value_depth_limit() {
        let opts = ParserOptions { max_depth: 4 };
        assert!(parse_value_with("[[[[[1]]]]]", &opts).is_err());
        assert!(parse_value_with("[[[[1]]]]", &opts).is_ok());
    }

    #[test]
    fn paper_people_sample_parses() {
        // The §2.1 sample document.
        let doc = parse(
            r#"[ { "name":"Jan", "age":25 },
                { "name":"Tomas" },
                { "name":"Alexander", "age":3.5 } ]"#,
        )
        .unwrap();
        let items = doc.items().unwrap();
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].get("age"), Some(&Json::Int(25)));
        assert_eq!(items[1].get("age"), None);
        assert_eq!(items[2].get("age"), Some(&Json::Float(3.5)));
    }

    #[test]
    fn paper_worldbank_sample_parses() {
        // The §2.3 sample document.
        let doc = parse(
            r#"[ { "pages": 5 },
                [ { "indicator": "GC.DOD.TOTL.GD.ZS",
                    "date": "2012", "value": null },
                  { "indicator": "GC.DOD.TOTL.GD.ZS",
                    "date": "2010", "value": "35.14229" } ] ]"#,
        )
        .unwrap();
        let items = doc.items().unwrap();
        assert_eq!(items.len(), 2);
        assert!(matches!(items[0], Json::Object(_)));
        assert!(matches!(items[1], Json::Array(_)));
    }
}
