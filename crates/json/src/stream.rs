//! Chunk-fed, incremental JSON parsing — the streaming front-end.
//!
//! [`Streamer`] accepts arbitrary `feed(&[u8])` slices — a corpus may be
//! split at **any** byte boundary, including mid-UTF-8-sequence and
//! mid-escape — and emits one universal [`Value`] per completed
//! whitespace-separated top-level document, exactly the documents the
//! one-shot [`parse_many_values`](crate::parse_many_values) returns.
//! Peak memory is one record (plus the fixed scanner state), independent
//! of corpus size: completed records are parsed and handed to the sink
//! immediately, and only a record that spans a chunk boundary is ever
//! copied into the carry-over tail buffer.
//!
//! The design splits the work in two:
//!
//! 1. a **resumable boundary scanner** — an explicit state machine
//!    (`Mode`/`NumState`, one small enum step per byte, no recursion)
//!    that tracks just enough structure (bracket depth, string/escape
//!    state, the RFC 8259 number grammar, keyword runs) to find the byte
//!    range of each top-level record, wherever chunk boundaries fall;
//! 2. the existing byte-level [`crate::parse_value_with`] run on each completed
//!    record (borrowed straight from the chunk when the record does not
//!    cross a boundary), so the streaming path produces **byte-identical
//!    values and errors** to the one-shot path by construction.
//!
//! Error positions are translated from record-local to stream-global
//! coordinates (`offset`/`line`/char-correct `column`), so a malformed
//! record reports exactly the position the one-shot parser would —
//! regardless of how the input was chunked. The differential suite
//! (`tests/streaming_agreement.rs`) asserts this agreement under
//! adversarial splits, 1-byte feeds included.

use crate::lexer::Pos;
use crate::parser::{
    parse_one_value, parse_value_record, ParseError, ParseErrorKind, ParserOptions, ValueSink,
};
use tfd_value::{body_name, Interner, Value};

/// Scanner state between two consumed bytes. Every variant is resumable:
/// a chunk may end (and the next begin) in any of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Between documents; whitespace is consumed without buffering.
    Between,
    /// Inside a container record (`depth ≥ 1`), outside any string.
    Container,
    /// Inside a string literal (a top-level string document when
    /// `depth == 0`, otherwise within a container).
    Str,
    /// Inside a string literal, immediately after a backslash.
    StrEsc,
    /// Inside a top-level number document.
    Num(NumState),
    /// A number-grammar violation was found mid-token: the record must
    /// still take one more character (the parser's `bad_number` payload
    /// extends one character past the failure point). `None` = the next
    /// lead byte is still awaited; `Some(n)` = `n` continuation bytes of
    /// that character remain.
    NumTail(Option<u8>),
    /// Inside a top-level `true`/`false`/`null`-ish bare word.
    Keyword,
    /// A single non-ASCII character forming a one-char junk record;
    /// `0` continuation bytes remaining completes it.
    JunkChar(u8),
}

/// Where the scanner stands inside the RFC 8259 number grammar — the
/// states of [`crate::parser`]'s `parse_number`, made explicit so the
/// token can be suspended at any byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NumState {
    /// Seen `-`; an integer digit is required.
    Minus,
    /// The integer part is exactly `0` (accepting).
    IntZero,
    /// In `1-9` integer digits (accepting).
    IntDigits,
    /// Seen `.`; a fraction digit is required.
    Dot,
    /// In fraction digits (accepting).
    Frac,
    /// Seen `e`/`E`; a sign or exponent digit is required.
    Exp,
    /// Seen an exponent sign; a digit is required.
    ExpSign,
    /// In exponent digits (accepting).
    ExpDigits,
}

impl NumState {
    /// States where the token forms a complete number (the one-shot
    /// parser would return successfully were the input to stop here).
    fn accepting(self) -> bool {
        matches!(
            self,
            NumState::IntZero | NumState::IntDigits | NumState::Frac | NumState::ExpDigits
        )
    }
}

/// What the scanner decided for the current byte.
enum Step {
    /// Consume the byte; the record (if any) continues.
    Consume(Mode),
    /// Consume the byte and complete the record *including* it.
    ConsumeEnd,
    /// Complete the record *before* this byte, then re-examine the byte
    /// as the potential start of the next record.
    CutBefore,
}

/// The resumable boundary state machine itself — the part of the
/// streaming front-end that knows where records end, factored out so the
/// chunk-fed [`Streamer`] and the scan-only [`BoundaryScanner`] share
/// one implementation (any drift between them would silently break the
/// parallel driver's shard cuts).
#[derive(Debug, Clone)]
struct Scan {
    mode: Mode,
    /// Container nesting depth of the current record.
    depth: usize,
}

impl Scan {
    fn new() -> Scan {
        Scan {
            mode: Mode::Between,
            depth: 0,
        }
    }

    /// True while inside a record (a chunk or the input ended mid-record).
    fn in_record(&self) -> bool {
        !matches!(self.mode, Mode::Between)
    }

    /// Classifies the first byte of a record (the one-shot `parse_value`
    /// dispatch, minus whitespace, which the between-records state
    /// already consumed). Returns `true` when the byte completes the
    /// record by itself (one-byte junk records).
    fn open(&mut self, b: u8) -> bool {
        match b {
            b'{' | b'[' => {
                self.depth = 1;
                self.mode = Mode::Container;
                false
            }
            b'"' => {
                self.depth = 0;
                self.mode = Mode::Str;
                false
            }
            b'-' => {
                self.mode = Mode::Num(NumState::Minus);
                false
            }
            b'0' => {
                self.mode = Mode::Num(NumState::IntZero);
                false
            }
            b'1'..=b'9' => {
                self.mode = Mode::Num(NumState::IntDigits);
                false
            }
            b't' | b'f' | b'n' => {
                self.mode = Mode::Keyword;
                false
            }
            // Multi-byte character: a one-char junk record (the parser
            // reports `UnexpectedChar` for it; it needs all its bytes).
            0xC2..=0xF4 => {
                self.mode = Mode::JunkChar(utf8_len(b) - 1);
                false
            }
            // Any other single byte — `} ] : ,`, stray ASCII, or an
            // invalid UTF-8 lead — is a one-byte junk record whose parse
            // reproduces the one-shot error.
            _ => true,
        }
    }

    /// Advances through `chunk[i..]` while inside a record. Returns
    /// `Some(end)` when the record completes — `chunk[..end]` holds its
    /// final byte, the state is back between records, and scanning
    /// resumes at `end` — or `None` when the chunk is exhausted with the
    /// record still open.
    ///
    /// The two hot modes (inside a container, inside a string) hop
    /// special-to-special with the shared SWAR scanners
    /// ([`tfd_value::scan`]) instead of stepping byte by byte.
    fn run(&mut self, chunk: &[u8], mut i: usize) -> Option<usize> {
        let n = chunk.len();
        while i < n {
            match self.mode {
                Mode::Between => unreachable!("run is only called inside a record"),
                // Hot loop: inside a container only brackets and quotes
                // matter.
                Mode::Container => {
                    match tfd_value::scan::find_any5(&chunk[i..], b'{', b'}', b'[', b']', b'"') {
                        None => return None,
                        Some(off) => {
                            i += off;
                            let b = chunk[i];
                            i += 1;
                            match b {
                                b'"' => self.mode = Mode::Str,
                                b'{' | b'[' => self.depth += 1,
                                _ => {
                                    self.depth -= 1;
                                    if self.depth == 0 {
                                        self.mode = Mode::Between;
                                        return Some(i);
                                    }
                                }
                            }
                        }
                    }
                }
                // Hot loop: inside a string only `"` and `\` matter.
                Mode::Str => match tfd_value::scan::find_any2(&chunk[i..], b'"', b'\\') {
                    None => return None,
                    Some(off) => {
                        i += off;
                        let b = chunk[i];
                        i += 1;
                        if b == b'"' {
                            if self.depth == 0 {
                                self.mode = Mode::Between;
                                return Some(i);
                            }
                            self.mode = Mode::Container;
                        } else {
                            self.mode = Mode::StrEsc;
                        }
                    }
                },
                // Cold modes (escapes, top-level scalars, junk): one
                // explicit transition per byte.
                _ => match self.step(chunk[i]) {
                    Step::Consume(mode) => {
                        self.mode = mode;
                        i += 1;
                    }
                    Step::ConsumeEnd => {
                        self.mode = Mode::Between;
                        return Some(i + 1);
                    }
                    Step::CutBefore => {
                        self.mode = Mode::Between;
                        return Some(i);
                    }
                },
            }
        }
        None
    }

    /// One scanner transition for a byte inside a record (cold modes;
    /// the hot modes are inlined in [`Scan::run`]).
    fn step(&mut self, b: u8) -> Step {
        match self.mode {
            Mode::Between => unreachable!("handled by the caller"),
            Mode::Container => match b {
                b'"' => Step::Consume(Mode::Str),
                b'{' | b'[' => {
                    self.depth += 1;
                    Step::Consume(Mode::Container)
                }
                b'}' | b']' => {
                    self.depth -= 1;
                    if self.depth == 0 {
                        Step::ConsumeEnd
                    } else {
                        Step::Consume(Mode::Container)
                    }
                }
                _ => Step::Consume(Mode::Container),
            },
            Mode::Str => match b {
                b'"' => {
                    if self.depth == 0 {
                        Step::ConsumeEnd
                    } else {
                        Step::Consume(Mode::Container)
                    }
                }
                b'\\' => Step::Consume(Mode::StrEsc),
                _ => Step::Consume(Mode::Str),
            },
            Mode::StrEsc => Step::Consume(Mode::Str),
            Mode::Num(st) => self.step_number(st, b),
            Mode::NumTail(pending) => match pending {
                None => match b {
                    0xC2..=0xF4 => Step::Consume(Mode::NumTail(Some(utf8_len(b) - 1))),
                    _ => Step::ConsumeEnd,
                },
                Some(1) => Step::ConsumeEnd,
                Some(n) => Step::Consume(Mode::NumTail(Some(n - 1))),
            },
            Mode::Keyword => {
                if b.is_ascii_alphabetic() {
                    Step::Consume(Mode::Keyword)
                } else {
                    Step::CutBefore
                }
            }
            Mode::JunkChar(remaining) => {
                if remaining <= 1 {
                    Step::ConsumeEnd
                } else {
                    Step::Consume(Mode::JunkChar(remaining - 1))
                }
            }
        }
    }

    /// The number grammar, byte at a time. On a violation the record
    /// keeps the violating character — and, in the leading-zero case,
    /// one character beyond it — so the record parse reproduces the
    /// one-shot `BadNumber` payload exactly.
    fn step_number(&mut self, st: NumState, b: u8) -> Step {
        use NumState::*;
        let next = match (st, b) {
            (Minus, b'0') => Some(IntZero),
            (Minus, b'1'..=b'9') => Some(IntDigits),
            (IntZero, b'0'..=b'9') => {
                // `0` followed by a digit: the parser consumes the digit
                // and its payload extends one more character.
                return Step::Consume(Mode::NumTail(None));
            }
            (IntZero | IntDigits, b'.') => Some(Dot),
            (IntZero | IntDigits | Frac, b'e' | b'E') => Some(Exp),
            (IntDigits, b'0'..=b'9') => Some(IntDigits),
            (Dot | Frac, b'0'..=b'9') => Some(Frac),
            (Exp, b'+' | b'-') => Some(ExpSign),
            (Exp | ExpSign | ExpDigits, b'0'..=b'9') => Some(ExpDigits),
            _ => None,
        };
        match next {
            Some(st2) => Step::Consume(Mode::Num(st2)),
            None if st.accepting() => Step::CutBefore,
            // Violation mid-token: include the violating character.
            None => match b {
                0xC2..=0xF4 => Step::Consume(Mode::NumTail(Some(utf8_len(b) - 1))),
                _ => Step::ConsumeEnd,
            },
        }
    }
}

/// A scan-only record-boundary finder: the [`Streamer`]'s resumable
/// state machine without the parsing — it never materializes a value,
/// only reports where top-level documents end.
///
/// This is what the parallel driver (`tfd_core::engine`) uses to cut a
/// corpus into shards that never split a record: every reported offset
/// is a position where the sequential streamer is between records, so a
/// fresh parser started there sees exactly the remaining record
/// sequence.
///
/// ```
/// let mut s = tfd_json::stream::BoundaryScanner::new();
/// let mut cuts = Vec::new();
/// s.feed(br#"{"a": 1} [2, "}"] 7 "#, &mut |off| cuts.push(off));
/// assert_eq!(cuts, vec![8, 17, 19]);
/// assert!(!s.in_record());
/// ```
#[derive(Debug, Clone, Default)]
pub struct BoundaryScanner {
    scan: Scan,
}

impl Default for Scan {
    fn default() -> Self {
        Scan::new()
    }
}

impl BoundaryScanner {
    /// A scanner positioned between records at the start of a stream.
    pub fn new() -> BoundaryScanner {
        BoundaryScanner { scan: Scan::new() }
    }

    /// Feeds one chunk; `boundary` receives the chunk-relative offset
    /// just past each record completed within it (state carries across
    /// calls, so chunks may split records anywhere).
    pub fn feed(&mut self, chunk: &[u8], boundary: &mut impl FnMut(usize)) {
        let n = chunk.len();
        let mut i = 0usize;
        while i < n {
            if self.scan.in_record() {
                match self.scan.run(chunk, i) {
                    Some(end) => {
                        boundary(end);
                        i = end;
                    }
                    None => i = n,
                }
            } else {
                let b = chunk[i];
                match b {
                    b' ' | b'\t' | b'\r' | b'\n' => i += 1,
                    _ => {
                        i += 1;
                        if self.scan.open(b) {
                            boundary(i);
                        }
                    }
                }
            }
        }
    }

    /// True when the last fed byte was inside a record (the stream ends
    /// with an unterminated document).
    pub fn in_record(&self) -> bool {
        self.scan.in_record()
    }
}

/// Default cap on one record's carry-over bytes (16 MiB): large enough
/// for any schema-shaped record, small enough that an unclosed string
/// cannot buffer a multi-gigabyte stream.
pub const DEFAULT_MAX_RECORD_BYTES: usize = 16 * 1024 * 1024;

/// A chunk-fed incremental JSON parser.
///
/// Feed arbitrary byte slices; each completed top-level document is
/// parsed with the byte-level [`crate::parse_value_with`] and handed to the
/// sink. Call [`finish`](Streamer::finish) after the last chunk.
///
/// ```
/// use tfd_value::Value;
/// let mut s = tfd_json::stream::Streamer::new();
/// let mut out = Vec::new();
/// // A record split mid-escape and mid-number:
/// s.feed(br#"{"a": "x\"#, &mut |v| out.push(v))?;
/// s.feed(br#"ny", "b": 4"#, &mut |v| out.push(v))?;
/// s.feed(b"2} 7 ", &mut |v| out.push(v))?;
/// s.finish(&mut |v| out.push(v))?;
/// assert_eq!(out.len(), 2);
/// assert_eq!(out[0].field("b"), Some(&Value::Int(42)));
/// assert_eq!(out[1], Value::Int(7));
/// # Ok::<(), tfd_json::ParseError>(())
/// ```
pub struct Streamer {
    max_depth: usize,
    /// Cap on one record's carry-over bytes: a record still open after
    /// buffering this much fails with
    /// [`ParseErrorKind::RecordTooLarge`] instead of buffering the rest
    /// of the stream. Peak memory stays O(cap), not O(stream).
    max_record_bytes: usize,
    /// Reused across records: one sink, one cached `•` name.
    vsink: ValueSink,
    /// Arena record keys intern into (a shared handle — cloning an
    /// [`Interner`] shares the arena).
    interner: Interner,
    /// The resumable boundary state machine (shared with
    /// [`BoundaryScanner`]).
    scan: Scan,
    /// Carry-over bytes of a record that spans chunk boundaries.
    buf: Vec<u8>,
    /// Global position of the current record's start (bytes inside a
    /// record are accounted in bulk when it completes — the hot scanner
    /// loops never touch these).
    offset: usize,
    line: usize,
    /// 1-based char column of the next character on the current line.
    col: usize,
    /// Snapshot of (offset, line, col) where the current record starts.
    start: (usize, usize, usize),
    /// A previously reported error; the stream is poisoned after it,
    /// mirroring the one-shot parsers (first error wins).
    failed: Option<ParseError>,
}

impl Default for Streamer {
    fn default() -> Self {
        Streamer::new()
    }
}

impl Streamer {
    /// A streamer with default [`ParserOptions`].
    pub fn new() -> Streamer {
        Streamer::with_options(ParserOptions::default())
    }

    /// A streamer with explicit [`ParserOptions`] (applied to every
    /// record).
    pub fn with_options(options: ParserOptions) -> Streamer {
        Streamer::with_options_in(options, Interner::global().clone())
    }

    /// A streamer interning record keys into a caller-supplied arena —
    /// the corpus-scoped streaming path. The handle is cloned per
    /// streamer; all clones share one arena, so parallel shard workers
    /// can stream into a single corpus arena.
    pub fn with_options_in(options: ParserOptions, interner: Interner) -> Streamer {
        Streamer {
            max_depth: options.max_depth,
            max_record_bytes: DEFAULT_MAX_RECORD_BYTES,
            vsink: ValueSink { body: body_name() },
            interner,
            scan: Scan::new(),
            buf: Vec::new(),
            offset: 0,
            line: 1,
            col: 1,
            start: (0, 1, 1),
            failed: None,
        }
    }

    /// Caps one record's carry-over bytes (default
    /// [`DEFAULT_MAX_RECORD_BYTES`]): a record still open after
    /// buffering `limit` bytes fails with
    /// [`ParseErrorKind::RecordTooLarge`] at the record's start
    /// position, so an unclosed string cannot buffer the whole stream.
    pub fn set_max_record_bytes(&mut self, limit: usize) {
        self.max_record_bytes = limit;
    }

    /// Feeds one chunk; every record completed within it is parsed and
    /// passed to `sink` in input order.
    ///
    /// # Errors
    ///
    /// The first malformed record poisons the streamer: the error is
    /// returned now and again from any later call.
    pub fn feed(&mut self, chunk: &[u8], sink: &mut impl FnMut(Value)) -> Result<(), ParseError> {
        if let Some(e) = &self.failed {
            return Err(e.clone());
        }
        let r = self.feed_inner(chunk, sink);
        if let Err(e) = &r {
            self.failed = Some(e.clone());
        }
        r
    }

    /// Signals end of input: a pending unterminated record is parsed
    /// (reporting exactly the error the one-shot parser gives at EOF, or
    /// emitting the record when it is complete, e.g. a number awaiting
    /// its delimiter).
    ///
    /// # Errors
    ///
    /// As [`feed`](Streamer::feed).
    pub fn finish(&mut self, sink: &mut impl FnMut(Value)) -> Result<(), ParseError> {
        if let Some(e) = &self.failed {
            return Err(e.clone());
        }
        if !self.scan.in_record() {
            return Ok(());
        }
        let buf = std::mem::take(&mut self.buf);
        let r = self.parse_record(&buf, 0, buf.len()).map(sink);
        self.buf = buf;
        self.buf.clear();
        self.scan.mode = Mode::Between;
        if let Err(e) = &r {
            self.failed = Some(e.clone());
        }
        r
    }

    #[allow(clippy::expect_used)] // checked invariant, documented at each site
    fn feed_inner(&mut self, chunk: &[u8], sink: &mut impl FnMut(Value)) -> Result<(), ParseError> {
        let n = chunk.len();
        // The chunk's valid-UTF-8 prefix, validated once: records that
        // start inside it and are self-delimiting can be parsed straight
        // off the chunk, with no boundary pre-scan.
        let text: &str = match std::str::from_utf8(chunk) {
            Ok(t) => t,
            Err(e) => std::str::from_utf8(&chunk[..e.valid_up_to()]).expect("validated prefix"),
        };
        // Index in `chunk` where the unbuffered part of the current
        // record starts (0 while a record carried over in `buf` is open).
        let mut rec_start = 0usize;
        let mut i = 0usize;
        while i < n {
            if self.scan.in_record() {
                // Inside a record: the shared scanner hops to its end
                // (or the chunk's) — positions are settled in bulk at
                // completion.
                match self.scan.run(chunk, i) {
                    Some(end) => {
                        self.complete(chunk, rec_start, end, sink)?;
                        i = end;
                    }
                    None => i = n,
                }
            } else {
                // Not inside a record: skip whitespace, or open a record
                // at this byte.
                let b = chunk[i];
                match b {
                    b' ' | b'\t' | b'\r' | b'\n' => {
                        self.advance_ws(b);
                        i += 1;
                    }
                    _ => {
                        self.start = (self.offset, self.line, self.col);
                        rec_start = i;
                        debug_assert!(self.buf.is_empty());
                        // Fast path: objects, arrays and strings are
                        // self-delimiting, so a successful parse from
                        // the chunk front IS the record — wherever it
                        // ends. Failures (straddling the chunk end,
                        // or truly malformed) are discarded; the
                        // resumable scanner re-derives them from the
                        // exact record slice.
                        if matches!(b, b'{' | b'[' | b'"') && i < text.len() {
                            if let Ok((v, consumed)) = parse_one_value(
                                &text[i..],
                                self.max_depth,
                                &mut self.vsink,
                                &self.interner,
                            ) {
                                if consumed > self.max_record_bytes {
                                    return Err(self.too_large());
                                }
                                sink(v);
                                self.advance_over(&chunk[i..i + consumed]);
                                i += consumed;
                                continue;
                            }
                        }
                        i += 1;
                        if self.scan.open(b) {
                            self.complete(chunk, rec_start, i, sink)?;
                        }
                    }
                }
            }
        }
        if self.scan.in_record() {
            self.buf.extend_from_slice(&chunk[rec_start..]);
            if self.buf.len() > self.max_record_bytes {
                return Err(self.too_large());
            }
        }
        Ok(())
    }

    /// The [`ParseErrorKind::RecordTooLarge`] error for the current
    /// record, positioned at its start (deterministic under any
    /// chunking).
    fn too_large(&self) -> ParseError {
        let (offset, line, column) = self.start;
        ParseError {
            kind: ParseErrorKind::RecordTooLarge(self.max_record_bytes),
            pos: Pos {
                offset,
                line,
                column,
            },
        }
    }

    /// Completes the current record, whose bytes are `buf` (carry-over)
    /// followed by `chunk[rec_start..end]`, parses it and emits the
    /// value.
    fn complete(
        &mut self,
        chunk: &[u8],
        rec_start: usize,
        end: usize,
        sink: &mut impl FnMut(Value),
    ) -> Result<(), ParseError> {
        // The size cap applies to every record, even one arriving whole
        // in a single feed (the buf-growth check only sees carry-over).
        if self.buf.len() + (end - rec_start) > self.max_record_bytes {
            return Err(self.too_large());
        }
        self.scan.mode = Mode::Between;
        let r = if self.buf.is_empty() {
            // The record lies wholly within this chunk: parse it
            // borrowed, no copy.
            let v = self.parse_record(chunk, rec_start, end);
            self.advance_over(&chunk[rec_start..end]);
            v
        } else {
            let mut buf = std::mem::take(&mut self.buf);
            buf.extend_from_slice(&chunk[rec_start..end]);
            let v = self.parse_record(&buf, 0, buf.len());
            self.advance_over(&buf);
            buf.clear();
            self.buf = buf; // keep the allocation for the next carry-over
            v
        };
        r.map(sink)
    }

    /// Parses the complete record `bytes[from..to]` and translates any
    /// error position from record-local to stream-global coordinates.
    fn parse_record(&mut self, bytes: &[u8], from: usize, to: usize) -> Result<Value, ParseError> {
        let bytes = &bytes[from..to];
        let text = std::str::from_utf8(bytes).map_err(|e| ParseError {
            kind: ParseErrorKind::InvalidUtf8,
            pos: self.compose(local_pos(&bytes[..e.valid_up_to()])),
        })?;
        parse_value_record(text, self.max_depth, &mut self.vsink, &self.interner).map_err(|e| {
            ParseError {
                kind: e.kind,
                pos: self.compose(e.pos),
            }
        })
    }

    /// Lifts a record-local position into the stream-global frame.
    fn compose(&self, local: Pos) -> Pos {
        let (offset, line, col) = self.start;
        Pos {
            offset: offset + local.offset,
            line: line + local.line - 1,
            column: if local.line == 1 {
                col + local.column - 1
            } else {
                local.column
            },
        }
    }

    /// Advances the global position over one whitespace byte between
    /// records (always ASCII; only `\n` ends a line, matching the
    /// one-shot parser).
    fn advance_ws(&mut self, b: u8) {
        self.offset += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
    }

    #[allow(clippy::expect_used)] // checked invariant, documented at each site
    /// Settles the global position over a completed record's bytes in
    /// one bulk pass (the hot scanner loops never track positions).
    /// Columns count characters: continuation bytes (`10xxxxxx`) extend
    /// the previous character.
    fn advance_over(&mut self, bytes: &[u8]) {
        self.offset += bytes.len();
        // Branchless counts: LLVM vectorizes `filter().count()` and
        // `is_ascii`, so the common all-ASCII single-line record costs a
        // fraction of a cycle per byte.
        let newlines = bytes.iter().filter(|&&b| b == b'\n').count();
        let tail = if newlines == 0 {
            bytes
        } else {
            self.line += newlines;
            self.col = 1;
            let last = bytes
                .iter()
                .rposition(|&b| b == b'\n')
                .expect("newlines > 0");
            &bytes[last + 1..]
        };
        self.col += if tail.is_ascii() {
            tail.len()
        } else {
            tail.iter().filter(|&&b| b & 0xC0 != 0x80).count()
        };
    }
}

/// Byte length of the UTF-8 character introduced by lead byte `b`.
fn utf8_len(b: u8) -> u8 {
    match b {
        0xC2..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// The record-local position of the end of a valid UTF-8 `prefix` of a
/// record (used to place `InvalidUtf8` errors).
fn local_pos(prefix: &[u8]) -> Pos {
    let mut line = 1usize;
    let mut col = 1usize;
    for &b in prefix {
        if b == b'\n' {
            line += 1;
            col = 1;
        } else if b & 0xC0 != 0x80 {
            col += 1;
        }
    }
    Pos {
        offset: prefix.len(),
        line,
        column: col,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_many_values;

    /// Streams `text` in chunks of `size` bytes; returns the values.
    fn stream_chunked(text: &str, size: usize) -> Result<Vec<Value>, ParseError> {
        let mut s = Streamer::new();
        let mut out = Vec::new();
        for chunk in text.as_bytes().chunks(size.max(1)) {
            s.feed(chunk, &mut |v| out.push(v))?;
        }
        s.finish(&mut |v| out.push(v))?;
        Ok(out)
    }

    /// Asserts streaming at several chunk sizes agrees with the one-shot
    /// multi-document parse, values and errors alike.
    fn assert_agrees(text: &str) {
        let oneshot = parse_many_values(text);
        for size in [1, 2, 3, 5, 7, 64, 4096] {
            let streamed = stream_chunked(text, size);
            assert_eq!(streamed, oneshot, "chunk size {size} on {text:?}");
        }
    }

    #[test]
    fn documents_stream_with_any_split() {
        assert_agrees(r#"{"a": 1} {"a": 2, "b": [1, 2.5, null]}"#);
        assert_agrees("1 2 3");
        assert_agrees("[1][2][3]");
        assert_agrees("\"x\"\"y\"");
        assert_agrees("true false null");
        assert_agrees("  \n\t ");
        assert_agrees("");
        assert_agrees("{\"nested\": {\"deep\": [[[1]]]}}\n-2.5e-1");
    }

    #[test]
    fn splits_inside_escapes_and_utf8() {
        assert_agrees(r#""a\nbA\\" "čaj 😀""#);
        assert_agrees(r#"{"kĺíč": "hodnota", "日本": "語"}"#);
    }

    #[test]
    fn adjacent_tokens_split_like_oneshot() {
        // Numbers and keywords end exactly where the one-shot grammar
        // ends them, even without separating whitespace.
        assert_agrees("12-3");
        assert_agrees("1e3[2]");
        assert_agrees("0 1");
        assert_agrees("true\"s\"");
        assert_agrees("null{}");
    }

    #[test]
    fn errors_agree_with_oneshot() {
        for bad in [
            "[1, 2",
            "{\"a\": 1",
            "\"unterminated",
            "[1,]",
            "{,}",
            "01",
            "012",
            "1.",
            "1.x",
            "1e+",
            "-",
            "tru",
            "truex",
            "nul",
            "@",
            "]",
            ",",
            "{\n  \"a\": @\n}",
            "{ \"čaj\": @ }",
            "\"a\nb\"",
            "[1, \"x\\q\"]",
            "{\"a\" 1}",
            "1 2 x",
            "{\"ok\":1} [2,]",
            "12-",
            "1.5.2",
        ] {
            assert_agrees(bad);
        }
    }

    #[test]
    fn error_positions_translate_across_records() {
        // The error sits in the third document, on line 2 of the stream.
        let text = "{\"a\":1} {\"b\":2}\n{\"c\": @}";
        let oneshot = parse_many_values(text).unwrap_err();
        let streamed = stream_chunked(text, 1).unwrap_err();
        assert_eq!(streamed, oneshot);
        assert_eq!(streamed.pos.line, 2);
        assert_eq!(streamed.pos.offset, text.find('@').unwrap());
    }

    #[test]
    fn stream_is_poisoned_after_error() {
        let mut s = Streamer::new();
        let mut out = Vec::new();
        let err = s.feed(b"[1,] [2]", &mut |v| out.push(v)).unwrap_err();
        assert_eq!(s.feed(b"[3]", &mut |v| out.push(v)), Err(err.clone()));
        assert_eq!(s.finish(&mut |v| out.push(v)), Err(err));
        assert!(out.is_empty());
    }

    #[test]
    fn depth_limit_applies_per_record() {
        let mut s = Streamer::with_options(ParserOptions { max_depth: 4 });
        let mut n = 0usize;
        s.feed(b"[[[1]]] ", &mut |_| n += 1).unwrap();
        assert_eq!(n, 1);
        let err = s.feed(b"[[[[[1]]]]]", &mut |_| n += 1).unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::TooDeep(4)));
    }

    #[test]
    fn invalid_utf8_is_reported_with_position() {
        let mut s = Streamer::new();
        s.feed(b"{\"a\": \"", &mut |_| ()).unwrap();
        s.feed(&[0xFF, 0xFE], &mut |_| ()).unwrap();
        // The bad bytes are inside a string: the error surfaces when the
        // record completes and is parsed as a whole.
        let err = s.feed(b"\"}", &mut |_| ()).unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::InvalidUtf8);
        assert_eq!(err.pos.offset, 7);
    }

    #[test]
    fn unclosed_string_trips_the_record_cap_at_one_byte_chunks() {
        // An unclosed string fed byte by byte must fail with
        // RecordTooLarge once the carry-over passes the cap — not buffer
        // the stream forever.
        let mut s = Streamer::new();
        s.set_max_record_bytes(64);
        let mut n = 0usize;
        s.feed(b"{\"ok\": 1} \"never closes ", &mut |_| n += 1)
            .unwrap();
        assert_eq!(n, 1);
        let mut err = None;
        for _ in 0..1000 {
            if let Err(e) = s.feed(b"x", &mut |_| n += 1) {
                err = Some(e);
                break;
            }
        }
        let err = err.expect("the cap must trip long before 1000 bytes");
        assert_eq!(err.kind, ParseErrorKind::RecordTooLarge(64));
        // The error sits at the record's start, not wherever the cap
        // happened to trip.
        assert_eq!(err.pos.offset, 10);
        // Peak memory stayed O(cap): the carry-over never grew past the
        // limit plus one chunk.
        assert!(s.buf.len() <= 64 + 1, "buf grew to {}", s.buf.len());
        // And the streamer is poisoned like any other error.
        assert_eq!(s.finish(&mut |_| n += 1), Err(err));
    }

    #[test]
    fn records_borrow_when_within_one_chunk() {
        // Smoke: a large single-chunk feed emits all records without
        // touching the carry-over buffer (observable as capacity 0).
        let text: String = (0..100).map(|i| format!("{{\"i\": {i}}} ")).collect();
        let mut s = Streamer::new();
        let mut n = 0usize;
        s.feed(text.as_bytes(), &mut |_| n += 1).unwrap();
        s.finish(&mut |_| n += 1).unwrap();
        assert_eq!(n, 100);
        assert_eq!(s.buf.capacity(), 0, "no record crossed a boundary");
    }
}
