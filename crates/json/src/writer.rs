//! JSON serialization (compact and pretty).

use crate::Json;

/// Serializes a document as compact JSON text.
///
/// ```
/// # use tfd_json::{parse, to_json_string};
/// let doc = parse(r#"{ "a": [1, 2] }"#)?;
/// assert_eq!(to_json_string(&doc), r#"{"a":[1,2]}"#);
/// # Ok::<(), tfd_json::ParseError>(())
/// ```
pub fn to_json_string(doc: &Json) -> String {
    let mut out = String::new();
    write_compact(&mut out, doc);
    out
}

/// Serializes a document with two-space indentation.
pub fn to_json_string_pretty(doc: &Json) -> String {
    let mut out = String::new();
    write_pretty(&mut out, doc, 0);
    out
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders a float: finite values via Rust's shortest-roundtrip `{}` with
/// a `.0` appended to whole numbers so they re-parse as floats; non-finite
/// values (which JSON cannot express) as `null`, the common convention.
fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
    } else if f.fract() == 0.0 && f.abs() < 1e15 {
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn write_compact(out: &mut String, doc: &Json) {
    match doc {
        Json::Int(i) => out.push_str(&i.to_string()),
        Json::Float(f) => write_float(out, *f),
        Json::String(s) => write_string(out, s),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Null => out.push_str("null"),
        Json::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Json::Object(members) => {
            out.push('{');
            for (i, (k, v)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_compact(out, v);
            }
            out.push('}');
        }
    }
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_pretty(out: &mut String, doc: &Json, level: usize) {
    match doc {
        Json::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                indent(out, level + 1);
                write_pretty(out, item, level + 1);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            indent(out, level);
            out.push(']');
        }
        Json::Object(members) if !members.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in members.iter().enumerate() {
                indent(out, level + 1);
                write_string(out, k);
                out.push_str(": ");
                write_pretty(out, v, level + 1);
                if i + 1 < members.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            indent(out, level);
            out.push('}');
        }
        other => write_compact(out, other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn compact_roundtrip() {
        let src = r#"{"a":[1,2.5,null,true,"x\n"],"b":{}}"#;
        let doc = parse(src).unwrap();
        assert_eq!(to_json_string(&doc), src);
    }

    #[test]
    fn floats_keep_float_syntax() {
        assert_eq!(to_json_string(&Json::Float(5.0)), "5.0");
        assert_eq!(to_json_string(&Json::Float(0.25)), "0.25");
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(to_json_string(&Json::Float(f64::NAN)), "null");
        assert_eq!(to_json_string(&Json::Float(f64::INFINITY)), "null");
    }

    #[test]
    fn control_chars_are_escaped() {
        let s = Json::String("\u{1}\u{1f}".into());
        assert_eq!(to_json_string(&s), "\"\\u0001\\u001f\"");
        assert_eq!(parse(&to_json_string(&s)).unwrap(), s);
    }

    #[test]
    fn named_escapes_roundtrip() {
        let original = Json::String("a\"b\\c\nd\re\tf\u{8}g\u{c}h".into());
        let text = to_json_string(&original);
        assert_eq!(parse(&text).unwrap(), original);
    }

    #[test]
    fn pretty_indents() {
        let doc = parse(r#"{"a":[1],"b":2}"#).unwrap();
        let pretty = to_json_string_pretty(&doc);
        assert!(pretty.contains("{\n  \"a\": [\n    1\n  ],\n  \"b\": 2\n}"));
        // Pretty output must re-parse to the same document.
        assert_eq!(parse(&pretty).unwrap(), doc);
    }

    #[test]
    fn pretty_keeps_empty_containers_inline() {
        assert_eq!(to_json_string_pretty(&Json::Array(vec![])), "[]");
        assert_eq!(to_json_string_pretty(&Json::Object(vec![])), "{}");
    }
}
