//! A minimal, dependency-free stand-in for the `criterion` benchmark
//! harness, API-compatible with the subset this workspace uses.
//!
//! The build container has no network access to crates.io, so the real
//! criterion cannot be vendored; this shim keeps the bench sources
//! unchanged and provides honest wall-clock measurements: per benchmark
//! it warms up, then runs timed batches until a time budget is reached
//! and reports the median per-iteration time (plus min/mean) and derived
//! throughput.
//!
//! Supported flags (subset of criterion's CLI):
//!
//! * `--test` — smoke mode: run every benchmark body exactly once.
//! * `--bench` — ignored (passed by `cargo bench`).
//! * `--save-json <path>` — append machine-readable results to a JSON file.
//! * a positional `<filter>` substring selecting benchmark ids.

use std::time::{Duration, Instant};

/// How measured throughput is derived from per-iteration time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iteration processes this many bytes.
    Bytes(u64),
    /// Iteration processes this many elements.
    Elements(u64),
}

/// A benchmark identifier, rendered as `group/param`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    /// An id that is just the parameter (the group name prefixes it).
    pub fn from_parameter(param: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_owned() }
    }
}

/// One measured result, kept for optional JSON export.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Full benchmark id (`group/param`).
    pub id: String,
    /// Median seconds per iteration.
    pub median_s: f64,
    /// Mean seconds per iteration.
    pub mean_s: f64,
    /// Fastest observed seconds per iteration.
    pub min_s: f64,
    /// Declared per-iteration workload, if any.
    pub throughput: Option<Throughput>,
}

impl Measurement {
    /// Derived throughput in units/second, when a workload was declared.
    pub fn per_second(&self) -> Option<f64> {
        match self.throughput {
            Some(Throughput::Bytes(n)) | Some(Throughput::Elements(n)) => {
                Some(n as f64 / self.median_s)
            }
            None => None,
        }
    }
}

/// The benchmark driver (shim of `criterion::Criterion`).
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
    warm_up: Duration,
    measure: Duration,
    save_json: Option<String>,
    results: Vec<Measurement>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        let mut save_json = None;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--test" => test_mode = true,
                "--bench" | "--verbose" | "--quiet" | "-n" | "--noplot" => {}
                "--save-json" => save_json = args.next(),
                s if s.starts_with('-') => {
                    // Swallow `--flag value` style options we don't know.
                    if matches!(s, "--sample-size" | "--measurement-time" | "--warm-up-time") {
                        let _ = args.next();
                    }
                }
                s => filter = Some(s.to_owned()),
            }
        }
        Criterion {
            test_mode,
            filter,
            warm_up: Duration::from_millis(300),
            measure: Duration::from_millis(900),
            save_json,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Configures the measurement time budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measure = d;
        self
    }

    /// Configures the warm-up time per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Accepted for compatibility; the shim sizes samples by time.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into().id;
        self.run_one(id, None, |b| f(b));
        self
    }

    fn selected(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    fn run_one<F>(&mut self, id: String, throughput: Option<Throughput>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if !self.selected(&id) {
            return;
        }
        if self.test_mode {
            let mut b = Bencher {
                mode: Mode::Once,
                samples: Vec::new(),
            };
            f(&mut b);
            println!("test {id} ... ok");
            return;
        }
        // Warm-up: run the body repeatedly until the warm-up budget is spent.
        let start = Instant::now();
        while start.elapsed() < self.warm_up {
            let mut b = Bencher {
                mode: Mode::Once,
                samples: Vec::new(),
            };
            f(&mut b);
        }
        // Measurement: collect per-iteration timings until the budget is spent.
        let mut samples: Vec<f64> = Vec::new();
        let start = Instant::now();
        while start.elapsed() < self.measure || samples.len() < 10 {
            let mut b = Bencher {
                mode: Mode::Timed,
                samples: Vec::new(),
            };
            f(&mut b);
            samples.extend(b.samples);
            if samples.len() >= 5_000_000 {
                break;
            }
        }
        samples.sort_by(f64::total_cmp);
        let median_s = samples[samples.len() / 2];
        let mean_s = samples.iter().sum::<f64>() / samples.len() as f64;
        let min_s = samples[0];
        let m = Measurement {
            id: id.clone(),
            median_s,
            mean_s,
            min_s,
            throughput,
        };
        match m.per_second() {
            Some(rate) => {
                let unit = match throughput {
                    Some(Throughput::Bytes(_)) => "B/s",
                    _ => "elem/s",
                };
                println!(
                    "{id:<40} median {:>12}  ({} {unit})",
                    fmt_time(median_s),
                    fmt_rate(rate)
                );
            }
            None => println!("{id:<40} median {:>12}", fmt_time(median_s)),
        }
        self.results.push(m);
    }

    /// All measurements recorded so far.
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }

    /// Writes results as JSON when `--save-json` was passed.
    pub fn finalize(&self) {
        let Some(path) = &self.save_json else { return };
        let mut out = String::from("[\n");
        for (i, m) in self.results.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&format!(
                "  {{\"id\": \"{}\", \"median_s\": {:e}, \"mean_s\": {:e}, \"min_s\": {:e}{}}}",
                m.id.replace('"', "\\\""),
                m.median_s,
                m.mean_s,
                m.min_s,
                match m.per_second() {
                    Some(r) => format!(", \"per_second\": {r:.1}"),
                    None => String::new(),
                }
            ));
        }
        out.push_str("\n]\n");
        if let Err(e) = std::fs::write(path, out) {
            eprintln!("criterion-shim: could not write {path}: {e}");
        }
    }
}

fn fmt_time(s: f64) -> String {
    if s < 1e-6 {
        format!("{:.1} ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.2} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{s:.3} s")
    }
}

fn fmt_rate(r: f64) -> String {
    if r >= 1e9 {
        format!("{:.2}G", r / 1e9)
    } else if r >= 1e6 {
        format!("{:.2}M", r / 1e6)
    } else if r >= 1e3 {
        format!("{:.1}k", r / 1e3)
    } else {
        format!("{r:.0}")
    }
}

/// A benchmark group (shim of `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration workload for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Accepted for compatibility; the shim sizes samples by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        let throughput = self.throughput;
        self.c.run_one(full, throughput, |b| f(b, input));
        self
    }

    /// Runs a benchmark without input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        let throughput = self.throughput;
        self.c.run_one(full, throughput, |b| f(b));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Once,
    Timed,
}

/// The per-benchmark timer handle (shim of `criterion::Bencher`).
pub struct Bencher {
    mode: Mode,
    samples: Vec<f64>,
}

impl Bencher {
    /// Times repeated runs of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            Mode::Once => {
                std::hint::black_box(routine());
            }
            Mode::Timed => {
                // One calibration run, then a small timed batch; per-call
                // cost is batched to keep Instant overhead negligible.
                let t0 = Instant::now();
                std::hint::black_box(routine());
                let once = t0.elapsed();
                let batch = if once < Duration::from_micros(5) {
                    64
                } else if once < Duration::from_millis(1) {
                    8
                } else {
                    1
                };
                let t1 = Instant::now();
                for _ in 0..batch {
                    std::hint::black_box(routine());
                }
                let per = t1.elapsed().as_secs_f64() / batch as f64;
                self.samples.push(per);
            }
        }
    }

    /// Times runs over batches of a setup-produced input (compat subset).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        match self.mode {
            Mode::Once => {
                std::hint::black_box(routine(setup()));
            }
            Mode::Timed => {
                let input = setup();
                let t = Instant::now();
                std::hint::black_box(routine(input));
                self.samples.push(t.elapsed().as_secs_f64());
            }
        }
    }
}

/// Batch sizing hint (accepted for compatibility).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// Re-export used by `criterion_main!` expansions.
pub use std::hint::black_box;

/// Declares a benchmark group function (criterion-compatible).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
            c.finalize();
        }
    };
}
