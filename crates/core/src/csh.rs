//! The common preferred shape function `csh` (Definition 2, Fig. 2,
//! extended with the labelled-top rules of Fig. 4 and the heterogeneous
//! collections of §6.4).
//!
//! `csh(σ1, σ2)` computes the least upper bound of two ground shapes with
//! respect to the preferred shape relation (Lemma 1). The rules are
//! matched **top to bottom**, which resolves the ambiguity between
//! certain rules — "most importantly (any) is used only as the last
//! resort" (§3.3).
//!
//! Rule order implemented here (each corresponds to a Fig. 2/Fig. 4 rule
//! in the stated priority):
//!
//! 1. `(eq)` equal shapes;
//! 2. `(list)` two collections (including the §6.4 heterogeneous merge);
//! 3. `(bot)` bottom is the identity;
//! 4. `(null)` null makes the other side nullable, `⌈σ⌉`;
//! 5. `(top-merge)`, `(top-incl)`, `(top-add)` — labelled tops (Fig. 4);
//! 6. `(num)` int ⊔ float = float (plus the bit/date extensions);
//! 7. `(opt)` nullable distributes, `⌈csh(σ̂1, σ2)⌉`;
//! 8. `(recd)` same-name records merge field-wise (missing fields become
//!    nullable — the ground minimal row-variable substitution of Fig. 3);
//! 9. `(top-any)` anything else joins to `any⟨⌊σ1⌋, ⌊σ2⌋⟩`.
//!
//! # Allocation discipline
//!
//! `csh` **consumes** its arguments and merges their parts in place — it
//! performs no deep clones. The `S(d1, …, dn)` fold of Fig. 3 builds each
//! per-sample shape exactly once and the accumulator is recycled into the
//! result, so inference over a million rows allocates shape nodes
//! proportional to the *schema*, not the corpus. Record fields merge
//! through a hash index keyed by interned [`Name`]s (O(1) pointer
//! hashing) instead of the previous O(n²) linear scans. Callers that only
//! hold references use [`csh_ref`], which pays for its own clones.

use crate::multiplicity::Multiplicity;
use crate::shape::{FieldShape, RecordShape};
use crate::tags::tag_of;
use crate::Shape;
use std::collections::{HashMap, HashSet};
use tfd_value::Name;

/// Computes the common preferred shape (least upper bound) of two ground
/// shapes, consuming both and reusing their allocations.
///
/// ```
/// use tfd_core::{csh, Shape};
/// assert_eq!(csh(Shape::Int, Shape::Float), Shape::Float);          // (num)
/// assert_eq!(csh(Shape::Null, Shape::Int), Shape::Int.ceil());      // (null)
/// assert_eq!(csh(Shape::Bottom, Shape::Bool), Shape::Bool);         // (bot)
/// assert_eq!(
///     csh(Shape::Int, Shape::String),
///     Shape::Top(vec![Shape::Int, Shape::String])                   // (top-any)
/// );
/// ```
pub fn csh(a: Shape, b: Shape) -> Shape {
    use Shape::*;

    // (eq) — also the base case that keeps csh idempotent.
    if a == b {
        return a;
    }

    match (a, b) {
        // (list) — two homogeneous collections combine their elements,
        // recycling the left box; any combination involving a
        // heterogeneous collection goes through the case merge of §6.4.
        (List(mut ea), List(eb)) => {
            let joined = csh(std::mem::replace(&mut *ea, Bottom), *eb);
            *ea = joined;
            List(ea)
        }
        (a @ (HeteroList(_) | List(_)), b @ (HeteroList(_) | List(_))) => {
            hetero_join(to_cases(a), to_cases(b))
        }

        // (bot)
        (Bottom, s) | (s, Bottom) => s,

        // (null)
        (Null, s) | (s, Null) => s.ceil(),

        // (top-merge) / (top-incl) / (top-add) — Fig. 4. Both directions
        // keep the *left* operand's record fields first: record equality
        // is order-insensitive, but printing is not, and a
        // direction-preserving join is what lets the parallel driver's
        // shard-wise re-association print byte-identically to the
        // sequential fold.
        (Top(la), Top(lb)) => top_merge(la, lb),
        (Top(labels), s) => top_include(labels, s, false),
        (s, Top(labels)) => top_include(labels, s, true),

        // (num) — and the §6.2 extensions: bit joins into int/bool/float,
        // date joins into string.
        (Int | Float, Int | Float) => Float,
        (Bit, Int) | (Int, Bit) => Int,
        (Bit, Bool) | (Bool, Bit) => Bool,
        (Bit, Float) | (Float, Bit) => Float,
        (Date, String) | (String, Date) => String,

        // (opt) — direction-preserving for the same reason as the top
        // rules: the operand whose records were seen earlier stays on
        // the left, so joined field order is first-encounter order under
        // any contiguous re-association of the fold.
        (Nullable(inner), s) => csh(*inner, s).ceil(),
        (s, Nullable(inner)) => csh(s, *inner).ceil(),

        // (recd) — same-name records merge field-wise; a field present on
        // only one side gets `⌈σ⌉` (the minimal ground substitution for
        // the record's row variable, Fig. 3).
        (Record(ra), Record(rb)) if ra.name == rb.name => Record(record_join(ra, rb)),

        // (μ-absorb) — a same-name μ-reference absorbs an inline record
        // occurrence. Env-free, a reference reads as the top of its name
        // class (`is_preferred` agrees: any same-name record is below
        // it), so the reference is the least upper bound here. Callers
        // holding an environment should prefer [`csh_in`], which
        // *widens* the definition with the occurrence instead of
        // appealing to the class-top reading.
        (Ref(n), Record(r)) | (Record(r), Ref(n)) if r.name == n => Ref(n),

        // (top-any) / (any) — the last resort. Labels are kept in the
        // canonical tag order so that csh is commutative on the nose.
        (a, b) => {
            let mut labels = vec![a.floor(), b.floor()];
            labels.sort_by_key(tag_of);
            Top(labels)
        }
    }
}

/// [`csh`] under a shape environment, consuming both shapes and widening
/// the environment in place.
///
/// Both arguments are first absorbed into `env` ([`crate::ShapeEnv::absorb`]):
/// every record whose name has a definition is joined into that
/// definition and replaced by a [`Shape::Ref`]. The plain join then only
/// ever meets references of equal names (`(eq)`) or of different tags
/// (`(top-any)`), so the μ-unfolding never loops: the join side
/// terminates by canonicalizing first, and the relation side is
/// name-decided for reference pairs (see `prefer`'s module docs).
///
/// ```
/// use tfd_core::{csh_in, RecordShape, Shape, ShapeEnv};
///
/// let mut env = ShapeEnv::from_defs([(
///     "div".into(),
///     RecordShape::new("div", [("x", Shape::Int)]),
/// )]);
/// let fresh = Shape::record("div", [("y", Shape::Bool)]);
/// let joined = csh_in(Shape::Ref("div".into()), fresh, &mut env);
/// assert_eq!(joined, Shape::Ref("div".into()));
/// // The definition widened to carry both (now optional) fields:
/// let def = env.get("div".into()).unwrap();
/// assert_eq!(def.field("y"), Some(&Shape::Bool.ceil()));
/// ```
pub fn csh_in(a: Shape, b: Shape, env: &mut crate::ShapeEnv) -> Shape {
    // References without a definition get one seeded (empty) first, so
    // a same-name record on the other side widens the new definition
    // rather than vanishing into the env-free class-top rule — the join
    // stays an upper bound even when a hand-built shape's references
    // outrun the table.
    env.seed_dangling(&a);
    env.seed_dangling(&b);
    let a = env.absorb(a);
    let b = env.absorb(b);
    csh(a, b)
}

/// Folds `csh` over any number of shapes, starting from ⊥ — the
/// `S(d1, …, dn)` accumulation of Fig. 3.
///
/// ```
/// use tfd_core::{csh_all, Shape};
/// assert_eq!(csh_all([Shape::Int, Shape::Float, Shape::Null]), Shape::Float.ceil());
/// assert_eq!(csh_all(std::iter::empty()), Shape::Bottom);
/// ```
pub fn csh_all<I>(shapes: I) -> Shape
where
    I: IntoIterator<Item = Shape>,
{
    shapes.into_iter().fold(Shape::Bottom, csh)
}

/// Field-wise record merge. Consumes both records; the right side's
/// fields are located through a hash index over interned names, so a
/// width-w join is O(w) rather than the O(w²) of repeated linear scans.
fn record_join(a: RecordShape, b: RecordShape) -> RecordShape {
    debug_assert_eq!(a.name, b.name);
    let name = a.name;
    // Index b's fields by name; each b-field is consumed by at most one
    // a-field. Records with *duplicate* field names (degenerate, but
    // constructible from JSON duplicate keys) join the first duplicate
    // against b's field and treat later duplicates as a-only (they come
    // out nullable).
    let mut b_index: HashMap<Name, usize> = HashMap::with_capacity(b.fields.len());
    for (i, fb) in b.fields.iter().enumerate() {
        b_index.entry(fb.name).or_insert(i);
    }
    let mut b_fields: Vec<Option<FieldShape>> = b.fields.into_iter().map(Some).collect();
    let mut a_names: HashSet<Name> = HashSet::with_capacity(a.fields.len());

    let mut fields: Vec<FieldShape> = Vec::with_capacity(a.fields.len().max(b_fields.len()));
    for fa in a.fields {
        a_names.insert(fa.name);
        let shape = match b_index.get(&fa.name).and_then(|&i| b_fields[i].take()) {
            Some(fb) => csh(fa.shape, fb.shape),
            None => fa.shape.ceil(),
        };
        fields.push(FieldShape {
            name: fa.name,
            shape,
        });
    }
    for fb in b_fields.into_iter().flatten() {
        if !a_names.contains(&fb.name) {
            fields.push(FieldShape {
                name: fb.name,
                shape: fb.shape.ceil(),
            });
        }
    }
    RecordShape { name, fields }
}

/// (top-merge): group the labels of two tops by tag; same-tag labels are
/// joined with `csh`, the rest are concatenated.
fn top_merge(la: Vec<Shape>, lb: Vec<Shape>) -> Shape {
    let mut labels = la;
    for sb in lb {
        merge_label(&mut labels, sb, false);
    }
    labels.sort_by_key(tag_of);
    Shape::Top(labels)
}

/// (top-incl)/(top-add): absorb one non-top shape into a labelled top.
/// Tops implicitly permit null, so the incoming label is stripped to its
/// non-nullable core with `⌊−⌋` (and a bare `null`/`⊥` adds no label).
/// `incoming_left` records which side of the join the incoming shape
/// came from, so the same-tag label join keeps the earlier operand's
/// record fields first.
fn top_include(labels: Vec<Shape>, s: Shape, incoming_left: bool) -> Shape {
    let mut labels = labels;
    let core = s.floor();
    if !matches!(core, Shape::Null | Shape::Bottom) {
        merge_label(&mut labels, core, incoming_left);
    }
    labels.sort_by_key(tag_of);
    Shape::Top(labels)
}

fn merge_label(labels: &mut Vec<Shape>, incoming: Shape, incoming_left: bool) {
    let tag = tag_of(&incoming);
    if let Some(existing) = labels.iter_mut().find(|l| tag_of(l) == tag) {
        // csh of two same-tag labels never reaches (top-any): by
        // construction of tags they join below the top shape. The floor
        // keeps the invariant that labels are non-nullable.
        let old = std::mem::replace(existing, Shape::Bottom);
        *existing = if incoming_left {
            csh(incoming, old)
        } else {
            csh(old, incoming)
        }
        .floor();
    } else {
        labels.push(incoming);
    }
}

/// Views a collection shape as §6.4 cases (see `prefer::to_cases`),
/// consuming it.
fn to_cases(shape: Shape) -> Vec<(Shape, Multiplicity)> {
    match shape {
        Shape::HeteroList(cases) => cases,
        Shape::List(e) if *e == Shape::Bottom => Vec::new(),
        Shape::List(e) => vec![(*e, Multiplicity::Many)],
        _ => unreachable!("to_cases called on a non-collection shape"),
    }
}

#[allow(clippy::expect_used)] // checked invariant, documented at each site
/// §6.4: "We merge cases with the same tag (by finding their common
/// shape) and calculate their new shared multiplicity."
fn hetero_join(a: Vec<(Shape, Multiplicity)>, b: Vec<(Shape, Multiplicity)>) -> Shape {
    let mut b_slots: Vec<Option<(Shape, Multiplicity)>> = b.into_iter().map(Some).collect();
    let mut cases: Vec<(Shape, Multiplicity)> = Vec::with_capacity(a.len() + b_slots.len());
    for (sa, ma) in a {
        let tag = tag_of(&sa);
        let hit = b_slots
            .iter_mut()
            .find(|slot| slot.as_ref().is_some_and(|(sb, _)| tag_of(sb) == tag));
        match hit {
            Some(slot) => {
                let (sb, mb) = slot.take().expect("slot checked non-empty");
                cases.push((csh(sa, sb), ma.join(mb)));
            }
            None => cases.push((sa, ma.join_absent())),
        }
    }
    for (sb, mb) in b_slots.into_iter().flatten() {
        cases.push((sb, mb.join_absent()));
    }
    cases.sort_by_key(|(s, _)| tag_of(s));
    Shape::HeteroList(cases)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csh_ref;

    /// Tests build shapes from this instead of cloning, keeping this
    /// file free of `clone` calls (the production join performs none).
    fn dup(s: &Shape) -> Shape {
        s.to_owned()
    }
    use crate::multiplicity::Multiplicity::{Many, One, ZeroOrOne};
    use crate::prefer::is_preferred;
    use Shape::*;

    fn rec(name: &str, fields: Vec<(&str, Shape)>) -> Shape {
        Shape::record(name, fields)
    }

    // --- One test per Fig. 2 rule ---

    #[test]
    fn rule_eq() {
        for s in [Int, Null, Bottom, Shape::any(), Shape::list(Bool)] {
            assert_eq!(csh_ref(&s, &s), s);
        }
    }

    #[test]
    fn rule_list() {
        assert_eq!(
            csh_ref(&Shape::list(Int), &Shape::list(Float)),
            Shape::list(Float)
        );
        assert_eq!(
            csh_ref(&Shape::list(Bottom), &Shape::list(Int)),
            Shape::list(Int)
        );
    }

    #[test]
    fn rule_bot() {
        assert_eq!(csh_ref(&Bottom, &Int), Int);
        assert_eq!(csh_ref(&Int, &Bottom), Int);
        assert_eq!(csh_ref(&Bottom, &Null), Null);
    }

    #[test]
    fn rule_null() {
        assert_eq!(csh_ref(&Null, &Int), Int.ceil());
        assert_eq!(csh_ref(&Int, &Null), Int.ceil());
        // ⌈−⌉ leaves already-nullable shapes alone:
        assert_eq!(csh_ref(&Null, &Shape::list(Int)), Shape::list(Int));
        assert_eq!(csh_ref(&Null, &Int.ceil()), Int.ceil());
        assert_eq!(csh_ref(&Null, &Shape::any()), Shape::any());
    }

    #[test]
    fn rule_top() {
        // Fig. 2 (top): csh(any, σ) = any — with Fig. 4 labels recorded.
        assert!(csh_ref(&Shape::any(), &Int).is_top());
        assert!(csh_ref(&Int, &Shape::any()).is_top());
    }

    #[test]
    fn rule_num() {
        assert_eq!(csh_ref(&Int, &Float), Float);
        assert_eq!(csh_ref(&Float, &Int), Float);
    }

    #[test]
    fn rule_opt() {
        // csh(nullable σ̂1, σ2) = ⌈csh(σ̂1, σ2)⌉
        assert_eq!(csh_ref(&Int.ceil(), &Float), Float.ceil());
        assert_eq!(csh_ref(&Float, &Int.ceil()), Float.ceil());
        assert_eq!(csh_ref(&Int.ceil(), &Float.ceil()), Float.ceil());
    }

    #[test]
    fn rule_recd() {
        let a = rec("P", vec![("x", Int), ("y", Int)]);
        let b = rec("P", vec![("x", Float), ("y", Int)]);
        assert_eq!(csh_ref(&a, &b), rec("P", vec![("x", Float), ("y", Int)]));
    }

    #[test]
    fn rule_recd_missing_fields_become_nullable() {
        // The §3.1 example: Point {x ↦ 3} ⊔ Point {x ↦ 3, y ↦ 4}
        // = Point {x : int, y : nullable int}.
        let narrow = rec("Point", vec![("x", Int)]);
        let wide = rec("Point", vec![("x", Int), ("y", Int)]);
        let expected = rec("Point", vec![("x", Int), ("y", Int.ceil())]);
        assert_eq!(csh_ref(&narrow, &wide), expected);
        assert_eq!(csh_ref(&wide, &narrow), expected);
    }

    #[test]
    fn rule_any_as_last_resort() {
        assert_eq!(csh_ref(&Int, &String), Top(vec![Int, String]));
        assert_eq!(csh_ref(&Bool, &String), Top(vec![Bool, String]));
        // Records with different names do not merge:
        let p = rec("P", vec![("x", Int)]);
        let q = rec("Q", vec![("x", Int)]);
        assert_eq!(csh_ref(&p, &q), Top(vec![dup(&p), dup(&q)]));
    }

    // --- Fig. 4 labelled-top rules ---

    #[test]
    fn top_any_strips_nullability_of_labels() {
        // (opt) fires first on nullable int, then (top-any) builds the
        // labels with ⌊−⌋ applied, and the outer ⌈−⌉ leaves the top
        // unchanged (tops already permit null): the result is
        // any⟨int, string⟩, not any⟨nullable int, string⟩.
        assert_eq!(csh_ref(&Int.ceil(), &String), Top(vec![Int, String]));
    }

    #[test]
    fn top_incl_joins_same_tag_label() {
        let top = Top(vec![Int, Bool]);
        // float has tag "number" like int: (top-incl) joins them.
        assert_eq!(csh_ref(&top, &Float), Top(vec![Float, Bool]));
        assert_eq!(csh_ref(&Float, &top), Top(vec![Float, Bool]));
    }

    #[test]
    fn top_add_appends_new_tag() {
        let top = Top(vec![Int]);
        assert_eq!(csh_ref(&top, &String), Top(vec![Int, String]));
    }

    #[test]
    fn top_merge_groups_by_tag() {
        let ta = Top(vec![Int, Bool]);
        let tb = Top(vec![Float, String]);
        assert_eq!(csh_ref(&ta, &tb), Top(vec![Float, Bool, String]));
    }

    #[test]
    fn paper_example_no_nested_tops() {
        // "Rather than inferring any⟨int, any⟨bool, float⟩⟩, our algorithm
        // joins int and float and produces any⟨float, bool⟩."
        let s1 = csh_ref(&Int, &Bool); // any⟨int, bool⟩
        let s2 = csh_ref(&s1, &Float);
        assert_eq!(s2, Top(vec![Float, Bool]));
    }

    #[test]
    fn top_absorbs_null_without_label() {
        let top = Top(vec![Int]);
        assert_eq!(csh_ref(&top, &Null), Top(vec![Int]));
        assert_eq!(csh_ref(&Null, &top), Top(vec![Int]));
    }

    #[test]
    fn top_label_from_nullable_is_floored() {
        let top = Top(vec![String]);
        assert_eq!(csh_ref(&top, &Int.ceil()), Top(vec![Int, String]));
    }

    #[test]
    fn top_merges_same_name_records() {
        let p1 = rec("P", vec![("x", Int)]);
        let p2 = rec("P", vec![("y", Bool)]);
        let top = Top(vec![dup(&p1)]);
        let joined = csh_ref(&top, &p2);
        let expected = rec("P", vec![("x", Int.ceil()), ("y", Bool.ceil())]);
        assert_eq!(joined, Top(vec![expected]));
    }

    // --- Extensions ---

    #[test]
    fn bit_joins() {
        assert_eq!(csh_ref(&Bit, &Bit), Bit);
        assert_eq!(csh_ref(&Bit, &Int), Int);
        assert_eq!(csh_ref(&Bit, &Bool), Bool);
        assert_eq!(csh_ref(&Bit, &Float), Float);
        assert_eq!(csh_ref(&Bool, &Bit), Bool);
    }

    #[test]
    fn date_joins() {
        assert_eq!(csh_ref(&Date, &Date), Date);
        assert_eq!(csh_ref(&Date, &String), String);
        assert_eq!(csh_ref(&String, &Date), String);
        // date vs number falls to the top:
        assert_eq!(csh_ref(&Date, &Int), Top(vec![Int, Date]));
    }

    #[test]
    fn hetero_merges_same_tag_cases() {
        let r1 = rec("•", vec![("a", Int)]);
        let r2 = rec("•", vec![("a", Float)]);
        let ha = HeteroList(vec![(r1, One)]);
        let hb = HeteroList(vec![(dup(&r2), One)]);
        assert_eq!(csh_ref(&ha, &hb), HeteroList(vec![(r2, One)]));
    }

    #[test]
    fn hetero_one_and_absent_becomes_zero_or_one() {
        let r = rec("•", vec![("a", Int)]);
        let ha = HeteroList(vec![(dup(&r), One)]);
        let hb = HeteroList(vec![]);
        assert_eq!(csh_ref(&ha, &hb), HeteroList(vec![(r, ZeroOrOne)]));
    }

    #[test]
    fn hetero_absorbs_homogeneous_list() {
        let r = rec("•", vec![("a", Int)]);
        let hetero = HeteroList(vec![(dup(&r), One)]);
        let homog = Shape::list(dup(&r));
        assert_eq!(csh_ref(&hetero, &homog), HeteroList(vec![(r, Many)]));
    }

    #[test]
    fn empty_list_is_hetero_identity() {
        let r = rec("•", vec![("a", Int)]);
        let hetero = HeteroList(vec![(dup(&r), One)]);
        let empty = Shape::list(Bottom);
        assert_eq!(csh_ref(&hetero, &empty), HeteroList(vec![(r, ZeroOrOne)]));
    }

    // --- Lemma 1: csh is the least upper bound ---

    #[test]
    fn lemma1_upper_bound_on_samples() {
        let shapes = [
            Bottom,
            Null,
            Int,
            Float,
            Bool,
            String,
            Int.ceil(),
            Shape::list(Int),
            Shape::list(Float.ceil()),
            rec("P", vec![("x", Int)]),
            rec("P", vec![("x", Float), ("y", Bool)]),
            rec("Q", vec![("z", String)]),
            Shape::any(),
            Top(vec![Int, Bool]),
        ];
        for a in &shapes {
            for b in &shapes {
                let j = csh_ref(a, b);
                assert!(is_preferred(a, &j), "{a} ⋢ csh({a}, {b}) = {j}");
                assert!(is_preferred(b, &j), "{b} ⋢ csh({a}, {b}) = {j}");
            }
        }
    }

    #[test]
    fn csh_commutes_on_samples() {
        let shapes = [
            Null,
            Int,
            Float,
            String,
            Int.ceil(),
            Shape::list(Int),
            rec("P", vec![("x", Int)]),
            rec("P", vec![("y", Bool)]),
            Top(vec![Int]),
        ];
        for a in &shapes {
            for b in &shapes {
                assert_eq!(
                    csh_ref(a, b),
                    csh_ref(b, a),
                    "csh not commutative on {a}, {b}"
                );
            }
        }
    }

    #[test]
    fn csh_all_folds_from_bottom() {
        assert_eq!(csh_all([]), Bottom);
        assert_eq!(csh_all([Int]), Int);
        assert_eq!(csh_all([Int, Float, Null]), Float.ceil());
    }

    // --- μ-references ---

    #[test]
    fn refs_join_by_eq_and_absorb_same_name_records() {
        let r = Ref("div".into());
        assert_eq!(csh_ref(&r, &r), r);
        // Same-name record occurrences collapse into the reference:
        let occ = rec("div", vec![("x", Int)]);
        assert_eq!(csh_ref(&r, &occ), r);
        assert_eq!(csh_ref(&occ, &r), r);
        // null makes the reference nullable like any record:
        assert_eq!(csh_ref(&Null, &r), dup(&r).ceil());
        // Different names tag apart and fall to the labelled top:
        let s = Ref("span".into());
        let joined = csh_ref(&r, &s);
        assert_eq!(joined, Top(vec![dup(&r), dup(&s)]));
    }

    #[test]
    fn refs_group_with_same_name_records_in_tops() {
        let r = Ref("div".into());
        let top = Top(vec![Int, dup(&r)]);
        let occ = rec("div", vec![("x", Int)]);
        // (top-incl): the record merges into the same-tag ref label.
        assert_eq!(csh_ref(&top, &occ), Top(vec![Int, dup(&r)]));
    }

    /// A reference whose name has no definition yet: `csh_in` seeds an
    /// empty definition first, so the same-name record's fields widen
    /// the new class instead of vanishing into the env-free class-top
    /// rule — the join stays an upper bound (regression for a review
    /// finding).
    #[test]
    fn csh_in_seeds_dangling_refs_instead_of_dropping_fields() {
        use crate::{csh_in, is_preferred_in, ShapeEnv};
        let mut env = ShapeEnv::new();
        let occurrence = rec("b", vec![("x", Int)]);
        let joined = csh_in(Ref("b".into()), dup(&occurrence), &mut env);
        assert_eq!(joined, Ref("b".into()));
        let def = env.get("b".into()).expect("dangling ref got a definition");
        assert_eq!(def.field("x"), Some(&Int.ceil()), "fields must not vanish");
        assert!(
            is_preferred_in(&occurrence, &joined, Some(&env)),
            "the join must remain an upper bound of the record side"
        );
    }

    /// Cycle-cut termination proof for the join side: absorbing a deep
    /// recursive spelling into a self-referential definition terminates
    /// and widens the definition exactly once per field.
    #[test]
    fn csh_in_terminates_on_recursive_spellings() {
        use crate::{csh_in, RecordShape, ShapeEnv};
        let mut env = ShapeEnv::from_defs([(
            "div".into(),
            RecordShape::new("div", [("child", Ref("div".into()).ceil())]),
        )]);
        // div{child: div{child: div{y}}} — three nested occurrences.
        let deep = rec(
            "div",
            vec![(
                "child",
                rec("div", vec![("child", rec("div", vec![("y", Bool)]))]),
            )],
        );
        let out = csh_in(Ref("div".into()), deep, &mut env);
        assert_eq!(out, Ref("div".into()));
        let def = env.get("div".into()).unwrap();
        assert_eq!(def.field("child"), Some(&Ref("div".into()).ceil()));
        assert_eq!(def.field("y"), Some(&Bool.ceil()));
    }
}
