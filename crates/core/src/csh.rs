//! The common preferred shape function `csh` (Definition 2, Fig. 2,
//! extended with the labelled-top rules of Fig. 4 and the heterogeneous
//! collections of §6.4).
//!
//! `csh(σ1, σ2)` computes the least upper bound of two ground shapes with
//! respect to the preferred shape relation (Lemma 1). The rules are
//! matched **top to bottom**, which resolves the ambiguity between
//! certain rules — "most importantly (any) is used only as the last
//! resort" (§3.3).
//!
//! Rule order implemented here (each corresponds to a Fig. 2/Fig. 4 rule
//! in the stated priority):
//!
//! 1. `(eq)` equal shapes;
//! 2. `(list)` two collections (including the §6.4 heterogeneous merge);
//! 3. `(bot)` bottom is the identity;
//! 4. `(null)` null makes the other side nullable, `⌈σ⌉`;
//! 5. `(top-merge)`, `(top-incl)`, `(top-add)` — labelled tops (Fig. 4);
//! 6. `(num)` int ⊔ float = float (plus the bit/date extensions);
//! 7. `(opt)` nullable distributes, `⌈csh(σ̂1, σ2)⌉`;
//! 8. `(recd)` same-name records merge field-wise (missing fields become
//!    nullable — the ground minimal row-variable substitution of Fig. 3);
//! 9. `(top-any)` anything else joins to `any⟨⌊σ1⌋, ⌊σ2⌋⟩`.

use crate::multiplicity::Multiplicity;
use crate::shape::{FieldShape, RecordShape};
use crate::tags::tag_of;
use crate::Shape;

/// Computes the common preferred shape (least upper bound) of two ground
/// shapes.
///
/// ```
/// use tfd_core::{csh, Shape};
/// assert_eq!(csh(&Shape::Int, &Shape::Float), Shape::Float);          // (num)
/// assert_eq!(csh(&Shape::Null, &Shape::Int), Shape::Int.ceil());      // (null)
/// assert_eq!(csh(&Shape::Bottom, &Shape::Bool), Shape::Bool);         // (bot)
/// assert_eq!(
///     csh(&Shape::Int, &Shape::String),
///     Shape::Top(vec![Shape::Int, Shape::String])                     // (top-any)
/// );
/// ```
pub fn csh(a: &Shape, b: &Shape) -> Shape {
    use Shape::*;

    // (eq) — also the base case that keeps csh idempotent.
    if a == b {
        return a.clone();
    }

    match (a, b) {
        // (list) — two homogeneous collections combine their elements;
        // any combination involving a heterogeneous collection goes
        // through the case merge of §6.4.
        (List(ea), List(eb)) => Shape::list(csh(ea, eb)),
        (HeteroList(_) | List(_), HeteroList(_) | List(_)) => {
            hetero_join(&to_cases(a), &to_cases(b))
        }

        // (bot)
        (Bottom, s) | (s, Bottom) => s.clone(),

        // (null)
        (Null, s) | (s, Null) => s.clone().ceil(),

        // (top-merge) / (top-incl) / (top-add) — Fig. 4.
        (Top(la), Top(lb)) => top_merge(la, lb),
        (Top(labels), s) | (s, Top(labels)) => top_include(labels, s),

        // (num) — and the §6.2 extensions: bit joins into int/bool/float,
        // date joins into string.
        (Int | Float, Int | Float) => Float,
        (Bit, Int) | (Int, Bit) => Int,
        (Bit, Bool) | (Bool, Bit) => Bool,
        (Bit, Float) | (Float, Bit) => Float,
        (Date, String) | (String, Date) => String,

        // (opt)
        (Nullable(inner), s) | (s, Nullable(inner)) => csh(inner, s).ceil(),

        // (recd) — same-name records merge field-wise; a field present on
        // only one side gets `⌈σ⌉` (the minimal ground substitution for
        // the record's row variable, Fig. 3).
        (Record(ra), Record(rb)) if ra.name == rb.name => {
            Record(record_join(ra, rb))
        }

        // (top-any) / (any) — the last resort. Labels are kept in the
        // canonical tag order so that csh is commutative on the nose.
        (a, b) => {
            let mut labels = vec![a.clone().floor(), b.clone().floor()];
            labels.sort_by_key(tag_of);
            Top(labels)
        }
    }
}

/// Folds `csh` over any number of shapes, starting from ⊥ — the
/// `S(d1, …, dn)` accumulation of Fig. 3.
///
/// ```
/// use tfd_core::{csh_all, Shape};
/// assert_eq!(csh_all([Shape::Int, Shape::Float, Shape::Null]), Shape::Float.ceil());
/// assert_eq!(csh_all(std::iter::empty()), Shape::Bottom);
/// ```
pub fn csh_all<I>(shapes: I) -> Shape
where
    I: IntoIterator<Item = Shape>,
{
    shapes
        .into_iter()
        .fold(Shape::Bottom, |acc, s| csh(&acc, &s))
}

fn record_join(a: &RecordShape, b: &RecordShape) -> RecordShape {
    debug_assert_eq!(a.name, b.name);
    let mut fields: Vec<FieldShape> = Vec::with_capacity(a.fields.len().max(b.fields.len()));
    for fa in &a.fields {
        let shape = match b.field(&fa.name) {
            Some(sb) => csh(&fa.shape, sb),
            None => fa.shape.clone().ceil(),
        };
        fields.push(FieldShape::new(fa.name.clone(), shape));
    }
    for fb in &b.fields {
        if a.field(&fb.name).is_none() {
            fields.push(FieldShape::new(fb.name.clone(), fb.shape.clone().ceil()));
        }
    }
    RecordShape { name: a.name.clone(), fields }
}

/// (top-merge): group the labels of two tops by tag; same-tag labels are
/// joined with `csh`, the rest are concatenated.
fn top_merge(la: &[Shape], lb: &[Shape]) -> Shape {
    let mut labels: Vec<Shape> = la.to_vec();
    for sb in lb {
        merge_label(&mut labels, sb.clone());
    }
    labels.sort_by_key(tag_of);
    Shape::Top(labels)
}

/// (top-incl)/(top-add): absorb one non-top shape into a labelled top.
/// Tops implicitly permit null, so the incoming label is stripped to its
/// non-nullable core with `⌊−⌋` (and a bare `null`/`⊥` adds no label).
fn top_include(labels: &[Shape], s: &Shape) -> Shape {
    let mut labels = labels.to_vec();
    let core = s.clone().floor();
    if !matches!(core, Shape::Null | Shape::Bottom) {
        merge_label(&mut labels, core);
    }
    labels.sort_by_key(tag_of);
    Shape::Top(labels)
}

fn merge_label(labels: &mut Vec<Shape>, incoming: Shape) {
    let tag = tag_of(&incoming);
    if let Some(existing) = labels.iter_mut().find(|l| tag_of(l) == tag) {
        // csh of two same-tag labels never reaches (top-any): by
        // construction of tags they join below the top shape. The floor
        // keeps the invariant that labels are non-nullable.
        *existing = csh(existing, &incoming).floor();
    } else {
        labels.push(incoming);
    }
}

/// Views a collection shape as §6.4 cases (see `prefer::to_cases`).
fn to_cases(shape: &Shape) -> Vec<(Shape, Multiplicity)> {
    match shape {
        Shape::HeteroList(cases) => cases.clone(),
        Shape::List(e) if **e == Shape::Bottom => Vec::new(),
        Shape::List(e) => vec![((**e).clone(), Multiplicity::Many)],
        _ => unreachable!("to_cases called on a non-collection shape"),
    }
}

/// §6.4: "We merge cases with the same tag (by finding their common
/// shape) and calculate their new shared multiplicity."
fn hetero_join(
    a: &[(Shape, Multiplicity)],
    b: &[(Shape, Multiplicity)],
) -> Shape {
    let mut cases: Vec<(Shape, Multiplicity)> = Vec::new();
    for (sa, ma) in a {
        match b.iter().find(|(sb, _)| tag_of(sb) == tag_of(sa)) {
            Some((sb, mb)) => cases.push((csh(sa, sb), ma.join(*mb))),
            None => cases.push((sa.clone(), ma.join_absent())),
        }
    }
    for (sb, mb) in b {
        if !a.iter().any(|(sa, _)| tag_of(sa) == tag_of(sb)) {
            cases.push((sb.clone(), mb.join_absent()));
        }
    }
    cases.sort_by_key(|(s, _)| tag_of(s));
    Shape::HeteroList(cases)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multiplicity::Multiplicity::{Many, One, ZeroOrOne};
    use crate::prefer::is_preferred;
    use Shape::*;

    fn rec(name: &str, fields: Vec<(&str, Shape)>) -> Shape {
        Shape::record(name, fields)
    }

    // --- One test per Fig. 2 rule ---

    #[test]
    fn rule_eq() {
        for s in [Int, Null, Bottom, Shape::any(), Shape::list(Bool)] {
            assert_eq!(csh(&s, &s), s);
        }
    }

    #[test]
    fn rule_list() {
        assert_eq!(
            csh(&Shape::list(Int), &Shape::list(Float)),
            Shape::list(Float)
        );
        assert_eq!(
            csh(&Shape::list(Bottom), &Shape::list(Int)),
            Shape::list(Int)
        );
    }

    #[test]
    fn rule_bot() {
        assert_eq!(csh(&Bottom, &Int), Int);
        assert_eq!(csh(&Int, &Bottom), Int);
        assert_eq!(csh(&Bottom, &Null), Null);
    }

    #[test]
    fn rule_null() {
        assert_eq!(csh(&Null, &Int), Int.ceil());
        assert_eq!(csh(&Int, &Null), Int.ceil());
        // ⌈−⌉ leaves already-nullable shapes alone:
        assert_eq!(csh(&Null, &Shape::list(Int)), Shape::list(Int));
        assert_eq!(csh(&Null, &Int.ceil()), Int.ceil());
        assert_eq!(csh(&Null, &Shape::any()), Shape::any());
    }

    #[test]
    fn rule_top() {
        // Fig. 2 (top): csh(any, σ) = any — with Fig. 4 labels recorded.
        assert!(csh(&Shape::any(), &Int).is_top());
        assert!(csh(&Int, &Shape::any()).is_top());
    }

    #[test]
    fn rule_num() {
        assert_eq!(csh(&Int, &Float), Float);
        assert_eq!(csh(&Float, &Int), Float);
    }

    #[test]
    fn rule_opt() {
        // csh(nullable σ̂1, σ2) = ⌈csh(σ̂1, σ2)⌉
        assert_eq!(csh(&Int.ceil(), &Float), Float.ceil());
        assert_eq!(csh(&Float, &Int.ceil()), Float.ceil());
        assert_eq!(csh(&Int.ceil(), &Float.ceil()), Float.ceil());
    }

    #[test]
    fn rule_recd() {
        let a = rec("P", vec![("x", Int), ("y", Int)]);
        let b = rec("P", vec![("x", Float), ("y", Int)]);
        assert_eq!(csh(&a, &b), rec("P", vec![("x", Float), ("y", Int)]));
    }

    #[test]
    fn rule_recd_missing_fields_become_nullable() {
        // The §3.1 example: Point {x ↦ 3} ⊔ Point {x ↦ 3, y ↦ 4}
        // = Point {x : int, y : nullable int}.
        let narrow = rec("Point", vec![("x", Int)]);
        let wide = rec("Point", vec![("x", Int), ("y", Int)]);
        let expected = rec("Point", vec![("x", Int), ("y", Int.ceil())]);
        assert_eq!(csh(&narrow, &wide), expected);
        assert_eq!(csh(&wide, &narrow), expected);
    }

    #[test]
    fn rule_any_as_last_resort() {
        assert_eq!(csh(&Int, &String), Top(vec![Int, String]));
        assert_eq!(csh(&Bool, &String), Top(vec![Bool, String]));
        // Records with different names do not merge:
        let p = rec("P", vec![("x", Int)]);
        let q = rec("Q", vec![("x", Int)]);
        assert_eq!(csh(&p, &q), Top(vec![p.clone(), q.clone()]));
    }

    // --- Fig. 4 labelled-top rules ---

    #[test]
    fn top_any_strips_nullability_of_labels() {
        // (opt) fires first on nullable int, then (top-any) builds the
        // labels with ⌊−⌋ applied, and the outer ⌈−⌉ leaves the top
        // unchanged (tops already permit null): the result is
        // any⟨int, string⟩, not any⟨nullable int, string⟩.
        assert_eq!(csh(&Int.ceil(), &String), Top(vec![Int, String]));
    }

    #[test]
    fn top_incl_joins_same_tag_label() {
        let top = Top(vec![Int, Bool]);
        // float has tag "number" like int: (top-incl) joins them.
        assert_eq!(csh(&top, &Float), Top(vec![Float, Bool]));
        assert_eq!(csh(&Float, &top), Top(vec![Float, Bool]));
    }

    #[test]
    fn top_add_appends_new_tag() {
        let top = Top(vec![Int]);
        assert_eq!(csh(&top, &String), Top(vec![Int, String]));
    }

    #[test]
    fn top_merge_groups_by_tag() {
        let ta = Top(vec![Int, Bool]);
        let tb = Top(vec![Float, String]);
        assert_eq!(csh(&ta, &tb), Top(vec![Float, Bool, String]));
    }

    #[test]
    fn paper_example_no_nested_tops() {
        // "Rather than inferring any⟨int, any⟨bool, float⟩⟩, our algorithm
        // joins int and float and produces any⟨float, bool⟩."
        let s1 = csh(&Int, &Bool); // any⟨int, bool⟩
        let s2 = csh(&s1, &Float);
        assert_eq!(s2, Top(vec![Float, Bool]));
    }

    #[test]
    fn top_absorbs_null_without_label() {
        let top = Top(vec![Int]);
        assert_eq!(csh(&top, &Null), Top(vec![Int]));
        assert_eq!(csh(&Null, &top), Top(vec![Int]));
    }

    #[test]
    fn top_label_from_nullable_is_floored() {
        let top = Top(vec![String]);
        assert_eq!(csh(&top, &Int.ceil()), Top(vec![Int, String]));
    }

    #[test]
    fn top_merges_same_name_records() {
        let p1 = rec("P", vec![("x", Int)]);
        let p2 = rec("P", vec![("y", Bool)]);
        let top = Top(vec![p1.clone()]);
        let joined = csh(&top, &p2);
        let expected = rec("P", vec![("x", Int.ceil()), ("y", Bool.ceil())]);
        assert_eq!(joined, Top(vec![expected]));
    }

    // --- Extensions ---

    #[test]
    fn bit_joins() {
        assert_eq!(csh(&Bit, &Bit), Bit);
        assert_eq!(csh(&Bit, &Int), Int);
        assert_eq!(csh(&Bit, &Bool), Bool);
        assert_eq!(csh(&Bit, &Float), Float);
        assert_eq!(csh(&Bool, &Bit), Bool);
    }

    #[test]
    fn date_joins() {
        assert_eq!(csh(&Date, &Date), Date);
        assert_eq!(csh(&Date, &String), String);
        assert_eq!(csh(&String, &Date), String);
        // date vs number falls to the top:
        assert_eq!(csh(&Date, &Int), Top(vec![Int, Date]));
    }

    #[test]
    fn hetero_merges_same_tag_cases() {
        let r1 = rec("•", vec![("a", Int)]);
        let r2 = rec("•", vec![("a", Float)]);
        let ha = HeteroList(vec![(r1, One)]);
        let hb = HeteroList(vec![(r2.clone(), One)]);
        assert_eq!(csh(&ha, &hb), HeteroList(vec![(r2, One)]));
    }

    #[test]
    fn hetero_one_and_absent_becomes_zero_or_one() {
        let r = rec("•", vec![("a", Int)]);
        let ha = HeteroList(vec![(r.clone(), One)]);
        let hb = HeteroList(vec![]);
        assert_eq!(csh(&ha, &hb), HeteroList(vec![(r, ZeroOrOne)]));
    }

    #[test]
    fn hetero_absorbs_homogeneous_list() {
        let r = rec("•", vec![("a", Int)]);
        let hetero = HeteroList(vec![(r.clone(), One)]);
        let homog = Shape::list(r.clone());
        assert_eq!(csh(&hetero, &homog), HeteroList(vec![(r, Many)]));
    }

    #[test]
    fn empty_list_is_hetero_identity() {
        let r = rec("•", vec![("a", Int)]);
        let hetero = HeteroList(vec![(r.clone(), One)]);
        let empty = Shape::list(Bottom);
        assert_eq!(csh(&hetero, &empty), HeteroList(vec![(r, ZeroOrOne)]));
    }

    // --- Lemma 1: csh is the least upper bound ---

    #[test]
    fn lemma1_upper_bound_on_samples() {
        let shapes = [
            Bottom,
            Null,
            Int,
            Float,
            Bool,
            String,
            Int.ceil(),
            Shape::list(Int),
            Shape::list(Float.ceil()),
            rec("P", vec![("x", Int)]),
            rec("P", vec![("x", Float), ("y", Bool)]),
            rec("Q", vec![("z", String)]),
            Shape::any(),
            Top(vec![Int, Bool]),
        ];
        for a in &shapes {
            for b in &shapes {
                let j = csh(a, b);
                assert!(is_preferred(a, &j), "{a} ⋢ csh({a}, {b}) = {j}");
                assert!(is_preferred(b, &j), "{b} ⋢ csh({a}, {b}) = {j}");
            }
        }
    }

    #[test]
    fn csh_commutes_on_samples() {
        let shapes = [
            Null,
            Int,
            Float,
            String,
            Int.ceil(),
            Shape::list(Int),
            rec("P", vec![("x", Int)]),
            rec("P", vec![("y", Bool)]),
            Top(vec![Int]),
        ];
        for a in &shapes {
            for b in &shapes {
                assert_eq!(csh(a, b), csh(b, a), "csh not commutative on {a}, {b}");
            }
        }
    }

    #[test]
    fn csh_all_folds_from_bottom() {
        assert_eq!(csh_all([]), Bottom);
        assert_eq!(csh_all([Int]), Int);
        assert_eq!(csh_all([Int, Float, Null]), Float.ceil());
    }
}
