//! Global (by-name) record unification for XML (§6.2) — redesigned
//! around a shape environment so that recursion is representable and
//! globalization is a true, tested fixed point.
//!
//! > "The XML type provider also includes an option to use global
//! > inference. In that case, the inference from values (§3.4) unifies
//! > the shapes of all records with the same name. This is useful
//! > because, for example, in XHTML all `<table>` elements will be
//! > treated as values of the same type."
//!
//! # The μ-redesign
//!
//! The previous implementation rewrote every occurrence of a colliding
//! name to an *inline copy* of the name-class join, cutting the expansion
//! at recursion points. PR 3's differential suite proved that cut
//! unsound as a fixed point: on shapes folded from several documents
//! (unions of same-named records reached through different, mutually
//! recursive paths) a second pass computed strictly larger joins, and no
//! finite-tree iteration converges — the cut occurrences embed stale
//! spellings that every pass re-expands.
//!
//! [`globalize_env`] fixes this the way F# Data's provided types (and
//! λDL's concept definitions) do: a nested occurrence becomes a
//! **reference** to its name class, not an expansion. The result is a
//! [`GlobalShape`]: a root shape whose colliding-name records appear as
//! [`Shape::Ref`]s into a [`ShapeEnv`] — an ordered `Name → RecordShape`
//! definitions table whose bodies may refer to each other (and to
//! themselves). One collect→join pass reaches the fixed point, because
//! after absorption there is exactly one spelling of every name class —
//! the definition — and re-running the pass re-derives it unchanged
//! (`globalize_env_is_a_fixed_point*` below; the old counterexample now
//! converges too, see `saturation_reaches_a_fixed_point_on_folded_unions`).
//!
//! The legacy [`globalize`] survives as a thin wrapper:
//! [`GlobalShape::inline`] expands non-recursive definitions back into
//! the tree (identical output to the old implementation on
//! recursion-free shapes) and keeps references at recursion points —
//! which makes even the finite-tree rendering idempotent, since a cut is
//! now a canonical reference instead of a stale spelling.
//!
//! # Allocation discipline
//!
//! Like [`csh`](crate::csh), `globalize_env` **consumes** its argument
//! (callers holding references use [`globalize_ref`], which pays for the
//! clone). Names that occur once — the overwhelmingly common case outside
//! XHTML-style documents — are never cloned at all: an occurrence-count
//! pre-pass keeps them out of the definitions table and the absorption
//! walk reuses their nodes in place. Colliding names move each
//! occurrence's body once into the running definition join (the
//! accumulator is moved, never re-cloned); occurrence sites shrink to
//! `Copy` references instead of materializing the join per site.

use crate::csh::csh;
use crate::env::{GlobalShape, ShapeEnv};
use crate::shape::{FieldShape, RecordShape};
use crate::Shape;
use std::collections::BTreeMap;
use tfd_value::Name;

/// The redesigned global-inference entry point: unifies all record
/// shapes with the same name into one definition per name, consuming the
/// shape, and returns the root together with the definitions table.
///
/// Names that occur only once stay inline; names that occur twice or
/// more (including an element nested inside an element of the same name
/// — recursion) get a [`ShapeEnv`] entry, and every occurrence becomes a
/// [`Shape::Ref`]. The result is a fixed point: re-running
/// `globalize_env` on it (or [absorbing](GlobalShape::absorb) any sample
/// the shape was inferred from) changes nothing.
///
/// ```
/// use tfd_core::{globalize_env, infer_with, InferOptions, Shape};
/// use tfd_value::{rec, Value};
///
/// // <div><div x="1"/></div> — recursion, representable at last:
/// let doc = rec("div", [("child", rec("div", [("x", Value::Int(1))]))]);
/// let local = infer_with(&doc, &InferOptions::formal());
/// let global = globalize_env(local);
/// assert_eq!(global.root, Shape::Ref("div".into()));
/// let def = global.env.get("div".into()).unwrap();
/// assert_eq!(def.field("child"), Some(&Shape::Ref("div".into()).ceil()));
/// ```
pub fn globalize_env(shape: Shape) -> GlobalShape {
    saturate(shape, ShapeEnv::new())
}

/// Applies global by-name record unification to a shape, consuming it.
///
/// A thin wrapper over [`globalize_env`]: non-recursive definitions are
/// inlined back into the tree (so recursion-free callers see exactly the
/// shapes they always did), and recursion points keep their
/// [`Shape::Ref`] — the finite-tree rendering of the μ-shape.
///
/// ```
/// use tfd_core::{globalize, infer_with, InferOptions, Shape};
/// use tfd_value::{arr, rec, Value};
///
/// // Two <item> elements with different attributes...
/// let doc = arr([
///     rec("item", [("a", Value::Int(1))]),
///     rec("item", [("b", Value::Bool(true))]),
/// ]);
/// let local = infer_with(&doc, &InferOptions::formal());
/// let global = globalize(local.clone());
/// // ...unify into one record with both fields optional? No — they were
/// // already joined by the collection rule here; globalize matters when
/// // same-name records appear in *different* positions (see tests).
/// assert_eq!(global, local);
/// ```
pub fn globalize(shape: Shape) -> Shape {
    globalize_env(shape).inline()
}

/// [`globalize`] for callers that only hold a reference; clones once.
pub fn globalize_ref(shape: &Shape) -> Shape {
    globalize(shape.clone())
}

/// Per-name occurrence tally: inline records and μ-references count
/// separately because any reference at all forces a definition.
#[derive(Default, Clone, Copy)]
struct Occurrences {
    records: usize,
    refs: usize,
}

/// The collect→join pass shared by [`globalize_env`] and
/// [`GlobalShape::absorb`]: promotes colliding names to definitions,
/// absorbs every occurrence into its definition, and rewrites occurrence
/// sites to references. Takes an existing environment so that absorption
/// can *extend* a previous result; existing definitions always stay
/// definitions.
pub(crate) fn saturate(root: Shape, env: ShapeEnv) -> GlobalShape {
    // 1. Count occurrences per name over the root and every definition
    //    body. Only colliding names need a definition (and hence any
    //    cloning) at all.
    let mut counts: BTreeMap<Name, Occurrences> = BTreeMap::new();
    count(&root, &mut counts);
    for (_, def) in env.iter() {
        for f in &def.fields {
            count(&f.shape, &mut counts);
        }
    }
    let needs_def = |name: Name, occ: &Occurrences| {
        occ.refs > 0 || occ.records + occ.refs >= 2 || env.contains(name)
    };
    if env.is_empty() && !counts.iter().any(|(n, o)| needs_def(*n, o)) {
        // No name occurs twice: globalization is the identity.
        return GlobalShape { root, env };
    }
    let colliding: Vec<Name> = {
        let mut names: Vec<Name> = counts
            .iter()
            .filter(|(n, o)| needs_def(**n, o))
            .map(|(n, _)| *n)
            .collect();
        for n in env.names() {
            if !names.contains(&n) {
                names.push(n);
            }
        }
        names.sort();
        names
    };

    // 2. Absorb: existing definitions enter the join first (their bodies
    //    may mention newly colliding names, which must become references
    //    too), then the root. `joined` accumulates one RecordShape per
    //    definition; the running join is moved, never re-cloned.
    let mut joined: BTreeMap<Name, RecordShape> = BTreeMap::new();
    for (name, def) in env.into_defs() {
        let fields: Vec<FieldShape> = def
            .fields
            .into_iter()
            .map(|f| FieldShape::new(f.name, absorb(f.shape, &colliding, &mut joined)))
            .collect();
        join_into(&mut joined, RecordShape { name, fields });
    }
    let root = absorb(root, &colliding, &mut joined);

    // 3. The definitions table, in canonical (name) order.
    GlobalShape {
        root,
        env: ShapeEnv::from_defs(joined),
    }
}

fn count(shape: &Shape, counts: &mut BTreeMap<Name, Occurrences>) {
    match shape {
        Shape::Record(r) => {
            counts.entry(r.name).or_default().records += 1;
            for f in &r.fields {
                count(&f.shape, counts);
            }
        }
        Shape::Ref(n) => counts.entry(*n).or_default().refs += 1,
        Shape::Nullable(s) | Shape::List(s) => count(s, counts),
        Shape::Top(labels) => {
            for l in labels {
                count(l, counts);
            }
        }
        Shape::HeteroList(cases) => {
            for (s, _) in cases {
                count(s, counts);
            }
        }
        _ => {}
    }
}

/// Rewrites `shape` bottom-up: every record of a colliding name has its
/// (already rewritten) body joined into `joined` and shrinks to a
/// [`Shape::Ref`]; singletons reuse their nodes in place.
fn absorb(shape: Shape, colliding: &[Name], joined: &mut BTreeMap<Name, RecordShape>) -> Shape {
    match shape {
        Shape::Record(r) => {
            let name = r.name;
            let fields: Vec<FieldShape> = r
                .fields
                .into_iter()
                .map(|f| FieldShape::new(f.name, absorb(f.shape, colliding, joined)))
                .collect();
            if colliding.binary_search(&name).is_err() {
                return Shape::Record(RecordShape { name, fields });
            }
            join_into(joined, RecordShape { name, fields });
            Shape::Ref(name)
        }
        Shape::Ref(n) => Shape::Ref(n),
        Shape::Nullable(mut s) => {
            *s = absorb(std::mem::replace(&mut *s, Shape::Bottom), colliding, joined);
            Shape::Nullable(s)
        }
        Shape::List(mut s) => {
            *s = absorb(std::mem::replace(&mut *s, Shape::Bottom), colliding, joined);
            Shape::List(s)
        }
        Shape::Top(labels) => Shape::Top(
            labels
                .into_iter()
                .map(|l| absorb(l, colliding, joined))
                .collect(),
        ),
        Shape::HeteroList(cases) => Shape::HeteroList(
            cases
                .into_iter()
                .map(|(s, m)| (absorb(s, colliding, joined), m))
                .collect(),
        ),
        other => other,
    }
}

/// Moves the running definition out of the map and merges the occurrence
/// into it — the accumulator is moved, never re-cloned. Occurrence
/// bodies are already absorbed, so the join only ever meets references
/// (equal names unify by `(eq)`, different names tag apart), never an
/// inline spelling of a colliding name.
fn join_into(joined: &mut BTreeMap<Name, RecordShape>, occurrence: RecordShape) {
    let name = occurrence.name;
    match joined.remove(&name) {
        Some(existing) => match csh(Shape::Record(existing), Shape::Record(occurrence)) {
            Shape::Record(m) => {
                joined.insert(name, m);
            }
            other => unreachable!("same-name record join left records: {other}"),
        },
        None => {
            joined.insert(name, occurrence);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::{infer_with, InferOptions};
    use tfd_value::{arr, rec, Value};
    use Shape::{Bool, Int};

    #[test]
    fn same_name_records_in_different_positions_unify() {
        // <a><t x="1"/></a> ... <b><t y="true"/></b>: the two <t> shapes
        // sit under different fields, so plain inference keeps them
        // separate; globalize joins them.
        let doc = rec(
            "root",
            [
                ("a", rec("t", [("x", Value::Int(1))])),
                ("b", rec("t", [("y", Value::Bool(true))])),
            ],
        );
        let local = infer_with(&doc, &InferOptions::formal());
        let global = globalize(local);
        let t_unified = Shape::record("t", [("x", Int.ceil()), ("y", Bool.ceil())]);
        assert_eq!(
            global,
            Shape::record("root", [("a", t_unified.clone()), ("b", t_unified)])
        );
    }

    #[test]
    fn globalize_env_exposes_the_definitions_table() {
        let doc = rec(
            "root",
            [
                ("a", rec("t", [("x", Value::Int(1))])),
                ("b", rec("t", [("y", Value::Bool(true))])),
            ],
        );
        let local = infer_with(&doc, &InferOptions::formal());
        let global = globalize_env(local);
        // root is a singleton: it stays an inline record whose fields
        // reference the unified t definition.
        let r = global.root.as_record().expect("root record");
        assert_eq!(r.field("a"), Some(&Shape::Ref("t".into())));
        assert_eq!(r.field("b"), Some(&Shape::Ref("t".into())));
        let t = global.env.get("t".into()).expect("t definition");
        assert_eq!(t.field("x"), Some(&Int.ceil()));
        assert_eq!(t.field("y"), Some(&Bool.ceil()));
        assert!(global.recursive_names().is_empty());
    }

    #[test]
    fn globalize_is_identity_without_name_collisions() {
        let doc = rec("r", [("x", Value::Int(1)), ("y", arr([Value::Bool(true)]))]);
        let local = infer_with(&doc, &InferOptions::formal());
        assert_eq!(globalize_ref(&local), local);
        let g = globalize_env(local.clone());
        assert_eq!(g.root, local);
        assert!(g.env.is_empty());
    }

    #[test]
    fn recursive_elements_get_a_self_referential_definition() {
        // <div><div/></div> — a div containing a div.
        let doc = rec("div", [("child", rec("div", [("x", Value::Int(1))]))]);
        let local = infer_with(&doc, &InferOptions::formal());
        let global = globalize_env(local.clone());
        assert_eq!(global.root, Shape::Ref("div".into()));
        let def = global.env.get("div".into()).expect("div definition");
        // The nested occurrence is a *reference*, not an expansion:
        assert_eq!(def.field("child"), Some(&Shape::Ref("div".into()).ceil()));
        assert_eq!(def.field("x"), Some(&Int.ceil()));
        assert_eq!(global.recursive_names(), vec![tfd_value::Name::new("div")]);

        // The inline rendering cuts at the recursion point with the
        // canonical reference; the outer level is fully expanded.
        let inlined = globalize(local);
        let r = inlined.as_record().expect("record");
        assert_eq!(r.name, "div");
        assert!(r.field("child").is_some());
        assert!(r.field("x").is_some());
    }

    #[test]
    fn unification_reaches_into_collections_and_tops() {
        let doc = arr([
            rec("w", [("p", rec("t", [("x", Value::Int(1))]))]),
            rec("v", [("q", rec("t", [("y", Value::Int(2))]))]),
        ]);
        let local = infer_with(&doc, &InferOptions::formal());
        let global = globalize(local);
        // Both nested t records now have both (optional) fields.
        let expected_t = Shape::record("t", [("x", Int.ceil()), ("y", Int.ceil())]);
        match &global {
            Shape::List(e) => match e.as_ref() {
                Shape::Top(labels) => {
                    for l in labels {
                        let r = l.as_record().expect("record label");
                        let inner = r.fields[0].shape.clone();
                        assert_eq!(inner, expected_t);
                    }
                }
                other => panic!("expected labelled top, got {other}"),
            },
            other => panic!("expected list, got {other}"),
        }
    }

    // --- Saturation: the env-aware pass is a true fixed point. ---

    /// The `csh` of the two `a` occurrences exposes a nested `t` join
    /// (`t {x?, y?}`) that never occurs in the input tree. The
    /// definitions table must still saturate in one pass, and a second
    /// `globalize` must change nothing.
    #[test]
    fn globalize_is_idempotent_when_joins_expose_nested_records() {
        let doc = rec(
            "root",
            [
                ("p", rec("a", [("x", rec("t", [("m", Value::Int(1))]))])),
                ("q", rec("a", [("x", rec("t", [("n", Value::Bool(true))]))])),
                // A third t, outside any a, with yet another field:
                ("r", rec("t", [("o", Value::Float(1.5))])),
            ],
        );
        let local = infer_with(&doc, &InferOptions::formal());
        let once = globalize(local);
        // Every t occurrence — including those inside the joined a —
        // carries all three optional fields.
        let text = once.to_string();
        assert_eq!(text.matches(": t {").count(), 3, "{text}");
        assert_eq!(text.matches("m : nullable int").count(), 3, "{text}");
        assert_eq!(text.matches("n : nullable bool").count(), 3, "{text}");
        assert_eq!(text.matches("o : nullable float").count(), 3, "{text}");
        let twice = globalize_ref(&once);
        assert_eq!(twice, once, "second globalize pass changed the shape");
    }

    /// Recursion points keep canonical references, so re-globalizing the
    /// finite-tree rendering re-derives the same definitions — the
    /// property the old expansion cut could not have.
    #[test]
    fn globalize_is_idempotent_under_recursion() {
        let docs = [
            // Self-nested, two levels:
            rec("div", [("child", rec("div", [("x", Value::Int(1))]))]),
            // Self-nested, three levels, widening on the way down:
            rec(
                "div",
                [(
                    "child",
                    rec(
                        "div",
                        [
                            ("child", rec("div", [("x", Value::Int(1))])),
                            ("y", Value::Bool(true)),
                        ],
                    ),
                )],
            ),
            // A recursive name that also occurs in a non-nested position:
            rec(
                "root",
                [
                    (
                        "a",
                        rec("div", [("child", rec("div", [("x", Value::Int(1))]))]),
                    ),
                    ("b", rec("div", [("z", Value::str("s"))])),
                ],
            ),
        ];
        for doc in docs {
            let local = infer_with(&doc, &InferOptions::formal());
            let once = globalize_ref(&local);
            let twice = globalize_ref(&once);
            assert_eq!(twice, once, "not idempotent for {local}");
            // And at the env level:
            let g1 = globalize_env(local.clone());
            let g2 = saturate(g1.root.clone(), g1.env.clone());
            assert_eq!(g2, g1, "saturate not a fixed point for {local}");
        }
    }

    /// PR 3's counterexample class (found by the streaming differential
    /// suite): on a shape *folded from several documents* — a union of
    /// same-named records reached through different, mutually recursive
    /// paths — the old inline-expansion pass was not a fixed point, and
    /// no finite number of passes was. Under the μ-shape API the same
    /// corpora now converge: one pass saturates, a second pass (at both
    /// the env level and the finite-tree rendering) changes nothing, and
    /// absorbing the fold back into the result is a no-op.
    #[test]
    fn saturation_reaches_a_fixed_point_on_folded_unions() {
        use crate::csh::csh;
        use crate::prefer::is_preferred_in;
        let docs = [
            rec(
                "item",
                [("value", rec("point", [("x", Value::Float(2.5))]))],
            ),
            rec(
                "point",
                [
                    ("b", rec::<_, [(&str, Value); 0], _>("point", [])),
                    ("a", Value::Int(1)),
                    (
                        "name",
                        rec(
                            "item",
                            [("value", rec::<_, [(&str, Value); 0], _>("point", []))],
                        ),
                    ),
                ],
            ),
        ];
        let folded = docs.iter().fold(Shape::Bottom, |acc, d| {
            csh(acc, infer_with(d, &InferOptions::xml()))
        });

        // The finite-tree rendering is idempotent now:
        let once = globalize_ref(&folded);
        let twice = globalize_ref(&once);
        assert_eq!(twice, once, "the PR 3 counterexample must now converge");

        // The env-level pass is a fixed point:
        let g = globalize_env(folded.clone());
        let again = saturate(g.root.clone(), g.env.clone());
        assert_eq!(again, g, "saturate must be a fixed point");

        // It generalizes the fold (soundness), and absorbing the fold
        // back changes nothing (the fold is below the fixed point):
        assert!(
            is_preferred_in(&folded, &g.root, Some(&g.env)),
            "globalize must generalize its input: {folded} vs {g}"
        );
        let mut readded = g.clone();
        readded.absorb(folded);
        assert_eq!(readded, g, "absorbing the fold must be a no-op");

        // Both name classes are genuinely mutually recursive:
        let rec_names = g.recursive_names();
        assert!(
            rec_names.contains(&tfd_value::Name::new("item")),
            "{rec_names:?}"
        );
        assert!(
            rec_names.contains(&tfd_value::Name::new("point")),
            "{rec_names:?}"
        );
    }

    /// Idempotence over machine-generated corpora: infer a shape from
    /// each document of a deterministic corpus and check that one
    /// globalize pass saturates it — at the env level and in the
    /// finite-tree rendering.
    #[test]
    fn globalize_is_idempotent_on_generated_corpora() {
        use tfd_value::corpus::{generate_corpus, CorpusConfig};
        for seed in 0..20 {
            let config = CorpusConfig {
                max_depth: 5,
                ..CorpusConfig::default()
            };
            for value in generate_corpus(seed, 5, &config) {
                let local = infer_with(&value, &InferOptions::xml());
                let once = globalize_ref(&local);
                let twice = globalize_ref(&once);
                assert_eq!(twice, once, "not idempotent for seed {seed}: {local}");
                let g = globalize_env(local.clone());
                assert_eq!(
                    saturate(g.root.clone(), g.env.clone()),
                    g,
                    "saturate not a fixed point for seed {seed}: {local}"
                );
            }
        }
    }

    /// Incremental absorption reaches the same fixed point as one-shot
    /// globalization of the fold — the env-carrying form of the Fig. 3
    /// fold that streaming uses.
    #[test]
    fn incremental_absorb_matches_oneshot_globalization() {
        let docs = [
            rec(
                "item",
                [("value", rec("point", [("x", Value::Float(2.5))]))],
            ),
            rec(
                "point",
                [
                    ("b", rec::<_, [(&str, Value); 0], _>("point", [])),
                    ("a", Value::Int(1)),
                    (
                        "name",
                        rec(
                            "item",
                            [("value", rec::<_, [(&str, Value); 0], _>("point", []))],
                        ),
                    ),
                ],
            ),
            rec(
                "item",
                [("value", Value::Null), ("extra", Value::Bool(true))],
            ),
        ];
        let opts = InferOptions::xml();
        let folded = docs
            .iter()
            .fold(Shape::Bottom, |acc, d| csh(acc, infer_with(d, &opts)));
        let oneshot = globalize_env(folded);

        let mut incremental = GlobalShape::plain(Shape::Bottom);
        for d in &docs {
            incremental.absorb(infer_with(d, &opts));
        }
        assert_eq!(incremental, oneshot);
    }
}
