//! Global (by-name) record unification for XML (§6.2).
//!
//! > "The XML type provider also includes an option to use global
//! > inference. In that case, the inference from values (§3.4) unifies
//! > the shapes of all records with the same name. This is useful
//! > because, for example, in XHTML all `<table>` elements will be
//! > treated as values of the same type."
//!
//! [`globalize`] post-processes an inferred shape: all record shapes with
//! the same name, anywhere in the shape, are joined with `csh`, and every
//! occurrence is replaced by the join. Recursive structures (an element
//! nested inside an element of the same name) are handled by cutting the
//! expansion at the recursion point — the inner occurrence keeps its
//! locally inferred shape, since our shape language is finite trees.

use crate::csh::csh;
use crate::shape::RecordShape;
use crate::Shape;
use std::collections::BTreeMap;
use tfd_value::Name;

/// Applies global by-name record unification to a shape.
///
/// ```
/// use tfd_core::{globalize, infer_with, InferOptions, Shape};
/// use tfd_value::{arr, rec, Value};
///
/// // Two <item> elements with different attributes...
/// let doc = arr([
///     rec("item", [("a", Value::Int(1))]),
///     rec("item", [("b", Value::Bool(true))]),
/// ]);
/// let local = infer_with(&doc, &InferOptions::formal());
/// let global = globalize(&local);
/// // ...unify into one record with both fields optional? No — they were
/// // already joined by the collection rule here; globalize matters when
/// // same-name records appear in *different* positions (see tests).
/// assert_eq!(global, local);
/// ```
pub fn globalize(shape: &Shape) -> Shape {
    // 1. Collect the join of all record shapes per name.
    let mut joined: BTreeMap<Name, RecordShape> = BTreeMap::new();
    collect(shape, &mut joined);
    // 2. Saturate: joining records may expose nested records that also
    //    need joining into the map (they were collected already since we
    //    walk the whole tree first, and csh of collected shapes cannot
    //    invent record names that never occurred).
    // 3. Rewrite every occurrence, cutting recursion per name.
    let mut stack = Vec::new();
    rewrite(shape, &joined, &mut stack)
}

fn collect(shape: &Shape, joined: &mut BTreeMap<Name, RecordShape>) {
    match shape {
        Shape::Record(r) => {
            for f in &r.fields {
                collect(&f.shape, joined);
            }
            match joined.get(&r.name) {
                Some(existing) => {
                    let merged = csh(Shape::Record(existing.clone()), Shape::Record(r.clone()));
                    if let Shape::Record(m) = merged {
                        joined.insert(r.name, m);
                    }
                }
                None => {
                    joined.insert(r.name, r.clone());
                }
            }
        }
        Shape::Nullable(s) | Shape::List(s) => collect(s, joined),
        Shape::Top(labels) => {
            for l in labels {
                collect(l, joined);
            }
        }
        Shape::HeteroList(cases) => {
            for (s, _) in cases {
                collect(s, joined);
            }
        }
        _ => {}
    }
}

fn rewrite(
    shape: &Shape,
    joined: &BTreeMap<Name, RecordShape>,
    stack: &mut Vec<Name>,
) -> Shape {
    match shape {
        Shape::Record(r) => {
            if stack.contains(&r.name) {
                // Recursion cut: keep the local shape, rewriting children
                // only (without re-expanding this name).
                return Shape::Record(RecordShape {
                    name: r.name,
                    fields: r
                        .fields
                        .iter()
                        .map(|f| crate::shape::FieldShape::new(
                            f.name,
                            rewrite(&f.shape, joined, stack),
                        ))
                        .collect(),
                });
            }
            let unified = joined.get(&r.name).cloned().unwrap_or_else(|| r.clone());
            stack.push(r.name);
            let result = Shape::Record(RecordShape {
                name: unified.name,
                fields: unified
                    .fields
                    .iter()
                    .map(|f| crate::shape::FieldShape::new(
                        f.name,
                        rewrite(&f.shape, joined, stack),
                    ))
                    .collect(),
            });
            stack.pop();
            result
        }
        Shape::Nullable(s) => rewrite(s, joined, stack).ceil(),
        Shape::List(s) => Shape::list(rewrite(s, joined, stack)),
        Shape::Top(labels) => Shape::Top(
            labels.iter().map(|l| rewrite(l, joined, stack)).collect(),
        ),
        Shape::HeteroList(cases) => Shape::HeteroList(
            cases
                .iter()
                .map(|(s, m)| (rewrite(s, joined, stack), *m))
                .collect(),
        ),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::{infer_with, InferOptions};
    use tfd_value::{arr, rec, Value};
    use Shape::{Bool, Int};

    #[test]
    fn same_name_records_in_different_positions_unify() {
        // <a><t x="1"/></a> ... <b><t y="true"/></b>: the two <t> shapes
        // sit under different fields, so plain inference keeps them
        // separate; globalize joins them.
        let doc = rec(
            "root",
            [
                ("a", rec("t", [("x", Value::Int(1))])),
                ("b", rec("t", [("y", Value::Bool(true))])),
            ],
        );
        let local = infer_with(&doc, &InferOptions::formal());
        let global = globalize(&local);
        let t_unified = Shape::record("t", [("x", Int.ceil()), ("y", Bool.ceil())]);
        assert_eq!(
            global,
            Shape::record("root", [("a", t_unified.clone()), ("b", t_unified)])
        );
    }

    #[test]
    fn globalize_is_identity_without_name_collisions() {
        let doc = rec("r", [("x", Value::Int(1)), ("y", arr([Value::Bool(true)]))]);
        let local = infer_with(&doc, &InferOptions::formal());
        assert_eq!(globalize(&local), local);
    }

    #[test]
    fn recursive_elements_terminate() {
        // <div><div/></div> — a div containing a div.
        let doc = rec("div", [("child", rec("div", [("x", Value::Int(1))]))]);
        let local = infer_with(&doc, &InferOptions::formal());
        let global = globalize(&local);
        // Outer div gets the joined shape (child optional, x optional);
        // the nested div occurrence is cut rather than infinitely
        // expanded.
        match &global {
            Shape::Record(r) => {
                assert_eq!(r.name, "div");
                assert!(r.field("child").is_some());
                assert!(r.field("x").is_some());
            }
            other => panic!("expected record, got {other}"),
        }
    }

    #[test]
    fn unification_reaches_into_collections_and_tops() {
        let doc = arr([
            rec("w", [("p", rec("t", [("x", Value::Int(1))]))]),
            rec("v", [("q", rec("t", [("y", Value::Int(2))]))]),
        ]);
        let local = infer_with(&doc, &InferOptions::formal());
        let global = globalize(&local);
        // Both nested t records now have both (optional) fields.
        let expected_t = Shape::record("t", [("x", Int.ceil()), ("y", Int.ceil())]);
        match &global {
            Shape::List(e) => match e.as_ref() {
                Shape::Top(labels) => {
                    for l in labels {
                        let r = l.as_record().expect("record label");
                        let inner = r.fields[0].shape.clone();
                        assert_eq!(inner, expected_t);
                    }
                }
                other => panic!("expected labelled top, got {other}"),
            },
            other => panic!("expected list, got {other}"),
        }
    }
}
