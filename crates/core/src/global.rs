//! Global (by-name) record unification for XML (§6.2).
//!
//! > "The XML type provider also includes an option to use global
//! > inference. In that case, the inference from values (§3.4) unifies
//! > the shapes of all records with the same name. This is useful
//! > because, for example, in XHTML all `<table>` elements will be
//! > treated as values of the same type."
//!
//! [`globalize`] post-processes an inferred shape: all record shapes with
//! the same name, anywhere in the shape, are joined with `csh`, and every
//! occurrence is replaced by the join. Recursive structures (an element
//! nested inside an element of the same name) are handled by cutting the
//! expansion at the recursion point — the inner occurrence keeps its
//! locally inferred shape, since our shape language is finite trees.
//!
//! # Allocation discipline
//!
//! Like [`csh`](crate::csh), `globalize` **consumes** its argument
//! (callers holding references use [`globalize_ref`], which pays for the
//! clone). Names that occur once — the overwhelmingly common case outside
//! XHTML-style documents — are never cloned at all: an occurrence-count
//! pre-pass keeps them out of the join map, and the rewrite reuses their
//! nodes in place. Colliding names clone each occurrence once into the
//! running join (the accumulator itself is moved, never re-cloned) plus
//! once per occurrence site when the join is written back — that last
//! copy is the output itself and cannot be avoided, since the same joined
//! shape materializes at several positions.
//!
//! # Saturation
//!
//! `globalize` runs a **single** collect→join→rewrite pass. The output
//! is always a *sound generalization* — every record occurrence is
//! replaced by the join of its name class (⊒ the local shape, Lemma 1)
//! or kept as-is at a recursion cut — and on document-shaped inputs one
//! pass is also a fixed point (the `globalize_is_idempotent_*` tests
//! pin several such classes down).
//!
//! It is **not** a fixed point in general. The streaming differential
//! suite found the counterexample class: on shapes *folded from several
//! documents* (unions of same-named records reached through different,
//! mutually recursive paths), a second pass computes strictly larger
//! joins, because the first rewrite made the tree's occurrences richer
//! than the map that produced them while recursion cuts still embed the
//! pre-expansion spellings. Iterating does not converge either: each
//! pass deepens what the cut occurrences embed, so a finite-tree shape
//! language has no idempotent fixed point here at all — that would need
//! recursive (μ-style) shapes, where a nested occurrence is a
//! *reference* to its name class rather than an inline expansion (F#
//! Data's provided types work exactly that way). Until the shape
//! language grows such references (see ROADMAP), `globalize` stays
//! single-pass: sound, terminating, and monotone under re-application —
//! `saturation_is_monotone_on_folded_unions` below documents the
//! counterexample and pins those three properties.

use crate::csh::csh;
use crate::shape::{FieldShape, RecordShape};
use crate::Shape;
use std::collections::BTreeMap;
use tfd_value::Name;

/// Applies global by-name record unification to a shape, consuming it.
///
/// ```
/// use tfd_core::{globalize, infer_with, InferOptions, Shape};
/// use tfd_value::{arr, rec, Value};
///
/// // Two <item> elements with different attributes...
/// let doc = arr([
///     rec("item", [("a", Value::Int(1))]),
///     rec("item", [("b", Value::Bool(true))]),
/// ]);
/// let local = infer_with(&doc, &InferOptions::formal());
/// let global = globalize(local.clone());
/// // ...unify into one record with both fields optional? No — they were
/// // already joined by the collection rule here; globalize matters when
/// // same-name records appear in *different* positions (see tests).
/// assert_eq!(global, local);
/// ```
pub fn globalize(shape: Shape) -> Shape {
    // 1. Count record occurrences per name; only colliding names need a
    //    join (and hence any cloning) at all.
    let mut counts: BTreeMap<Name, usize> = BTreeMap::new();
    count(&shape, &mut counts);
    if counts.values().all(|&n| n <= 1) {
        // No name occurs twice: globalization is the identity.
        return shape;
    }
    // 2. Collect the join of all record shapes per colliding name.
    let mut joined: BTreeMap<Name, RecordShape> = BTreeMap::new();
    collect(&shape, &counts, &mut joined);
    // 3. Rewrite every occurrence, consuming the tree and cutting
    //    recursion per name. Deliberately a single pass — see the module
    //    docs on saturation.
    let mut stack = Vec::new();
    rewrite(shape, &joined, &mut stack)
}

/// [`globalize`] for callers that only hold a reference; clones once.
pub fn globalize_ref(shape: &Shape) -> Shape {
    globalize(shape.clone())
}

fn count(shape: &Shape, counts: &mut BTreeMap<Name, usize>) {
    match shape {
        Shape::Record(r) => {
            *counts.entry(r.name).or_insert(0) += 1;
            for f in &r.fields {
                count(&f.shape, counts);
            }
        }
        Shape::Nullable(s) | Shape::List(s) => count(s, counts),
        Shape::Top(labels) => {
            for l in labels {
                count(l, counts);
            }
        }
        Shape::HeteroList(cases) => {
            for (s, _) in cases {
                count(s, counts);
            }
        }
        _ => {}
    }
}

fn collect(
    shape: &Shape,
    counts: &BTreeMap<Name, usize>,
    joined: &mut BTreeMap<Name, RecordShape>,
) {
    match shape {
        Shape::Record(r) => {
            for f in &r.fields {
                collect(&f.shape, counts, joined);
            }
            if counts.get(&r.name).copied().unwrap_or(0) < 2 {
                return; // singleton: never cloned, rewritten in place
            }
            // Move the accumulator out of the map and merge the (cloned)
            // occurrence into it — the running join is never re-cloned.
            match joined.remove(&r.name) {
                Some(existing) => {
                    if let Shape::Record(m) =
                        csh(Shape::Record(existing), Shape::Record(r.clone()))
                    {
                        joined.insert(r.name, m);
                    }
                }
                None => {
                    joined.insert(r.name, r.clone());
                }
            }
        }
        Shape::Nullable(s) | Shape::List(s) => collect(s, counts, joined),
        Shape::Top(labels) => {
            for l in labels {
                collect(l, counts, joined);
            }
        }
        Shape::HeteroList(cases) => {
            for (s, _) in cases {
                collect(s, counts, joined);
            }
        }
        _ => {}
    }
}

fn rewrite(
    shape: Shape,
    joined: &BTreeMap<Name, RecordShape>,
    stack: &mut Vec<Name>,
) -> Shape {
    match shape {
        Shape::Record(r) => {
            if stack.contains(&r.name) {
                // Recursion cut: keep the local shape, rewriting children
                // only (without re-expanding this name).
                return Shape::Record(RecordShape {
                    name: r.name,
                    fields: r
                        .fields
                        .into_iter()
                        .map(|f| FieldShape::new(f.name, rewrite(f.shape, joined, stack)))
                        .collect(),
                });
            }
            // Colliding names materialize their join (one clone per
            // occurrence site — this is the output); singletons reuse
            // their own nodes.
            let unified = match joined.get(&r.name) {
                Some(u) => u.clone(),
                None => r,
            };
            stack.push(unified.name);
            let result = Shape::Record(RecordShape {
                name: unified.name,
                fields: unified
                    .fields
                    .into_iter()
                    .map(|f| FieldShape::new(f.name, rewrite(f.shape, joined, stack)))
                    .collect(),
            });
            stack.pop();
            result
        }
        Shape::Nullable(s) => rewrite(*s, joined, stack).ceil(),
        Shape::List(mut s) => {
            // Reuse the box in place.
            *s = rewrite(std::mem::replace(&mut *s, Shape::Bottom), joined, stack);
            Shape::List(s)
        }
        Shape::Top(labels) => Shape::Top(
            labels.into_iter().map(|l| rewrite(l, joined, stack)).collect(),
        ),
        Shape::HeteroList(cases) => Shape::HeteroList(
            cases
                .into_iter()
                .map(|(s, m)| (rewrite(s, joined, stack), m))
                .collect(),
        ),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::{infer_with, InferOptions};
    use tfd_value::{arr, rec, Value};
    use Shape::{Bool, Int};

    #[test]
    fn same_name_records_in_different_positions_unify() {
        // <a><t x="1"/></a> ... <b><t y="true"/></b>: the two <t> shapes
        // sit under different fields, so plain inference keeps them
        // separate; globalize joins them.
        let doc = rec(
            "root",
            [
                ("a", rec("t", [("x", Value::Int(1))])),
                ("b", rec("t", [("y", Value::Bool(true))])),
            ],
        );
        let local = infer_with(&doc, &InferOptions::formal());
        let global = globalize(local);
        let t_unified = Shape::record("t", [("x", Int.ceil()), ("y", Bool.ceil())]);
        assert_eq!(
            global,
            Shape::record("root", [("a", t_unified.clone()), ("b", t_unified)])
        );
    }

    #[test]
    fn globalize_is_identity_without_name_collisions() {
        let doc = rec("r", [("x", Value::Int(1)), ("y", arr([Value::Bool(true)]))]);
        let local = infer_with(&doc, &InferOptions::formal());
        assert_eq!(globalize_ref(&local), local);
    }

    #[test]
    fn recursive_elements_terminate() {
        // <div><div/></div> — a div containing a div.
        let doc = rec("div", [("child", rec("div", [("x", Value::Int(1))]))]);
        let local = infer_with(&doc, &InferOptions::formal());
        let global = globalize(local);
        // Outer div gets the joined shape (child optional, x optional);
        // the nested div occurrence is cut rather than infinitely
        // expanded.
        match &global {
            Shape::Record(r) => {
                assert_eq!(r.name, "div");
                assert!(r.field("child").is_some());
                assert!(r.field("x").is_some());
            }
            other => panic!("expected record, got {other}"),
        }
    }

    #[test]
    fn unification_reaches_into_collections_and_tops() {
        let doc = arr([
            rec("w", [("p", rec("t", [("x", Value::Int(1))]))]),
            rec("v", [("q", rec("t", [("y", Value::Int(2))]))]),
        ]);
        let local = infer_with(&doc, &InferOptions::formal());
        let global = globalize(local);
        // Both nested t records now have both (optional) fields.
        let expected_t = Shape::record("t", [("x", Int.ceil()), ("y", Int.ceil())]);
        match &global {
            Shape::List(e) => match e.as_ref() {
                Shape::Top(labels) => {
                    for l in labels {
                        let r = l.as_record().expect("record label");
                        let inner = r.fields[0].shape.clone();
                        assert_eq!(inner, expected_t);
                    }
                }
                other => panic!("expected labelled top, got {other}"),
            },
            other => panic!("expected list, got {other}"),
        }
    }

    // --- Saturation: a single collect pass is a fixed point. ---

    /// The `csh` of the two `a` occurrences exposes a nested `t` join
    /// (`t {x?, y?}`) that never occurs in the input tree. The rewrite
    /// must still produce the fully unified output in one pass, and a
    /// second `globalize` must change nothing.
    #[test]
    fn globalize_is_idempotent_when_joins_expose_nested_records() {
        let doc = rec(
            "root",
            [
                ("p", rec("a", [("x", rec("t", [("m", Value::Int(1))]))])),
                ("q", rec("a", [("x", rec("t", [("n", Value::Bool(true))]))])),
                // A third t, outside any a, with yet another field:
                ("r", rec("t", [("o", Value::Float(1.5))])),
            ],
        );
        let local = infer_with(&doc, &InferOptions::formal());
        let once = globalize(local);
        // Every t occurrence — including those inside the joined a —
        // carries all three optional fields.
        let text = once.to_string();
        assert_eq!(text.matches(": t {").count(), 3, "{text}");
        assert_eq!(text.matches("m : nullable int").count(), 3, "{text}");
        assert_eq!(text.matches("n : nullable bool").count(), 3, "{text}");
        assert_eq!(text.matches("o : nullable float").count(), 3, "{text}");
        let twice = globalize_ref(&once);
        assert_eq!(twice, once, "second globalize pass changed the shape");
    }

    /// Recursion cuts keep locally inferred shapes; re-globalizing the
    /// output re-joins those cut occurrences with the map entry, which
    /// must be a no-op because `csh` is a least upper bound (Lemma 1).
    #[test]
    fn globalize_is_idempotent_under_recursion_cuts() {
        let docs = [
            // Self-nested, two levels:
            rec("div", [("child", rec("div", [("x", Value::Int(1))]))]),
            // Self-nested, three levels, widening on the way down:
            rec(
                "div",
                [(
                    "child",
                    rec(
                        "div",
                        [
                            ("child", rec("div", [("x", Value::Int(1))])),
                            ("y", Value::Bool(true)),
                        ],
                    ),
                )],
            ),
            // A recursive name that also occurs in a non-nested position:
            rec(
                "root",
                [
                    ("a", rec("div", [("child", rec("div", [("x", Value::Int(1))]))])),
                    ("b", rec("div", [("z", Value::str("s"))])),
                ],
            ),
        ];
        for doc in docs {
            let local = infer_with(&doc, &InferOptions::formal());
            let once = globalize_ref(&local);
            let twice = globalize_ref(&once);
            assert_eq!(twice, once, "not idempotent for {local}");
        }
    }

    /// The documented counterexample class (found by the streaming
    /// differential suite): on a shape *folded from several documents* —
    /// a union of same-named records reached through different, mutually
    /// recursive paths — one pass is not a fixed point, and no finite
    /// number of passes is (see the module docs). What `globalize` does
    /// guarantee, pinned here: the output is a sound generalization of
    /// the input, and re-applying it only generalizes further — it never
    /// loses information or diverges on a single application.
    #[test]
    fn saturation_is_monotone_on_folded_unions() {
        use crate::csh::csh;
        use crate::prefer::is_preferred;
        let docs = [
            rec("item", [("value", rec("point", [("x", Value::Float(2.5))]))]),
            rec(
                "point",
                [
                    ("b", rec::<_, [(&str, Value); 0], _>("point", [])),
                    ("a", Value::Int(1)),
                    ("name", rec("item", [("value", rec::<_, [(&str, Value); 0], _>("point", []))])),
                ],
            ),
        ];
        let folded = docs
            .iter()
            .fold(Shape::Bottom, |acc, d| csh(acc, infer_with(d, &InferOptions::xml())));
        let once = globalize_ref(&folded);
        let twice = globalize_ref(&once);
        assert!(is_preferred(&folded, &once), "globalize must generalize its input");
        assert!(is_preferred(&once, &twice), "re-globalizing must only generalize");
        // And this really is the non-idempotent class (the guard that
        // this regression keeps testing what it means to test):
        assert_ne!(twice, once, "if this saturates now, strengthen the idempotence tests");
    }

    /// Idempotence over machine-generated corpora: infer a shape from
    /// each document of a deterministic corpus and check that one
    /// globalize pass saturates it.
    #[test]
    fn globalize_is_idempotent_on_generated_corpora() {
        use tfd_value::corpus::{generate_corpus, CorpusConfig};
        for seed in 0..20 {
            let config = CorpusConfig { max_depth: 5, ..CorpusConfig::default() };
            for value in generate_corpus(seed, 5, &config) {
                let local = infer_with(&value, &InferOptions::xml());
                let once = globalize_ref(&local);
                let twice = globalize_ref(&once);
                assert_eq!(twice, once, "not idempotent for seed {seed}: {local}");
            }
        }
    }
}
