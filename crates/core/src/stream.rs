//! Streaming inference — the Fig. 3 fold, one record at a time.
//!
//! The paper defines multi-sample inference as a fold:
//! `S(d1, …, dn) = σn where σ0 = ⊥, σi = csh(σi−1, S(di))`. Nothing in
//! that definition needs the corpus in memory — only the running shape
//! `σi` and the record in hand. [`InferAccumulator`] is that fold made
//! incremental: push a record's [`Value`], its shape is joined into the
//! accumulator, and the record can be dropped immediately. Peak memory
//! for a whole corpus is one record plus one shape, independent of
//! corpus size.
//!
//! [`infer_reader`] wires any [`Read`] source through a chunk-fed
//! front-end streamer (`tfd_json::stream`, `tfd_xml::stream`,
//! `tfd_csv::stream`) into the accumulator, which is how the CLI's
//! `--stream` mode processes larger-than-RAM corpora.

use crate::csh::csh;
use crate::infer::{infer_with, InferOptions};
use crate::Shape;
use std::fmt;
use std::io::Read;
use tfd_value::Value;

/// The incremental `S(d1, …, dn)` fold: `σi = csh(σi−1, S(di))`.
///
/// Pushing records one at a time yields exactly the shape
/// [`infer_many`](crate::infer_many) computes on the whole sequence (the
/// unit suite asserts this for all four [`InferOptions`] presets), while
/// holding only the running shape.
///
/// ```
/// use tfd_core::{stream::InferAccumulator, InferOptions, Shape};
/// use tfd_value::Value;
///
/// let mut acc = InferAccumulator::new(InferOptions::formal());
/// acc.push(&Value::Int(1));
/// acc.push(&Value::Float(2.5));
/// acc.push(&Value::Null);
/// assert_eq!(acc.finish(), Shape::Float.ceil());
/// ```
#[derive(Debug, Clone)]
pub struct InferAccumulator {
    options: InferOptions,
    shape: Shape,
    records: usize,
}

impl InferAccumulator {
    /// An empty fold: `σ0 = ⊥`.
    pub fn new(options: InferOptions) -> InferAccumulator {
        InferAccumulator {
            options,
            shape: Shape::Bottom,
            records: 0,
        }
    }

    /// Folds one record in — `σi = csh(σi−1, S(di))` — after which the
    /// record can be dropped.
    pub fn push(&mut self, record: &Value) {
        let prev = std::mem::replace(&mut self.shape, Shape::Bottom);
        self.shape = csh(prev, infer_with(record, &self.options));
        self.records += 1;
    }

    /// The running shape `σi`.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Records folded so far.
    pub fn records(&self) -> usize {
        self.records
    }

    /// True when nothing has been pushed (`σ0 = ⊥`).
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// The inference options this fold runs under.
    pub fn options(&self) -> &InferOptions {
        &self.options
    }

    /// Consumes the accumulator, yielding `σn`.
    pub fn finish(self) -> Shape {
        self.shape
    }

    /// Consumes the accumulator, yielding the fold globalized into the
    /// env-carrying form (§6.2): `globalize_env(σn)`. Because
    /// [`globalize_env`](crate::globalize_env) is a fixed point, a
    /// streamed corpus reaches exactly the global shape the one-shot
    /// pipeline computes — including on mutually recursive XML corpora
    /// where the old finite-tree pass diverged.
    pub fn finish_global(self) -> crate::GlobalShape {
        crate::globalize_env(self.shape)
    }

    /// The running fold globalized into the env-carrying form, without
    /// consuming the accumulator (pays for one clone of the running
    /// shape).
    pub fn global_shape(&self) -> crate::GlobalShape {
        crate::globalize_env(self.shape.clone())
    }
}

/// Which front-end a byte stream is parsed with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamFormat {
    /// Whitespace-separated JSON documents (JSON-lines included); each
    /// document is one record.
    Json,
    /// A sequence of XML documents laid end to end; each root element is
    /// one record.
    Xml,
    /// CSV with a header row; each data row is one record.
    Csv,
}

/// An error from the streaming parse→infer pipeline: a front-end parse
/// error, an I/O failure from the reader, or — under a Skip-mode
/// [`RecoveryPolicy`](crate::recover::RecoveryPolicy) — an exhausted
/// error budget.
#[derive(Debug)]
pub enum StreamError {
    /// The JSON front-end rejected the stream.
    Json(tfd_json::ParseError),
    /// The XML front-end rejected the stream.
    Xml(tfd_xml::XmlError),
    /// The CSV front-end rejected the stream.
    Csv(tfd_csv::CsvError),
    /// The reader failed.
    Io(std::io::Error),
    /// A Skip-mode recovery run skipped more than `limit` malformed
    /// records and aborted. `first` is the first error in document
    /// order, which is deterministic even when the abort cuts a
    /// parallel run short.
    TooManyErrors {
        /// The configured `max_errors` budget that was exceeded.
        limit: usize,
        /// The first skipped error, in document order.
        first: Box<StreamError>,
    },
}

impl StreamError {
    /// Stable kebab-case error code — the machine-readable discriminant
    /// that `Display` alone could not round-trip. Shared by the CLI's
    /// `--json` output and the registry's HTTP error bodies (see
    /// [`crate::report::stream_error_json`]), so a client can branch on
    /// the code instead of scraping the message.
    pub fn code(&self) -> &'static str {
        match self {
            StreamError::Json(_) => "json-parse",
            StreamError::Xml(_) => "xml-parse",
            StreamError::Csv(_) => "csv-parse",
            StreamError::Io(_) => "io",
            StreamError::TooManyErrors { .. } => "too-many-errors",
        }
    }
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Json(e) => write!(f, "{e}"),
            StreamError::Xml(e) => write!(f, "{e}"),
            StreamError::Csv(e) => write!(f, "{e}"),
            StreamError::Io(e) => write!(f, "{e}"),
            StreamError::TooManyErrors { limit, first } => write!(
                f,
                "error budget exceeded: more than {limit} malformed records (first: {first})"
            ),
        }
    }
}

impl std::error::Error for StreamError {}

impl Clone for StreamError {
    fn clone(&self) -> StreamError {
        match self {
            StreamError::Json(e) => StreamError::Json(e.clone()),
            StreamError::Xml(e) => StreamError::Xml(e.clone()),
            StreamError::Csv(e) => StreamError::Csv(e.clone()),
            // io::Error is not Clone; a same-kind, same-message copy is
            // all the error report needs.
            StreamError::Io(e) => StreamError::Io(std::io::Error::new(e.kind(), e.to_string())),
            StreamError::TooManyErrors { limit, first } => StreamError::TooManyErrors {
                limit: *limit,
                first: first.clone(),
            },
        }
    }
}

impl PartialEq for StreamError {
    fn eq(&self, other: &StreamError) -> bool {
        match (self, other) {
            (StreamError::Json(a), StreamError::Json(b)) => a == b,
            (StreamError::Xml(a), StreamError::Xml(b)) => a == b,
            (StreamError::Csv(a), StreamError::Csv(b)) => a == b,
            // io::Error is not PartialEq; kind + message is the closest
            // observable identity.
            (StreamError::Io(a), StreamError::Io(b)) => {
                a.kind() == b.kind() && a.to_string() == b.to_string()
            }
            (
                StreamError::TooManyErrors {
                    limit: la,
                    first: fa,
                },
                StreamError::TooManyErrors {
                    limit: lb,
                    first: fb,
                },
            ) => la == lb && fa == fb,
            _ => false,
        }
    }
}

/// What [`infer_reader`] found in the stream.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSummary {
    /// The folded shape `σn` (`⊥` for an empty stream). For CSV this is
    /// the *row* shape: wrap it in [`Shape::list`] to match the one-shot
    /// front-end, which returns the corpus as a collection of rows.
    pub shape: Shape,
    /// Records folded.
    pub records: usize,
    /// Bytes consumed from the reader.
    pub bytes: u64,
}

/// Default chunk size for [`infer_reader`] callers that have no reason
/// to pick one (64 KiB: large enough that most records never straddle a
/// boundary, small enough to stay cache-friendly).
pub const DEFAULT_CHUNK_SIZE: usize = 64 * 1024;

/// Streams `reader` through the `format` front-end, folding every record
/// into an [`InferAccumulator`] — the whole parse→infer pipeline in
/// `O(1 record)` memory. Records are parsed incrementally from
/// `chunk_size`-byte reads and dropped as soon as their shape is joined.
///
/// # Errors
///
/// The first parse error (with stream-global positions) or I/O error.
///
/// ```
/// use tfd_core::{stream::{infer_reader, StreamFormat}, InferOptions, Shape};
///
/// let jsonl = b"{\"a\": 1}\n{\"a\": 2.5, \"b\": true}\n" as &[u8];
/// let summary = infer_reader(jsonl, StreamFormat::Json, &InferOptions::json(), 7)?;
/// assert_eq!(summary.records, 2);
/// assert!(matches!(summary.shape, Shape::Record(_)));
/// # Ok::<(), tfd_core::stream::StreamError>(())
/// ```
pub fn infer_reader<R: Read + Send>(
    reader: R,
    format: StreamFormat,
    options: &InferOptions,
    chunk_size: usize,
) -> Result<StreamSummary, StreamError> {
    // One worker means sequential: this is the jobs-agnostic entry the
    // engine's parallel driver degrades to.
    crate::engine::infer_reader_parallel_dyn(format, reader, options, chunk_size, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer_many;
    use tfd_value::{arr, json_rec, rec};

    fn sample_corpus() -> Vec<Value> {
        vec![
            json_rec([("name", Value::str("Jan")), ("age", Value::Int(25))]),
            json_rec([("name", Value::str("Tomas"))]),
            json_rec([
                ("name", Value::str("Alexander")),
                ("age", Value::Float(3.5)),
            ]),
            Value::Null,
            arr([Value::Int(0), Value::Int(1)]),
            rec(
                "row",
                [("d", Value::str("2012-05-01")), ("n", Value::str("35.14"))],
            ),
        ]
    }

    #[test]
    fn fold_matches_infer_many_for_all_presets() {
        let corpus = sample_corpus();
        for options in [
            InferOptions::formal(),
            InferOptions::json(),
            InferOptions::csv(),
            InferOptions::xml(),
        ] {
            let mut acc = InferAccumulator::new(options.clone());
            for d in &corpus {
                acc.push(d);
            }
            assert_eq!(acc.records(), corpus.len());
            assert_eq!(*acc.shape(), infer_many(&corpus, &options), "{options:?}");
        }
    }

    #[test]
    fn finish_global_reaches_the_oneshot_fixed_point() {
        // The env-carrying finishers agree with globalizing the batch
        // fold — the §6.2 fixed point, streamed.
        let docs = [
            rec("div", [("child", rec("div", [("x", Value::Int(1))]))]),
            rec("div", [("y", Value::Bool(true))]),
        ];
        let opts = InferOptions::xml();
        let expected = crate::globalize_env(infer_many(&docs, &opts));
        let mut acc = InferAccumulator::new(opts);
        for d in &docs {
            acc.push(d);
        }
        assert_eq!(acc.global_shape(), expected);
        assert_eq!(acc.finish_global(), expected);
        assert!(
            !expected.env.is_empty(),
            "the corpus is genuinely recursive"
        );
    }

    #[test]
    fn empty_fold_is_bottom() {
        let acc = InferAccumulator::new(InferOptions::formal());
        assert!(acc.is_empty());
        assert_eq!(acc.finish(), Shape::Bottom);
    }

    #[test]
    fn refolding_the_same_corpus_is_idempotent() {
        // csh is a least upper bound: S(di) ⊑ σn, so pushing the corpus
        // a second time must leave the shape fixed.
        let corpus = sample_corpus();
        for options in [
            InferOptions::formal(),
            InferOptions::json(),
            InferOptions::csv(),
        ] {
            let mut acc = InferAccumulator::new(options.clone());
            for d in &corpus {
                acc.push(d);
            }
            let first = acc.shape().clone();
            for d in &corpus {
                acc.push(d);
            }
            assert_eq!(*acc.shape(), first, "{options:?}");
        }
    }

    #[test]
    fn infer_reader_small_chunks_match_in_memory_inference() {
        let jsonl = "{\"a\": 1}\n{\"a\": 2, \"b\": [1, null]}\n{\"a\": 3.5}\n";
        let docs = tfd_json::parse_many_values(jsonl).unwrap();
        let expected = infer_many(&docs, &InferOptions::json());
        for chunk_size in [1, 3, 16, 4096] {
            let summary = infer_reader(
                jsonl.as_bytes(),
                StreamFormat::Json,
                &InferOptions::json(),
                chunk_size,
            )
            .unwrap();
            assert_eq!(summary.shape, expected);
            assert_eq!(summary.records, 3);
            assert_eq!(summary.bytes, jsonl.len() as u64);
        }
    }

    #[test]
    fn infer_reader_csv_gives_the_row_shape() {
        let csv = "a,b\n1,x\n2,y\n";
        let summary =
            infer_reader(csv.as_bytes(), StreamFormat::Csv, &InferOptions::csv(), 4).unwrap();
        assert_eq!(summary.records, 2);
        let oneshot = crate::infer_with(&tfd_csv::parse_value(csv).unwrap(), &InferOptions::csv());
        assert_eq!(Shape::list(summary.shape), oneshot);
    }

    #[test]
    fn infer_reader_xml_single_document() {
        let xml = r#"<root id="1"><item>Hello!</item></root>"#;
        let summary =
            infer_reader(xml.as_bytes(), StreamFormat::Xml, &InferOptions::xml(), 5).unwrap();
        assert_eq!(summary.records, 1);
        let oneshot = crate::infer_with(&tfd_xml::parse_value(xml).unwrap(), &InferOptions::xml());
        assert_eq!(summary.shape, oneshot);
    }

    #[test]
    fn infer_reader_propagates_parse_errors() {
        let r = infer_reader(&b"[1,]"[..], StreamFormat::Json, &InferOptions::json(), 2);
        assert!(matches!(r, Err(StreamError::Json(_))));
        let r = infer_reader(&b""[..], StreamFormat::Csv, &InferOptions::csv(), 2);
        assert!(matches!(r, Err(StreamError::Csv(tfd_csv::CsvError::Empty))));
    }
}
