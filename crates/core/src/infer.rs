//! Shape inference from sample data — `S(d)` and `S(d1, …, dn)` (Fig. 3).
//!
//! ```text
//! S(i) = int      S(null) = null     S(true) = bool
//! S(f) = float    S(s) = string      S(false) = bool
//! S([d1; …; dn]) = [S(d1, …, dn)]
//! S(ν {ν1 ↦ d1, …, νn ↦ dn}ρ) = ν {ν1 : S(d1), …, νn : S(dn), ⌈θ(ρ)⌉}
//! S(d1, …, dn) = σn   where σ0 = ⊥, σi = csh(σi−1, S(di))
//! ```
//!
//! The row variables ρ of Fig. 3 do not appear explicitly: the minimal
//! ground substitution θ is computed *inside* the record rule of
//! [`csh`](crate::csh) — a field present in one record and missing from
//! another unifies with the fresh row variable of the latter, and the
//! `⌈−⌉` in `⌈θ(ρ)⌉` makes it nullable. This matches "No ρi variables
//! remain after inference as the substitution chosen is ground."
//!
//! [`InferOptions`] adds the practical §6.2/§6.4 behaviours: the `bit`
//! shape for 0/1 integers, `date` detection for strings, and
//! heterogeneous collections with multiplicities.

use crate::csh::csh;
use crate::multiplicity::Multiplicity;
use crate::tags::tag_of;
use crate::Shape;
use tfd_value::Value;

/// Options controlling the extensions of the inference algorithm.
///
/// The paper's formal core (used for the relative-safety experiments)
/// corresponds to [`InferOptions::formal`]; the front-end presets mirror
/// how F# Data configures inference per format.
#[derive(Debug, Clone)]
pub struct InferOptions {
    /// Infer [`Shape::Bit`] for the integers 0 and 1 (§6.2, CSV: "the
    /// sample contains only 0 and 1 … handled by adding a bit shape which
    /// is preferred \[over] both int and bool").
    pub infer_bits: bool,
    /// Infer [`Shape::Date`] for strings that parse as dates (§6.2).
    pub detect_dates: bool,
    /// Infer heterogeneous collections with multiplicities (§6.4) when a
    /// collection mixes element tags, instead of a collection of a
    /// labelled top.
    pub hetero_collections: bool,
    /// For a single-tag collection observed with exactly one element,
    /// keep the `1` multiplicity (exposing the element directly) instead
    /// of generalizing to a collection. This is the XML behaviour behind
    /// the §6.3 `Root`/`Item` example; JSON arrays stay arrays.
    pub singleton_collections: bool,
    /// Infer primitive shapes from *string content* (§2.3): the World
    /// Bank service returns numbers as `"35.14229"`, yet the provided
    /// type reads `Value : option float` and `Date : int`. Enabled for
    /// the JSON preset; the runtime's accessors symmetrically accept
    /// string-encoded numbers.
    pub stringly_primitives: bool,
}

impl Default for InferOptions {
    /// The JSON-provider configuration: heterogeneous collections on,
    /// bit/date inference off.
    fn default() -> Self {
        InferOptions::json()
    }
}

impl InferOptions {
    /// The paper's formal core: no extensions. Collections always infer
    /// as `[S(d1,…,dn)]` exactly as in Fig. 3.
    pub fn formal() -> InferOptions {
        InferOptions {
            infer_bits: false,
            detect_dates: false,
            hetero_collections: false,
            singleton_collections: false,
            stringly_primitives: false,
        }
    }

    /// JSON front-end preset (§2.1, §2.3): heterogeneous collections and
    /// content-based primitive inference for strings.
    pub fn json() -> InferOptions {
        InferOptions {
            infer_bits: false,
            detect_dates: false,
            hetero_collections: true,
            singleton_collections: false,
            stringly_primitives: true,
        }
    }

    /// CSV front-end preset (§6.2): bit + date inference (cells were
    /// already literal-inferred by the CSV front-end).
    pub fn csv() -> InferOptions {
        InferOptions {
            infer_bits: true,
            detect_dates: true,
            hetero_collections: false,
            singleton_collections: false,
            stringly_primitives: false,
        }
    }

    /// XML front-end preset (§2.2, §6.2): like JSON, plus date detection
    /// for attribute/text literals (which the XML front-end has already
    /// literal-inferred, so stringly inference is off).
    pub fn xml() -> InferOptions {
        InferOptions {
            infer_bits: false,
            detect_dates: true,
            hetero_collections: true,
            singleton_collections: true,
            stringly_primitives: false,
        }
    }
}

/// Infers the shape of a single sample with default (JSON) options.
///
/// ```
/// use tfd_core::{infer, Shape};
/// use tfd_value::Value;
/// assert_eq!(infer(&Value::Int(42)), Shape::Int);
/// assert_eq!(infer(&Value::Null), Shape::Null);
/// ```
pub fn infer(sample: &Value) -> Shape {
    infer_with(sample, &InferOptions::default())
}

/// Infers the shape of a single sample under explicit options.
pub fn infer_with(sample: &Value, options: &InferOptions) -> Shape {
    match sample {
        Value::Int(i) => {
            if options.infer_bits && (*i == 0 || *i == 1) {
                Shape::Bit
            } else {
                Shape::Int
            }
        }
        Value::Float(_) => Shape::Float,
        Value::Bool(_) => Shape::Bool,
        Value::Str(s) => {
            if options.detect_dates && tfd_csv::parse_date(s).is_some() {
                return Shape::Date;
            }
            if options.stringly_primitives {
                match tfd_csv::literal::infer_primitive(s) {
                    Some(Value::Int(_)) => return Shape::Int,
                    Some(Value::Float(_)) => return Shape::Float,
                    Some(Value::Bool(_)) => return Shape::Bool,
                    _ => {}
                }
            }
            Shape::String
        }
        Value::Null => Shape::Null,
        Value::List(items) => infer_collection(items, options),
        Value::Record { name, fields } => Shape::record(
            *name,
            fields
                .iter()
                .map(|f| (f.name, infer_with(&f.value, options))),
        ),
    }
}

/// Infers a common shape from multiple samples — `S(d1, …, dn)`:
/// the fold of `csh` starting from ⊥ (Fig. 3).
///
/// ```
/// use tfd_core::{infer_many, InferOptions, Shape};
/// use tfd_value::Value;
/// let samples = [Value::Int(1), Value::Float(2.5)];
/// assert_eq!(infer_many(&samples, &InferOptions::formal()), Shape::Float);
/// ```
pub fn infer_many<'a, I>(samples: I, options: &InferOptions) -> Shape
where
    I: IntoIterator<Item = &'a Value>,
{
    samples
        .into_iter()
        .fold(Shape::Bottom, |acc, d| csh(acc, infer_with(d, options)))
}

#[allow(clippy::expect_used)] // checked invariant, documented at each site
/// Collection inference. In formal mode this is Fig. 3's
/// `[S(d1, …, dn)]`. With heterogeneous collections on (§6.4), elements
/// are grouped by shape tag: a single tag still yields a homogeneous
/// collection, while mixed tags yield a [`Shape::HeteroList`] whose cases
/// carry per-tag multiplicities.
fn infer_collection(items: &[Value], options: &InferOptions) -> Shape {
    if !options.hetero_collections {
        let element = items
            .iter()
            .fold(Shape::Bottom, |acc, d| csh(acc, infer_with(d, options)));
        return Shape::list(element);
    }

    // Group element shapes by tag, preserving first-seen case order.
    let mut cases: Vec<(Shape, usize)> = Vec::new();
    let mut null_count = 0usize;
    for item in items {
        let s = infer_with(item, options);
        if s == Shape::Null {
            // Nulls are not a case of their own: they make every case
            // nullable at access time; the §6.4 machinery treats them as
            // absent elements (collections are already nullable).
            null_count += 1;
            continue;
        }
        let tag = tag_of(&s);
        match cases.iter_mut().find(|(cs, _)| tag_of(cs) == tag) {
            Some((cs, count)) => {
                let old = std::mem::replace(cs, Shape::Bottom);
                *cs = csh(old, s);
                *count += 1;
            }
            None => cases.push((s, 1)),
        }
    }

    match cases.len() {
        0 => Shape::list(if null_count > 0 {
            Shape::Null
        } else {
            Shape::Bottom
        }),
        1 => {
            let (shape, count) = cases.into_iter().next().expect("one case");
            if count == 1 && options.singleton_collections && !items.is_empty() && null_count == 0 {
                // A single element of a single tag: keep the multiplicity
                // information. This is the XML-preset behaviour behind the
                // §6.3 Root/Item example (`Item : string` rather than a
                // collection of items).
                Shape::HeteroList(vec![(shape, Multiplicity::One)])
            } else if null_count > 0 {
                // Null elements make the element shape nullable, exactly
                // as the formal collection rule would (csh with null).
                Shape::list(shape.ceil())
            } else {
                Shape::list(shape)
            }
        }
        _ => Shape::HeteroList(
            cases
                .into_iter()
                .map(|(shape, count)| (shape, Multiplicity::of_count(count)))
                .collect(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfd_value::{arr, json_rec, rec};
    use Shape::String as StringShape;
    use Shape::{Bool, Bottom, Float, Int, Null};

    // Alias to keep the Fig. 3 names close.
    fn s(v: &Value) -> Shape {
        infer_with(v, &InferOptions::formal())
    }

    #[test]
    fn fig3_primitives() {
        assert_eq!(s(&Value::Int(5)), Int);
        assert_eq!(s(&Value::Float(2.5)), Float);
        assert_eq!(s(&Value::Bool(true)), Bool);
        assert_eq!(s(&Value::Bool(false)), Bool);
        assert_eq!(s(&Value::str("x")), StringShape);
        assert_eq!(s(&Value::Null), Null);
    }

    #[test]
    fn fig3_collection_joins_elements() {
        let v = arr([Value::Int(1), Value::Float(2.5)]);
        assert_eq!(s(&v), Shape::list(Float));
    }

    #[test]
    fn fig3_empty_collection_is_list_of_bottom() {
        assert_eq!(s(&arr([])), Shape::list(Bottom));
    }

    #[test]
    fn fig3_record_fields_infer_pointwise() {
        let v = rec("P", [("x", Value::Int(3)), ("s", Value::str("a"))]);
        assert_eq!(s(&v), Shape::record("P", [("x", Int), ("s", StringShape)]));
    }

    #[test]
    fn fig3_multi_sample_fold() {
        let samples = [Value::Int(1), Value::Null];
        assert_eq!(infer_many(&samples, &InferOptions::formal()), Int.ceil());
        assert_eq!(infer_many(&[], &InferOptions::formal()), Bottom);
    }

    #[test]
    fn row_variables_make_missing_fields_optional() {
        // §3.1: Point {x ↦ 3} and Point {x ↦ 3, y ↦ 4} give
        // Point {x : int, y : nullable int}.
        let p1 = rec("Point", [("x", Value::Int(3))]);
        let p2 = rec("Point", [("x", Value::Int(3)), ("y", Value::Int(4))]);
        assert_eq!(
            infer_many([&p1, &p2], &InferOptions::formal()),
            Shape::record("Point", [("x", Int), ("y", Int.ceil())])
        );
    }

    #[test]
    fn people_sample_infers_like_the_paper() {
        // §2.1: [{name, age:25}, {name}, {name, age:3.5}] gives
        // records with Name : string and Age : nullable float.
        let people = arr([
            json_rec([("name", Value::str("Jan")), ("age", Value::Int(25))]),
            json_rec([("name", Value::str("Tomas"))]),
            json_rec([
                ("name", Value::str("Alexander")),
                ("age", Value::Float(3.5)),
            ]),
        ]);
        let shape = infer_with(&people, &InferOptions::json());
        let expected = Shape::list(Shape::record(
            tfd_value::BODY_NAME,
            [("name", StringShape), ("age", Float.ceil())],
        ));
        assert_eq!(shape, expected);
    }

    #[test]
    fn nulls_in_collections_make_elements_nullable_in_formal_mode() {
        let v = arr([Value::Int(1), Value::Null]);
        assert_eq!(s(&v), Shape::list(Int.ceil()));
    }

    #[test]
    fn bit_inference_only_when_enabled() {
        let opts = InferOptions {
            infer_bits: true,
            ..InferOptions::formal()
        };
        assert_eq!(infer_with(&Value::Int(0), &opts), Shape::Bit);
        assert_eq!(infer_with(&Value::Int(1), &opts), Shape::Bit);
        assert_eq!(infer_with(&Value::Int(2), &opts), Int);
        assert_eq!(infer(&Value::Int(0)), Int); // default: off
    }

    #[test]
    fn date_inference_only_when_enabled() {
        let opts = InferOptions {
            detect_dates: true,
            ..InferOptions::formal()
        };
        assert_eq!(infer_with(&Value::str("2012-05-01"), &opts), Shape::Date);
        assert_eq!(infer_with(&Value::str("3 kveten"), &opts), StringShape);
        assert_eq!(infer(&Value::str("2012-05-01")), StringShape); // default: off
    }

    #[test]
    fn csv_airquality_columns_infer_like_the_paper() {
        // §6.2: Ozone float, Temp nullable int, Date string (mixed
        // formats), Autofilled bool (bit from 0/1).
        let rows = [
            [
                ("Ozone", Value::Int(41)),
                ("Temp", Value::Int(67)),
                ("Date", Value::str("2012-05-01")),
                ("Autofilled", Value::Int(0)),
            ],
            [
                ("Ozone", Value::Float(36.3)),
                ("Temp", Value::Int(72)),
                ("Date", Value::str("2012-05-02")),
                ("Autofilled", Value::Int(1)),
            ],
            [
                ("Ozone", Value::Float(12.1)),
                ("Temp", Value::Int(74)),
                ("Date", Value::str("3 kveten")),
                ("Autofilled", Value::Int(0)),
            ],
            [
                ("Ozone", Value::Float(17.5)),
                ("Temp", Value::Null),
                ("Date", Value::str("2012-05-04")),
                ("Autofilled", Value::Int(0)),
            ],
        ];
        let table = arr(rows.iter().map(|r| rec("row", r.iter().cloned())));
        let shape = infer_with(&table, &InferOptions::csv());
        let expected = Shape::list(Shape::record(
            "row",
            [
                ("Ozone", Float),
                ("Temp", Int.ceil()),
                ("Date", StringShape),
                ("Autofilled", Shape::Bit),
            ],
        ));
        assert_eq!(shape, expected);
    }

    #[test]
    fn hetero_collection_worldbank_pattern() {
        // §2.3: [record, array] gives one record case and one collection
        // case, each with multiplicity 1.
        let doc = arr([
            json_rec([("pages", Value::Int(5))]),
            arr([
                json_rec([("value", Value::Null)]),
                json_rec([("value", Value::str("35.14229"))]),
            ]),
        ]);
        let shape = infer_with(&doc, &InferOptions::json());
        match &shape {
            Shape::HeteroList(cases) => {
                assert_eq!(cases.len(), 2);
                assert!(matches!(cases[0].0, Shape::Record(_)));
                assert_eq!(cases[0].1, Multiplicity::One);
                assert!(matches!(cases[1].0, Shape::List(_)));
                assert_eq!(cases[1].1, Multiplicity::One);
            }
            other => panic!("expected heterogeneous collection, got {other}"),
        }
    }

    #[test]
    fn hetero_disabled_gives_labelled_top_element() {
        let doc = arr([json_rec([("pages", Value::Int(5))]), arr([Value::Int(1)])]);
        let shape = infer_with(&doc, &InferOptions::formal());
        match &shape {
            Shape::List(e) => assert!(e.is_top(), "expected labelled top, got {e}"),
            other => panic!("expected list, got {other}"),
        }
    }

    #[test]
    fn hetero_single_tag_many_elements_stays_homogeneous() {
        let doc = arr([Value::Int(1), Value::Int(2), Value::Int(3)]);
        assert_eq!(infer_with(&doc, &InferOptions::json()), Shape::list(Int));
    }

    #[test]
    fn hetero_single_element_keeps_multiplicity_one_in_xml_mode() {
        // The XML preset opts into singleton collections (§6.3 Root/Item);
        // the JSON preset keeps single-element arrays as arrays.
        let doc = arr([json_rec([("a", Value::Int(1))])]);
        let xml_shape = infer_with(&doc, &InferOptions::xml());
        match &xml_shape {
            Shape::HeteroList(cases) => {
                assert_eq!(cases.len(), 1);
                assert_eq!(cases[0].1, Multiplicity::One);
            }
            other => panic!("expected hetero list, got {other}"),
        }
        let json_shape = infer_with(&doc, &InferOptions::json());
        assert!(matches!(json_shape, Shape::List(_)), "got {json_shape}");
    }

    #[test]
    fn hetero_nulls_do_not_create_cases() {
        // Nulls are not a case of their own, but they do make a
        // single-tag element shape nullable.
        let doc = arr([Value::Null, Value::Int(1), Value::Int(2)]);
        let shape = infer_with(&doc, &InferOptions::json());
        assert_eq!(shape, Shape::list(Int.ceil()));
        // Without nulls the element shape stays non-nullable:
        let clean = arr([Value::Int(1), Value::Int(2)]);
        assert_eq!(infer_with(&clean, &InferOptions::json()), Shape::list(Int));
    }

    #[test]
    fn all_null_collection() {
        let doc = arr([Value::Null, Value::Null]);
        assert_eq!(infer_with(&doc, &InferOptions::json()), Shape::list(Null));
        assert_eq!(s(&doc), Shape::list(Null));
    }

    #[test]
    fn inference_soundness_each_sample_below_joined() {
        use crate::prefer::is_preferred;
        let samples = [
            rec("P", [("x", Value::Int(1))]),
            rec("P", [("x", Value::Float(1.5)), ("y", Value::Bool(true))]),
            rec("P", [("x", Value::Null)]),
        ];
        let joined = infer_many(&samples, &InferOptions::formal());
        for d in &samples {
            assert!(is_preferred(&s(d), &joined), "S({d}) ⋢ {joined}");
        }
    }
}
