//! Shape tags (Fig. 4).
//!
//! > "We define shape tags to identify shapes that have a common
//! > preferred shape which is not the top shape. We use it to limit the
//! > number of labels and avoid nesting by grouping shapes by the shape
//! > tag. Rather than inferring `any⟨int, any⟨bool, float⟩⟩`, our
//! > algorithm joins int and float and produces `any⟨float, bool⟩`."
//!
//! ```text
//! tag = collection | number | nullable | string | ν | any | bool
//! ```
//!
//! The `bit` extension tags as **number** (it joins with int/float below
//! the top) and `date` tags as **string** (it joins with string).

use crate::Shape;
use std::fmt;
use tfd_value::Name;

/// The tag of a shape (Fig. 4), grouping shapes that join below top.
///
/// The derived [`Ord`] gives labelled-top labels and heterogeneous-
/// collection cases a canonical order (numbers, booleans, strings,
/// records by name, collections, …) which makes `csh` commutative on the
/// nose, not just up to label permutation.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Tag {
    /// `int`, `float` and the `bit` extension.
    Number,
    /// `bool`.
    Bool,
    /// `string` and the `date` extension.
    Str,
    /// A record, tagged by its (interned) name ν.
    Name(Name),
    /// Collections `[σ]` (and heterogeneous collections).
    Collection,
    /// `nullable σ̂`.
    Nullable,
    /// The top shape.
    Any,
    /// `null` (not listed in Fig. 4 — `null` never becomes a label
    /// because `⌊−⌋` arguments to the top rules are non-nullable; the
    /// variant exists so [`tag_of`] is total).
    Null,
    /// `⊥` (same remark as for [`Tag::Null`]).
    Bottom,
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tag::Collection => write!(f, "collection"),
            Tag::Number => write!(f, "number"),
            Tag::Nullable => write!(f, "nullable"),
            Tag::Str => write!(f, "string"),
            Tag::Name(n) => write!(f, "{n}"),
            Tag::Any => write!(f, "any"),
            Tag::Bool => write!(f, "bool"),
            Tag::Null => write!(f, "null"),
            Tag::Bottom => write!(f, "\u{22a5}"),
        }
    }
}

/// `tagof(σ)` per Fig. 4 (extended to be total; see [`Tag::Null`]).
///
/// ```
/// use tfd_core::{tag_of, Shape, Tag};
/// assert_eq!(tag_of(&Shape::Int), Tag::Number);
/// assert_eq!(tag_of(&Shape::Float), Tag::Number);
/// assert_eq!(tag_of(&Shape::record("P", [("x", Shape::Int)])), Tag::Name("P".into()));
/// ```
pub fn tag_of(shape: &Shape) -> Tag {
    match shape {
        Shape::String | Shape::Date => Tag::Str,
        Shape::Bool => Tag::Bool,
        Shape::Int | Shape::Float | Shape::Bit => Tag::Number,
        Shape::Top(_) => Tag::Any,
        Shape::Record(r) => Tag::Name(r.name),
        // A μ-reference denotes the record definition it names: same tag
        // as the record, so same-name refs and records group (and join)
        // below the top shape.
        Shape::Ref(n) => Tag::Name(*n),
        Shape::Nullable(_) => Tag::Nullable,
        Shape::List(_) | Shape::HeteroList(_) => Tag::Collection,
        Shape::Null => Tag::Null,
        Shape::Bottom => Tag::Bottom,
    }
}

/// [`tag_of`] under an optional [`ShapeEnv`](crate::ShapeEnv).
///
/// Tags are derivable without unfolding — a [`Shape::Ref`] tags as the
/// record name it references whether or not a definition is in scope —
/// so the environment only serves as a debug check that in-scope refs
/// really do name record definitions. The function exists so the whole
/// env-aware algebra (`is_preferred_in`, `csh_in`, `conforms_in`,
/// `tag_of_in`) has a uniform signature.
pub fn tag_of_in(shape: &Shape, env: Option<&crate::ShapeEnv>) -> Tag {
    if let (Shape::Ref(n), Some(env)) = (shape, env) {
        debug_assert!(
            env.get(*n).is_none_or(|def| def.name == *n),
            "env definition for {n} is misnamed"
        );
    }
    tag_of(shape)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_cases() {
        assert_eq!(tag_of(&Shape::String), Tag::Str);
        assert_eq!(tag_of(&Shape::Bool), Tag::Bool);
        assert_eq!(tag_of(&Shape::Int), Tag::Number);
        assert_eq!(tag_of(&Shape::Float), Tag::Number);
        assert_eq!(tag_of(&Shape::any()), Tag::Any);
        assert_eq!(tag_of(&Shape::Top(vec![Shape::Int])), Tag::Any);
        assert_eq!(
            tag_of(&Shape::record("P", [("x", Shape::Int)])),
            Tag::Name("P".into())
        );
        assert_eq!(tag_of(&Shape::Int.ceil()), Tag::Nullable);
        assert_eq!(tag_of(&Shape::list(Shape::Int)), Tag::Collection);
    }

    #[test]
    fn extended_primitives_group_with_their_joins() {
        assert_eq!(tag_of(&Shape::Bit), Tag::Number);
        assert_eq!(tag_of(&Shape::Date), Tag::Str);
    }

    #[test]
    fn records_tag_by_name() {
        let p = Shape::record("P", [("x", Shape::Int)]);
        let q = Shape::record("Q", [("x", Shape::Int)]);
        assert_ne!(tag_of(&p), tag_of(&q));
        let p2 = Shape::record("P", [("y", Shape::Bool)]);
        assert_eq!(tag_of(&p), tag_of(&p2));
    }

    #[test]
    fn hetero_lists_are_collections() {
        assert_eq!(tag_of(&Shape::HeteroList(vec![])), Tag::Collection);
    }

    #[test]
    fn display_names() {
        assert_eq!(Tag::Number.to_string(), "number");
        assert_eq!(Tag::Name("doc".into()).to_string(), "doc");
    }
}
