//! The shape environment — a named, ordered definitions table that makes
//! recursive (μ-style) shapes representable.
//!
//! The finite-tree shape algebra of §3.1 cannot express recursion: an
//! element nested inside an element of the same name (`<ul>` containing
//! `<li>` containing `<ul>`) forces the old `globalize` to cut the
//! expansion, and PR 3's differential suite proved that no finite-tree
//! iteration of that cut converges. The fix — exactly how F# Data's
//! provided types and λDL's concept definitions work — is to make a
//! nested occurrence a *reference* to its name class rather than an
//! inline expansion:
//!
//! * [`ShapeEnv`] is the ordered `Name → RecordShape` definitions table;
//! * [`Shape::Ref`] is the back-reference into it;
//! * [`GlobalShape`] pairs a root shape with its environment — the result
//!   type of [`globalize_env`](crate::globalize_env), the redesigned
//!   global-inference entry point.
//!
//! The algebra is extended env-aware: [`is_preferred_in`]
//! (crate::is_preferred_in), [`csh_in`](crate::csh_in),
//! [`conforms_in`](crate::conforms_in) and [`tag_of_in`]
//! (crate::tag_of_in) take the environment and handle `Ref`
//! coinductively — and because references are nominal, the coinduction
//! is name-decided for reference pairs and one-definition-per-level
//! unfolding everywhere else (see `prefer`'s module docs for the
//! termination argument).

use crate::csh::csh;
use crate::shape::{FieldShape, RecordShape, Shape};
use std::fmt;
use tfd_value::Name;

/// An ordered `Name → RecordShape` definitions table.
///
/// Each entry defines the record shape of one global name class (§6.2):
/// a [`Shape::Ref`] with that name, anywhere under the same environment,
/// denotes this definition. Entry bodies may refer to each other (and to
/// themselves) through further `Ref`s — mutual recursion is the point.
///
/// Equality and hashing are order-insensitive (the table is a map;
/// definition order only matters for deterministic printing and code
/// generation, where entries are kept in name order).
#[derive(Debug, Clone, Default, Eq)]
pub struct ShapeEnv {
    defs: Vec<(Name, RecordShape)>,
}

impl PartialEq for ShapeEnv {
    fn eq(&self, other: &Self) -> bool {
        self.defs.len() == other.defs.len()
            && self
                .defs
                .iter()
                .all(|(n, d)| other.get(*n).is_some_and(|o| o == d))
    }
}

impl std::hash::Hash for ShapeEnv {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        use std::hash::Hasher;
        self.defs.len().hash(state);
        let mut acc: u64 = 0;
        for (n, d) in &self.defs {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            n.hash(&mut h);
            d.hash(&mut h);
            acc ^= h.finish();
        }
        acc.hash(state);
    }
}

impl ShapeEnv {
    /// An empty environment (under which `Ref`s are dangling and the
    /// env-aware algebra degrades to the plain one).
    pub fn new() -> ShapeEnv {
        ShapeEnv::default()
    }

    /// Builds an environment from `(name, definition)` pairs, keeping
    /// the given order. Later duplicates replace earlier ones.
    pub fn from_defs<I>(defs: I) -> ShapeEnv
    where
        I: IntoIterator<Item = (Name, RecordShape)>,
    {
        let mut env = ShapeEnv::new();
        for (name, def) in defs {
            env.define(name, def);
        }
        env
    }

    /// Looks up the definition of `name`.
    pub fn get(&self, name: Name) -> Option<&RecordShape> {
        self.defs.iter().find(|(n, _)| *n == name).map(|(_, d)| d)
    }

    /// Returns `true` when `name` has a definition.
    pub fn contains(&self, name: Name) -> bool {
        self.get(name).is_some()
    }

    /// Inserts or replaces the definition of `name`.
    pub fn define(&mut self, name: Name, def: RecordShape) {
        match self.defs.iter_mut().find(|(n, _)| *n == name) {
            Some((_, d)) => *d = def,
            None => self.defs.push((name, def)),
        }
    }

    /// Iterates the definitions in table order.
    pub fn iter(&self) -> impl Iterator<Item = (Name, &RecordShape)> {
        self.defs.iter().map(|(n, d)| (*n, d))
    }

    /// Consumes the table, yielding the definitions in order.
    pub fn into_defs(self) -> Vec<(Name, RecordShape)> {
        self.defs
    }

    /// The defined names, in table order.
    pub fn names(&self) -> impl Iterator<Item = Name> + '_ {
        self.defs.iter().map(|(n, _)| *n)
    }

    /// Number of definitions.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// `true` when the table has no definitions.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// Migrates every name in the table — definition names, record and
    /// field names, `Ref` targets — into `interner` (see
    /// [`Shape::reintern`]).
    pub fn reintern(&mut self, interner: &tfd_value::Interner) {
        for (name, def) in &mut self.defs {
            *name = name.reintern(interner);
            def.name = def.name.reintern(interner);
            for f in &mut def.fields {
                f.name = f.name.reintern(interner);
                f.shape.reintern(interner);
            }
        }
    }

    /// Rewrites `shape` into this environment, consuming it: every
    /// record whose name is defined here is replaced by a [`Shape::Ref`]
    /// after its (recursively rewritten) body is joined into the
    /// definition with [`csh`]. This is the widening half of the
    /// μ-discipline — absorbing fresh sample data into an existing
    /// global shape can only generalize the definitions (Lemma 1), so a
    /// fold that re-absorbs data it has already seen is a no-op.
    ///
    /// Records whose names are *not* defined here pass through untouched
    /// (promotion of newly colliding names is
    /// [`globalize_env`](crate::globalize_env)'s job, not `absorb`'s).
    pub fn absorb(&mut self, shape: Shape) -> Shape {
        match shape {
            Shape::Record(r) if self.contains(r.name) => {
                let name = r.name;
                let fields: Vec<FieldShape> = r
                    .fields
                    .into_iter()
                    .map(|f| FieldShape::new(f.name, self.absorb(f.shape)))
                    .collect();
                let occurrence = RecordShape { name, fields };
                let joined = match self.get(name) {
                    Some(def) => match csh(Shape::Record(def.clone()), Shape::Record(occurrence)) {
                        Shape::Record(m) => m,
                        other => unreachable!("same-name record join left records: {other}"),
                    },
                    None => occurrence,
                };
                self.define(name, joined);
                Shape::Ref(name)
            }
            Shape::Record(r) => Shape::Record(RecordShape {
                name: r.name,
                fields: r
                    .fields
                    .into_iter()
                    .map(|f| FieldShape::new(f.name, self.absorb(f.shape)))
                    .collect(),
            }),
            Shape::Nullable(mut s) => {
                *s = self.absorb(std::mem::replace(&mut *s, Shape::Bottom));
                // The invariant that `Nullable` wraps non-nullable shapes
                // is preserved: absorb maps records to refs, both σ̂.
                Shape::Nullable(s)
            }
            Shape::List(mut s) => {
                *s = self.absorb(std::mem::replace(&mut *s, Shape::Bottom));
                Shape::List(s)
            }
            Shape::Top(labels) => Shape::Top(labels.into_iter().map(|l| self.absorb(l)).collect()),
            Shape::HeteroList(cases) => Shape::HeteroList(
                cases
                    .into_iter()
                    .map(|(s, m)| (self.absorb(s), m))
                    .collect(),
            ),
            other => other,
        }
    }

    /// Gives every dangling [`Shape::Ref`] in `shape` an (empty) record
    /// definition. A dangling reference stands for a name class with no
    /// fields known yet; seeding it before a join lets same-name record
    /// occurrences *widen* the class instead of being silently absorbed
    /// by the env-free class-top rule — [`csh_in`](crate::csh_in) calls
    /// this so its result stays an upper bound even on hand-built
    /// shapes whose references outrun the table.
    pub fn seed_dangling(&mut self, shape: &Shape) {
        let mut missing: Vec<Name> = Vec::new();
        collect_refs(shape, &mut |n| {
            if !self.contains(n) && !missing.contains(&n) {
                missing.push(n);
            }
        });
        for n in missing {
            self.define(
                n,
                RecordShape {
                    name: n,
                    fields: Vec::new(),
                },
            );
        }
    }

    /// Expands `shape` into a finite tree under this environment: every
    /// [`Shape::Ref`] is replaced by its definition, recursively, except
    /// at recursion points (a name already being expanded), where the
    /// reference is kept. Dangling references stay as they are.
    pub fn inline(&self, shape: &Shape) -> Shape {
        let mut stack = Vec::new();
        self.inline_shape(shape, &mut stack)
    }

    fn inline_shape(&self, shape: &Shape, stack: &mut Vec<Name>) -> Shape {
        match shape {
            Shape::Ref(n) => {
                if stack.contains(n) {
                    return Shape::Ref(*n); // recursion point: keep the reference
                }
                match self.get(*n) {
                    Some(def) => {
                        stack.push(*n);
                        let out = Shape::Record(RecordShape {
                            name: def.name,
                            fields: def
                                .fields
                                .iter()
                                .map(|f| {
                                    FieldShape::new(f.name, self.inline_shape(&f.shape, stack))
                                })
                                .collect(),
                        });
                        stack.pop();
                        out
                    }
                    None => Shape::Ref(*n), // dangling: nothing to expand
                }
            }
            Shape::Record(r) => Shape::Record(RecordShape {
                name: r.name,
                fields: r
                    .fields
                    .iter()
                    .map(|f| FieldShape::new(f.name, self.inline_shape(&f.shape, stack)))
                    .collect(),
            }),
            Shape::Nullable(s) => self.inline_shape(s, stack).ceil(),
            Shape::List(s) => Shape::list(self.inline_shape(s, stack)),
            Shape::Top(labels) => {
                Shape::Top(labels.iter().map(|l| self.inline_shape(l, stack)).collect())
            }
            Shape::HeteroList(cases) => Shape::HeteroList(
                cases
                    .iter()
                    .map(|(s, m)| (self.inline_shape(s, stack), *m))
                    .collect(),
            ),
            other => other.clone(),
        }
    }
}

impl fmt::Display for ShapeEnv {
    /// Formats the definitions as `ν1 {…}, ν2 {…}` in table order.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (_, def)) in self.defs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", Shape::Record(def.clone()))?;
        }
        Ok(())
    }
}

/// The result of global (by-name) inference: a root shape together with
/// the environment its [`Shape::Ref`]s point into.
///
/// This is the redesigned §6.2 entry point's return type (see
/// [`globalize_env`](crate::globalize_env)); the legacy
/// [`globalize`](crate::globalize) is a thin wrapper that inlines
/// non-recursive definitions via [`GlobalShape::inline`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GlobalShape {
    /// The root shape; records of globalized name classes appear as
    /// [`Shape::Ref`]s into `env`.
    pub root: Shape,
    /// The definitions table the root's references resolve in.
    pub env: ShapeEnv,
}

impl GlobalShape {
    /// Wraps a plain (environment-free) shape.
    pub fn plain(root: Shape) -> GlobalShape {
        GlobalShape {
            root,
            env: ShapeEnv::new(),
        }
    }

    /// Folds one more sample shape into the global shape — the
    /// env-carrying form of the Fig. 3 fold. The shape is absorbed into
    /// the environment (existing definitions widen by `csh`), joined
    /// into the root, and newly colliding names are promoted to
    /// definitions, so incremental streaming reaches the same fixed
    /// point as a one-shot [`globalize_env`](crate::globalize_env) over
    /// the whole corpus (the streaming suite asserts this).
    pub fn absorb(&mut self, shape: Shape) {
        let root = std::mem::replace(&mut self.root, Shape::Bottom);
        let mut env = std::mem::take(&mut self.env);
        // `csh_in` seeds dangling references and widens the definitions;
        // `saturate` then promotes any newly colliding names.
        let joined = crate::csh::csh_in(root, shape, &mut env);
        *self = crate::global::saturate(joined, env);
    }

    /// Migrates the root shape and the whole environment into
    /// `interner` (see [`Shape::reintern`]) — how a global shape folded
    /// in a corpus-scoped arena survives that arena's drop.
    pub fn reintern(&mut self, interner: &tfd_value::Interner) {
        self.root.reintern(interner);
        self.env.reintern(interner);
    }

    /// The names whose definitions are (transitively) self-referential —
    /// the classes that genuinely need μ-treatment. Non-recursive names
    /// can be inlined away (and [`GlobalShape::inline`] does).
    pub fn recursive_names(&self) -> Vec<Name> {
        self.env
            .names()
            .filter(|&n| self.reachable_from(n).contains(&n))
            .collect()
    }

    /// Names reachable from `start`'s definition through `Ref`s
    /// (transitively; `start` itself is included only when reached).
    fn reachable_from(&self, start: Name) -> Vec<Name> {
        let mut seen: Vec<Name> = Vec::new();
        let mut stack = vec![start];
        while let Some(m) = stack.pop() {
            if let Some(def) = self.env.get(m) {
                for f in &def.fields {
                    collect_refs(&f.shape, &mut |r| {
                        if !seen.contains(&r) {
                            seen.push(r);
                            stack.push(r);
                        }
                    });
                }
            }
        }
        seen
    }

    /// Expands the environment back into a finite shape tree: every
    /// [`Shape::Ref`] is replaced by its definition, recursively, except
    /// at recursion points (a name already being expanded), where the
    /// reference is kept — the finite-tree rendering of the μ-shape.
    /// Non-recursive definitions disappear entirely; this is what the
    /// legacy [`globalize`](crate::globalize) wrapper returns.
    pub fn inline(&self) -> Shape {
        self.env.inline(&self.root)
    }

    /// The sub-environment actually reachable from the root through
    /// `Ref`s (including through definition bodies), in deterministic
    /// first-reference order — the same order regardless of how the
    /// full table happens to be ordered. Unreachable definitions are
    /// dropped; dangling references stay undefined. This is the
    /// canonical view the `analyze` module fingerprints and diffs.
    pub fn reachable_env(&self) -> ShapeEnv {
        let mut order: Vec<Name> = Vec::new();
        collect_refs(&self.root, &mut |n| {
            if !order.contains(&n) {
                order.push(n);
            }
        });
        let mut i = 0;
        while i < order.len() {
            let name = order[i];
            if let Some(def) = self.env.get(name) {
                for f in &def.fields {
                    collect_refs(&f.shape, &mut |n| {
                        if !order.contains(&n) {
                            order.push(n);
                        }
                    });
                }
            }
            i += 1;
        }
        ShapeEnv::from_defs(
            order
                .into_iter()
                .filter_map(|n| self.env.get(n).map(|d| (n, d.clone()))),
        )
    }
}

/// Calls `f` for every [`Shape::Ref`] name in `shape`.
fn collect_refs(shape: &Shape, f: &mut impl FnMut(Name)) {
    match shape {
        Shape::Ref(n) => f(*n),
        Shape::Record(r) => {
            for field in &r.fields {
                collect_refs(&field.shape, f);
            }
        }
        Shape::Nullable(s) | Shape::List(s) => collect_refs(s, f),
        Shape::Top(labels) => {
            for l in labels {
                collect_refs(l, f);
            }
        }
        Shape::HeteroList(cases) => {
            for (s, _) in cases {
                collect_refs(s, f);
            }
        }
        _ => {}
    }
}

impl fmt::Display for GlobalShape {
    /// `root where ν1 {…}, ν2 {…}` — or just the root when the
    /// environment is empty.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.root)?;
        if !self.env.is_empty() {
            write!(f, " where {}", self.env)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn div_env() -> ShapeEnv {
        ShapeEnv::from_defs([(
            Name::new("div"),
            RecordShape::new(
                "div",
                [
                    ("child", Shape::Ref("div".into()).ceil()),
                    ("x", Shape::Int.ceil()),
                ],
            ),
        )])
    }

    #[test]
    fn env_lookup_and_order() {
        let env = div_env();
        assert_eq!(env.len(), 1);
        assert!(env.contains("div".into()));
        assert!(!env.contains("ul".into()));
        assert_eq!(env.get("div".into()).unwrap().fields.len(), 2);
        assert_eq!(env.names().collect::<Vec<_>>(), vec![Name::new("div")]);
    }

    #[test]
    fn env_equality_is_order_insensitive() {
        let a = ShapeEnv::from_defs([
            (Name::new("a"), RecordShape::new("a", [("x", Shape::Int)])),
            (Name::new("b"), RecordShape::new("b", [("y", Shape::Bool)])),
        ]);
        let b = ShapeEnv::from_defs([
            (Name::new("b"), RecordShape::new("b", [("y", Shape::Bool)])),
            (Name::new("a"), RecordShape::new("a", [("x", Shape::Int)])),
        ]);
        assert_eq!(a, b);
        let c =
            ShapeEnv::from_defs([(Name::new("a"), RecordShape::new("a", [("x", Shape::Float)]))]);
        assert_ne!(a, c);
    }

    #[test]
    fn absorb_widens_definitions_and_returns_refs() {
        let mut env = div_env();
        let fresh = Shape::record("div", [("y", Shape::Bool)]);
        let out = env.absorb(fresh);
        assert_eq!(out, Shape::Ref("div".into()));
        let def = env.get("div".into()).unwrap();
        assert!(def.field("y").is_some(), "absorb must widen the definition");
        assert!(def.field("child").is_some());
    }

    #[test]
    fn absorb_leaves_unrelated_records_alone() {
        let mut env = div_env();
        let other = Shape::record("span", [("z", Shape::Int)]);
        assert_eq!(env.absorb(other.clone()), other);
        assert_eq!(env.len(), 1);
    }

    #[test]
    fn inline_cuts_at_recursion_points() {
        let g = GlobalShape {
            root: Shape::Ref("div".into()),
            env: div_env(),
        };
        let inlined = g.inline();
        let r = inlined.as_record().expect("root expands to a record");
        assert_eq!(r.name, "div");
        // The self-reference inside the expansion stays a reference:
        assert_eq!(
            r.field("child"),
            Some(&Shape::Ref("div".into()).ceil()),
            "{inlined}"
        );
    }

    #[test]
    fn inline_expands_non_recursive_definitions_fully() {
        let env =
            ShapeEnv::from_defs([(Name::new("t"), RecordShape::new("t", [("x", Shape::Int)]))]);
        let g = GlobalShape {
            root: Shape::record(
                "root",
                [("a", Shape::Ref("t".into())), ("b", Shape::Ref("t".into()))],
            ),
            env,
        };
        let t = Shape::record("t", [("x", Shape::Int)]);
        assert_eq!(
            g.inline(),
            Shape::record("root", [("a", t.clone()), ("b", t)])
        );
    }

    #[test]
    fn recursive_names_detects_mutual_recursion() {
        let env = ShapeEnv::from_defs([
            (
                Name::new("ul"),
                RecordShape::new("ul", [("li", Shape::Ref("li".into()).ceil())]),
            ),
            (
                Name::new("li"),
                RecordShape::new("li", [("ul", Shape::Ref("ul".into()).ceil())]),
            ),
            (Name::new("t"), RecordShape::new("t", [("x", Shape::Int)])),
        ]);
        let g = GlobalShape {
            root: Shape::Ref("ul".into()),
            env,
        };
        let rec = g.recursive_names();
        assert!(rec.contains(&Name::new("ul")));
        assert!(rec.contains(&Name::new("li")));
        assert!(!rec.contains(&Name::new("t")));
    }

    #[test]
    fn display_shows_root_and_definitions() {
        let g = GlobalShape {
            root: Shape::Ref("div".into()),
            env: div_env(),
        };
        let text = g.to_string();
        assert!(text.starts_with("\u{21ba}div where div {"), "{text}");
        assert!(text.contains("child : nullable \u{21ba}div"), "{text}");
        assert_eq!(GlobalShape::plain(Shape::Int).to_string(), "int");
    }
}
