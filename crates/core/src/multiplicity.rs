//! Multiplicities `ψ = 1 | 1? | *` for heterogeneous collections (§6.4).

use std::fmt;

/// How many times a case can occur in a heterogeneous collection.
///
/// Ordered by inclusion of the allowed element counts:
/// `One ({1}) ⊑ ZeroOrOne ({0,1}) ⊑ Many ({0,1,2,…})`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Multiplicity {
    /// Exactly one occurrence (`1`).
    One,
    /// Zero or one occurrence (`1?`).
    ZeroOrOne,
    /// Any number of occurrences (`*`).
    Many,
}

impl Multiplicity {
    /// The multiplicity observed for `count` occurrences within a single
    /// sample collection.
    pub fn of_count(count: usize) -> Multiplicity {
        match count {
            0 => Multiplicity::ZeroOrOne,
            1 => Multiplicity::One,
            _ => Multiplicity::Many,
        }
    }

    /// Least upper bound: the multiplicity allowing everything either
    /// side allows. "For example, by turning 1 and 1? into 1?" (§6.4).
    #[must_use]
    pub fn join(self, other: Multiplicity) -> Multiplicity {
        self.max(other)
    }

    /// Joins with an *absent* case: a case present in one sample but not
    /// another can occur zero times, so `1` weakens to `1?` and `*`
    /// stays `*`.
    #[must_use]
    pub fn join_absent(self) -> Multiplicity {
        self.join(Multiplicity::ZeroOrOne)
    }

    /// `self ⊑ other` in the count-inclusion order.
    pub fn is_preferred(self, other: Multiplicity) -> bool {
        self <= other
    }

    /// Does this multiplicity admit `count` occurrences?
    pub fn admits(self, count: usize) -> bool {
        match self {
            Multiplicity::One => count == 1,
            Multiplicity::ZeroOrOne => count <= 1,
            Multiplicity::Many => true,
        }
    }
}

impl fmt::Display for Multiplicity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Multiplicity::One => write!(f, "1"),
            Multiplicity::ZeroOrOne => write!(f, "1?"),
            Multiplicity::Many => write!(f, "*"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Multiplicity::{Many, One, ZeroOrOne};

    #[test]
    fn of_count_maps_counts() {
        assert_eq!(Multiplicity::of_count(0), ZeroOrOne);
        assert_eq!(Multiplicity::of_count(1), One);
        assert_eq!(Multiplicity::of_count(2), Many);
        assert_eq!(Multiplicity::of_count(100), Many);
    }

    #[test]
    fn join_is_max() {
        // The paper's example: 1 and 1? become 1?.
        assert_eq!(One.join(ZeroOrOne), ZeroOrOne);
        assert_eq!(One.join(One), One);
        assert_eq!(One.join(Many), Many);
        assert_eq!(ZeroOrOne.join(Many), Many);
    }

    #[test]
    fn join_absent_weakens_one() {
        assert_eq!(One.join_absent(), ZeroOrOne);
        assert_eq!(ZeroOrOne.join_absent(), ZeroOrOne);
        assert_eq!(Many.join_absent(), Many);
    }

    #[test]
    fn preference_follows_inclusion() {
        assert!(One.is_preferred(One));
        assert!(One.is_preferred(ZeroOrOne));
        assert!(One.is_preferred(Many));
        assert!(ZeroOrOne.is_preferred(Many));
        assert!(!Many.is_preferred(ZeroOrOne));
        assert!(!ZeroOrOne.is_preferred(One));
    }

    #[test]
    fn admits_counts() {
        assert!(One.admits(1));
        assert!(!One.admits(0));
        assert!(!One.admits(2));
        assert!(ZeroOrOne.admits(0));
        assert!(ZeroOrOne.admits(1));
        assert!(!ZeroOrOne.admits(2));
        assert!(Many.admits(0));
        assert!(Many.admits(7));
    }

    #[test]
    fn display() {
        assert_eq!(One.to_string(), "1");
        assert_eq!(ZeroOrOne.to_string(), "1?");
        assert_eq!(Many.to_string(), "*");
    }
}
