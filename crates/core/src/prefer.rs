//! The preferred shape relation `σ1 ⊑ σ2` (Definition 1, Fig. 1).
//!
//! The paper defines `⊑` as the transitive-reflexive closure of nine
//! rules; [`is_preferred`] decides the closure directly by structural
//! recursion. The record case combines rules (8) covariance and (9) width
//! with the row-variable convention of Fig. 3: a record lacking a field
//! of the wider record is still preferred when that field's shape admits
//! `null` (the minimal ground substitution for the row variable fills the
//! missing field with an optional shape — this is exactly the condition
//! under which the provided accessor code works, Lemma 2).
//!
//! Extensions beyond the paper's core rules, as discussed in §6.2/§6.4:
//!
//! * `bit ⊑ int`, `bit ⊑ bool` (and transitively `bit ⊑ float`);
//! * `date ⊑ string`;
//! * heterogeneous collections compare case-wise by tag (see
//!   [`is_preferred`] source for the exact condition).
//!
//! # μ-shapes
//!
//! [`is_preferred_in`] decides the relation under a
//! [`ShapeEnv`](crate::ShapeEnv): a [`Shape::Ref`] compares as the record
//! definition it names. References are **nominal**, which makes the
//! coinductive comparison degenerate in the best way: two references are
//! related iff they name the same definition — unfolding distinct names
//! cannot help, because rule (8) requires equal record names at the very
//! first step — so the greatest fixed point is decided by name equality
//! and no pair memo is needed. A reference against an inline record
//! spelling *does* unfold (one `env` lookup per record level), and
//! terminates because the finite spelling strictly shrinks at every
//! step while the null/missing-field branches never unfold.
//!
//! Without an environment a reference reads as the **top of its name
//! class**: it is equal to itself, and any same-name record (an
//! occurrence the class absorbed, or a fresh local spelling) is
//! preferred over it — matching env-free
//! [`conforms`](crate::conforms)'s name check and keeping env-free
//! [`csh`](crate::csh)'s absorption rule `csh(↺ν, ν{…}) = ↺ν` an upper
//! bound. What the env-free relation cannot decide (and conservatively
//! denies) is a reference being below anything non-top.

use crate::env::{GlobalShape, ShapeEnv};
use crate::multiplicity::Multiplicity;
use crate::shape::RecordShape;
use crate::tags::tag_of;
use crate::Shape;
use tfd_value::Name;

/// Decides `a ⊑ b` — "`a` is preferred over `b`" — for ground shapes.
///
/// ```
/// use tfd_core::{is_preferred, Shape};
/// assert!(is_preferred(&Shape::Int, &Shape::Float));          // rule (1)
/// assert!(is_preferred(&Shape::Null, &Shape::Int.ceil()));    // rule (2)
/// assert!(is_preferred(&Shape::Int, &Shape::Int.ceil()));     // rule (3)
/// assert!(is_preferred(&Shape::Bottom, &Shape::String));      // rule (6)
/// assert!(is_preferred(&Shape::String, &Shape::any()));       // rule (7)
/// assert!(!is_preferred(&Shape::Float, &Shape::Int));
/// ```
pub fn is_preferred(a: &Shape, b: &Shape) -> bool {
    preferred(a, b, None)
}

/// [`is_preferred`] under an optional shape environment: μ-references
/// are unfolded through `env` (see the module docs for why nominal
/// references need no pair memo).
///
/// ```
/// use tfd_core::{is_preferred_in, RecordShape, Shape, ShapeEnv};
///
/// let env = ShapeEnv::from_defs([(
///     "div".into(),
///     RecordShape::new("div", [("child", Shape::Ref("div".into()).ceil())]),
/// )]);
/// let r = Shape::Ref("div".into());
/// // The local spelling of one unfolding is preferred over the class:
/// let local = Shape::record("div", [("child", r.clone().ceil())]);
/// assert!(is_preferred_in(&local, &r, Some(&env)));
/// assert!(is_preferred_in(&r, &r, Some(&env)));
/// ```
pub fn is_preferred_in(a: &Shape, b: &Shape, env: Option<&ShapeEnv>) -> bool {
    preferred(a, b, env)
}

/// Decides `a ⊑ b` for two *global* shapes, each resolving its
/// μ-references in its **own** environment — the comparison provider
/// stability needs, where `a` is the shape inferred from the original
/// samples and `b` the shape after adding samples, and a name class like
/// `div` has a (narrower) definition on each side.
///
/// Unlike the single-environment relation — where nominal references
/// make reference pairs name-decided — a same-name reference pair here
/// must actually compare the two definitions, so the coinduction is run
/// for real: the pair is assumed related while its bodies are compared
/// (the greatest-fixed-point reading), which also guarantees
/// termination.
///
/// ```
/// use tfd_core::{globalize_env, infer_many, is_preferred_global, InferOptions};
/// use tfd_value::{rec, Value};
///
/// let opts = InferOptions::xml();
/// let d1 = rec("div", [("child", rec("div", [("x", Value::Int(1))]))]);
/// let d2 = rec("div", [("x", Value::Float(2.5))]);
/// let old = globalize_env(infer_many([&d1], &opts));
/// let new = globalize_env(infer_many([&d1, &d2], &opts));
/// // The new sample widened x from int to float inside the recursive
/// // div class:
/// assert!(is_preferred_global(&old, &new));
/// assert!(!is_preferred_global(&new, &old));
/// ```
pub fn is_preferred_global(a: &GlobalShape, b: &GlobalShape) -> bool {
    preferred2(
        &a.root,
        &b.root,
        Some(&a.env),
        Some(&b.env),
        &mut Vec::new(),
    )
}

/// Fresh-memo entry into the two-environment relation, for the
/// `analyze` module's diff walker. A fresh `assumed` stack gives the
/// same answer as any ambient one: membership in the greatest fixed
/// point is context-independent.
pub(crate) fn preferred_two_env(
    a: &Shape,
    b: &Shape,
    ea: Option<&ShapeEnv>,
    eb: Option<&ShapeEnv>,
) -> bool {
    preferred2(a, b, ea, eb, &mut Vec::new())
}

/// Views a shape as a record, resolving μ-references through the
/// environment when one is in scope.
fn rec_view<'x>(s: &'x Shape, env: Option<&'x ShapeEnv>) -> Option<&'x RecordShape> {
    match s {
        Shape::Record(r) => Some(r),
        Shape::Ref(n) => env.and_then(|e| e.get(*n)),
        _ => None,
    }
}

fn preferred(a: &Shape, b: &Shape, env: Option<&ShapeEnv>) -> bool {
    use Shape::*;
    match (a, b) {
        // μ-references are nominal: same name, same definition — the
        // coinductive greatest fixed point collapses to name equality,
        // because unfolding two distinct names fails rule (8)'s name
        // check at the first step anyway (definitions carry their own
        // key as the record name).
        (Ref(n), Ref(m)) => n == m,
        // Env-free name-class reading: with no definitions table in
        // scope, a reference is the top of its name class — any
        // same-name record occurrence is below it. This is what makes
        // env-free `csh`'s absorption rule an upper bound, and it
        // matches env-free `conforms`' name-only check. (With an env,
        // the rec_view fallback below does the real field comparison.)
        (Record(r), Ref(n)) if env.is_none() => r.name == *n,
        // Rule (6): ⊥ ⊑ σ for all σ.
        (Bottom, _) => true,
        // Rule (7): σ ⊑ any. Labels do not affect the relation (§3.5).
        (_, Top(_)) => true,
        // any is only below itself (handled above); nothing else is above it.
        (Top(_), _) => false,
        // Rule (2): null ⊑ σ for σ not a non-nullable shape (and not ⊥).
        (Null, b) => !b.is_non_nullable() && *b != Bottom,
        (_, Null) => false,
        // Rule (4) and the (3)+(4) composite: a σ̂ or nullable σ̂ on the
        // left against nullable σ̂' compares the non-nullable cores.
        (Nullable(ai), Nullable(bi)) => preferred(ai, bi, env),
        (a, Nullable(bi)) if a.is_non_nullable() => preferred(a, bi, env),
        (Nullable(_), _) => false,
        // Rule (5): collections are covariant; heterogeneous collections
        // compare case-wise (see below).
        (List(ae), List(be)) => preferred(ae, be, env),
        (HeteroList(_), List(be)) if be.is_top() => true,
        (HeteroList(_) | List(_), HeteroList(_) | List(_)) => {
            hetero_preferred(&to_cases(a), &to_cases(b), env)
        }
        (List(_) | HeteroList(_), _) | (_, List(_) | HeteroList(_)) => false,
        // Rule (1): int ⊑ float; extensions bit ⊑ int|bool (§6.2) and
        // date ⊑ string, plus reflexivity on primitives.
        (Int, Int | Float) => true,
        (Bit, Bit | Int | Bool | Float) => true,
        (Date, Date | String) => true,
        (Float, Float) | (Bool, Bool) | (String, String) => true,
        // Rules (8)+(9): records are covariant and the preferred record
        // may have additional fields — with μ-references resolved
        // through the environment (a `Ref`/record mix terminates because
        // the plain side is a finite tree that shrinks at every step).
        (a, b) => match (rec_view(a, env), rec_view(b, env)) {
            (Some(ra), Some(rb)) => record_preferred(ra, rb, env),
            _ => false,
        },
    }
}

/// The two-environment relation behind [`is_preferred_global`]: the
/// same rules as [`preferred`], with each side's references resolved in
/// its own table and same-name reference pairs compared coinductively
/// (`assumed` carries the pairs currently taken as related; hitting one
/// again closes the cycle). Termination: reference pairs are bounded by
/// `assumed`, and a reference against a finite spelling unfolds at most
/// once per record level of the spelling.
fn preferred2(
    a: &Shape,
    b: &Shape,
    ea: Option<&ShapeEnv>,
    eb: Option<&ShapeEnv>,
    assumed: &mut Vec<(Name, Name)>,
) -> bool {
    use Shape::*;
    match (a, b) {
        (Ref(n), Ref(m)) => {
            // Still nominal (rule (8) checks the record name — which is
            // the reference name — at the first step), but the two
            // sides' definitions differ, so same-name pairs compare
            // their bodies under the coinductive hypothesis.
            if n != m {
                return false;
            }
            match (ea.and_then(|e| e.get(*n)), eb.and_then(|e| e.get(*m))) {
                (Some(da), Some(db)) => {
                    if assumed.contains(&(*n, *m)) {
                        return true;
                    }
                    assumed.push((*n, *m));
                    let ok = record_preferred2(da, db, ea, eb, assumed);
                    assumed.pop();
                    ok
                }
                // A dangling side degrades to the nominal reading.
                _ => true,
            }
        }
        // Env-free/dangling name-class reading, as in `preferred`.
        (Record(r), Ref(n)) if eb.and_then(|e| e.get(*n)).is_none() => r.name == *n,
        (Bottom, _) => true,
        (_, Top(_)) => true,
        (Top(_), _) => false,
        (Null, b) => !b.is_non_nullable() && *b != Bottom,
        (_, Null) => false,
        (Nullable(ai), Nullable(bi)) => preferred2(ai, bi, ea, eb, assumed),
        (a, Nullable(bi)) if a.is_non_nullable() => preferred2(a, bi, ea, eb, assumed),
        (Nullable(_), _) => false,
        (List(ae), List(be)) => preferred2(ae, be, ea, eb, assumed),
        (HeteroList(_), List(be)) if be.is_top() => true,
        (HeteroList(_) | List(_), HeteroList(_) | List(_)) => {
            hetero_preferred2(&to_cases(a), &to_cases(b), ea, eb, assumed)
        }
        (List(_) | HeteroList(_), _) | (_, List(_) | HeteroList(_)) => false,
        (Int, Int | Float) => true,
        (Bit, Bit | Int | Bool | Float) => true,
        (Date, Date | String) => true,
        (Float, Float) | (Bool, Bool) | (String, String) => true,
        (a, b) => match (rec_view(a, ea), rec_view(b, eb)) {
            (Some(ra), Some(rb)) => record_preferred2(ra, rb, ea, eb, assumed),
            _ => false,
        },
    }
}

/// Rules (8)+(9) for [`preferred2`].
fn record_preferred2(
    ra: &RecordShape,
    rb: &RecordShape,
    ea: Option<&ShapeEnv>,
    eb: Option<&ShapeEnv>,
    assumed: &mut Vec<(Name, Name)>,
) -> bool {
    ra.name == rb.name
        && rb.fields.iter().all(|fb| match ra.field(&fb.name) {
            Some(sa) => preferred2(sa, &fb.shape, ea, eb, assumed),
            None => preferred2(&Shape::Null, &fb.shape, ea, eb, assumed),
        })
}

/// Case-wise preference for [`preferred2`] (mirrors
/// [`hetero_preferred`]; tags are env-free there too).
fn hetero_preferred2(
    a: &[(Shape, Multiplicity)],
    b: &[(Shape, Multiplicity)],
    ea: Option<&ShapeEnv>,
    eb: Option<&ShapeEnv>,
    assumed: &mut Vec<(Name, Name)>,
) -> bool {
    let covered = a.iter().all(|(sa, ma)| {
        b.iter().any(|(sb, mb)| {
            tag_of(sa) == tag_of(sb) && preferred2(sa, sb, ea, eb, assumed) && ma.is_preferred(*mb)
        })
    });
    let mandatory_present = b.iter().all(|(sb, mb)| {
        *mb != Multiplicity::One || a.iter().any(|(sa, _)| tag_of(sa) == tag_of(sb))
    });
    covered && mandatory_present
}

/// Rules (8)+(9) on record views: covariant fields, missing fields of
/// the narrower record must admit null (row-variable convention).
fn record_preferred(ra: &RecordShape, rb: &RecordShape, env: Option<&ShapeEnv>) -> bool {
    ra.name == rb.name
        && rb.fields.iter().all(|fb| match ra.field(&fb.name) {
            Some(sa) => preferred(sa, &fb.shape, env),
            None => preferred(&Shape::Null, &fb.shape, env),
        })
}

/// Views any collection shape as heterogeneous cases. A homogeneous
/// `[σ]` is the single case `σ, *` (the empty collection `[⊥]` has no
/// cases).
pub(crate) fn to_cases(shape: &Shape) -> Vec<(Shape, Multiplicity)> {
    match shape {
        Shape::HeteroList(cases) => cases.clone(),
        Shape::List(e) if **e == Shape::Bottom => Vec::new(),
        Shape::List(e) => vec![((**e).clone(), Multiplicity::Many)],
        _ => unreachable!("to_cases called on a non-collection shape"),
    }
}

/// Case-wise preference for heterogeneous collections:
///
/// * every case of `a` must have a same-tag case in `b` with preferred
///   shape and preferred multiplicity, and
/// * every *mandatory* case of `b` (multiplicity `1`) must be present in
///   `a` — an input without that element would break the provided
///   singleton accessor.
fn hetero_preferred(
    a: &[(Shape, Multiplicity)],
    b: &[(Shape, Multiplicity)],
    env: Option<&ShapeEnv>,
) -> bool {
    let covered = a.iter().all(|(sa, ma)| {
        b.iter().any(|(sb, mb)| {
            tag_of(sa) == tag_of(sb) && preferred(sa, sb, env) && ma.is_preferred(*mb)
        })
    });
    let mandatory_present = b.iter().all(|(sb, mb)| {
        *mb != Multiplicity::One || a.iter().any(|(sa, _)| tag_of(sa) == tag_of(sb))
    });
    covered && mandatory_present
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multiplicity::Multiplicity::{Many, One, ZeroOrOne};
    use Shape::*;

    fn rec(name: &str, fields: Vec<(&str, Shape)>) -> Shape {
        Shape::record(name, fields)
    }

    // --- Rules of Definition 1, one by one ---

    #[test]
    fn rule1_int_preferred_over_float() {
        assert!(is_preferred(&Int, &Float));
        assert!(!is_preferred(&Float, &Int));
    }

    #[test]
    fn rule2_null_below_all_nullable_shapes() {
        assert!(is_preferred(&Null, &Null));
        assert!(is_preferred(&Null, &Int.ceil()));
        assert!(is_preferred(&Null, &Shape::list(Int)));
        assert!(is_preferred(&Null, &Shape::any()));
        assert!(is_preferred(&Null, &HeteroList(vec![])));
        // ... but not below non-nullable shapes or bottom:
        assert!(!is_preferred(&Null, &Int));
        assert!(!is_preferred(&Null, &rec("P", vec![("x", Int)])));
        assert!(!is_preferred(&Null, &Bottom));
    }

    #[test]
    fn rule3_non_nullable_below_its_nullable() {
        for s in [Int, Float, Bool, String, rec("P", vec![("x", Int)])] {
            assert!(is_preferred(&s, &s.clone().ceil()), "{s} ⊑ nullable {s}");
            assert!(!is_preferred(&s.clone().ceil(), &s), "nullable {s} ⋢ {s}");
        }
    }

    #[test]
    fn rule4_nullable_covariant() {
        assert!(is_preferred(&Int.ceil(), &Float.ceil()));
        assert!(!is_preferred(&Float.ceil(), &Int.ceil()));
        // Composite of (3) and (4): int ⊑ nullable float.
        assert!(is_preferred(&Int, &Float.ceil()));
    }

    #[test]
    fn rule5_collections_covariant() {
        assert!(is_preferred(&Shape::list(Int), &Shape::list(Float)));
        assert!(!is_preferred(&Shape::list(Float), &Shape::list(Int)));
        assert!(is_preferred(&Shape::list(Bottom), &Shape::list(Int)));
    }

    #[test]
    fn rule6_bottom_below_everything() {
        for s in [
            Bottom,
            Null,
            Int,
            Shape::any(),
            Shape::list(Int),
            Int.ceil(),
        ] {
            assert!(is_preferred(&Bottom, &s));
        }
        assert!(!is_preferred(&Null, &Bottom));
        assert!(!is_preferred(&Int, &Bottom));
    }

    #[test]
    fn rule7_everything_below_any() {
        for s in [
            Bottom,
            Null,
            Int,
            Float,
            String,
            Shape::list(Int),
            Int.ceil(),
        ] {
            assert!(is_preferred(&s, &Shape::any()));
        }
        // Labels do not matter: any⟨int⟩ is still the top shape.
        assert!(is_preferred(&String, &Top(vec![Int])));
        assert!(is_preferred(&Top(vec![Int]), &Top(vec![String])));
        assert!(!is_preferred(&Shape::any(), &Int));
    }

    #[test]
    fn rule8_records_covariant() {
        let narrow_int = rec("P", vec![("x", Int)]);
        let narrow_float = rec("P", vec![("x", Float)]);
        assert!(is_preferred(&narrow_int, &narrow_float));
        assert!(!is_preferred(&narrow_float, &narrow_int));
    }

    #[test]
    fn rule9_record_with_extra_fields_is_preferred() {
        let wide = rec("P", vec![("x", Int), ("y", Int)]);
        let narrow = rec("P", vec![("x", Int)]);
        assert!(is_preferred(&wide, &narrow));
        assert!(!is_preferred(&narrow, &wide)); // y : int does not admit null
    }

    #[test]
    fn record_missing_optional_field_is_preferred() {
        // Row-variable convention: Point{x} ⊑ Point{x, y : nullable int}.
        let narrow = rec("P", vec![("x", Int)]);
        let wide_opt = rec("P", vec![("x", Int), ("y", Int.ceil())]);
        assert!(is_preferred(&narrow, &wide_opt));
    }

    #[test]
    fn record_names_must_match() {
        let p = rec("P", vec![("x", Int)]);
        let q = rec("Q", vec![("x", Int)]);
        assert!(!is_preferred(&p, &q));
        assert!(!is_preferred(&q, &p));
    }

    #[test]
    fn record_field_order_is_irrelevant() {
        let ab = rec("P", vec![("a", Int), ("b", Bool)]);
        let ba = rec("P", vec![("b", Bool), ("a", Int)]);
        assert!(is_preferred(&ab, &ba));
        assert!(is_preferred(&ba, &ab));
    }

    // --- Extensions ---

    #[test]
    fn bit_below_int_and_bool() {
        assert!(is_preferred(&Bit, &Int));
        assert!(is_preferred(&Bit, &Bool));
        assert!(is_preferred(&Bit, &Float)); // transitively via int
        assert!(!is_preferred(&Int, &Bit));
        assert!(!is_preferred(&Bool, &Bit));
    }

    #[test]
    fn date_below_string() {
        assert!(is_preferred(&Date, &String));
        assert!(!is_preferred(&String, &Date));
    }

    #[test]
    fn hetero_case_subset_is_preferred() {
        let r = rec("•", vec![("a", Int)]);
        let both = HeteroList(vec![(r.clone(), One), (Shape::list(Int), ZeroOrOne)]);
        let just_r = HeteroList(vec![(r.clone(), One)]);
        // The optional list case may be absent:
        assert!(is_preferred(&just_r, &both));
        // ... but a mandatory case may not:
        let just_list = HeteroList(vec![(Shape::list(Int), ZeroOrOne)]);
        assert!(!is_preferred(&just_list, &both));
    }

    #[test]
    fn hetero_multiplicity_must_be_preferred() {
        let r = rec("•", vec![("a", Int)]);
        let many = HeteroList(vec![(r.clone(), Many)]);
        let one = HeteroList(vec![(r.clone(), One)]);
        assert!(is_preferred(&one, &many));
        assert!(!is_preferred(&many, &one));
    }

    #[test]
    fn homogeneous_list_against_hetero() {
        let r = rec("•", vec![("a", Int)]);
        let homog = Shape::list(r.clone());
        let hetero_many = HeteroList(vec![(r.clone(), Many)]);
        assert!(is_preferred(&homog, &hetero_many));
        assert!(is_preferred(&hetero_many, &homog));
        // Empty collection is below any mandatory-free hetero:
        assert!(is_preferred(&Shape::list(Bottom), &hetero_many));
    }

    #[test]
    fn any_list_below_list_of_any() {
        assert!(is_preferred(&Shape::list(Int), &Shape::list(Shape::any())));
        let hetero = HeteroList(vec![(rec("r", vec![]), One)]);
        assert!(is_preferred(&hetero, &Shape::list(Shape::any())));
    }

    // --- Relation-level sanity (complements the proptests in tests/) ---

    #[test]
    fn reflexive_on_samples() {
        let shapes = [
            Bottom,
            Null,
            Int,
            Float.ceil(),
            Shape::list(Int.ceil()),
            rec("P", vec![("x", Int), ("y", Shape::list(Bool))]),
            Top(vec![Int, Bool]),
        ];
        for s in &shapes {
            assert!(is_preferred(s, s), "{s} not reflexive");
        }
    }

    #[test]
    fn figure1_chain_int_to_nullable_float_to_any() {
        // The spine of Fig. 1: ⊥ ⊑ int ⊑ float ⊑ nullable float ⊑ any.
        let chain = [Bottom, Int, Float, Float.ceil(), Shape::any()];
        for w in chain.windows(2) {
            assert!(is_preferred(&w[0], &w[1]), "{} ⋢ {}", w[0], w[1]);
        }
        for w in chain.windows(2) {
            if w[0] != w[1] {
                assert!(
                    !is_preferred(&w[1], &w[0]),
                    "{} ⊑ {} unexpectedly",
                    w[1],
                    w[0]
                );
            }
        }
    }

    // --- μ-shapes: references with and without an environment ---

    #[test]
    fn env_free_refs_compare_by_name_only() {
        let r = Shape::Ref("div".into());
        assert!(is_preferred(&r, &r));
        assert!(is_preferred(&r, &Shape::any()));
        assert!(is_preferred(&Bottom, &r));
        assert!(!is_preferred(&r, &Shape::Ref("span".into())));
        // Without definitions a reference reads as the top of its name
        // class: any same-name record occurrence is below it (this is
        // what keeps env-free `csh`'s absorption rule an upper bound),
        // while the reference itself sits below nothing but `any`.
        let d = rec("div", vec![("x", Int)]);
        assert!(is_preferred(&d, &r));
        assert!(is_preferred(&d, &r.clone().ceil()));
        assert!(!is_preferred(&r, &d));
        assert!(!is_preferred(&rec("span", vec![]), &r));
        // With a definitions table in scope the real field comparison
        // takes over (see the μ tests below).
    }

    /// Cycle-cut termination proof: a self-recursive definition compares
    /// against its own unfoldings without diverging, in both directions.
    #[test]
    fn self_recursive_ref_terminates_and_unfolds() {
        let env = ShapeEnv::from_defs([(
            "div".into(),
            RecordShape::new(
                "div",
                [
                    ("child", Shape::Ref("div".into()).ceil()),
                    ("x", Int.ceil()),
                ],
            ),
        )]);
        let r = Shape::Ref("div".into());
        assert!(is_preferred_in(&r, &r, Some(&env)));
        // One unfolding (the inline rendering) is equivalent to the class:
        let unfolded = rec("div", vec![("child", r.clone().ceil()), ("x", Int.ceil())]);
        assert!(is_preferred_in(&unfolded, &r, Some(&env)));
        assert!(is_preferred_in(&r, &unfolded, Some(&env)));
        // A narrower local spelling is preferred over the class but not
        // vice versa:
        let narrow = rec("div", vec![("x", Int)]);
        assert!(is_preferred_in(&narrow, &r, Some(&env)));
        assert!(!is_preferred_in(&r, &narrow, Some(&env)));
    }

    // --- Two-environment (global-vs-global) comparison ---

    /// Same name class with a widened definition on the new side: the
    /// old global shape is preferred over the new, not vice versa.
    #[test]
    fn global_comparison_widens_through_own_envs() {
        let old = GlobalShape {
            root: Shape::Ref("div".into()),
            env: ShapeEnv::from_defs([(
                "div".into(),
                RecordShape::new(
                    "div",
                    [("child", Shape::Ref("div".into()).ceil()), ("x", Int)],
                ),
            )]),
        };
        let new = GlobalShape {
            root: Shape::Ref("div".into()),
            env: ShapeEnv::from_defs([(
                "div".into(),
                RecordShape::new(
                    "div",
                    [
                        ("child", Shape::Ref("div".into()).ceil()),
                        ("x", Float),
                        ("y", Bool.ceil()),
                    ],
                ),
            )]),
        };
        assert!(is_preferred_global(&old, &new));
        assert!(!is_preferred_global(&new, &old));
        assert!(is_preferred_global(&old, &old), "reflexive");
        assert!(is_preferred_global(&new, &new), "reflexive");
    }

    /// Mutually recursive classes on both sides terminate and compare
    /// definition-wise (the coinductive hypothesis closes the ul↔li
    /// cycle).
    #[test]
    fn global_comparison_terminates_on_mutual_recursion() {
        let env = |x: Shape| {
            ShapeEnv::from_defs([
                (
                    "ul".into(),
                    RecordShape::new("ul", [("li", Shape::Ref("li".into()).ceil())]),
                ),
                (
                    "li".into(),
                    RecordShape::new("li", [("ul", Shape::Ref("ul".into()).ceil()), ("mark", x)]),
                ),
            ])
        };
        let old = GlobalShape {
            root: Shape::Ref("ul".into()),
            env: env(Int.ceil()),
        };
        let new = GlobalShape {
            root: Shape::Ref("ul".into()),
            env: env(Float.ceil()),
        };
        assert!(is_preferred_global(&old, &new));
        assert!(!is_preferred_global(&new, &old));
    }

    /// With equal environments the two-env relation agrees with the
    /// single-env one on reference roots and finite spellings.
    #[test]
    fn global_comparison_agrees_with_single_env_on_shared_tables() {
        let env = ShapeEnv::from_defs([(
            "div".into(),
            RecordShape::new(
                "div",
                [
                    ("child", Shape::Ref("div".into()).ceil()),
                    ("x", Int.ceil()),
                ],
            ),
        )]);
        let shapes = [
            Shape::Ref("div".into()),
            rec(
                "div",
                vec![
                    ("child", Shape::Ref("div".into()).ceil()),
                    ("x", Int.ceil()),
                ],
            ),
            rec("div", vec![("x", Int)]),
            Int,
            Shape::list(Shape::Ref("div".into())),
        ];
        for a in &shapes {
            for b in &shapes {
                let single = is_preferred_in(a, b, Some(&env));
                let double = is_preferred_global(
                    &GlobalShape {
                        root: a.clone(),
                        env: env.clone(),
                    },
                    &GlobalShape {
                        root: b.clone(),
                        env: env.clone(),
                    },
                );
                assert_eq!(single, double, "{a} vs {b}");
            }
        }
    }

    /// Cycle-cut termination proof: mutually recursive definitions
    /// (ul ↔ li) compare without diverging — reference pairs are
    /// name-decided, and unfolding against finite spellings shrinks
    /// the spelling at every step.
    #[test]
    fn mutually_recursive_refs_terminate() {
        let env = ShapeEnv::from_defs([
            (
                "ul".into(),
                RecordShape::new("ul", [("li", Shape::Ref("li".into()).ceil())]),
            ),
            (
                "li".into(),
                RecordShape::new("li", [("ul", Shape::Ref("ul".into()).ceil())]),
            ),
        ]);
        let ul = Shape::Ref("ul".into());
        let li = Shape::Ref("li".into());
        assert!(is_preferred_in(&ul, &ul, Some(&env)));
        assert!(is_preferred_in(&li, &li, Some(&env)));
        // Different names are never related, even with identical bodies:
        assert!(!is_preferred_in(&ul, &li, Some(&env)));
        // Deep finite spelling against the infinite class:
        let deep = rec(
            "ul",
            vec![("li", rec("li", vec![("ul", ul.clone().ceil())]).ceil())],
        );
        assert!(is_preferred_in(&deep, &ul, Some(&env)));
    }
}
