//! Shared machine-readable (JSON) rendering of analysis and pipeline
//! results — one serialization, used everywhere.
//!
//! The CLI's `--json` flag and the schema registry's HTTP responses
//! (`tfd serve`) must emit byte-identical structures for the same
//! finding: a client that learned to parse `tfd analyze --json` output
//! should be able to parse a `POST /ingest` error body without a second
//! schema. This module is that single source of truth:
//!
//! * [`diagnostics_json`] — [`Diagnostic`] arrays (lints, path checks),
//! * [`diff_json`] — a [`DiffReport`] (the `tfd diff --json` object),
//! * [`stream_error_json`] — a [`StreamError`] with its stable
//!   [`code`](StreamError::code) discriminant,
//! * [`error_report_json`] — a Skip-mode [`ErrorReport`] (total skipped
//!   plus the kept document-order error prefix),
//! * [`json_escape`] — the escaping primitive all of them use.
//!
//! Everything here is write-only JSON built by hand: the workspace has a
//! JSON *parser* per the paper, but output needs no tree — appending to
//! a `String` keeps the hot error paths allocation-light and the crate
//! dependency-free.

use crate::analyze::{Diagnostic, DiffReport};
use crate::recover::ErrorReport;
use crate::stream::StreamError;

/// Minimal JSON string escaping (the output side only — nothing here is
/// ever parsed back by this crate).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One [`Diagnostic`] as a JSON object:
/// `{"rule": …, "severity": …, "path": …, "message": …}`.
pub fn diagnostic_json(d: &Diagnostic) -> String {
    format!(
        "{{\"rule\":\"{}\",\"severity\":\"{}\",\"path\":\"{}\",\"message\":\"{}\"}}",
        d.rule,
        d.severity,
        json_escape(&d.shape_path.to_string()),
        json_escape(&d.message)
    )
}

/// A [`Diagnostic`] slice as a JSON array (brackets included).
pub fn diagnostics_json(diags: &[Diagnostic]) -> String {
    let items = diags
        .iter()
        .map(diagnostic_json)
        .collect::<Vec<_>>()
        .join(",");
    format!("[{items}]")
}

/// A [`DiffReport`] as the `tfd diff --json` object (trailing newline
/// included — it is a complete document on both stdout and the wire).
pub fn diff_json(report: &DiffReport) -> String {
    let mut out = format!(
        "{{\"mode\":\"{}\",\"old_fingerprint\":\"{}\",\"new_fingerprint\":\"{}\",\
         \"compatible\":{},\"entries\":[",
        report.mode,
        report.old_fingerprint,
        report.new_fingerprint,
        report.is_compatible()
    );
    for (i, e) in report.entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"kind\":\"{}\",\"path\":\"{}\",\"detail\":\"{}\",\
             \"breaks_backward\":{},\"breaks_forward\":{},\"breaking\":{}}}",
            e.kind,
            json_escape(&e.path.to_string()),
            json_escape(&e.detail),
            e.breaks_backward,
            e.breaks_forward,
            e.breaks(report.mode)
        ));
    }
    out.push_str("]}\n");
    out
}

/// A [`StreamError`] as a JSON object with its stable
/// [`code`](StreamError::code): `{"code": …, "message": …}`, plus
/// `limit` and the nested first error for an exhausted Skip-mode
/// budget.
pub fn stream_error_json(e: &StreamError) -> String {
    match e {
        StreamError::TooManyErrors { limit, first } => format!(
            "{{\"code\":\"{}\",\"message\":\"{}\",\"limit\":{},\"first\":{}}}",
            e.code(),
            json_escape(&e.to_string()),
            limit,
            stream_error_json(first)
        ),
        other => format!(
            "{{\"code\":\"{}\",\"message\":\"{}\"}}",
            other.code(),
            json_escape(&other.to_string())
        ),
    }
}

/// A Skip-mode [`ErrorReport`] as a JSON object: the total number of
/// skipped records plus the kept document-order prefix of their errors
/// (at most [`ERROR_REPORT_KEEP`](crate::recover::ERROR_REPORT_KEEP),
/// the tail's last error included when it was kept separately).
pub fn error_report_json(report: &ErrorReport) -> String {
    let mut out = format!("{{\"skipped\":{},\"errors\":[", report.total());
    for (i, e) in report.errors().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&stream_error_json(e));
    }
    out.push(']');
    if let Some(last) = report.last() {
        if report.total() > report.errors().len() {
            out.push_str(&format!(",\"last\":{}", stream_error_json(last)));
        }
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::{diff_global, CompatMode, Severity, ShapePath};
    use crate::{GlobalShape, Shape};

    #[test]
    fn escaping_covers_controls_and_quotes() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\n\t\r"), "x\\n\\t\\r");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn diagnostics_render_as_an_array() {
        let d = Diagnostic {
            rule: "test-rule",
            severity: Severity::Warning,
            shape_path: ShapePath::root(),
            message: "a \"quoted\" message".to_owned(),
        };
        let json = diagnostics_json(std::slice::from_ref(&d));
        assert!(json.starts_with('[') && json.ends_with(']'), "{json}");
        assert!(json.contains("\"rule\":\"test-rule\""), "{json}");
        assert!(json.contains("\\\"quoted\\\""), "{json}");
        assert_eq!(diagnostics_json(&[]), "[]");
    }

    #[test]
    fn diff_json_reports_compatibility() {
        let old = GlobalShape::plain(Shape::record("R", [("x", Shape::Int)]));
        let new = GlobalShape::plain(Shape::record("R", [("x", Shape::String)]));
        let json = diff_json(&diff_global(&old, &new, CompatMode::Backward));
        assert!(json.contains("\"mode\":\"backward\""), "{json}");
        assert!(json.contains("\"compatible\":false"), "{json}");
        assert!(json.contains("\"kind\":\"type-changed\""), "{json}");
        assert!(json.ends_with("]}\n"), "{json}");
    }

    #[test]
    fn stream_errors_carry_stable_codes() {
        let io = StreamError::Io(std::io::Error::new(
            std::io::ErrorKind::BrokenPipe,
            "pipe closed",
        ));
        let json = stream_error_json(&io);
        assert!(json.contains("\"code\":\"io\""), "{json}");
        assert!(json.contains("pipe closed"), "{json}");

        let budget = StreamError::TooManyErrors {
            limit: 7,
            first: Box::new(StreamError::Io(std::io::Error::other("root cause"))),
        };
        assert_eq!(budget.code(), "too-many-errors");
        let json = stream_error_json(&budget);
        assert!(json.contains("\"limit\":7"), "{json}");
        assert!(json.contains("\"first\":{\"code\":\"io\""), "{json}");
    }

    #[test]
    fn error_reports_render_totals_and_prefix() {
        let mut report = ErrorReport::new();
        assert_eq!(error_report_json(&report), "{\"skipped\":0,\"errors\":[]}");
        report.record(StreamError::Io(std::io::Error::other("first")));
        report.record(StreamError::Io(std::io::Error::other("second")));
        let json = error_report_json(&report);
        assert!(json.contains("\"skipped\":2"), "{json}");
        assert!(json.contains("first") && json.contains("second"), "{json}");
    }
}
