//! Static analysis over inferred shapes: schema-evolution diffing,
//! shape lints, and access-path safety.
//!
//! The paper's central guarantee is *relative safety* (§5): a program
//! checked against an inferred shape cannot go wrong on any input that
//! conforms to that shape. The rest of the crate exercises this
//! dynamically (`conforms_in`); this module makes it a *static*
//! tool-surface, with [`Diagnostic`]s instead of booleans:
//!
//! * **Compatibility analysis** ([`diff_global`]) — a structured diff
//!   between two [`GlobalShape`]s, each divergence classified as safe
//!   widening vs. breaking under [`CompatMode::Backward`] /
//!   [`Forward`](CompatMode::Forward) / [`Full`](CompatMode::Full)
//!   reading. The walker mirrors the coinductive two-environment
//!   preference relation clause by clause, so its verdict provably
//!   agrees with [`is_preferred_global`](crate::is_preferred_global):
//!   *no backward-breaking entries ⇔ `old ⊑ new`* (and symmetrically
//!   for forward). By the relative-safety theorem, a
//!   backward-compatible verdict therefore means every value conforming
//!   to the old shape still conforms to the new one.
//! * **Fingerprinting** ([`fingerprint`]) — a canonical 64-bit digest
//!   of a global shape, stable across processes, definition-table
//!   order, record-field order, and unreachable definitions: the
//!   schema-registry cache key.
//! * **Lints** ([`run_lints`], [`LintRule`]) — a registry of heuristic
//!   shape smells (deep optional chains, degenerate unions, opaque
//!   `any`, …) with allow/warn/deny configuration.
//! * **Access-path checking** ([`check_path`]) — given a projection
//!   path like `root.items[].name`, statically verify against the
//!   environment that every access is safe for *all* conforming
//!   inputs, making the §5 theorem operational as a tool.

use crate::env::{GlobalShape, ShapeEnv};
use crate::multiplicity::Multiplicity;
use crate::prefer::{preferred_two_env, to_cases};
use crate::shape::RecordShape;
use crate::tags::{tag_of, Tag};
use crate::Shape;
use std::fmt;
use tfd_value::hash::StableHasher;
use tfd_value::Name;

// ---------------------------------------------------------------------
// Diagnostic infrastructure
// ---------------------------------------------------------------------

/// One step of a [`ShapePath`] — navigation through shape structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathStep {
    /// Descend into a record field.
    Field(Name),
    /// Descend into the element shape of a collection (`[]`).
    Elem,
    /// Descend into the union arm / collection case with this tag.
    Arm(Tag),
    /// Descend through a `nullable` wrapper.
    Opt,
    /// Enter the environment definition of a name class (`↺name`).
    Def(Name),
}

/// A path into a [`GlobalShape`], locating a finding inside
/// field/union/μ-reference structure.
///
/// Renders as `$` for the root, `$.items[].name` for nested access,
/// and `↺div.child` for a position inside an environment definition.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShapePath {
    steps: Vec<PathStep>,
}

impl ShapePath {
    /// The root path `$`.
    pub fn root() -> ShapePath {
        ShapePath::default()
    }

    /// A path rooted at the environment definition `↺name`.
    pub fn def(name: Name) -> ShapePath {
        ShapePath {
            steps: vec![PathStep::Def(name)],
        }
    }

    /// Appends a step.
    pub fn push(&mut self, step: PathStep) {
        self.steps.push(step);
    }

    /// Removes the last step.
    pub fn pop(&mut self) {
        self.steps.pop();
    }

    /// The steps, in order.
    pub fn steps(&self) -> &[PathStep] {
        &self.steps
    }

    /// A copy of this path with one more step.
    #[must_use]
    pub fn with(&self, step: PathStep) -> ShapePath {
        let mut p = self.clone();
        p.push(step);
        p
    }
}

impl fmt::Display for ShapePath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !matches!(self.steps.first(), Some(PathStep::Def(_))) {
            write!(f, "$")?;
        }
        for step in &self.steps {
            match step {
                PathStep::Field(n) => write!(f, ".{n}")?,
                PathStep::Elem => write!(f, "[]")?,
                PathStep::Arm(t) => write!(f, "\u{27e8}{t}\u{27e9}")?,
                PathStep::Opt => write!(f, "?")?,
                PathStep::Def(n) => write!(f, "\u{21ba}{n}")?,
            }
        }
        Ok(())
    }
}

/// How serious a [`Diagnostic`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational; never affects exit status.
    Note,
    /// A smell worth looking at.
    Warning,
    /// A finding that fails the analysis.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Note => write!(f, "note"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding from any of the three analysis engines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule identifier (kebab-case), e.g. `deep-optional-chain`.
    pub rule: &'static str,
    /// How serious the finding is.
    pub severity: Severity,
    /// Where in the shape the finding is located.
    pub shape_path: ShapePath,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] at {}: {}",
            self.severity, self.rule, self.shape_path, self.message
        )
    }
}

// ---------------------------------------------------------------------
// Fingerprinting
// ---------------------------------------------------------------------

/// A canonical 64-bit digest of a [`GlobalShape`] — the schema-registry
/// cache key. See [`fingerprint`] for the invariances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShapeFingerprint(pub u64);

impl fmt::Display for ShapeFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Computes the canonical fingerprint of a global shape.
///
/// The digest is invariant under everything that does not change the
/// denoted shape: process runs and interner state (string *contents*
/// are hashed, not interned pointers), definitions-table order (the
/// reachable environment is re-serialized in deterministic
/// first-reference order from the root), record-field order (fields are
/// hashed in name order), and unreachable definitions (dropped before
/// hashing). References are hashed by their *position* in the canonical
/// definition order — the α-renaming view — while record/definition
/// names are still hashed by content, because conformance is nominal.
///
/// ```
/// use tfd_core::analyze::fingerprint;
/// use tfd_core::{GlobalShape, Shape};
/// let a = GlobalShape::plain(Shape::record("P", [("x", Shape::Int), ("y", Shape::Bool)]));
/// let b = GlobalShape::plain(Shape::record("P", [("y", Shape::Bool), ("x", Shape::Int)]));
/// assert_eq!(fingerprint(&a), fingerprint(&b));
/// ```
pub fn fingerprint(global: &GlobalShape) -> ShapeFingerprint {
    let env = global.reachable_env();
    let index: Vec<Name> = env.names().collect();
    let mut h = StableHasher::new();
    hash_shape(&global.root, &index, &mut h);
    for (_, def) in env.iter() {
        h.write_u8(0xFE); // definition separator
        hash_record(def, &index, &mut h);
    }
    ShapeFingerprint(h.finish())
}

fn hash_shape(shape: &Shape, index: &[Name], h: &mut StableHasher) {
    match shape {
        Shape::Bottom => h.write_u8(0x01),
        Shape::Null => h.write_u8(0x02),
        Shape::Bool => h.write_u8(0x03),
        Shape::Int => h.write_u8(0x04),
        Shape::Float => h.write_u8(0x05),
        Shape::String => h.write_u8(0x06),
        Shape::Bit => h.write_u8(0x07),
        Shape::Date => h.write_u8(0x08),
        Shape::Record(r) => {
            h.write_u8(0x09);
            hash_record(r, index, h);
        }
        Shape::Nullable(inner) => {
            h.write_u8(0x0A);
            hash_shape(inner, index, h);
        }
        Shape::List(e) => {
            h.write_u8(0x0B);
            hash_shape(e, index, h);
        }
        Shape::Top(labels) => {
            h.write_u8(0x0C);
            h.write_usize(labels.len());
            for l in labels {
                hash_shape(l, index, h);
            }
        }
        Shape::HeteroList(cases) => {
            h.write_u8(0x0D);
            h.write_usize(cases.len());
            for (s, m) in cases {
                hash_shape(s, index, h);
                h.write_u8(match m {
                    Multiplicity::One => 1,
                    Multiplicity::ZeroOrOne => 2,
                    Multiplicity::Many => 3,
                });
            }
        }
        Shape::Ref(n) => {
            h.write_u8(0x0E);
            match index.iter().position(|m| m == n) {
                Some(i) => h.write_usize(i),
                None => {
                    // Dangling: no canonical position, fall back to the
                    // spelling (still process-independent).
                    h.write_u8(0xFF);
                    h.write_str(n.as_str());
                }
            }
        }
    }
}

fn hash_record(r: &RecordShape, index: &[Name], h: &mut StableHasher) {
    h.write_str(r.name.as_str());
    h.write_usize(r.fields.len());
    let mut order: Vec<usize> = (0..r.fields.len()).collect();
    order.sort_by(|&i, &j| r.fields[i].name.as_str().cmp(r.fields[j].name.as_str()));
    for i in order {
        let f = &r.fields[i];
        h.write_str(f.name.as_str());
        hash_shape(&f.shape, index, h);
    }
}

// ---------------------------------------------------------------------
// Compatibility analysis (schema-evolution diff)
// ---------------------------------------------------------------------

/// The direction a diff is judged in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompatMode {
    /// Old-conforming values must still conform to the new shape
    /// (`old ⊑ new`) — the registry-upload question.
    Backward,
    /// New-conforming values must conform to the old shape
    /// (`new ⊑ old`) — can old consumers read new data?
    Forward,
    /// Both directions: any divergence that breaks either is breaking.
    Full,
}

impl CompatMode {
    /// The kebab-case spelling used by the CLI.
    pub fn as_str(self) -> &'static str {
        match self {
            CompatMode::Backward => "backward",
            CompatMode::Forward => "forward",
            CompatMode::Full => "full",
        }
    }
}

impl fmt::Display for CompatMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for CompatMode {
    type Err = String;
    fn from_str(s: &str) -> Result<CompatMode, String> {
        match s {
            "backward" => Ok(CompatMode::Backward),
            "forward" => Ok(CompatMode::Forward),
            "full" => Ok(CompatMode::Full),
            other => Err(format!(
                "unknown compatibility mode '{other}' (expected backward, forward or full)"
            )),
        }
    }
}

/// Classification of one divergence between two shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffKind {
    /// A record field exists only in the new shape.
    FieldAdded,
    /// A record field exists only in the old shape.
    FieldRemoved,
    /// A leaf shape widened (`old ⊑ new` but not vice versa).
    TypeWidened,
    /// A leaf shape narrowed (`new ⊑ old` but not vice versa).
    TypeNarrowed,
    /// A leaf shape changed incomparably.
    TypeChanged,
    /// A non-nullable position became nullable.
    NullabilityIntroduced,
    /// A nullable position became non-nullable.
    NullabilityRemoved,
    /// A union/collection case exists only in the new shape.
    UnionArmAdded,
    /// A union/collection case exists only in the old shape.
    UnionArmDropped,
    /// A top-shape label changed (labels never affect conformance).
    UnionArmChanged,
    /// A collection case's multiplicity changed.
    MultiplicityChanged,
    /// A record/reference name changed (conformance is nominal).
    RecordRenamed,
    /// The μ-recursion cut moved: one side spells a record inline where
    /// the other uses a reference (denotationally equivalent).
    RecursionCutMoved,
    /// An environment definition exists only in the new shape.
    DefinitionAdded,
    /// An environment definition exists only in the old shape.
    DefinitionRemoved,
}

impl DiffKind {
    /// Stable kebab-case identifier (used in reports and JSON output).
    pub fn as_str(self) -> &'static str {
        match self {
            DiffKind::FieldAdded => "field-added",
            DiffKind::FieldRemoved => "field-removed",
            DiffKind::TypeWidened => "type-widened",
            DiffKind::TypeNarrowed => "type-narrowed",
            DiffKind::TypeChanged => "type-changed",
            DiffKind::NullabilityIntroduced => "nullability-introduced",
            DiffKind::NullabilityRemoved => "nullability-removed",
            DiffKind::UnionArmAdded => "union-arm-added",
            DiffKind::UnionArmDropped => "union-arm-dropped",
            DiffKind::UnionArmChanged => "union-arm-changed",
            DiffKind::MultiplicityChanged => "multiplicity-changed",
            DiffKind::RecordRenamed => "record-renamed",
            DiffKind::RecursionCutMoved => "recursion-cut-moved",
            DiffKind::DefinitionAdded => "definition-added",
            DiffKind::DefinitionRemoved => "definition-removed",
        }
    }
}

impl fmt::Display for DiffKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One classified divergence in a [`DiffReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffEntry {
    /// What changed.
    pub kind: DiffKind,
    /// Where it changed.
    pub path: ShapePath,
    /// Human-readable `old → new` detail.
    pub detail: String,
    /// `true` when this divergence breaks backward compatibility
    /// (an old-conforming value may not conform to the new shape).
    pub breaks_backward: bool,
    /// `true` when this divergence breaks forward compatibility.
    pub breaks_forward: bool,
}

impl DiffEntry {
    /// Whether this entry is breaking under the given mode.
    pub fn breaks(&self, mode: CompatMode) -> bool {
        match mode {
            CompatMode::Backward => self.breaks_backward,
            CompatMode::Forward => self.breaks_forward,
            CompatMode::Full => self.breaks_backward || self.breaks_forward,
        }
    }
}

/// The structured result of [`diff_global`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffReport {
    /// The mode compatibility is judged in.
    pub mode: CompatMode,
    /// Every divergence found, in walk order.
    pub entries: Vec<DiffEntry>,
    /// Fingerprint of the old shape.
    pub old_fingerprint: ShapeFingerprint,
    /// Fingerprint of the new shape.
    pub new_fingerprint: ShapeFingerprint,
}

impl DiffReport {
    /// `true` when no divergence at all was found — which holds exactly
    /// when the two shapes are structurally equivalent (equal roots and
    /// equal reachable environments, up to field/definition order).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `true` when no entry is breaking under the report's mode.
    pub fn is_compatible(&self) -> bool {
        !self.entries.iter().any(|e| e.breaks(self.mode))
    }

    /// The entries that are breaking under the report's mode.
    pub fn breaking(&self) -> impl Iterator<Item = &DiffEntry> {
        self.entries.iter().filter(|e| e.breaks(self.mode))
    }
}

impl fmt::Display for DiffReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fingerprint: {} -> {}",
            self.old_fingerprint, self.new_fingerprint
        )?;
        if self.entries.is_empty() {
            return writeln!(f, "shapes are identical");
        }
        for e in &self.entries {
            let marker = if e.breaks(self.mode) {
                "breaking"
            } else {
                "info"
            };
            writeln!(f, "{marker:8} {} at {}: {}", e.kind, e.path, e.detail)?;
        }
        let n = self.breaking().count();
        writeln!(
            f,
            "{} divergence(s), {} breaking under {} compatibility",
            self.entries.len(),
            n,
            self.mode
        )
    }
}

/// A short rendering of a shape for diff details.
fn brief(shape: &Shape) -> String {
    let mut s = shape.to_string();
    if s.chars().count() > 48 {
        let cut: String = s.chars().take(45).collect();
        s = format!("{cut}...");
    }
    s
}

/// Does the shape admit `null` — i.e. is `null ⊑ shape`? Mirrors the
/// `(Null, b)` clause of the preference relation.
fn admits_null(shape: &Shape) -> bool {
    !shape.is_non_nullable() && *shape != Shape::Bottom
}

fn contains_ref(shape: &Shape) -> bool {
    match shape {
        Shape::Ref(_) => true,
        Shape::Record(r) => r.fields.iter().any(|f| contains_ref(&f.shape)),
        Shape::Nullable(s) | Shape::List(s) => contains_ref(s),
        Shape::Top(labels) => labels.iter().any(contains_ref),
        Shape::HeteroList(cases) => cases.iter().any(|(s, _)| contains_ref(s)),
        _ => false,
    }
}

struct Differ<'a> {
    ea: Option<&'a ShapeEnv>,
    eb: Option<&'a ShapeEnv>,
    /// Same-name reference pairs already compared (never popped: this is
    /// the post-fixed-point check of the greatest fixed point — once a
    /// definition pair's divergences are recorded, re-encountering the
    /// pair adds nothing).
    compared: Vec<Name>,
    /// When set, pushed entries are forced non-breaking — used for
    /// definitions reachable only through top-shape labels, which the
    /// preference relation never descends into.
    muted: bool,
    entries: Vec<DiffEntry>,
}

impl<'a> Differ<'a> {
    fn push(&mut self, kind: DiffKind, path: ShapePath, detail: String, bb: bool, bf: bool) {
        let (bb, bf) = if self.muted { (false, false) } else { (bb, bf) };
        self.entries.push(DiffEntry {
            kind,
            path,
            detail,
            breaks_backward: bb,
            breaks_forward: bf,
        });
    }

    /// Exact breakage flags for a leaf divergence, straight from the
    /// two-environment relation (fresh-memo calls are exact: membership
    /// in the greatest fixed point is context-independent).
    fn leaf(&mut self, a: &Shape, b: &Shape, path: &ShapePath) {
        let fwd = preferred_two_env(a, b, self.ea, self.eb);
        let bwd = preferred_two_env(b, a, self.eb, self.ea);
        if fwd && bwd {
            return; // equivalent spellings, nothing to report
        }
        let kind = match (fwd, bwd) {
            (true, false) => DiffKind::TypeWidened,
            (false, true) => DiffKind::TypeNarrowed,
            _ => DiffKind::TypeChanged,
        };
        self.push(
            kind,
            path.clone(),
            format!("{} -> {}", brief(a), brief(b)),
            !fwd,
            !bwd,
        );
    }

    /// The diff walker. Mirrors the two-environment preference relation
    /// (`prefer::preferred2`) clause by clause, in both directions at
    /// once, so that "no backward-breaking entries" coincides exactly
    /// with `old ⊑ new` (and symmetrically for forward).
    fn diff(&mut self, a: &Shape, b: &Shape, path: &mut ShapePath) {
        use Shape::*;
        // Equal ref-free spellings cannot diverge in either direction.
        // (With refs inside, equality of spellings says nothing about
        // the definitions, so fall through.)
        if a == b && !contains_ref(a) {
            return;
        }
        let (ea, eb) = (self.ea, self.eb);
        match (a, b) {
            (Ref(n), Ref(m)) => {
                if n != m {
                    self.push(
                        DiffKind::RecordRenamed,
                        path.clone(),
                        format!("\u{21ba}{n} -> \u{21ba}{m}"),
                        true,
                        true,
                    );
                    return;
                }
                match (ea.and_then(|e| e.get(*n)), eb.and_then(|e| e.get(*m))) {
                    (Some(da), Some(db)) => {
                        if self.compared.contains(n) {
                            return;
                        }
                        self.compared.push(*n);
                        let mut p = ShapePath::def(*n);
                        self.diff_record(da, db, &mut p);
                    }
                    // A dangling side degrades to the nominal reading:
                    // the relation holds both ways, so never breaking.
                    (Some(_), None) => self.push(
                        DiffKind::DefinitionRemoved,
                        path.clone(),
                        format!("definition of \u{21ba}{n} is absent on the new side"),
                        false,
                        false,
                    ),
                    (None, Some(_)) => self.push(
                        DiffKind::DefinitionAdded,
                        path.clone(),
                        format!("definition of \u{21ba}{n} is absent on the old side"),
                        false,
                        false,
                    ),
                    (None, None) => {}
                }
            }
            (Bottom, Bottom) => {}
            (Bottom, _) | (_, Bottom) => self.leaf(a, b, path),
            // Labels are invisible to the preference relation (§3.5):
            // every label divergence is informational.
            (Top(la), Top(lb)) => self.diff_labels(la, lb, path),
            (Top(_), _) | (_, Top(_)) => self.leaf(a, b, path),
            (Null, Null) => {}
            (Null, _) | (_, Null) => self.leaf(a, b, path),
            (Nullable(ai), Nullable(bi)) => self.diff(ai, bi, path),
            (_, Nullable(bi)) if a.is_non_nullable() => {
                // `a ⊑ nullable b'` reduces to `a ⊑ b'`: the wrapper
                // itself never breaks backward, always breaks forward
                // (`nullable _ ⋢` any non-nullable shape).
                self.push(
                    DiffKind::NullabilityIntroduced,
                    path.clone(),
                    format!("{} became nullable", brief(a)),
                    false,
                    true,
                );
                self.diff(a, bi, path);
            }
            (Nullable(ai), _) if b.is_non_nullable() => {
                self.push(
                    DiffKind::NullabilityRemoved,
                    path.clone(),
                    format!("nullable {} became mandatory", brief(ai)),
                    true,
                    false,
                );
                self.diff(ai, b, path);
            }
            (Nullable(_), _) | (_, Nullable(_)) => self.leaf(a, b, path),
            (List(ae), List(be)) => {
                path.push(PathStep::Elem);
                self.diff(ae, be, path);
                path.pop();
            }
            (HeteroList(_), List(be)) if be.is_top() => self.leaf(a, b, path),
            (HeteroList(_) | List(_), HeteroList(_) | List(_)) => {
                self.diff_cases(&to_cases(a), &to_cases(b), path);
            }
            (List(_) | HeteroList(_), _) | (_, List(_) | HeteroList(_)) => self.leaf(a, b, path),
            _ => match (rec_view(a, ea), rec_view(b, eb)) {
                (Some(ra), Some(rb)) => {
                    if ra.name != rb.name {
                        self.push(
                            DiffKind::RecordRenamed,
                            path.clone(),
                            format!("{} -> {}", ra.name, rb.name),
                            true,
                            true,
                        );
                        return;
                    }
                    if matches!(a, Ref(_)) != matches!(b, Ref(_)) {
                        self.push(
                            DiffKind::RecursionCutMoved,
                            path.clone(),
                            format!(
                                "{} is spelled {} on the old side, {} on the new",
                                ra.name,
                                if matches!(a, Ref(_)) {
                                    "\u{21ba}ref"
                                } else {
                                    "inline"
                                },
                                if matches!(b, Ref(_)) {
                                    "\u{21ba}ref"
                                } else {
                                    "inline"
                                },
                            ),
                            false,
                            false,
                        );
                    }
                    self.diff_record(ra, rb, path);
                }
                // Unequal primitives, record against non-record, or a
                // name-class comparison with a dangling reference: the
                // relation decides, exactly.
                _ => self.leaf(a, b, path),
            },
        }
    }

    /// Record diff. Callers guarantee equal record names. Breakage flags
    /// mirror rules (8)+(9) with the row-variable convention: a missing
    /// field only breaks the direction in which its shape does not
    /// admit `null`.
    fn diff_record(&mut self, ra: &RecordShape, rb: &RecordShape, path: &mut ShapePath) {
        for fa in &ra.fields {
            match rb.field(&fa.name) {
                Some(fb) => {
                    path.push(PathStep::Field(fa.name));
                    self.diff(&fa.shape, fb, path);
                    path.pop();
                }
                None => {
                    let optional = admits_null(&fa.shape);
                    self.push(
                        DiffKind::FieldRemoved,
                        path.with(PathStep::Field(fa.name)),
                        format!(
                            "{} field `{}` ({}) removed",
                            if optional { "optional" } else { "required" },
                            fa.name,
                            brief(&fa.shape)
                        ),
                        false,
                        !optional,
                    );
                }
            }
        }
        for fb in &rb.fields {
            if ra.field(&fb.name).is_none() {
                let optional = admits_null(&fb.shape);
                self.push(
                    DiffKind::FieldAdded,
                    path.with(PathStep::Field(fb.name)),
                    format!(
                        "{} field `{}` ({}) added",
                        if optional { "optional" } else { "required" },
                        fb.name,
                        brief(&fb.shape)
                    ),
                    !optional,
                    false,
                );
            }
        }
    }

    /// Case-wise diff of (heterogeneous) collections, mirroring the
    /// covered/mandatory-present decomposition of the relation: cases
    /// match by tag (tags are pairwise distinct).
    fn diff_cases(
        &mut self,
        ca: &[(Shape, Multiplicity)],
        cb: &[(Shape, Multiplicity)],
        path: &mut ShapePath,
    ) {
        for (sa, ma) in ca {
            let tag = tag_of(sa);
            match cb.iter().find(|(sb, _)| tag_of(sb) == tag) {
                Some((sb, mb)) => {
                    path.push(PathStep::Arm(tag.clone()));
                    if ma != mb {
                        self.push(
                            DiffKind::MultiplicityChanged,
                            path.clone(),
                            format!("multiplicity {ma} -> {mb}"),
                            !ma.is_preferred(*mb),
                            !mb.is_preferred(*ma),
                        );
                    }
                    self.diff(sa, sb, path);
                    path.pop();
                }
                None => self.push(
                    DiffKind::UnionArmDropped,
                    path.with(PathStep::Arm(tag)),
                    format!("collection case {} dropped", brief(sa)),
                    true,
                    *ma == Multiplicity::One,
                ),
            }
        }
        for (sb, mb) in cb {
            let tag = tag_of(sb);
            if !ca.iter().any(|(sa, _)| tag_of(sa) == tag) {
                self.push(
                    DiffKind::UnionArmAdded,
                    path.with(PathStep::Arm(tag)),
                    format!("collection case {} added", brief(sb)),
                    *mb == Multiplicity::One,
                    true,
                );
            }
        }
    }

    /// Label diff for top shapes. Labels never affect the preference
    /// relation, so every entry is informational, and the walker does
    /// not descend into label shapes (matching the relation).
    fn diff_labels(&mut self, la: &[Shape], lb: &[Shape], path: &mut ShapePath) {
        for sa in la {
            let tag = tag_of(sa);
            match lb.iter().find(|sb| tag_of(sb) == tag) {
                Some(sb) if sa != sb => self.push(
                    DiffKind::UnionArmChanged,
                    path.with(PathStep::Arm(tag)),
                    format!("top label {} -> {}", brief(sa), brief(sb)),
                    false,
                    false,
                ),
                Some(_) => {}
                None => self.push(
                    DiffKind::UnionArmDropped,
                    path.with(PathStep::Arm(tag)),
                    format!("top label {} dropped", brief(sa)),
                    false,
                    false,
                ),
            }
        }
        for sb in lb {
            let tag = tag_of(sb);
            if !la.iter().any(|sa| tag_of(sa) == tag) {
                self.push(
                    DiffKind::UnionArmAdded,
                    path.with(PathStep::Arm(tag)),
                    format!("top label {} added", brief(sb)),
                    false,
                    false,
                );
            }
        }
    }
}

fn rec_view<'x>(s: &'x Shape, env: Option<&'x ShapeEnv>) -> Option<&'x RecordShape> {
    match s {
        Shape::Record(r) => Some(r),
        Shape::Ref(n) => env.and_then(|e| e.get(*n)),
        _ => None,
    }
}

/// Diffs two global shapes, classifying every divergence.
///
/// The walk agrees exactly with the preference relation:
/// *no backward-breaking entries* ⇔
/// [`is_preferred_global(old, new)`](crate::is_preferred_global), and
/// *no forward-breaking entries* ⇔ `is_preferred_global(new, old)`.
/// The report [is empty](DiffReport::is_empty) iff the two shapes are
/// structurally equivalent (equal roots and equal reachable
/// environments).
///
/// ```
/// use tfd_core::analyze::{diff_global, CompatMode, DiffKind};
/// use tfd_core::{GlobalShape, Shape};
/// let old = GlobalShape::plain(Shape::record("P", [("x", Shape::Int)]));
/// let new = GlobalShape::plain(Shape::record("P", [("x", Shape::Float)]));
/// let report = diff_global(&old, &new, CompatMode::Backward);
/// assert!(report.is_compatible()); // int ⊑ float: safe widening
/// assert_eq!(report.entries[0].kind, DiffKind::TypeWidened);
/// ```
pub fn diff_global(old: &GlobalShape, new: &GlobalShape, mode: CompatMode) -> DiffReport {
    let mut d = Differ {
        ea: Some(&old.env),
        eb: Some(&new.env),
        compared: Vec::new(),
        muted: false,
        entries: Vec::new(),
    };
    let mut path = ShapePath::root();
    d.diff(&old.root, &new.root, &mut path);

    // Definitions reachable only through top-shape labels were never
    // visited (the relation does not descend into labels), but they are
    // still part of the shape: diff them muted, so the report is empty
    // iff the reachable environments are equal, without perturbing the
    // compatibility verdict.
    let ra = old.reachable_env();
    let rb = new.reachable_env();
    d.muted = true;
    for n in ra.names().collect::<Vec<_>>() {
        if d.compared.contains(&n) {
            continue;
        }
        match (ra.get(n), rb.get(n)) {
            (Some(da), Some(db)) => {
                d.compared.push(n);
                let mut p = ShapePath::def(n);
                d.diff_record(da, db, &mut p);
            }
            (Some(_), None) => d.push(
                DiffKind::DefinitionRemoved,
                ShapePath::def(n),
                format!("definition \u{21ba}{n} no longer reachable"),
                false,
                false,
            ),
            _ => {}
        }
    }
    for n in rb.names() {
        if !ra.contains(n) && !d.compared.contains(&n) {
            d.push(
                DiffKind::DefinitionAdded,
                ShapePath::def(n),
                format!("definition \u{21ba}{n} newly reachable"),
                false,
                false,
            );
        }
    }

    DiffReport {
        mode,
        entries: d.entries,
        old_fingerprint: fingerprint(old),
        new_fingerprint: fingerprint(new),
    }
}

// ---------------------------------------------------------------------
// Lint framework
// ---------------------------------------------------------------------

/// What to do with a lint rule's findings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintLevel {
    /// Suppress the rule entirely.
    Allow,
    /// Report findings as [`Severity::Warning`].
    Warn,
    /// Report findings as [`Severity::Error`] (fails the analysis).
    Deny,
}

impl std::str::FromStr for LintLevel {
    type Err = String;
    fn from_str(s: &str) -> Result<LintLevel, String> {
        match s {
            "allow" => Ok(LintLevel::Allow),
            "warn" => Ok(LintLevel::Warn),
            "deny" => Ok(LintLevel::Deny),
            other => Err(format!(
                "unknown lint level '{other}' (expected allow, warn or deny)"
            )),
        }
    }
}

/// Per-rule allow/warn/deny configuration. Later overrides win; the
/// pseudo-rule name `all` matches every rule.
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    overrides: Vec<(String, LintLevel)>,
}

impl LintConfig {
    /// The default configuration (every rule at its default level).
    pub fn new() -> LintConfig {
        LintConfig::default()
    }

    /// Sets the level for `rule` (or `all`).
    pub fn set(&mut self, rule: impl Into<String>, level: LintLevel) {
        self.overrides.push((rule.into(), level));
    }

    /// The effective level for `rule`, given its default.
    pub fn level_for(&self, rule: &str, default: LintLevel) -> LintLevel {
        self.overrides
            .iter()
            .rev()
            .find(|(r, _)| r == rule || r == "all")
            .map(|(_, l)| *l)
            .unwrap_or(default)
    }
}

/// A heuristic shape smell: something that is legal but usually means
/// the corpus (or the inference) deserves a second look.
pub trait LintRule {
    /// Stable kebab-case rule name (the `--allow`/`--deny` key).
    fn name(&self) -> &'static str;
    /// One-line description for `--help`-style listings.
    fn description(&self) -> &'static str;
    /// The level used when the configuration has no override.
    fn default_level(&self) -> LintLevel {
        LintLevel::Warn
    }
    /// Runs the rule, pushing findings (severity is overwritten by the
    /// configured level in [`run_lints`]).
    fn check(&self, global: &GlobalShape, out: &mut Vec<Diagnostic>);
}

/// Calls `f` on every shape position of `global` — the root walked
/// structurally (references are *not* followed; each definition is its
/// own walk root at `↺name`), with the path to each position.
fn for_each_shape(global: &GlobalShape, f: &mut impl FnMut(&ShapePath, &Shape)) {
    fn walk(s: &Shape, path: &mut ShapePath, f: &mut impl FnMut(&ShapePath, &Shape)) {
        f(path, s);
        match s {
            Shape::Record(r) => {
                for field in &r.fields {
                    path.push(PathStep::Field(field.name));
                    walk(&field.shape, path, f);
                    path.pop();
                }
            }
            Shape::Nullable(inner) => {
                path.push(PathStep::Opt);
                walk(inner, path, f);
                path.pop();
            }
            Shape::List(e) => {
                path.push(PathStep::Elem);
                walk(e, path, f);
                path.pop();
            }
            Shape::Top(labels) => {
                for l in labels {
                    path.push(PathStep::Arm(tag_of(l)));
                    walk(l, path, f);
                    path.pop();
                }
            }
            Shape::HeteroList(cases) => {
                for (cs, _) in cases {
                    path.push(PathStep::Arm(tag_of(cs)));
                    walk(cs, path, f);
                    path.pop();
                }
            }
            _ => {}
        }
    }
    let mut path = ShapePath::root();
    walk(&global.root, &mut path, f);
    for (n, def) in global.env.iter() {
        let mut path = ShapePath::def(n);
        walk(&Shape::Record(def.clone()), &mut path, f);
    }
}

/// Like [`for_each_shape`], restricted to record views.
fn for_each_record(global: &GlobalShape, f: &mut impl FnMut(&ShapePath, &RecordShape)) {
    for_each_shape(global, &mut |path, s| {
        if let Shape::Record(r) = s {
            f(path, r);
        }
    });
}

fn warn(rule: &'static str, path: ShapePath, message: String) -> Diagnostic {
    Diagnostic {
        rule,
        severity: Severity::Warning,
        shape_path: path,
        message,
    }
}

struct DeepOptionalChain;

impl LintRule for DeepOptionalChain {
    fn name(&self) -> &'static str {
        "deep-optional-chain"
    }
    fn description(&self) -> &'static str {
        "three or more consecutive nullable record fields: every access needs a null check at every level"
    }
    fn check(&self, global: &GlobalShape, out: &mut Vec<Diagnostic>) {
        const LIMIT: usize = 3;
        // Walk tracking the run of consecutive nullable *field* hops;
        // reset through collections, union arms, and non-nullable
        // fields. Each definition restarts its own chain.
        fn walk(s: &Shape, depth: usize, path: &mut ShapePath, out: &mut Vec<Diagnostic>) {
            match s {
                Shape::Record(r) => {
                    for field in &r.fields {
                        path.push(PathStep::Field(field.name));
                        if let Shape::Nullable(inner) = &field.shape {
                            if depth + 1 == LIMIT {
                                out.push(warn(
                                    "deep-optional-chain",
                                    path.clone(),
                                    format!(
                                        "{LIMIT} consecutive nullable fields ending here; \
                                         every access needs {LIMIT} null checks"
                                    ),
                                ));
                            }
                            walk(inner, depth + 1, path, out);
                        } else {
                            walk(&field.shape, 0, path, out);
                        }
                        path.pop();
                    }
                }
                Shape::Nullable(inner) => walk(inner, depth, path, out),
                Shape::List(e) => {
                    path.push(PathStep::Elem);
                    walk(e, 0, path, out);
                    path.pop();
                }
                Shape::Top(labels) => {
                    for l in labels {
                        path.push(PathStep::Arm(tag_of(l)));
                        walk(l, 0, path, out);
                        path.pop();
                    }
                }
                Shape::HeteroList(cases) => {
                    for (cs, _) in cases {
                        path.push(PathStep::Arm(tag_of(cs)));
                        walk(cs, 0, path, out);
                        path.pop();
                    }
                }
                _ => {}
            }
        }
        let mut path = ShapePath::root();
        walk(&global.root, 0, &mut path, out);
        for (n, def) in global.env.iter() {
            let mut path = ShapePath::def(n);
            walk(&Shape::Record(def.clone()), 0, &mut path, out);
        }
    }
}

struct NearDegenerateUnion;

impl LintRule for NearDegenerateUnion {
    fn name(&self) -> &'static str {
        "near-degenerate-union"
    }
    fn description(&self) -> &'static str {
        "a top shape with exactly one label: one sample away from a precise shape, but typed as any"
    }
    fn check(&self, global: &GlobalShape, out: &mut Vec<Diagnostic>) {
        for_each_shape(global, &mut |path, s| {
            if let Shape::Top(labels) = s {
                if labels.len() == 1 {
                    out.push(warn(
                        "near-degenerate-union",
                        path.clone(),
                        format!(
                            "top shape with a single label {}: likely one outlier sample \
                             collapsed this position to any",
                            brief(&labels[0])
                        ),
                    ));
                }
            }
        });
    }
}

struct OpaqueAny;

impl LintRule for OpaqueAny {
    fn name(&self) -> &'static str {
        "opaque-any"
    }
    fn description(&self) -> &'static str {
        "an unlabelled top shape: the inference lost all type information at this position"
    }
    fn check(&self, global: &GlobalShape, out: &mut Vec<Diagnostic>) {
        for_each_shape(global, &mut |path, s| {
            if matches!(s, Shape::Top(labels) if labels.is_empty()) {
                out.push(warn(
                    "opaque-any",
                    path.clone(),
                    "unlabelled any: no static access is checkable below this point".into(),
                ));
            }
        });
    }
}

struct MixedNumberString;

impl LintRule for MixedNumberString {
    fn name(&self) -> &'static str {
        "mixed-number-string"
    }
    fn description(&self) -> &'static str {
        "a union of numeric and string cases: classic sentinel-string-in-a-numeric-column smell"
    }
    fn check(&self, global: &GlobalShape, out: &mut Vec<Diagnostic>) {
        fn mixed(tags: impl Iterator<Item = Tag>) -> bool {
            let (mut num, mut text) = (false, false);
            for t in tags {
                match t {
                    Tag::Number => num = true,
                    Tag::Str => text = true,
                    _ => {}
                }
            }
            num && text
        }
        for_each_shape(global, &mut |path, s| {
            let hit = match s {
                Shape::Top(labels) => mixed(labels.iter().map(tag_of)),
                Shape::HeteroList(cases) => mixed(cases.iter().map(|(cs, _)| tag_of(cs))),
                _ => false,
            };
            if hit {
                out.push(warn(
                    "mixed-number-string",
                    path.clone(),
                    "both numeric and string cases at one position: often a sentinel string \
                     (\"N/A\", \"-\") in a numeric column"
                        .into(),
                ));
            }
        });
    }
}

struct CaseCollision;

impl LintRule for CaseCollision {
    fn name(&self) -> &'static str {
        "case-collision"
    }
    fn description(&self) -> &'static str {
        "field or definition names differing only in ASCII case: likely the same logical field"
    }
    fn check(&self, global: &GlobalShape, out: &mut Vec<Diagnostic>) {
        fn collisions(names: &[Name]) -> Vec<(Name, Name)> {
            let mut hits = Vec::new();
            for (i, a) in names.iter().enumerate() {
                for b in &names[i + 1..] {
                    if a != b && a.as_str().eq_ignore_ascii_case(b.as_str()) {
                        hits.push((*a, *b));
                    }
                }
            }
            hits
        }
        for_each_record(global, &mut |path, r| {
            let names: Vec<Name> = r.fields.iter().map(|f| f.name).collect();
            for (a, b) in collisions(&names) {
                out.push(warn(
                    "case-collision",
                    path.clone(),
                    format!("fields `{a}` and `{b}` differ only in case"),
                ));
            }
        });
        let defs: Vec<Name> = global.env.names().collect();
        for (a, b) in collisions(&defs) {
            out.push(warn(
                "case-collision",
                ShapePath::def(a),
                format!("definitions `{a}` and `{b}` differ only in case"),
            ));
        }
    }
}

struct UnionArity;

impl LintRule for UnionArity {
    fn name(&self) -> &'static str {
        "union-arity"
    }
    fn description(&self) -> &'static str {
        "five or more union cases at one position: the corpus mixes too many shapes to type usefully"
    }
    fn check(&self, global: &GlobalShape, out: &mut Vec<Diagnostic>) {
        const LIMIT: usize = 5;
        for_each_shape(global, &mut |path, s| {
            let arity = match s {
                Shape::Top(labels) => labels.len(),
                Shape::HeteroList(cases) => cases.len(),
                _ => 0,
            };
            if arity >= LIMIT {
                out.push(warn(
                    "union-arity",
                    path.clone(),
                    format!("{arity} union cases at one position (threshold {LIMIT})"),
                ));
            }
        });
    }
}

struct EmptyRecord;

impl LintRule for EmptyRecord {
    fn name(&self) -> &'static str {
        "empty-record"
    }
    fn description(&self) -> &'static str {
        "a record with no fields (allow by default: void elements like <br/> are common in markup)"
    }
    fn default_level(&self) -> LintLevel {
        LintLevel::Allow
    }
    fn check(&self, global: &GlobalShape, out: &mut Vec<Diagnostic>) {
        for_each_record(global, &mut |path, r| {
            if r.fields.is_empty() {
                out.push(warn(
                    "empty-record",
                    path.clone(),
                    format!("record `{}` has no fields", r.name),
                ));
            }
        });
    }
}

/// The built-in rule registry, in reporting order.
pub fn lint_rules() -> Vec<Box<dyn LintRule>> {
    vec![
        Box::new(DeepOptionalChain),
        Box::new(NearDegenerateUnion),
        Box::new(OpaqueAny),
        Box::new(MixedNumberString),
        Box::new(CaseCollision),
        Box::new(UnionArity),
        Box::new(EmptyRecord),
    ]
}

/// The names of every built-in rule, in reporting order.
pub fn lint_rule_names() -> Vec<&'static str> {
    lint_rules().iter().map(|r| r.name()).collect()
}

/// Runs every registered rule at its configured level. `Allow`ed rules
/// are skipped; `Warn` findings get [`Severity::Warning`], `Deny`
/// findings [`Severity::Error`].
pub fn run_lints(global: &GlobalShape, config: &LintConfig) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for rule in lint_rules() {
        let level = config.level_for(rule.name(), rule.default_level());
        if level == LintLevel::Allow {
            continue;
        }
        let mut found = Vec::new();
        rule.check(global, &mut found);
        let severity = match level {
            LintLevel::Deny => Severity::Error,
            _ => Severity::Warning,
        };
        for mut d in found {
            d.severity = severity;
            out.push(d);
        }
    }
    out
}

// ---------------------------------------------------------------------
// Static access-path checking
// ---------------------------------------------------------------------

/// One step of an [`AccessPath`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessStep {
    /// `.name` — project a record field.
    Field(Name),
    /// `[]` — iterate the elements of a collection.
    Elements,
    /// `?` — unwrap a nullable (with null short-circuit at runtime).
    OptChain,
}

/// A projection path over conforming values, e.g. `root.items[].name`.
///
/// Grammar: an optional leading `$` or `root`, then any sequence of
/// `.field`, `[]` and `?` (a bare leading identifier is read as a
/// field). Parse with [`str::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessPath {
    steps: Vec<AccessStep>,
}

impl AccessPath {
    /// The steps, in order.
    pub fn steps(&self) -> &[AccessStep] {
        &self.steps
    }
}

impl fmt::Display for AccessPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "$")?;
        for s in &self.steps {
            match s {
                AccessStep::Field(n) => write!(f, ".{n}")?,
                AccessStep::Elements => write!(f, "[]")?,
                AccessStep::OptChain => write!(f, "?")?,
            }
        }
        Ok(())
    }
}

impl std::str::FromStr for AccessPath {
    type Err = String;
    fn from_str(s: &str) -> Result<AccessPath, String> {
        let mut rest = s.trim();
        if rest.is_empty() {
            return Err("empty access path".into());
        }
        // Leading root marker.
        if let Some(r) = rest.strip_prefix('$') {
            rest = r;
        } else if rest == "root"
            || rest.starts_with("root.")
            || rest.starts_with("root[")
            || rest.starts_with("root?")
        {
            rest = &rest["root".len()..];
        }
        let mut steps = Vec::new();
        let mut first = true;
        while !rest.is_empty() {
            if let Some(r) = rest.strip_prefix("[]") {
                steps.push(AccessStep::Elements);
                rest = r;
            } else if rest.starts_with('[') {
                return Err(format!(
                    "expected `[]` at `{rest}` (indexing is not supported)"
                ));
            } else if let Some(r) = rest.strip_prefix('?') {
                steps.push(AccessStep::OptChain);
                rest = r;
            } else {
                let r = match rest.strip_prefix('.') {
                    Some(r) => r,
                    None if first => rest, // bare leading identifier
                    None => return Err(format!("expected `.`, `[]` or `?` at `{rest}`")),
                };
                let end = r.find(['.', '[', '?']).unwrap_or(r.len());
                if end == 0 {
                    return Err(format!("expected a field name at `{rest}`"));
                }
                steps.push(AccessStep::Field(Name::new(&r[..end])));
                rest = &r[end..];
            }
            first = false;
        }
        Ok(AccessPath { steps })
    }
}

/// The result of checking one access path against a shape.
#[derive(Debug, Clone)]
pub struct PathReport {
    /// Findings, in path order. Error-severity findings mean the path
    /// is not safe for all conforming inputs.
    pub diagnostics: Vec<Diagnostic>,
    /// The shape the path projects to, when the walk reached an end
    /// (also set when the walk stopped early at ⊥).
    pub result: Option<Shape>,
}

impl PathReport {
    /// `true` when no finding has [`Severity::Error`] — by the §5
    /// relative-safety theorem, the access then succeeds on every value
    /// conforming to the shape.
    pub fn is_safe(&self) -> bool {
        !self
            .diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }
}

/// Statically checks `path` against `global`: is every access safe for
/// *all* values conforming to the shape?
///
/// * `.field` on a `nullable` is an error (`?` must be used first —
///   at runtime the value may be `null`); the check continues with the
///   inner shape for error recovery.
/// * `.field` missing from the record, any access on a top shape, and
///   `.field`/`?` on a collection are errors.
/// * `[]` is only safe on collections; on a heterogeneous collection
///   with more than one case the element shape is ambiguous (an error).
/// * `?` on a non-nullable is a redundant-but-safe note.
/// * ⊥ (no samples observed at this position) makes the rest of the
///   path vacuously safe: there is no conforming value to go wrong on.
///
/// ```
/// use tfd_core::analyze::check_path;
/// use tfd_core::{GlobalShape, Shape};
/// let g = GlobalShape::plain(Shape::record(
///     "•",
///     [("items", Shape::list(Shape::record("•", [("name", Shape::String)])))],
/// ));
/// assert!(check_path(&g, &"items[].name".parse().unwrap()).is_safe());
/// assert!(!check_path(&g, &"items[].nope".parse().unwrap()).is_safe());
/// ```
pub fn check_path(global: &GlobalShape, path: &AccessPath) -> PathReport {
    let env = &global.env;
    let mut cur = global.root.clone();
    let mut diagnostics = Vec::new();
    let mut spath = ShapePath::root();
    let err = |diags: &mut Vec<Diagnostic>, rule, spath: &ShapePath, msg: String| {
        diags.push(Diagnostic {
            rule,
            severity: Severity::Error,
            shape_path: spath.clone(),
            message: msg,
        });
    };
    for step in &path.steps {
        if cur == Shape::Bottom {
            diagnostics.push(Diagnostic {
                rule: "path-vacuous",
                severity: Severity::Note,
                shape_path: spath.clone(),
                message: "shape is \u{22a5} (no samples observed); the rest of the path is \
                          vacuously safe"
                    .into(),
            });
            return PathReport {
                diagnostics,
                result: Some(Shape::Bottom),
            };
        }
        match step {
            AccessStep::Field(name) => {
                if let Shape::Nullable(inner) = cur {
                    err(
                        &mut diagnostics,
                        "path-null-deref",
                        &spath,
                        format!(
                            "field `.{name}` accessed on a nullable value; a conforming input \
                             may be null here (use `?` before `.{name}`)"
                        ),
                    );
                    cur = *inner; // recover: keep checking the rest
                }
                while let Shape::Ref(n) = cur {
                    match env.get(n) {
                        Some(def) => cur = Shape::Record(def.clone()),
                        None => {
                            err(
                                &mut diagnostics,
                                "path-undefined-ref",
                                &spath,
                                format!("reference \u{21ba}{n} has no definition in scope"),
                            );
                            return PathReport {
                                diagnostics,
                                result: None,
                            };
                        }
                    }
                }
                match cur {
                    Shape::Record(r) => match r.field(name) {
                        Some(s) => {
                            spath.push(PathStep::Field(*name));
                            cur = s.clone();
                        }
                        None => {
                            let known: Vec<String> =
                                r.fields.iter().map(|f| f.name.to_string()).collect();
                            err(
                                &mut diagnostics,
                                "path-missing-field",
                                &spath,
                                format!(
                                    "record `{}` has no field `{name}` (known fields: {})",
                                    r.name,
                                    if known.is_empty() {
                                        "none".to_string()
                                    } else {
                                        known.join(", ")
                                    }
                                ),
                            );
                            return PathReport {
                                diagnostics,
                                result: None,
                            };
                        }
                    },
                    Shape::Top(_) => {
                        err(
                            &mut diagnostics,
                            "path-on-any",
                            &spath,
                            format!(
                                "field `.{name}` accessed on a top shape; nothing is statically \
                                 known at this position"
                            ),
                        );
                        return PathReport {
                            diagnostics,
                            result: None,
                        };
                    }
                    Shape::List(_) | Shape::HeteroList(_) => {
                        err(
                            &mut diagnostics,
                            "path-not-record",
                            &spath,
                            format!(
                                "field `.{name}` accessed on a collection (use `[]` to reach \
                                 the elements first)"
                            ),
                        );
                        return PathReport {
                            diagnostics,
                            result: None,
                        };
                    }
                    other => {
                        err(
                            &mut diagnostics,
                            "path-not-record",
                            &spath,
                            format!("field `.{name}` accessed on {}", brief(&other)),
                        );
                        return PathReport {
                            diagnostics,
                            result: None,
                        };
                    }
                }
            }
            AccessStep::Elements => match cur {
                Shape::List(e) => {
                    spath.push(PathStep::Elem);
                    cur = *e;
                }
                Shape::HeteroList(cases) if cases.len() == 1 => {
                    spath.push(PathStep::Elem);
                    cur = cases
                        .into_iter()
                        .next()
                        .map(|(s, _)| s)
                        .unwrap_or(Shape::Bottom);
                }
                Shape::HeteroList(cases) => {
                    let tags: Vec<String> =
                        cases.iter().map(|(s, _)| tag_of(s).to_string()).collect();
                    err(
                        &mut diagnostics,
                        "path-hetero",
                        &spath,
                        format!(
                            "heterogeneous collection with {} element cases ({}); a single \
                             element shape cannot be assumed",
                            cases.len(),
                            tags.join(", ")
                        ),
                    );
                    return PathReport {
                        diagnostics,
                        result: None,
                    };
                }
                other => {
                    err(
                        &mut diagnostics,
                        "path-not-collection",
                        &spath,
                        format!("`[]` applied to {}", brief(&other)),
                    );
                    return PathReport {
                        diagnostics,
                        result: None,
                    };
                }
            },
            AccessStep::OptChain => match cur {
                Shape::Nullable(inner) => {
                    spath.push(PathStep::Opt);
                    cur = *inner;
                }
                other => {
                    diagnostics.push(Diagnostic {
                        rule: "path-redundant-opt",
                        severity: Severity::Note,
                        shape_path: spath.clone(),
                        message: format!(
                            "`?` applied to non-nullable {} (safe, but redundant)",
                            brief(&other)
                        ),
                    });
                    cur = other;
                }
            },
        }
    }
    PathReport {
        diagnostics,
        result: Some(cur),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::is_preferred_global;
    use Multiplicity::{Many, One, ZeroOrOne};

    fn plain(root: Shape) -> GlobalShape {
        GlobalShape::plain(root)
    }

    fn rec(name: &str, fields: Vec<(&str, Shape)>) -> Shape {
        Shape::record(name, fields)
    }

    fn with_env(root: Shape, defs: Vec<(&str, Vec<(&str, Shape)>)>) -> GlobalShape {
        GlobalShape {
            root,
            env: ShapeEnv::from_defs(defs.into_iter().map(|(n, fs)| {
                (
                    Name::new(n),
                    RecordShape::new(n, fs.into_iter().map(|(f, s)| (Name::new(f), s))),
                )
            })),
        }
    }

    /// The clause-mirroring invariant: the diff's breaking verdicts
    /// agree exactly with the preference relation, in both directions.
    fn assert_agreement(old: &GlobalShape, new: &GlobalShape) {
        let r = diff_global(old, new, CompatMode::Backward);
        assert_eq!(
            r.is_compatible(),
            is_preferred_global(old, new),
            "backward disagrees on {old} vs {new}:\n{r}"
        );
        let r = diff_global(old, new, CompatMode::Forward);
        assert_eq!(
            r.is_compatible(),
            is_preferred_global(new, old),
            "forward disagrees on {old} vs {new}:\n{r}"
        );
    }

    fn kinds(report: &DiffReport) -> Vec<DiffKind> {
        report.entries.iter().map(|e| e.kind).collect()
    }

    // --- ShapePath / Diagnostic rendering ---

    #[test]
    fn shape_path_renders_root_and_def_forms() {
        let mut p = ShapePath::root();
        assert_eq!(p.to_string(), "$");
        p.push(PathStep::Field("items".into()));
        p.push(PathStep::Elem);
        p.push(PathStep::Field("name".into()));
        assert_eq!(p.to_string(), "$.items[].name");
        p.pop();
        p.push(PathStep::Opt);
        assert_eq!(p.to_string(), "$.items[]?");
        let d = ShapePath::def("div".into()).with(PathStep::Field("child".into()));
        assert_eq!(d.to_string(), "\u{21ba}div.child");
        let arm = ShapePath::root().with(PathStep::Arm(Tag::Number));
        assert_eq!(arm.to_string(), "$\u{27e8}number\u{27e9}");
    }

    #[test]
    fn diagnostic_display_is_locatable() {
        let d = Diagnostic {
            rule: "opaque-any",
            severity: Severity::Warning,
            shape_path: ShapePath::root().with(PathStep::Field("x".into())),
            message: "m".into(),
        };
        assert_eq!(d.to_string(), "warning[opaque-any] at $.x: m");
        assert!(Severity::Note < Severity::Warning && Severity::Warning < Severity::Error);
    }

    // --- Fingerprint ---

    #[test]
    fn fingerprint_is_field_order_invariant() {
        let a = plain(rec("P", vec![("x", Shape::Int), ("y", Shape::Bool)]));
        let b = plain(rec("P", vec![("y", Shape::Bool), ("x", Shape::Int)]));
        assert_eq!(fingerprint(&a), fingerprint(&b));
        let c = plain(rec("P", vec![("x", Shape::Float), ("y", Shape::Bool)]));
        assert_ne!(fingerprint(&a), fingerprint(&c));
    }

    #[test]
    fn fingerprint_is_def_order_invariant_and_drops_unreachable() {
        let fwd = with_env(
            Shape::Ref("ul".into()),
            vec![
                ("ul", vec![("li", Shape::Ref("li".into()).ceil())]),
                ("li", vec![("ul", Shape::Ref("ul".into()).ceil())]),
            ],
        );
        let rev = with_env(
            Shape::Ref("ul".into()),
            vec![
                ("li", vec![("ul", Shape::Ref("ul".into()).ceil())]),
                ("ul", vec![("li", Shape::Ref("li".into()).ceil())]),
            ],
        );
        assert_eq!(fingerprint(&fwd), fingerprint(&rev));
        let with_junk = with_env(
            Shape::Ref("ul".into()),
            vec![
                ("ul", vec![("li", Shape::Ref("li".into()).ceil())]),
                ("li", vec![("ul", Shape::Ref("ul".into()).ceil())]),
                ("junk", vec![("z", Shape::Int)]),
            ],
        );
        assert_eq!(fingerprint(&fwd), fingerprint(&with_junk));
        // ... but a reachable definition's content matters:
        let widened = with_env(
            Shape::Ref("ul".into()),
            vec![
                ("ul", vec![("li", Shape::Ref("li".into()).ceil())]),
                (
                    "li",
                    vec![("ul", Shape::Ref("ul".into()).ceil()), ("x", Shape::Int)],
                ),
            ],
        );
        assert_ne!(fingerprint(&fwd), fingerprint(&widened));
    }

    #[test]
    fn fingerprint_distinguishes_record_names_and_renders_hex() {
        let a = plain(rec("P", vec![("x", Shape::Int)]));
        let b = plain(rec("Q", vec![("x", Shape::Int)]));
        assert_ne!(fingerprint(&a), fingerprint(&b), "conformance is nominal");
        assert_eq!(fingerprint(&a).to_string().len(), 16);
    }

    // --- Diff classification, kind by kind ---

    #[test]
    fn widening_narrowing_and_change_classify() {
        let int = plain(rec("P", vec![("x", Shape::Int)]));
        let float = plain(rec("P", vec![("x", Shape::Float)]));
        let boolean = plain(rec("P", vec![("x", Shape::Bool)]));

        let r = diff_global(&int, &float, CompatMode::Backward);
        assert_eq!(kinds(&r), vec![DiffKind::TypeWidened]);
        assert!(r.is_compatible());
        assert_eq!(r.entries[0].path.to_string(), "$.x");

        let r = diff_global(&float, &int, CompatMode::Backward);
        assert_eq!(kinds(&r), vec![DiffKind::TypeNarrowed]);
        assert!(!r.is_compatible());
        assert!(diff_global(&float, &int, CompatMode::Forward).is_compatible());

        let r = diff_global(&int, &boolean, CompatMode::Full);
        assert_eq!(kinds(&r), vec![DiffKind::TypeChanged]);
        assert!(!r.is_compatible());
    }

    #[test]
    fn field_added_and_removed_respect_the_row_variable_convention() {
        let narrow = plain(rec("P", vec![("x", Shape::Int)]));
        let wide_req = plain(rec("P", vec![("x", Shape::Int), ("y", Shape::Bool)]));
        let wide_opt = plain(rec("P", vec![("x", Shape::Int), ("y", Shape::Bool.ceil())]));

        // Required field added: old values lack it → backward-breaking.
        let r = diff_global(&narrow, &wide_req, CompatMode::Backward);
        assert_eq!(kinds(&r), vec![DiffKind::FieldAdded]);
        assert!(!r.is_compatible());
        assert_eq!(r.entries[0].path.to_string(), "$.y");

        // Optional field added: safe both ways... backward at least.
        let r = diff_global(&narrow, &wide_opt, CompatMode::Backward);
        assert_eq!(kinds(&r), vec![DiffKind::FieldAdded]);
        assert!(r.is_compatible());

        // Required field removed: breaks forward, not backward.
        let r = diff_global(&wide_req, &narrow, CompatMode::Backward);
        assert_eq!(kinds(&r), vec![DiffKind::FieldRemoved]);
        assert!(r.is_compatible());
        assert!(!diff_global(&wide_req, &narrow, CompatMode::Forward).is_compatible());
        // Optional field removed: forward-safe too.
        assert!(diff_global(&wide_opt, &narrow, CompatMode::Forward).is_compatible());
    }

    #[test]
    fn nullability_entries_classify_by_direction() {
        let req = plain(rec("P", vec![("x", Shape::Int)]));
        let opt = plain(rec("P", vec![("x", Shape::Int.ceil())]));
        let r = diff_global(&req, &opt, CompatMode::Backward);
        assert_eq!(kinds(&r), vec![DiffKind::NullabilityIntroduced]);
        assert!(r.is_compatible());
        assert!(!diff_global(&req, &opt, CompatMode::Forward).is_compatible());

        let r = diff_global(&opt, &req, CompatMode::Backward);
        assert_eq!(kinds(&r), vec![DiffKind::NullabilityRemoved]);
        assert!(!r.is_compatible());
        assert!(diff_global(&opt, &req, CompatMode::Forward).is_compatible());

        // Wrapper change plus inner widening stack up:
        let optf = plain(rec("P", vec![("x", Shape::Float.ceil())]));
        let r = diff_global(&req, &optf, CompatMode::Backward);
        assert_eq!(
            kinds(&r),
            vec![DiffKind::NullabilityIntroduced, DiffKind::TypeWidened]
        );
        assert!(r.is_compatible());
    }

    #[test]
    fn union_arm_and_multiplicity_entries() {
        let point = rec("•", vec![("a", Shape::Int)]);
        let both = plain(Shape::HeteroList(vec![
            (point.clone(), One),
            (Shape::list(Shape::Int), ZeroOrOne),
        ]));
        let just_point = plain(Shape::HeteroList(vec![(point.clone(), One)]));

        // Optional case dropped: backward-breaking (old inputs may
        // contain it), forward-safe (it was optional).
        let r = diff_global(&both, &just_point, CompatMode::Backward);
        assert_eq!(kinds(&r), vec![DiffKind::UnionArmDropped]);
        assert!(!r.is_compatible());
        assert!(diff_global(&both, &just_point, CompatMode::Forward).is_compatible());

        // Optional case added: backward-safe, forward-breaking.
        let r = diff_global(&just_point, &both, CompatMode::Backward);
        assert_eq!(kinds(&r), vec![DiffKind::UnionArmAdded]);
        assert!(r.is_compatible());
        assert!(!diff_global(&just_point, &both, CompatMode::Forward).is_compatible());

        // Multiplicity 1 → *: widening backward, breaking forward.
        let many = plain(Shape::HeteroList(vec![(point.clone(), Many)]));
        let r = diff_global(&just_point, &many, CompatMode::Backward);
        assert_eq!(kinds(&r), vec![DiffKind::MultiplicityChanged]);
        assert!(r.is_compatible());
        assert!(!diff_global(&just_point, &many, CompatMode::Forward).is_compatible());
        assert_eq!(r.entries[0].path.to_string(), "$\u{27e8}•\u{27e9}");
    }

    #[test]
    fn top_label_changes_are_informational() {
        let a = plain(Shape::Top(vec![Shape::Int, Shape::Bool]));
        let b = plain(Shape::Top(vec![Shape::Float, Shape::String]));
        for mode in [CompatMode::Backward, CompatMode::Forward, CompatMode::Full] {
            let r = diff_global(&a, &b, mode);
            assert!(r.is_compatible(), "labels are invisible to conformance");
            assert!(!r.is_empty(), "but the divergence is reported");
        }
        let r = diff_global(&a, &b, CompatMode::Full);
        assert!(kinds(&r).contains(&DiffKind::UnionArmChanged)); // int → float (same tag)
        assert!(kinds(&r).contains(&DiffKind::UnionArmDropped)); // bool
        assert!(kinds(&r).contains(&DiffKind::UnionArmAdded)); // string
    }

    #[test]
    fn record_rename_breaks_both_ways() {
        let p = plain(rec("P", vec![("x", Shape::Int)]));
        let q = plain(rec("Q", vec![("x", Shape::Int)]));
        let r = diff_global(&p, &q, CompatMode::Full);
        assert_eq!(kinds(&r), vec![DiffKind::RecordRenamed]);
        assert!(!r.is_compatible());
    }

    #[test]
    fn recursion_cut_moved_is_informational_when_equivalent() {
        // Old spells one unfolding inline; new uses the reference.
        let defs = vec![(
            "div",
            vec![
                ("child", Shape::Ref("div".into()).ceil()),
                ("x", Shape::Int.ceil()),
            ],
        )];
        let inline_root = rec(
            "div",
            vec![
                ("child", Shape::Ref("div".into()).ceil()),
                ("x", Shape::Int.ceil()),
            ],
        );
        let old = with_env(inline_root, defs.clone());
        let new = with_env(Shape::Ref("div".into()), defs);
        let r = diff_global(&old, &new, CompatMode::Full);
        assert!(r.is_compatible(), "{r}");
        assert!(kinds(&r).contains(&DiffKind::RecursionCutMoved));
        assert_agreement(&old, &new);
    }

    #[test]
    fn recursive_definition_widening_is_located_inside_the_def() {
        let old = with_env(
            Shape::Ref("ul".into()),
            vec![
                ("ul", vec![("li", Shape::Ref("li".into()).ceil())]),
                (
                    "li",
                    vec![
                        ("ul", Shape::Ref("ul".into()).ceil()),
                        ("mark", Shape::Int.ceil()),
                    ],
                ),
            ],
        );
        let new = with_env(
            Shape::Ref("ul".into()),
            vec![
                ("ul", vec![("li", Shape::Ref("li".into()).ceil())]),
                (
                    "li",
                    vec![
                        ("ul", Shape::Ref("ul".into()).ceil()),
                        ("mark", Shape::Float.ceil()),
                    ],
                ),
            ],
        );
        let r = diff_global(&old, &new, CompatMode::Backward);
        assert_eq!(kinds(&r), vec![DiffKind::TypeWidened]);
        assert_eq!(r.entries[0].path.to_string(), "\u{21ba}li.mark");
        assert!(r.is_compatible());
        assert!(!diff_global(&new, &old, CompatMode::Backward).is_compatible());
        assert_agreement(&old, &new);
        assert_agreement(&new, &old);
    }

    #[test]
    fn empty_diff_iff_equivalent() {
        let g = with_env(
            Shape::list(Shape::Ref("div".into())),
            vec![("div", vec![("child", Shape::Ref("div".into()).ceil())])],
        );
        let r = diff_global(&g, &g, CompatMode::Full);
        assert!(r.is_empty(), "{r}");
        assert_eq!(r.old_fingerprint, r.new_fingerprint);

        // Unreachable defs don't matter:
        let mut junk = g.clone();
        junk.env
            .define("junk".into(), RecordShape::new("junk", [("z", Shape::Int)]));
        assert!(diff_global(&g, &junk, CompatMode::Full).is_empty());

        // A def-body divergence does:
        let widened = with_env(
            Shape::list(Shape::Ref("div".into())),
            vec![(
                "div",
                vec![
                    ("child", Shape::Ref("div".into()).ceil()),
                    ("x", Shape::Int.ceil()),
                ],
            )],
        );
        assert!(!diff_global(&g, &widened, CompatMode::Full).is_empty());
    }

    #[test]
    fn label_only_reachable_defs_diff_muted() {
        // The definition is reachable only through a top label: its
        // divergence is reported but never breaking (the preference
        // relation does not descend into labels).
        let old = with_env(
            Shape::Top(vec![Shape::Ref("t".into())]),
            vec![("t", vec![("x", Shape::Int)])],
        );
        let new = with_env(
            Shape::Top(vec![Shape::Ref("t".into())]),
            vec![("t", vec![("x", Shape::Bool)])],
        );
        let r = diff_global(&old, &new, CompatMode::Full);
        assert!(!r.is_empty(), "{r}");
        assert!(r.is_compatible(), "{r}");
        assert_agreement(&old, &new);
    }

    #[test]
    fn agreement_on_a_matrix_of_global_shapes() {
        let defs_int = vec![
            ("ul", vec![("li", Shape::Ref("li".into()).ceil())]),
            (
                "li",
                vec![
                    ("ul", Shape::Ref("ul".into()).ceil()),
                    ("m", Shape::Int.ceil()),
                ],
            ),
        ];
        let defs_float = vec![
            ("ul", vec![("li", Shape::Ref("li".into()).ceil())]),
            (
                "li",
                vec![
                    ("ul", Shape::Ref("ul".into()).ceil()),
                    ("m", Shape::Float.ceil()),
                ],
            ),
        ];
        let defs_req = vec![
            (
                "ul",
                vec![("li", Shape::Ref("li".into()).ceil()), ("n", Shape::Int)],
            ),
            (
                "li",
                vec![
                    ("ul", Shape::Ref("ul".into()).ceil()),
                    ("m", Shape::Int.ceil()),
                ],
            ),
        ];
        let samples = vec![
            with_env(Shape::Ref("ul".into()), defs_int.clone()),
            with_env(Shape::Ref("ul".into()), defs_float),
            with_env(Shape::Ref("ul".into()), defs_req),
            with_env(Shape::Ref("li".into()), defs_int.clone()),
            with_env(
                Shape::list(Shape::Ref("ul".into()).ceil()),
                defs_int.clone(),
            ),
            with_env(
                rec("ul", vec![("li", Shape::Ref("li".into()).ceil())]),
                defs_int,
            ),
            plain(rec("ul", vec![("li", Shape::Null)])),
            plain(Shape::HeteroList(vec![
                (rec("•", vec![("a", Shape::Int)]), One),
                (Shape::list(Shape::Int), ZeroOrOne),
            ])),
            plain(Shape::list(rec("•", vec![("a", Shape::Int)]))),
            plain(Shape::any()),
            plain(Shape::Bottom),
            plain(Shape::Null),
            plain(Shape::Date),
            plain(Shape::String.ceil()),
        ];
        for a in &samples {
            for b in &samples {
                assert_agreement(a, b);
            }
        }
    }

    // --- Lints, one golden test per rule ---

    fn lint_hits(g: &GlobalShape, rule: &str) -> Vec<Diagnostic> {
        let mut config = LintConfig::new();
        config.set("all", LintLevel::Allow);
        config.set(rule, LintLevel::Warn);
        run_lints(g, &config)
    }

    #[test]
    fn lint_deep_optional_chain() {
        let g = plain(rec(
            "•",
            vec![(
                "a",
                rec(
                    "•",
                    vec![("b", rec("•", vec![("c", Shape::Int.ceil())]).ceil())],
                )
                .ceil(),
            )],
        ));
        let hits = lint_hits(&g, "deep-optional-chain");
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].shape_path.to_string(), "$.a.b.c");
        // Two levels only: no finding.
        let shallow = plain(rec(
            "•",
            vec![("a", rec("•", vec![("b", Shape::Int.ceil())]).ceil())],
        ));
        assert!(lint_hits(&shallow, "deep-optional-chain").is_empty());
        // A non-nullable hop resets the chain:
        let broken = plain(rec(
            "•",
            vec![(
                "a",
                rec("•", vec![("b", rec("•", vec![("c", Shape::Int.ceil())]))]).ceil(),
            )],
        ));
        assert!(lint_hits(&broken, "deep-optional-chain").is_empty());
    }

    #[test]
    fn lint_near_degenerate_union() {
        let g = plain(rec("•", vec![("x", Shape::Top(vec![Shape::Int]))]));
        let hits = lint_hits(&g, "near-degenerate-union");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].shape_path.to_string(), "$.x");
        let two = plain(rec(
            "•",
            vec![("x", Shape::Top(vec![Shape::Int, Shape::Bool]))],
        ));
        assert!(lint_hits(&two, "near-degenerate-union").is_empty());
    }

    #[test]
    fn lint_opaque_any() {
        let g = plain(rec("•", vec![("x", Shape::any())]));
        let hits = lint_hits(&g, "opaque-any");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].shape_path.to_string(), "$.x");
        let labelled = plain(rec(
            "•",
            vec![("x", Shape::Top(vec![Shape::Int, Shape::Bool]))],
        ));
        assert!(lint_hits(&labelled, "opaque-any").is_empty());
    }

    #[test]
    fn lint_mixed_number_string() {
        let g = plain(rec(
            "•",
            vec![("score", Shape::Top(vec![Shape::Float, Shape::String]))],
        ));
        let hits = lint_hits(&g, "mixed-number-string");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].shape_path.to_string(), "$.score");
        // Hetero collections count too:
        let h = plain(Shape::HeteroList(vec![
            (Shape::Int, Many),
            (Shape::String, One),
        ]));
        assert_eq!(lint_hits(&h, "mixed-number-string").len(), 1);
        let numeric = plain(rec(
            "•",
            vec![("score", Shape::Top(vec![Shape::Float, Shape::Bool]))],
        ));
        assert!(lint_hits(&numeric, "mixed-number-string").is_empty());
    }

    #[test]
    fn lint_case_collision() {
        let g = plain(rec("•", vec![("id", Shape::Int), ("ID", Shape::Int)]));
        let hits = lint_hits(&g, "case-collision");
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("`id`") && hits[0].message.contains("`ID`"));
        // Definition names collide too:
        let defs = with_env(
            Shape::Ref("Item".into()),
            vec![
                ("Item", vec![("x", Shape::Int)]),
                ("item", vec![("x", Shape::Int)]),
            ],
        );
        assert_eq!(lint_hits(&defs, "case-collision").len(), 1);
        let clean = plain(rec("•", vec![("id", Shape::Int), ("name", Shape::String)]));
        assert!(lint_hits(&clean, "case-collision").is_empty());
    }

    #[test]
    fn lint_union_arity() {
        let g = plain(Shape::Top(vec![
            Shape::Int,
            Shape::Bool,
            Shape::String,
            rec("a", vec![]),
            rec("b", vec![]),
        ]));
        let hits = lint_hits(&g, "union-arity");
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains('5'));
        let four = plain(Shape::Top(vec![
            Shape::Int,
            Shape::Bool,
            Shape::String,
            rec("a", vec![]),
        ]));
        assert!(lint_hits(&four, "union-arity").is_empty());
    }

    #[test]
    fn lint_empty_record_is_allow_by_default() {
        let g = plain(rec("br", vec![]));
        // Default config: the rule is allowed → silent.
        assert!(run_lints(&g, &LintConfig::new())
            .iter()
            .all(|d| d.rule != "empty-record"));
        // Explicitly enabled: fires.
        let hits = lint_hits(&g, "empty-record");
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("`br`"));
    }

    #[test]
    fn lint_levels_and_config_precedence() {
        let g = plain(rec("•", vec![("x", Shape::any())]));
        let mut config = LintConfig::new();
        config.set("opaque-any", LintLevel::Deny);
        let hits = run_lints(&g, &config);
        assert!(hits
            .iter()
            .any(|d| d.rule == "opaque-any" && d.severity == Severity::Error));
        // allow-all then warn-one: last override wins per rule.
        let mut config = LintConfig::new();
        config.set("all", LintLevel::Allow);
        assert!(run_lints(&g, &config).is_empty());
        config.set("opaque-any", LintLevel::Warn);
        assert_eq!(run_lints(&g, &config).len(), 1);
        // Registry sanity: at least the 7 documented rules.
        assert!(lint_rule_names().len() >= 7);
        for rule in lint_rules() {
            assert!(!rule.description().is_empty());
        }
    }

    // --- Access paths ---

    fn items_global() -> GlobalShape {
        plain(rec(
            "•",
            vec![(
                "items",
                Shape::list(rec(
                    "•",
                    vec![("name", Shape::String), ("note", Shape::String.ceil())],
                )),
            )],
        ))
    }

    #[test]
    fn access_path_parses_and_displays() {
        for (input, canon) in [
            ("items[].name", "$.items[].name"),
            ("$.items[].name", "$.items[].name"),
            ("root.items[].name", "$.items[].name"),
            ("$", "$"),
            ("root", "$"),
            ("items[].note?", "$.items[].note?"),
        ] {
            let p: AccessPath = input.parse().unwrap_or_else(|e| panic!("{input}: {e}"));
            assert_eq!(p.to_string(), canon, "{input}");
        }
        for bad in ["", "items[0].x", "items..x", "items.", "[?"] {
            assert!(bad.parse::<AccessPath>().is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn safe_paths_check_and_project() {
        let g = items_global();
        let r = check_path(&g, &"items[].name".parse().unwrap());
        assert!(r.is_safe(), "{:?}", r.diagnostics);
        assert_eq!(r.result, Some(Shape::String));
        let r = check_path(&g, &"items[].note?".parse().unwrap());
        assert!(r.is_safe());
        assert_eq!(r.result, Some(Shape::String));
    }

    #[test]
    fn nullable_access_without_opt_is_an_error_but_recovers() {
        let g = items_global();
        // .note is nullable; projecting a field through it must demand `?`.
        let nested = plain(rec(
            "•",
            vec![("user", rec("•", vec![("name", Shape::String)]).ceil())],
        ));
        let r = check_path(&nested, &"user.name".parse().unwrap());
        assert!(!r.is_safe());
        assert_eq!(r.diagnostics[0].rule, "path-null-deref");
        // Error recovery: the projection result is still computed.
        assert_eq!(r.result, Some(Shape::String));
        let ok = check_path(&nested, &"user?.name".parse().unwrap());
        assert!(ok.is_safe());
        // Redundant `?` is a note, not an error.
        let r = check_path(&g, &"items[].name?".parse().unwrap());
        assert!(r.is_safe());
        assert_eq!(r.diagnostics[0].rule, "path-redundant-opt");
    }

    #[test]
    fn missing_field_collection_and_any_errors() {
        let g = items_global();
        let r = check_path(&g, &"items[].nope".parse().unwrap());
        assert!(!r.is_safe());
        assert_eq!(r.diagnostics[0].rule, "path-missing-field");
        assert!(
            r.diagnostics[0].message.contains("name"),
            "lists known fields"
        );

        let r = check_path(&g, &"items.name".parse().unwrap());
        assert!(!r.is_safe());
        assert_eq!(r.diagnostics[0].rule, "path-not-record");

        let r = check_path(&g, &"items[][]".parse().unwrap());
        assert!(!r.is_safe());
        assert_eq!(r.diagnostics[0].rule, "path-not-collection");

        let any = plain(rec("•", vec![("x", Shape::any())]));
        let r = check_path(&any, &"x.y".parse().unwrap());
        assert!(!r.is_safe());
        assert_eq!(r.diagnostics[0].rule, "path-on-any");
    }

    #[test]
    fn hetero_and_ref_path_semantics() {
        let single = plain(rec(
            "•",
            vec![(
                "xs",
                Shape::HeteroList(vec![(rec("•", vec![("a", Shape::Int)]), Many)]),
            )],
        ));
        let r = check_path(&single, &"xs[].a".parse().unwrap());
        assert!(r.is_safe(), "single-case hetero is unambiguous");

        let multi = plain(rec(
            "•",
            vec![(
                "xs",
                Shape::HeteroList(vec![
                    (rec("•", vec![("a", Shape::Int)]), Many),
                    (Shape::Int, ZeroOrOne),
                ]),
            )],
        ));
        let r = check_path(&multi, &"xs[].a".parse().unwrap());
        assert!(!r.is_safe());
        assert_eq!(r.diagnostics[0].rule, "path-hetero");

        // μ-references resolve through the environment:
        let g = with_env(
            Shape::Ref("div".into()),
            vec![(
                "div",
                vec![
                    ("child", Shape::Ref("div".into()).ceil()),
                    ("x", Shape::Int),
                ],
            )],
        );
        let r = check_path(&g, &"child?.child?.x".parse().unwrap());
        assert!(r.is_safe(), "{:?}", r.diagnostics);
        assert_eq!(r.result, Some(Shape::Int));

        let dangling = plain(Shape::Ref("ghost".into()));
        let r = check_path(&dangling, &"x".parse().unwrap());
        assert!(!r.is_safe());
        assert_eq!(r.diagnostics[0].rule, "path-undefined-ref");
    }

    #[test]
    fn bottom_makes_the_rest_vacuously_safe() {
        let g = plain(rec("•", vec![("xs", Shape::list(Shape::Bottom))]));
        let r = check_path(&g, &"xs[].anything.at[].all".parse().unwrap());
        assert!(r.is_safe());
        assert_eq!(r.diagnostics[0].rule, "path-vacuous");
        assert_eq!(r.diagnostics[0].severity, Severity::Note);
        assert_eq!(r.result, Some(Shape::Bottom));
    }
}
