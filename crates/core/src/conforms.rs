//! Runtime shape conformance — the semantics of `hasShape(σ, d)`
//! (Fig. 6, Part I), shared by the Foo interpreter and the Rust runtime.

use crate::tags::{tag_of, Tag};
use crate::Shape;
use tfd_value::Value;

/// Does the data value `d` conform to shape σ? This is the `hasShape`
/// test of Fig. 6, extended compositionally to nullable shapes, labelled
/// tops, the `bit`/`date` primitives and heterogeneous collections (see
/// `tfd-foo::ops::has_shape` for the rule-by-rule correspondence).
///
/// ```
/// use tfd_core::{conforms, Shape};
/// use tfd_value::Value;
/// assert!(conforms(&Shape::Float, &Value::Int(3))); // float accepts int
/// assert!(!conforms(&Shape::Bool, &Value::Int(42)));
/// ```
pub fn conforms(shape: &Shape, d: &Value) -> bool {
    match (shape, d) {
        (Shape::Record(r), Value::Record { name, fields }) => {
            r.name == *name
                && r.fields.iter().all(|f| {
                    match fields.iter().find(|g| g.name == f.name) {
                        Some(g) => conforms(&f.shape, &g.value),
                        // A nullable field may be missing entirely.
                        None => conforms(&f.shape, &Value::Null),
                    }
                })
        }
        (Shape::List(element), Value::List(items)) => {
            items.iter().all(|item| conforms(element, item))
        }
        (Shape::List(_), Value::Null) => true,
        (Shape::String, Value::Str(_)) => true,
        (Shape::Int, Value::Int(_)) => true,
        (Shape::Bool, Value::Bool(_)) => true,
        (Shape::Float, Value::Int(_) | Value::Float(_)) => true,
        (Shape::Nullable(_), Value::Null) => true,
        (Shape::Nullable(inner), d) => conforms(inner, d),
        (Shape::Null, Value::Null) => true,
        (Shape::Top(_), _) => true,
        (Shape::Bit, Value::Int(i)) => *i == 0 || *i == 1,
        (Shape::Date, Value::Str(s)) => tfd_csv::parse_date(s).is_some(),
        (Shape::HeteroList(_), Value::Null) => true,
        (Shape::HeteroList(cases), Value::List(items)) => {
            // Null elements read as absent (collections are nullable and
            // the tagged accessors skip them).
            items.iter().all(|item| {
                item.is_null()
                    || cases.iter().any(|(cs, _)| value_matches_tag(&tag_of(cs), item))
            }) && cases.iter().all(|(cs, m)| {
                let count = items
                    .iter()
                    .filter(|item| value_matches_tag(&tag_of(cs), item))
                    .count();
                m.admits(count)
            })
        }
        _ => false,
    }
}

/// Does a data value belong to a shape-tag's family? Used to select
/// heterogeneous-collection elements (§6.4) and to test labelled-top
/// cases.
pub fn value_matches_tag(tag: &Tag, d: &Value) -> bool {
    match (tag, d) {
        (Tag::Number, Value::Int(_) | Value::Float(_)) => true,
        (Tag::Bool, Value::Bool(_)) => true,
        (Tag::Str, Value::Str(_)) => true,
        (Tag::Name(n), Value::Record { name, .. }) => n == name,
        (Tag::Collection, Value::List(_)) => true,
        (Tag::Null, Value::Null) => true,
        (Tag::Any, _) => true,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::{infer_with, InferOptions};
    use crate::prefer::is_preferred;
    use tfd_value::{arr, json_rec, rec};

    #[test]
    fn conforms_agrees_with_inference_preference_on_samples() {
        // For a value d and shape σ: S(d) ⊑ σ implies conforms(σ, d) for
        // the formal fragment (spot-checked here; property-tested in the
        // integration suite).
        let docs = [
            Value::Int(1),
            Value::Float(2.5),
            Value::Null,
            arr([Value::Int(1), Value::Null]),
            json_rec([("a", Value::Int(1))]),
            rec("P", [("x", arr([Value::Bool(true)]))]),
        ];
        let opts = InferOptions::formal();
        for d in &docs {
            for sample in &docs {
                let shape = infer_with(sample, &opts);
                if is_preferred(&infer_with(d, &opts), &shape) {
                    assert!(conforms(&shape, d), "S({d}) ⊑ {shape} but hasShape fails");
                }
            }
        }
    }

    #[test]
    fn tag_matching() {
        assert!(value_matches_tag(&Tag::Number, &Value::Int(1)));
        assert!(value_matches_tag(&Tag::Number, &Value::Float(1.0)));
        assert!(value_matches_tag(&Tag::Name("P".into()), &rec("P", [("x", Value::Int(1))])));
        assert!(!value_matches_tag(&Tag::Name("P".into()), &rec("Q", [("x", Value::Int(1))])));
        assert!(value_matches_tag(&Tag::Any, &Value::Null));
        assert!(!value_matches_tag(&Tag::Bool, &Value::Int(0)));
    }
}
