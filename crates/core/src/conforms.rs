//! Runtime shape conformance — the semantics of `hasShape(σ, d)`
//! (Fig. 6, Part I), shared by the Foo interpreter and the Rust runtime.
//!
//! [`conforms_in`] decides conformance under a shape environment:
//! μ-references unfold to their record definitions on demand. No memo is
//! needed for termination — every unfolding is immediately followed by a
//! record-vs-value comparison, and data values are finite trees that
//! strictly shrink (a missing field compares the definition against
//! `null`, which records reject without further unfolding).

use crate::env::ShapeEnv;
use crate::shape::RecordShape;
use crate::tags::{tag_of, Tag};
use crate::Shape;
use tfd_value::Value;

/// Does the data value `d` conform to shape σ? This is the `hasShape`
/// test of Fig. 6, extended compositionally to nullable shapes, labelled
/// tops, the `bit`/`date` primitives and heterogeneous collections (see
/// `tfd-foo::ops::has_shape` for the rule-by-rule correspondence).
///
/// A [`Shape::Ref`] without an environment degrades to a record-name
/// check (the reference's tag); use [`conforms_in`] to check the full
/// definition.
///
/// ```
/// use tfd_core::{conforms, Shape};
/// use tfd_value::Value;
/// assert!(conforms(&Shape::Float, &Value::Int(3))); // float accepts int
/// assert!(!conforms(&Shape::Bool, &Value::Int(42)));
/// ```
pub fn conforms(shape: &Shape, d: &Value) -> bool {
    conforms_in(shape, d, None)
}

/// [`conforms`] under an optional shape environment: μ-references unfold
/// through `env`, so recursive provided types can check their values all
/// the way down.
///
/// ```
/// use tfd_core::{conforms_in, RecordShape, Shape, ShapeEnv};
/// use tfd_value::{rec, Value};
///
/// let env = ShapeEnv::from_defs([(
///     "div".into(),
///     RecordShape::new("div", [("child", Shape::Ref("div".into()).ceil())]),
/// )]);
/// let d = rec("div", [("child", rec("div", [] as [(&str, Value); 0]))]);
/// assert!(conforms_in(&Shape::Ref("div".into()), &d, Some(&env)));
/// assert!(!conforms_in(&Shape::Ref("div".into()), &Value::Int(1), Some(&env)));
/// ```
pub fn conforms_in(shape: &Shape, d: &Value, env: Option<&ShapeEnv>) -> bool {
    match (shape, d) {
        (Shape::Ref(n), Value::Record { name, .. }) => {
            if n != name {
                return false;
            }
            match env.and_then(|e| e.get(*n)) {
                // Unfold the definition; `d` shrinks at every record
                // step, so recursion terminates.
                Some(def) => record_conforms(def, d, env),
                // No definition in scope: the name match is all we know.
                None => true,
            }
        }
        (Shape::Ref(_), _) => false,
        (Shape::Record(r), Value::Record { .. }) => record_conforms(r, d, env),
        (Shape::Record(_), _) => false,
        (Shape::List(element), Value::List(items)) => {
            items.iter().all(|item| conforms_in(element, item, env))
        }
        (Shape::List(_), Value::Null) => true,
        (Shape::String, Value::Str(_)) => true,
        (Shape::Int, Value::Int(_)) => true,
        (Shape::Bool, Value::Bool(_)) => true,
        (Shape::Float, Value::Int(_) | Value::Float(_)) => true,
        (Shape::Nullable(_), Value::Null) => true,
        (Shape::Nullable(inner), d) => conforms_in(inner, d, env),
        (Shape::Null, Value::Null) => true,
        (Shape::Top(_), _) => true,
        (Shape::Bit, Value::Int(i)) => *i == 0 || *i == 1,
        (Shape::Date, Value::Str(s)) => tfd_csv::parse_date(s).is_some(),
        (Shape::HeteroList(_), Value::Null) => true,
        (Shape::HeteroList(cases), Value::List(items)) => {
            // Null elements read as absent (collections are nullable and
            // the tagged accessors skip them).
            items.iter().all(|item| {
                item.is_null()
                    || cases
                        .iter()
                        .any(|(cs, _)| value_matches_tag(&tag_of(cs), item))
            }) && cases.iter().all(|(cs, m)| {
                let count = items
                    .iter()
                    .filter(|item| value_matches_tag(&tag_of(cs), item))
                    .count();
                m.admits(count)
            })
        }
        _ => false,
    }
}

/// The record rule on a record view (shared by inline records and
/// unfolded μ-definitions).
fn record_conforms(r: &RecordShape, d: &Value, env: Option<&ShapeEnv>) -> bool {
    let Value::Record { name, fields } = d else {
        return false;
    };
    r.name == *name
        && r.fields.iter().all(|f| {
            match fields.iter().find(|g| g.name == f.name) {
                Some(g) => conforms_in(&f.shape, &g.value, env),
                // A nullable field may be missing entirely.
                None => conforms_in(&f.shape, &Value::Null, env),
            }
        })
}

/// Does a data value belong to a shape-tag's family? Used to select
/// heterogeneous-collection elements (§6.4) and to test labelled-top
/// cases.
pub fn value_matches_tag(tag: &Tag, d: &Value) -> bool {
    match (tag, d) {
        (Tag::Number, Value::Int(_) | Value::Float(_)) => true,
        (Tag::Bool, Value::Bool(_)) => true,
        (Tag::Str, Value::Str(_)) => true,
        (Tag::Name(n), Value::Record { name, .. }) => n == name,
        (Tag::Collection, Value::List(_)) => true,
        (Tag::Null, Value::Null) => true,
        (Tag::Any, _) => true,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::{infer_with, InferOptions};
    use crate::prefer::is_preferred;
    use tfd_value::{arr, json_rec, rec};

    #[test]
    fn conforms_agrees_with_inference_preference_on_samples() {
        // For a value d and shape σ: S(d) ⊑ σ implies conforms(σ, d) for
        // the formal fragment (spot-checked here; property-tested in the
        // integration suite).
        let docs = [
            Value::Int(1),
            Value::Float(2.5),
            Value::Null,
            arr([Value::Int(1), Value::Null]),
            json_rec([("a", Value::Int(1))]),
            rec("P", [("x", arr([Value::Bool(true)]))]),
        ];
        let opts = InferOptions::formal();
        for d in &docs {
            for sample in &docs {
                let shape = infer_with(sample, &opts);
                if is_preferred(&infer_with(d, &opts), &shape) {
                    assert!(conforms(&shape, d), "S({d}) ⊑ {shape} but hasShape fails");
                }
            }
        }
    }

    #[test]
    fn tag_matching() {
        assert!(value_matches_tag(&Tag::Number, &Value::Int(1)));
        assert!(value_matches_tag(&Tag::Number, &Value::Float(1.0)));
        assert!(value_matches_tag(
            &Tag::Name("P".into()),
            &rec("P", [("x", Value::Int(1))])
        ));
        assert!(!value_matches_tag(
            &Tag::Name("P".into()),
            &rec("Q", [("x", Value::Int(1))])
        ));
        assert!(value_matches_tag(&Tag::Any, &Value::Null));
        assert!(!value_matches_tag(&Tag::Bool, &Value::Int(0)));
    }

    /// Cycle-cut termination proof: conformance of arbitrarily deep
    /// recursive values against a self-referential definition terminates
    /// (data is finite; every unfolding consumes a record level).
    #[test]
    fn recursive_ref_conformance_unfolds_through_the_env() {
        let env = ShapeEnv::from_defs([(
            "div".into(),
            RecordShape::new(
                "div",
                [
                    ("child", Shape::Ref("div".into()).ceil()),
                    ("x", Shape::Int.ceil()),
                ],
            ),
        )]);
        let shape = Shape::Ref("div".into());
        // Three levels of nesting, all conforming:
        let deep = rec(
            "div",
            [(
                "child",
                rec("div", [("child", rec("div", [("x", Value::Int(1))]))]),
            )],
        );
        assert!(conforms_in(&shape, &deep, Some(&env)));
        // A violation deep inside is found (x must be int-ish):
        let bad = rec("div", [("child", rec("div", [("x", Value::Bool(true))]))]);
        assert!(!conforms_in(&shape, &bad, Some(&env)));
        // Wrong record name fails at the top:
        assert!(!conforms_in(
            &shape,
            &rec("span", [("x", Value::Int(1))]),
            Some(&env)
        ));
    }

    #[test]
    fn env_free_ref_checks_the_name_only() {
        let shape = Shape::Ref("div".into());
        assert!(conforms(&shape, &rec("div", [("anything", Value::Int(1))])));
        assert!(!conforms(&shape, &rec("span", [] as [(&str, Value); 0])));
        assert!(!conforms(&shape, &Value::Null));
        // nullable ref admits null:
        assert!(conforms(&shape.ceil(), &Value::Null));
    }
}
