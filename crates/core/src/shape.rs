//! The shape algebra σ of §3.1, §3.5 and §6.4.
//!
//! ```text
//! σ̂ = ν {ν1:σ1, ..., νn:σn}            (records)
//!   | float | int | bool | string       (primitives)
//!
//! σ = σ̂ | nullable σ̂ | [σ] | any | null | ⊥
//!   | any⟨σ1, ..., σn⟩                  (labelled top, §3.5)
//!   | [σ1,ψ1 | ... | σn,ψn]             (heterogeneous collection, §6.4)
//! ```
//!
//! Two extended primitives from §6.2 are included: **bit** ("preferred
//! [over] both int and bool", inferred for 0/1-valued CSV columns) and
//! **date** (inferred for date-formatted strings). They participate in
//! the preference relation as documented on [`Shape`]; the formal
//! fragment used for the relative-safety theorem never produces them.

use crate::multiplicity::Multiplicity;
use std::fmt;
use tfd_value::Name;

/// A record field shape: a name `νᵢ` with its shape `σᵢ`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FieldShape {
    /// Field name (interned — copying a field name is free).
    pub name: Name,
    /// Field shape.
    pub shape: Shape,
}

impl FieldShape {
    /// Creates a field shape.
    pub fn new(name: impl Into<Name>, shape: Shape) -> FieldShape {
        FieldShape {
            name: name.into(),
            shape,
        }
    }
}

/// A record shape `ν {ν1:σ1, ..., νn:σn}`.
///
/// JSON records use the name `•` ([`tfd_value::BODY_NAME`]); XML records
/// are named after their element.
///
/// Field *order* is preserved as first seen in the samples (important for
/// predictable provided types, §6.5) but is not semantically meaningful:
/// equality and hashing treat fields as an unordered name→shape map,
/// because "record fields can be freely reordered" (§3.1).
#[derive(Debug, Clone, Eq)]
pub struct RecordShape {
    /// Record name `ν` (interned).
    pub name: Name,
    /// Fields in first-seen order.
    pub fields: Vec<FieldShape>,
}

impl PartialEq for RecordShape {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.fields.len() == other.fields.len()
            && self.fields.iter().all(|f| {
                other
                    .fields
                    .iter()
                    .find(|g| g.name == f.name)
                    .is_some_and(|g| g.shape == f.shape)
            })
    }
}

impl std::hash::Hash for RecordShape {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        use std::hash::Hasher;
        self.name.hash(state);
        self.fields.len().hash(state);
        // Order-insensitive fold, consistent with the PartialEq above.
        let mut acc: u64 = 0;
        for f in &self.fields {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            f.name.hash(&mut h);
            f.shape.hash(&mut h);
            acc ^= h.finish();
        }
        acc.hash(state);
    }
}

impl RecordShape {
    /// Creates a record shape from `(name, shape)` pairs.
    pub fn new<N, I, F>(name: N, fields: I) -> RecordShape
    where
        N: Into<Name>,
        I: IntoIterator<Item = (F, Shape)>,
        F: Into<Name>,
    {
        RecordShape {
            name: name.into(),
            fields: fields
                .into_iter()
                .map(|(n, s)| FieldShape::new(n, s))
                .collect(),
        }
    }

    /// Looks up a field shape by name.
    pub fn field(&self, name: &str) -> Option<&Shape> {
        self.fields
            .iter()
            .find(|f| f.name == name)
            .map(|f| &f.shape)
    }
}

/// The shape of structured data, σ.
///
/// See the module docs for the grammar. Key structural invariants
/// (enforced by the smart constructors and preserved by `csh`):
///
/// * [`Shape::Nullable`] only wraps *non-nullable* shapes σ̂ (records and
///   primitives) — `nullable (nullable σ)` and `nullable [σ]` never occur
///   (collections are already nullable, §3.1).
/// * [`Shape::Top`] labels are non-nullable (`⌊−⌋` applied, Fig. 4), carry
///   pairwise-distinct tags, and never include another top shape.
/// * [`Shape::HeteroList`] cases carry pairwise-distinct tags.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Shape {
    /// The bottom shape ⊥ (inferred only for the empty sample set /
    /// empty collections).
    Bottom,
    /// The shape of the `null` value.
    Null,
    /// Boolean primitive.
    Bool,
    /// Integer primitive (preferred over `float`, Def. 1 rule 1).
    Int,
    /// Floating-point primitive.
    Float,
    /// String primitive.
    String,
    /// §6.2 extension: a 0/1-valued integer, "preferred \[over] both int
    /// and bool". Only inferred when
    /// [`InferOptions::infer_bits`](crate::InferOptions) is on.
    Bit,
    /// §6.2 extension: a date-formatted string (preferred over `string`).
    /// Only inferred when
    /// [`InferOptions::detect_dates`](crate::InferOptions) is on.
    Date,
    /// A record shape ν {…}.
    Record(RecordShape),
    /// `nullable σ̂` — an explicitly optional value (§3.1). The inner
    /// shape is always non-nullable.
    Nullable(Box<Shape>),
    /// A collection `[σ]`. Collections are implicitly nullable: a `null`
    /// where a collection is expected reads as the empty collection.
    List(Box<Shape>),
    /// The top shape with statically known labels `any⟨σ1,…,σn⟩` (§3.5).
    /// An empty label list is the plain `any` of §3.1. Labels do not
    /// affect the preference relation — `any⟨…⟩` is the top shape
    /// regardless.
    Top(Vec<Shape>),
    /// A heterogeneous collection `[σ1,ψ1 | … | σn,ψn]` (§6.4): possible
    /// element shapes with their multiplicities. Only inferred when
    /// [`InferOptions::hetero_collections`](crate::InferOptions) is on.
    HeteroList(Vec<(Shape, Multiplicity)>),
    /// A μ-style back-reference to the record definition named ν in an
    /// ambient [`ShapeEnv`](crate::ShapeEnv). This is how recursive
    /// structures (a `<ul>` containing `<li>` containing `<ul>`) become
    /// representable: `globalize_env` replaces every occurrence of a
    /// name-class record with a reference to its definitions-table entry,
    /// so re-inference reaches a true fixed point (F# Data's provided
    /// types work the same way — a nested occurrence is a *reference* to
    /// its class, not an inline expansion).
    ///
    /// A `Ref` always denotes a record (the env bodies are
    /// [`RecordShape`]s), so it is non-nullable and tags as
    /// [`Tag::Name`](crate::Tag). Inference never produces `Ref` on its
    /// own; only the global (§6.2) pass introduces it.
    Ref(Name),
}

impl Shape {
    /// The plain (unlabelled) top shape `any`.
    pub fn any() -> Shape {
        Shape::Top(Vec::new())
    }

    /// Builds a record shape.
    ///
    /// ```
    /// use tfd_core::Shape;
    /// let s = Shape::record("Point", [("x", Shape::Int)]);
    /// assert!(s.is_non_nullable());
    /// ```
    pub fn record<N, I, F>(name: N, fields: I) -> Shape
    where
        N: Into<Name>,
        I: IntoIterator<Item = (F, Shape)>,
        F: Into<Name>,
    {
        Shape::Record(RecordShape::new(name, fields))
    }

    /// Builds a homogeneous collection shape `[σ]`.
    pub fn list(element: Shape) -> Shape {
        Shape::List(Box::new(element))
    }

    /// Returns `true` for the non-nullable shapes σ̂ of §3.1: records and
    /// primitives (including the `bit`/`date` extensions). A [`Shape::Ref`]
    /// denotes a record definition, so it is non-nullable too.
    pub fn is_non_nullable(&self) -> bool {
        matches!(
            self,
            Shape::Bool
                | Shape::Int
                | Shape::Float
                | Shape::String
                | Shape::Bit
                | Shape::Date
                | Shape::Record(_)
                | Shape::Ref(_)
        )
    }

    /// The `⌈σ⌉` operator of Fig. 2: wraps non-nullable shapes in
    /// `nullable ·`, leaves everything else unchanged.
    ///
    /// ```
    /// use tfd_core::Shape;
    /// assert_eq!(Shape::Int.ceil(), Shape::Nullable(Box::new(Shape::Int)));
    /// assert_eq!(Shape::list(Shape::Int).ceil(), Shape::list(Shape::Int));
    /// ```
    #[must_use]
    pub fn ceil(self) -> Shape {
        if self.is_non_nullable() {
            Shape::Nullable(Box::new(self))
        } else {
            self
        }
    }

    /// The `⌊σ⌋` operator of Fig. 2: unwraps `nullable σ̂` to `σ̂`, leaves
    /// everything else unchanged.
    ///
    /// ```
    /// use tfd_core::Shape;
    /// assert_eq!(Shape::Int.ceil().floor(), Shape::Int);
    /// assert_eq!(Shape::Null.floor(), Shape::Null);
    /// ```
    #[must_use]
    pub fn floor(self) -> Shape {
        match self {
            Shape::Nullable(inner) => *inner,
            other => other,
        }
    }

    /// Returns `true` if this is the top shape (with or without labels).
    pub fn is_top(&self) -> bool {
        matches!(self, Shape::Top(_))
    }

    /// Returns the record shape, if this is a record.
    pub fn as_record(&self) -> Option<&RecordShape> {
        match self {
            Shape::Record(r) => Some(r),
            _ => None,
        }
    }

    /// Counts the nodes of the shape tree (used by benchmarks and as a
    /// complexity metric in EXPERIMENTS.md).
    pub fn size(&self) -> usize {
        match self {
            Shape::Record(r) => 1 + r.fields.iter().map(|f| f.shape.size()).sum::<usize>(),
            Shape::Nullable(s) | Shape::List(s) => 1 + s.size(),
            Shape::Top(labels) => 1 + labels.iter().map(Shape::size).sum::<usize>(),
            Shape::HeteroList(cases) => 1 + cases.iter().map(|(s, _)| s.size()).sum::<usize>(),
            _ => 1,
        }
    }

    /// Migrates every record, field and reference name in this shape
    /// into `interner` (see [`Name::reintern`]). A shape folded from a
    /// corpus-scoped arena is migrated with this before the arena drops,
    /// so the schema-sized survivor outlives the corpus-sized
    /// vocabulary it was distilled from.
    pub fn reintern(&mut self, interner: &tfd_value::Interner) {
        match self {
            Shape::Bottom
            | Shape::Null
            | Shape::Bool
            | Shape::Int
            | Shape::Float
            | Shape::String
            | Shape::Bit
            | Shape::Date => {}
            Shape::Record(r) => {
                r.name = r.name.reintern(interner);
                for f in &mut r.fields {
                    f.name = f.name.reintern(interner);
                    f.shape.reintern(interner);
                }
            }
            Shape::Nullable(s) | Shape::List(s) => s.reintern(interner),
            Shape::Top(labels) => {
                for s in labels {
                    s.reintern(interner);
                }
            }
            Shape::HeteroList(cases) => {
                for (s, _) in cases {
                    s.reintern(interner);
                }
            }
            Shape::Ref(name) => *name = name.reintern(interner),
        }
    }

    /// Returns `true` if the shape contains a labelled/plain top anywhere.
    /// Used by the ablation experiment that measures how often the
    /// inference has to give up on precise typing (B6).
    pub fn contains_top(&self) -> bool {
        match self {
            Shape::Top(_) => true,
            Shape::Record(r) => r.fields.iter().any(|f| f.shape.contains_top()),
            Shape::Nullable(s) | Shape::List(s) => s.contains_top(),
            Shape::HeteroList(cases) => cases.iter().any(|(s, _)| s.contains_top()),
            _ => false,
        }
    }
}

impl fmt::Display for Shape {
    /// Formats the shape in the paper's notation, e.g.
    /// `• {name : string, age : nullable float}` or `any⟨float, bool⟩`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Shape::Bottom => write!(f, "\u{22a5}"),
            Shape::Null => write!(f, "null"),
            Shape::Bool => write!(f, "bool"),
            Shape::Int => write!(f, "int"),
            Shape::Float => write!(f, "float"),
            Shape::String => write!(f, "string"),
            Shape::Bit => write!(f, "bit"),
            Shape::Date => write!(f, "date"),
            Shape::Record(r) => {
                write!(f, "{} {{", r.name)?;
                for (i, field) in r.fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{} : {}", field.name, field.shape)?;
                }
                write!(f, "}}")
            }
            Shape::Nullable(inner) => write!(f, "nullable {inner}"),
            Shape::List(element) => write!(f, "[{element}]"),
            Shape::Top(labels) if labels.is_empty() => write!(f, "any"),
            Shape::Top(labels) => {
                write!(f, "any\u{27e8}")?;
                for (i, label) in labels.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{label}")?;
                }
                write!(f, "\u{27e9}")
            }
            Shape::HeteroList(cases) => {
                write!(f, "[")?;
                for (i, (shape, m)) in cases.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{shape}, {m}")?;
                }
                write!(f, "]")
            }
            Shape::Ref(name) => write!(f, "\u{21ba}{name}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_nullable_classification() {
        for s in [
            Shape::Bool,
            Shape::Int,
            Shape::Float,
            Shape::String,
            Shape::Bit,
            Shape::Date,
            Shape::record("R", [("x", Shape::Int)]),
        ] {
            assert!(s.is_non_nullable(), "{s} should be non-nullable");
        }
        for s in [
            Shape::Bottom,
            Shape::Null,
            Shape::any(),
            Shape::list(Shape::Int),
            Shape::Int.ceil(),
            Shape::HeteroList(vec![]),
        ] {
            assert!(!s.is_non_nullable(), "{s} should be nullable");
        }
    }

    #[test]
    fn ceil_wraps_only_non_nullable() {
        assert_eq!(Shape::Int.ceil(), Shape::Nullable(Box::new(Shape::Int)));
        assert_eq!(Shape::Null.ceil(), Shape::Null);
        assert_eq!(Shape::any().ceil(), Shape::any());
        let list = Shape::list(Shape::Int);
        assert_eq!(list.clone().ceil(), list);
        // ceil is idempotent via the invariant:
        assert_eq!(Shape::Int.ceil().ceil(), Shape::Int.ceil());
    }

    #[test]
    fn floor_inverts_ceil_on_non_nullable() {
        for s in [
            Shape::Int,
            Shape::String,
            Shape::record("R", [("x", Shape::Bool)]),
        ] {
            assert_eq!(s.clone().ceil().floor(), s);
        }
        assert_eq!(Shape::Null.floor(), Shape::Null);
    }

    #[test]
    fn record_field_lookup() {
        let r = RecordShape::new("P", [("x", Shape::Int), ("y", Shape::Float)]);
        assert_eq!(r.field("x"), Some(&Shape::Int));
        assert_eq!(r.field("z"), None);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Shape::Bottom.to_string(), "\u{22a5}");
        assert_eq!(Shape::any().to_string(), "any");
        assert_eq!(
            Shape::Top(vec![Shape::Float, Shape::Bool]).to_string(),
            "any\u{27e8}float, bool\u{27e9}"
        );
        assert_eq!(Shape::Int.ceil().to_string(), "nullable int");
        assert_eq!(Shape::list(Shape::String).to_string(), "[string]");
        assert_eq!(
            Shape::record("Point", [("x", Shape::Int)]).to_string(),
            "Point {x : int}"
        );
    }

    #[test]
    fn display_hetero_list() {
        let h = Shape::HeteroList(vec![
            (Shape::record("r", [("a", Shape::Int)]), Multiplicity::One),
            (Shape::list(Shape::Int), Multiplicity::Many),
        ]);
        assert_eq!(h.to_string(), "[r {a : int}, 1 | [int], *]");
    }

    #[test]
    fn size_counts_nodes() {
        assert_eq!(Shape::Int.size(), 1);
        assert_eq!(Shape::list(Shape::Int).size(), 2);
        assert_eq!(
            Shape::record("R", [("a", Shape::Int), ("b", Shape::Float.ceil())]).size(),
            4
        );
    }

    #[test]
    fn contains_top_scans_deeply() {
        assert!(!Shape::Int.contains_top());
        assert!(Shape::any().contains_top());
        assert!(Shape::record("R", [("a", Shape::list(Shape::any()))]).contains_top());
    }

    #[test]
    fn refs_are_non_nullable_records_notationally() {
        let r = Shape::Ref("div".into());
        assert!(r.is_non_nullable(), "a ref denotes a record");
        assert_eq!(r.to_string(), "\u{21ba}div");
        assert_eq!(r.clone().ceil(), Shape::Nullable(Box::new(r.clone())));
        assert_eq!(r.size(), 1);
        assert!(!r.contains_top());
    }
}
